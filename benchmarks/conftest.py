"""Shared helpers for the paper-reproduction benchmarks.

Each benchmark regenerates one table or figure of the paper's evaluation
(Section 4) and asserts its *shape*: who wins, direction of trends,
rough factors.  Absolute numbers differ (MiniDB is a Python simulator,
not the authors' 64-core testbed); EXPERIMENTS.md records both.

Budgets are laptop-scale: every benchmark runs in tens of seconds, not
the paper's 24 hours.  ``benchmark.pedantic(..., rounds=1)`` is used
because a campaign is a long-running measured unit, not a microbench.
"""

from __future__ import annotations

import pytest


def run_once(benchmark, fn):
    """Run *fn* exactly once under pytest-benchmark accounting."""
    return benchmark.pedantic(fn, rounds=1, iterations=1)


@pytest.fixture
def oracle_factories():
    from repro import CoddTestOracle, DQEOracle, NoRECOracle, TLPOracle

    return {
        "coddtest": lambda: CoddTestOracle(),
        "norec": lambda: NoRECOracle(),
        "tlp": lambda: TLPOracle(),
        "dqe": lambda: DQEOracle(),
    }
