"""Perf-layer speedup on the fig2 workload (ROADMAP "Worker-local
caching" and "Vectorized MiniDB evaluation").

Cache-off vs cache-on (scalar) vs cache-on (vectorized) campaigns at
MaxDepth 3/5/7, measured with the shared :mod:`repro.perf.bench`
helpers so this benchmark emits the exact ``BENCH_perf.json`` record
schema the perf-smoke CI job uploads.

Assertions are shape-level and deliberately loose for shared hardware:
the cache must never *lose* throughput (speedup >= 1 at every depth),
the vector path must pay for itself where expression evaluation
dominates (vector speedup >= 1 at MaxDepth >= 5), and every campaign
of a triple must be bit-identical -- the hard contract, also gated as
a blocking CI job on every push.  The measured target (>= 1.5x at
MaxDepth >= 5) is recorded in the JSON rather than asserted here.
"""

from __future__ import annotations

from conftest import run_once

from repro.perf.bench import bench_payload, measure_depth

DEPTHS = (3, 5, 7)
TESTS_PER_DEPTH = 400
SEED = 17


def test_cache_speedup_maxdepth_sweep(benchmark):
    def sweep():
        measure_depth(3, tests=100, seed=SEED)  # warm-up: imports, allocator
        return [
            measure_depth(depth, tests=TESTS_PER_DEPTH, seed=SEED)
            for depth in DEPTHS
        ]

    records = run_once(benchmark, sweep)
    payload = bench_payload(records)
    benchmark.extra_info["BENCH_perf"] = payload

    print(
        "\n[cache speedup] fig2 MaxDepth sweep, "
        "cache-off vs cache-on (scalar) vs cache-on (vector):"
    )
    for r in records:
        print(
            f"  depth {r['max_depth']}: "
            f"{r['tests_per_second_cache_off']:8.1f} -> "
            f"{r['tests_per_second_vector_off']:8.1f} -> "
            f"{r['tests_per_second_cache_on']:8.1f} tests/s  "
            f"(cache {r['speedup']:.2f}x, "
            f"vector {r['vector_speedup']:.2f}x, "
            f"hit rate {100 * r['cache_hit_rate']:.1f}%)"
        )

    # Hard contract: every perf mode is bit-identical to cache-off.
    assert payload["all_signatures_identical"], records

    # The cache must pay for itself at every depth ...
    for r in records:
        assert r["speedup"] >= 1.0, records
    deep = [r for r in records if r["max_depth"] >= 5]
    # ... the vector path must pay for itself where expression
    # evaluation dominates ...
    assert all(r["vector_speedup"] >= 1.0 for r in deep), records
    # ... and the hit rate must be substantial there too (deep
    # expressions memoize well).
    assert all(r["cache_hit_rate"] > 0.2 for r in deep), records
