"""Paper Section 4.3: queries with subqueries cost far more than queries
with plain expressions.

Paper: "queries with expressions alone required only 44.73 microseconds
for execution, whereas queries with subqueries required 321.19
microseconds" (~7.2x).

Reproduction: time pure query execution (the paper's measured quantity)
on a fixed database state, for a stream of expression-only predicates
vs. a stream of (correlated and non-correlated) subquery predicates.
"""

import random
import time

from conftest import run_once

from repro import MiniDBAdapter, make_engine
from repro.generator import ExprGenerator
from repro.generator.expr_gen import ScopeColumn
from repro.errors import SqlError

ROWS = 40
N_QUERIES = 150


def _prepare():
    adapter = MiniDBAdapter(make_engine("sqlite"))
    adapter.execute("CREATE TABLE t0 (c0 INT, c1 INT, c2 TEXT)")
    adapter.execute("CREATE TABLE t1 (c0 INT, c1 INT)")
    rng = random.Random(7)
    for name, width in (("t0", 3), ("t1", 2)):
        rows = []
        for i in range(ROWS):
            vals = [str(rng.randint(-5, 10)) for _ in range(width - 1)]
            if width == 3:
                vals.append(f"'{rng.choice('abcxyz')}'")
            else:
                vals.append(str(rng.randint(-5, 10)))
            rows.append("(" + ", ".join(vals) + ")")
        adapter.execute(f"INSERT INTO {name} VALUES {', '.join(rows)}")
    return adapter


def _queries(adapter, subqueries: bool) -> list[str]:
    rng = random.Random(13)
    gen = ExprGenerator(
        rng,
        adapter.schema(),
        max_depth=3,
        allow_subqueries=subqueries,
        supports_any_all=False,
    )
    scope = [
        ScopeColumn("t0", c.name, c.sql_type)
        for c in adapter.schema().table("t0").columns
    ]
    out = []
    while len(out) < N_QUERIES:
        if subqueries:
            pred = gen.subquery_predicate(scope).expr
        else:
            pred = gen.predicate(scope).expr
        out.append(f"SELECT COUNT(*) FROM t0 WHERE {pred.to_sql()}")
    return out


def _time_stream(adapter, queries: list[str]) -> float:
    """Mean microseconds per successfully executed query."""
    executed = 0
    start = time.perf_counter()
    for sql in queries:
        try:
            adapter.execute(sql)
            executed += 1
        except SqlError:
            continue
    elapsed = time.perf_counter() - start
    return 1e6 * elapsed / max(executed, 1)


def test_subquery_queries_cost_more(benchmark):
    def measure():
        adapter = _prepare()
        expr_queries = _queries(adapter, subqueries=False)
        subq_queries = _queries(adapter, subqueries=True)
        # Warm both paths once to exclude one-time costs.
        _time_stream(adapter, expr_queries[:10])
        _time_stream(adapter, subq_queries[:10])
        return {
            "expr_us": _time_stream(adapter, expr_queries),
            "subq_us": _time_stream(adapter, subq_queries),
        }

    result = run_once(benchmark, measure)
    ratio = result["subq_us"] / result["expr_us"]

    print("\n[Section 4.3 reproduction] per-query execution cost:")
    print(f"  expression-only: {result['expr_us']:8.1f} us/query")
    print(f"  with subqueries: {result['subq_us']:8.1f} us/query")
    print(f"  ratio:           {ratio:8.2f}x  (paper: ~7.2x)")
    benchmark.extra_info["result"] = {**result, "ratio": ratio}

    # Shape: subquery-bearing queries are substantially slower.
    assert ratio > 2.0, result
