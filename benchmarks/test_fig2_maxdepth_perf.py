"""Paper Figure 2: expression complexity (MaxDepth) vs performance.

Paper: raising MaxDepth from 1 to 15 increases per-query execution time
~9.9x and cuts test throughput by ~89% (CODDTest & Expression, i.e. no
subqueries, to isolate expression complexity).

Reproduction: equal fixed-time campaigns at MaxDepth 1..15; assert the
direction and rough magnitude of both trends.
"""

from conftest import run_once

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.report import render_maxdepth_series

DEPTHS = (1, 3, 5, 7, 9, 11, 13, 15)
SECONDS_PER_DEPTH = 3.0


def test_fig2_maxdepth_vs_time_and_throughput(benchmark):
    def sweep():
        series = {}
        for depth in DEPTHS:
            oracle = CoddTestOracle(max_depth=depth, expression_only=True)
            adapter = MiniDBAdapter(make_engine("sqlite"))
            stats = run_campaign(
                oracle, adapter, seconds=SECONDS_PER_DEPTH, seed=17
            )
            queries = stats.queries_ok + stats.queries_err
            series[depth] = {
                "us_per_query": 1e6 * stats.wall_seconds / max(queries, 1),
                "tests": stats.tests,
                "unique_plans": len(stats.unique_plans),
            }
        return series

    series = run_once(benchmark, sweep)

    print("\n[Figure 2 reproduction] MaxDepth sweep (CODDTest & Expression):")
    print(render_maxdepth_series(series))
    benchmark.extra_info["series"] = series

    shallow, deep = series[1], series[15]
    # Per-query time rises with depth (paper: ~9.9x at depth 15).
    assert deep["us_per_query"] > 1.5 * shallow["us_per_query"], series
    # Throughput falls with depth (paper: -89% at depth 15).
    assert deep["tests"] < 0.7 * shallow["tests"], series

    # The trend is broadly monotonic: the deepest third is slower than
    # the shallowest third on average.
    first = [series[d]["us_per_query"] for d in DEPTHS[:3]]
    last = [series[d]["us_per_query"] for d in DEPTHS[-3:]]
    assert sum(last) / 3 > sum(first) / 3
