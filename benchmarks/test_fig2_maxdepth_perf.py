"""Paper Figure 2: expression complexity (MaxDepth) vs performance.

Paper: raising MaxDepth from 1 to 15 increases per-query execution time
~9.9x and cuts test throughput by ~89% (CODDTest & Expression, i.e. no
subqueries, to isolate expression complexity).

Reproduction: equal fixed-*workload* campaigns (same number of tests at
every depth) so the per-query cost is comparable across machines, then
assert the paper's *direction* -- deeper expressions cost more per
query and lower test throughput.  The magnitude on this Python
simulator (~1.2-1.3x) is far below the paper's 9.9x, and CI boxes are
noisy, so the pass threshold is not hard-coded: the depth-1
configuration is measured several times first and the deep end must
fall outside that per-machine noise envelope.
"""

from statistics import mean

from conftest import run_once

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.report import render_maxdepth_series

DEPTHS = (1, 3, 5, 7, 9, 11, 13, 15)
TESTS_PER_DEPTH = 500
#: Repeated depth-1 runs that calibrate this machine's measurement noise.
BASELINE_REPS = 3


def _measure(depth: int) -> dict:
    oracle = CoddTestOracle(max_depth=depth, expression_only=True)
    adapter = MiniDBAdapter(make_engine("sqlite"))
    stats = run_campaign(oracle, adapter, n_tests=TESTS_PER_DEPTH, seed=17)
    queries = stats.queries_ok + stats.queries_err
    return {
        "us_per_query": 1e6 * stats.wall_seconds / max(queries, 1),
        "tests": stats.tests,
        "tests_per_second": stats.tests_per_second,
        "unique_plans": len(stats.unique_plans),
    }


def test_fig2_maxdepth_vs_time_and_throughput(benchmark):
    def sweep():
        _measure(1)  # warm-up: imports, code paths, allocator
        baseline = [_measure(1) for _ in range(BASELINE_REPS)]
        series = {depth: _measure(depth) for depth in DEPTHS}
        return baseline, series

    baseline, series = run_once(benchmark, sweep)

    print("\n[Figure 2 reproduction] MaxDepth sweep (CODDTest & Expression):")
    print(render_maxdepth_series(series))
    benchmark.extra_info["series"] = series
    benchmark.extra_info["baseline"] = baseline

    # Per-machine noise envelope of the depth-1 configuration: any real
    # depth effect must push the deep end beyond the worst baseline run.
    cost_ceiling = max(rep["us_per_query"] for rep in baseline)
    rate_floor = min(rep["tests_per_second"] for rep in baseline)

    deep = DEPTHS[-3:]
    deep_cost = mean(series[d]["us_per_query"] for d in deep)
    deep_rate = mean(series[d]["tests_per_second"] for d in deep)

    # Per-query time rises with depth (paper: ~9.9x at depth 15).
    assert deep_cost > cost_ceiling, (baseline, series)
    # Test throughput falls with depth (paper: -89% at depth 15).
    assert deep_rate < rate_floor, (baseline, series)

    # The trend is broadly monotonic: the deepest third is slower than
    # the shallowest third on average.
    shallow_cost = mean(series[d]["us_per_query"] for d in DEPTHS[:3])
    assert deep_cost > shallow_cost, series
