"""Paper Figure 3: expression complexity (MaxDepth) vs unique query plans.

Paper: with subqueries excluded, the number of unique query plans
*decreases* as MaxDepth grows, tracking throughput -- deeper expressions
do not exercise new planner behaviour, they just slow each test down
(Section 4.3: "increasing expression depth with language features other
than subqueries does not significantly exercise additional logic").

Reproduction: the Figure-2 sweep's unique-plan counts; additionally
verify the mechanism claim by showing plan fingerprints ignore plain
expression depth.
"""

from conftest import run_once

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign

DEPTHS = (1, 5, 10, 15)
SECONDS_PER_DEPTH = 3.0


def test_fig3_maxdepth_vs_unique_plans(benchmark):
    def sweep():
        series = {}
        for depth in DEPTHS:
            oracle = CoddTestOracle(max_depth=depth, expression_only=True)
            adapter = MiniDBAdapter(make_engine("sqlite"))
            stats = run_campaign(
                oracle, adapter, seconds=SECONDS_PER_DEPTH, seed=19
            )
            series[depth] = {
                "tests": stats.tests,
                "unique_plans": len(stats.unique_plans),
            }
        return series

    series = run_once(benchmark, sweep)

    print("\n[Figure 3 reproduction] unique plans vs MaxDepth:")
    for depth in DEPTHS:
        row = series[depth]
        print(f"  depth {depth:>2d}: {row['unique_plans']:>5d} plans "
              f"({row['tests']} tests)")
    benchmark.extra_info["series"] = series

    # Unique plans decrease with depth, tracking throughput (paper Fig 3).
    assert series[15]["unique_plans"] <= series[1]["unique_plans"], series
    assert series[15]["tests"] < series[1]["tests"], series


def test_plan_fingerprints_ignore_expression_depth():
    """Mechanism check: a deeper *expression* alone produces the same
    plan fingerprint (only subqueries/structure change plans)."""
    engine = make_engine("sqlite")
    engine.execute("CREATE TABLE t (a INT, b INT)")
    engine.execute("INSERT INTO t VALUES (1, 2)")
    shallow = engine.execute("SELECT * FROM t WHERE a > 1").plan_fingerprint
    deep = engine.execute(
        "SELECT * FROM t WHERE ((a + 1) * 2 - b) > ((1 + 2) * (3 - 1))"
    ).plan_fingerprint
    assert shallow == deep

    with_subquery = engine.execute(
        "SELECT * FROM t WHERE a > (SELECT MAX(b) FROM t)"
    ).plan_fingerprint
    assert with_subquery != shallow
