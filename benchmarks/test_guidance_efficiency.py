"""Guidance efficiency: plan-coverage-guided vs uniform-random budget.

The guided fleet's claim (ISSUE 4 / Query Plan Guidance, Ba & Rigger
ICSE 2023): steering generator knobs toward unseen plan fingerprints
buys at least as many unique plans per 1k tests as uniform-random at
equal budget, without hurting time-to-first-bug on the planted-fault
catalog.

Both metrics are *deterministic* (unique-plan counts and test counts
are pure functions of the seed), so unlike the wall-clock benchmarks
these assertions cannot wobble on shared CI hardware.
"""

import statistics

from conftest import run_once

from repro import FleetConfig, run_fleet

PLAN_SEEDS = (1, 2, 3)
PLAN_BUDGET = 1000

TTFB_SEEDS = tuple(range(1, 10))
TTFB_BUDGET = 2000


def _config(seed, guided, **kwargs):
    return FleetConfig(
        oracle="coddtest",
        dialect="sqlite",
        buggy=True,
        workers=1,
        seed=seed,
        guidance="plan-coverage" if guided else None,
        **kwargs,
    )


def test_guided_unique_plans_per_1k_tests(benchmark):
    def sweep():
        series = {}
        for seed in PLAN_SEEDS:
            uniform = run_fleet(_config(seed, False, n_tests=PLAN_BUDGET))
            guided = run_fleet(_config(seed, True, n_tests=PLAN_BUDGET))
            series[seed] = {
                "uniform_plans": len(uniform.merged.unique_plans),
                "guided_plans": len(guided.merged.unique_plans),
                "guided_arms": guided.arm_summary,
            }
        return series

    series = run_once(benchmark, sweep)

    print("\n[guidance efficiency] unique plans per "
          f"{PLAN_BUDGET} tests (3 seeds):")
    for seed, row in series.items():
        print(f"  seed {seed}: uniform {row['uniform_plans']:>4d}  "
              f"guided {row['guided_plans']:>4d}")
    benchmark.extra_info["series"] = {
        s: {k: v for k, v in row.items() if k != "guided_arms"}
        for s, row in series.items()
    }

    uniform_median = statistics.median(
        row["uniform_plans"] for row in series.values()
    )
    guided_median = statistics.median(
        row["guided_plans"] for row in series.values()
    )
    # The acceptance bar: guided >= uniform at equal budget.
    assert guided_median >= uniform_median, series
    for seed, row in series.items():
        assert row["guided_plans"] >= row["uniform_plans"] * 0.95, (seed, row)


def test_guided_time_to_first_bug_no_worse(benchmark):
    def first_bug_tests(seed, guided):
        # max_reports=1 stops the campaign at the first report; the
        # test counter then reads "tests until the first bug" -- a
        # deterministic proxy for time-to-first-bug (tests/second is
        # mode-independent: guidance only mutates generator knobs).
        result = run_fleet(
            _config(seed, guided, n_tests=TTFB_BUDGET, max_reports=1)
        )
        return result.merged.tests if result.merged.reports else TTFB_BUDGET

    def sweep():
        uniform = [first_bug_tests(s, False) for s in TTFB_SEEDS]
        guided = [first_bug_tests(s, True) for s in TTFB_SEEDS]
        return {"uniform": uniform, "guided": guided}

    series = run_once(benchmark, sweep)
    u_median = statistics.median(series["uniform"])
    g_median = statistics.median(series["guided"])
    print(f"\n[guidance efficiency] tests to first planted bug "
          f"({len(TTFB_SEEDS)} seeds):")
    print(f"  uniform {series['uniform']} median {u_median}")
    print(f"  guided  {series['guided']} median {g_median}")
    benchmark.extra_info["series"] = series

    assert g_median <= u_median, series
