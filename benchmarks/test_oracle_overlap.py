"""Paper Section 4.2, first experiment: oracle overlap on one buggy DBMS.

Paper: on SQLite 3.30.0 (24h), NoREC / TLP / EET / CODDTest found
27 / 27 / 6 / 25 unique bugs, of which 3 / 2 / 3 / 4 were found by that
oracle alone -- significant overlap, but every oracle contributes unique
bugs.

Reproduction: an "old buggy DBMS" is simulated by enabling the entire
45-fault catalog on one engine; all four oracles run equal-size
campaigns against it.
"""

from conftest import run_once

from repro import (
    CoddTestOracle,
    EETOracle,
    MiniDBAdapter,
    NoRECOracle,
    TLPOracle,
    run_campaign,
)
from repro.dialects import ALL_FAULTS
from repro.dialects.base import get_dialect
from repro.minidb.engine import Engine

N_TESTS = 1200


def _buggy_engine() -> Engine:
    # The "old SQLite" stand-in: relaxed typing plus every catalog fault
    # whose features the dialect can express.
    return Engine(
        profile=get_dialect("sqlite").engine_profile, faults=list(ALL_FAULTS)
    )


def test_oracle_overlap_on_buggy_engine(benchmark):
    def measure():
        found = {}
        for oracle in (NoRECOracle(), TLPOracle(), EETOracle(), CoddTestOracle()):
            adapter = MiniDBAdapter(_buggy_engine())
            stats = run_campaign(
                oracle, adapter, n_tests=N_TESTS, seed=29, max_reports=6000
            )
            found[oracle.name] = stats.detected_fault_ids
        return found

    found = run_once(benchmark, measure)

    print("\n[Section 4.2 overlap reproduction] unique bugs per oracle:")
    for name, ids in found.items():
        alone = ids - set().union(
            *(v for k, v in found.items() if k != name)
        )
        print(f"  {name:10s} {len(ids):>3d} unique bugs, {len(alone)} found only by it")
    benchmark.extra_info["unique_bugs"] = {k: len(v) for k, v in found.items()}

    # Shape: every oracle finds bugs; CODDTest is competitive with the
    # best baselines and finds bugs nobody else does.
    for name, ids in found.items():
        assert ids, f"{name} found nothing"
    codd = found["coddtest"]
    others = found["norec"] | found["tlp"] | found["eet"]
    assert len(codd - others) >= 3, "CODDTest contributed no unique bugs"
    assert len(codd) >= max(len(found["norec"]), len(found["tlp"])) * 0.7
