"""Paper Table 1: CODDTest finds 45 unique bugs across five DBMSs.

Reproduction: run a CODDTest campaign against each dialect profile with
its full injected-fault catalog and count the distinct faults implicated
in bug reports, by bug type and status.

Shape assertions (paper values in EXPERIMENTS.md):
* a large majority of the 45 catalog bugs are found within the budget,
* every profile yields bugs,
* all four bug kinds (logic / internal error / crash / hang) appear.
"""

from conftest import run_once

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.dialects import FAULTS_BY_PROFILE
from repro.dialects.catalog import FAULTS_BY_ID
from repro.minidb.faults import BugType
from repro.report import render_table1

N_TESTS = 1200
PROFILES = ("sqlite", "mysql", "cockroachdb", "duckdb", "tidb")


def test_table1_bugs_found(benchmark):
    def campaign_all_profiles():
        found: dict[str, set[str]] = {}
        for profile in PROFILES:
            adapter = MiniDBAdapter(make_engine(profile, with_catalog_faults=True))
            stats = run_campaign(
                CoddTestOracle(),
                adapter,
                n_tests=N_TESTS,
                seed=11,
                max_reports=5000,
            )
            catalog_ids = {f.fault_id for f in FAULTS_BY_PROFILE[profile]}
            found[profile] = stats.detected_fault_ids & catalog_ids
        return found

    found = run_once(benchmark, campaign_all_profiles)

    table = render_table1(found)
    print("\n[Table 1 reproduction] bugs found by CODDTest:")
    print(table)

    total_found = sum(len(v) for v in found.values())
    benchmark.extra_info["total_found"] = total_found
    benchmark.extra_info["per_profile"] = {k: len(v) for k, v in found.items()}

    # Shape: the campaign finds the vast majority of the 45 seeded bugs.
    assert total_found >= 38, f"only {total_found}/45 bugs found"
    for profile in PROFILES:
        assert found[profile], f"no bugs found in {profile}"

    kinds = {
        FAULTS_BY_ID[fid].bug_type
        for ids in found.values()
        for fid in ids
    }
    assert BugType.LOGIC in kinds
    assert BugType.INTERNAL_ERROR in kinds
    assert BugType.CRASH in kinds
    assert BugType.HANG in kinds

    # Paper: 24 of 45 are logic bugs; our logic share should dominate too.
    logic_found = sum(
        1
        for ids in found.values()
        for fid in ids
        if FAULTS_BY_ID[fid].bug_type is BugType.LOGIC
    )
    assert logic_found >= 18, f"only {logic_found}/24 logic bugs found"
