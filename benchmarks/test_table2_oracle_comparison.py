"""Paper Table 2: the number of logic bugs detectable by each oracle.

Paper (manual analysis of the 24 logic bugs):
    NoREC 11, TLP 12, DQE 4, only-CODDTest 11.

Reproduction: for every logic fault, enable *only that fault* and run a
bounded campaign per oracle; detected = at least one bug report.  This
replaces the paper's manual analysis with a measurement over the same
question (see DESIGN.md).
"""

from conftest import run_once

from repro.dialects import LOGIC_FAULTS
from repro.report import render_detection_table
from repro.runner import detection_matrix

N_TESTS = 500


def test_table2_detection_matrix(benchmark, oracle_factories):
    def measure():
        return detection_matrix(
            oracle_factories, LOGIC_FAULTS, n_tests=N_TESTS, seed=21
        )

    matrix = run_once(benchmark, measure)

    print("\n[Table 2 reproduction] detectable logic bugs by oracle:")
    print(render_detection_table(matrix))

    codd = matrix["coddtest"]
    others = matrix["norec"] | matrix["tlp"] | matrix["dqe"]
    only_codd = codd - others

    benchmark.extra_info["counts"] = {
        "coddtest": len(codd),
        "norec": len(matrix["norec"]),
        "tlp": len(matrix["tlp"]),
        "dqe": len(matrix["dqe"]),
        "only_coddtest": len(only_codd),
    }

    # Shape: CODDTest detects (nearly) all its bugs; the baselines sit in
    # the paper's bands (paper: 11 / 12 / 4 / 11).
    assert len(codd) >= 22, f"CODDTest detected only {len(codd)}/24"
    assert 8 <= len(matrix["norec"]) <= 14, matrix["norec"]
    assert 9 <= len(matrix["tlp"]) <= 15, matrix["tlp"]
    assert 2 <= len(matrix["dqe"]) <= 7, matrix["dqe"]
    assert len(only_codd) >= 8, sorted(only_codd)

    # Qualitative claims of Section 4.2: the bugs only CODDTest finds
    # live in subqueries, JOIN ON, ANY, AVG, and INSERT.
    assert "sqlite_agg_subquery_indexed" in only_codd  # Listing 1
    assert "sqlite_join_on_exists" in only_codd  # Listing 8
    assert "tidb_insert_select_version" in only_codd  # Listing 6
