"""Paper Table 3: efficiency comparison of the oracles.

Paper findings (SQLite, 24h x 10 threads):
* throughput: NoREC > TLP > CODDTest > DQE (CODDTest ~4.2x slower than
  NoREC, ~2.0x slower than TLP, ~1.1x faster than DQE);
* QPT: NoREC 2.05, TLP 2.23, DQE 17.0, CODDTest 3.33 (>=3: A, O, F);
* unique query plans: CODDTest orders of magnitude above the others
  (14.9x NoREC ... 5303x DQE), driven by subqueries;
* branch coverage: NoREC/TLP/CODDTest nearly equal, DQE lower.

Reproduction: equal fixed-time campaigns per oracle on the fault-free
SQLite-like engine, plus the CODDTest & Expression / & Subquery variants.
"""

from conftest import run_once

from repro import (
    CoddTestOracle,
    DQEOracle,
    MiniDBAdapter,
    NoRECOracle,
    TLPOracle,
    make_engine,
    run_campaign,
)
from repro.report import render_efficiency_table

N_TESTS = 700


def _campaign(oracle):
    adapter = MiniDBAdapter(make_engine("sqlite"))
    stats = run_campaign(oracle, adapter, n_tests=N_TESTS, seed=33)
    return {
        "oracle": oracle.name,
        "tests": stats.tests,
        "queries_ok": stats.queries_ok,
        "queries_err": stats.queries_err,
        "qpt": stats.qpt,
        "unique_plans": len(stats.unique_plans),
        "coverage": stats.branch_coverage,
        "tests_per_second": stats.tests_per_second,
    }


def test_table3_efficiency(benchmark):
    def measure():
        oracles = [
            NoRECOracle(),
            TLPOracle(),
            DQEOracle(),
            CoddTestOracle(),
            CoddTestOracle(expression_only=True),
            CoddTestOracle(subquery_only=True),
        ]
        return {o.name: _campaign(o) for o in oracles}

    rows = run_once(benchmark, measure)

    print("\n[Table 3 reproduction] oracle efficiency:")
    print(render_efficiency_table(rows.values()))
    benchmark.extra_info["rows"] = {
        k: {kk: vv for kk, vv in v.items() if kk != "oracle"}
        for k, v in rows.items()
    }

    norec, tlp, dqe = rows["norec"], rows["tlp"], rows["dqe"]
    codd = rows["coddtest"]
    codd_expr = rows["coddtest-expr"]
    codd_subq = rows["coddtest-subq"]

    # Throughput ordering: NoREC fastest; CODDTest slower than NoREC and
    # TLP but comparable to DQE (paper: 4.2x / 2.0x slower, 1.13x faster).
    assert norec["tests_per_second"] > codd["tests_per_second"]
    assert tlp["tests_per_second"] > codd["tests_per_second"]
    assert codd["tests_per_second"] > dqe["tests_per_second"] * 0.3

    # QPT: NoREC ~2, TLP a little above 2, CODDTest >= 3 (A, O, F, plus
    # relation-mode DDL), DQE largest (paper: 2.05 / 2.23 / 3.33 / 17).
    assert 1.9 <= norec["qpt"] <= 2.1
    assert codd["qpt"] >= 3.0
    assert tlp["qpt"] < codd["qpt"]
    assert dqe["qpt"] > codd["qpt"]
    assert codd_expr["qpt"] >= 2.9 and codd_subq["qpt"] >= 2.9

    # Unique plans: CODDTest far ahead; DQE last by a huge margin; the
    # subquery variant beats the expression variant (paper: 2.7M vs 7.4k).
    assert codd["unique_plans"] > 2.5 * norec["unique_plans"]
    assert codd["unique_plans"] > 2 * tlp["unique_plans"]
    assert dqe["unique_plans"] < 0.1 * norec["unique_plans"]
    assert codd_subq["unique_plans"] > codd_expr["unique_plans"]

    # Branch coverage: DQE is the lowest (it cannot exercise joins,
    # views, or subqueries -- paper: 46.7% vs ~63%).  NoREC and TLP sit
    # close together; CODDTest's margin over them is amplified here
    # because MiniDB's branch universe is small and subquery-heavy
    # (deviation documented in EXPERIMENTS.md).
    assert dqe["coverage"] < norec["coverage"]
    assert dqe["coverage"] < tlp["coverage"]
    assert dqe["coverage"] < codd["coverage"]
    assert abs(norec["coverage"] - tlp["coverage"]) < 0.15
    assert codd["coverage"] >= norec["coverage"] - 0.05
