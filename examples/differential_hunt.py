"""Differential hunt: MiniDB (with its planted fault catalog) vs. the
real SQLite as the trusted reference.

Every generated state and query is executed on both engines through a
``DifferentialAdapter``; a divergence in the canonical result multisets
is a bug, attributed to the injected fault that fired on the MiniDB
side.  Run from the repo root::

    PYTHONPATH=src python examples/differential_hunt.py
"""

from __future__ import annotations

from repro import (
    DifferentialOracle,
    MiniDBAdapter,
    Sqlite3Adapter,
    make_engine,
    run_differential_campaign,
)


def main() -> None:
    stats = run_differential_campaign(
        (
            lambda: MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True)),
            Sqlite3Adapter,
        ),
        n_tests=1000,
        seed=7,
    )
    print(
        f"differential: {stats.tests} tests, {stats.skipped} skipped, "
        f"{len(stats.unique_plans)} unique primary plans, "
        f"{len(stats.reports)} divergences"
    )
    if stats.detected_fault_ids:
        print("injected bugs implicated:")
        for fault_id in sorted(stats.detected_fault_ids):
            print(f"  - {fault_id}")
    if stats.reports:
        report = stats.reports[0]
        print(f"\nfirst divergence ({' vs '.join(report.backend_pair)}):")
        print(f"  {report.description}")
        for sql in report.statements:
            print(f"  {sql}")


if __name__ == "__main__":
    main()
