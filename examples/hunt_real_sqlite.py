#!/usr/bin/env python3
"""Run CODDTest against the *real* SQLite (Python's stdlib ``sqlite3``).

This is the paper's actual use case: black-box testing of a production
DBMS through its SQL interface.  A modern, released SQLite is expected
to produce no discrepancies -- the paper found its bugs in development
versions -- so this example demonstrates that the harness drives a real
DBMS, reports throughput, and shows the query streams involved.

Run:  python examples/hunt_real_sqlite.py [n_tests]
"""

import sqlite3
import sys

from repro import CoddTestOracle, Sqlite3Adapter, run_campaign


def main() -> None:
    n_tests = int(sys.argv[1]) if len(sys.argv) > 1 else 300

    adapter = Sqlite3Adapter()
    print(f"Testing SQLite {sqlite3.sqlite_version} via the stdlib driver.\n")

    # Relation-mode folding uses VALUES-with-column-alias syntax that
    # SQLite does not accept in FROM; those tests would only be skipped.
    oracle = CoddTestOracle(relation_mode_prob=0.0)
    stats = run_campaign(oracle, adapter, n_tests=n_tests, seed=1)

    print(f"tests executed:        {stats.tests}")
    print(f"successful queries:    {stats.queries_ok}")
    print(f"unsuccessful queries:  {stats.queries_err}")
    print(f"queries per test:      {stats.qpt:.2f}")
    print(f"unique query plans:    {len(stats.unique_plans)} "
          f"(from EXPLAIN QUERY PLAN)")
    print(f"throughput:            {stats.tests_per_second:.1f} tests/s")

    logic = [r for r in stats.reports if r.kind == "logic"]
    if logic:
        print(f"\n{len(logic)} discrepancies reported! Reduced cases below;")
        print("if reproducible on the latest trunk, report upstream.")
        for report in logic[:3]:
            print(f"\n- {report.description}")
            for sql in report.statements:
                print(f"    {sql}")
    else:
        print("\nNo logic discrepancies -- expected on a stable release")
        print("(the paper's bugs were found in development versions).")


if __name__ == "__main__":
    main()
