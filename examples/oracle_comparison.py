#!/usr/bin/env python3
"""Compare what each test oracle can and cannot detect (paper Table 2).

Enables four representative injected bugs one at a time and runs every
oracle against each, printing the detection matrix.  The chosen bugs
illustrate the paper's Section 4.2 taxonomy:

* an index-path retrieval bug    -> everyone can find it,
* a value-list IN bug            -> misses NoREC and TLP (Listing 9/10),
* a JOIN bug                     -> out of DQE's single-table scope,
* an aggregate-subquery bug      -> only CODDTest (Listing 1).

Run:  python examples/oracle_comparison.py
"""

from repro import (
    CoddTestOracle,
    DQEOracle,
    NoRECOracle,
    TLPOracle,
)
from repro.dialects.catalog import FAULTS_BY_ID
from repro.runner import detects_fault

SHOWCASE = [
    ("sqlite_index_between_where", "BETWEEN over an index scan"),
    ("tidb_in_list_where_select", "IN value list in SELECT WHERE (Listing 10)"),
    ("sqlite_view_join_where", "filter above a view join"),
    ("sqlite_agg_subquery_indexed", "aggregate subquery + index (Listing 1)"),
]

ORACLES = {
    "coddtest": lambda: CoddTestOracle(),
    "norec": lambda: NoRECOracle(),
    "tlp": lambda: TLPOracle(),
    "dqe": lambda: DQEOracle(),
}


def main() -> None:
    print(f"{'bug':45s}" + "".join(f"{name:>10s}" for name in ORACLES))
    print("-" * (45 + 10 * len(ORACLES)))
    for fault_id, label in SHOWCASE:
        fault = FAULTS_BY_ID[fault_id]
        marks = []
        for factory in ORACLES.values():
            hit = detects_fault(factory, fault, n_tests=400, seed=21)
            marks.append("   found  " if hit else "    --    ")
        print(f"{label:45s}" + "".join(marks))
    print(
        "\nPaper Table 2 (all 24 logic bugs): NoREC 11, TLP 12, DQE 4, "
        "only-CODDTest 11."
    )
    print("Run `pytest benchmarks/test_table2_oracle_comparison.py "
          "--benchmark-only -s` for the full measured matrix.")


if __name__ == "__main__":
    main()
