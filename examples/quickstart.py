#!/usr/bin/env python3
"""Quickstart: find an injected logic bug with CODDTest in one minute.

Creates a buggy SQLite-like MiniDB engine (the bug is modelled on the
real SQLite bug of the paper's Listing 1), runs a CODDTest campaign, and
prints the first bug-inducing test case: the auxiliary query A, the
original query O, and the folded query F whose results disagree.

Run:  python examples/quickstart.py
"""

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.dialects.catalog import FAULTS_BY_ID


def main() -> None:
    # An engine with one seeded bug: an aggregate subquery with GROUP BY
    # under an indexed outer query is mis-evaluated (paper Listing 1).
    fault = FAULTS_BY_ID["sqlite_agg_subquery_indexed"]
    engine = make_engine("sqlite", faults=[fault])
    adapter = MiniDBAdapter(engine)

    print(f"Hunting for: {fault.description}\n")

    oracle = CoddTestOracle()
    stats = run_campaign(oracle, adapter, n_tests=2000, seed=0, max_reports=1)

    print(f"Ran {stats.tests} tests "
          f"({stats.queries_ok} queries, QPT {stats.qpt:.2f}).")
    if not stats.reports:
        print("No discrepancy found in this budget; try more tests.")
        return

    report = stats.reports[0]
    print(f"\nBug found!  {report.description}")
    print(f"Ground-truth fault(s): {sorted(report.fired_faults)}\n")
    print("Bug-inducing test case (A = auxiliary, O = original, F = folded):")
    for sql in report.statements:
        print(f"  {sql}")


if __name__ == "__main__":
    main()
