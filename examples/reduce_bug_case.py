#!/usr/bin/env python3
"""Automatically reduce a bug-inducing test case (paper Section 4.1:
"we manually reduced the bug-inducing test cases [39]" -- here the
delta-debugging citation [39] is implemented and applied automatically).

Hunts for a bug with CODDTest, then shrinks the reproduction with ddmin
over the statement list while preserving the original/folded-query
discrepancy.

Run:  python examples/reduce_bug_case.py
"""

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.dialects.catalog import FAULTS_BY_ID
from repro.errors import ReproError, SqlError
from repro.oracles_base import rows_equal
from repro.runner import reduce_statements

FAULT = FAULTS_BY_ID["sqlite_view_join_where"]


def find_bug_case() -> list[str]:
    """Hunt until CODDTest reports a bug; the report's statement list is
    already a self-contained program (state-building DDL/DML followed by
    the oracle's auxiliary / original / folded queries, in order)."""
    for seed in range(30):
        adapter = MiniDBAdapter(make_engine("sqlite", faults=[FAULT]))
        stats = run_campaign(
            CoddTestOracle(), adapter, n_tests=400, seed=seed, max_reports=1
        )
        if stats.reports:
            return stats.reports[0].statements
    raise SystemExit("no bug found; try more seeds")


def still_fails(statements: list[str]) -> bool:
    """Replay on a fresh engine; the failure is preserved when the last
    two SELECT-producing statements (original and folded query) still
    disagree."""
    engine = make_engine("sqlite", faults=[FAULT])
    results = []
    for sql in statements:
        try:
            result = engine.execute(sql)
        except (SqlError, ReproError):
            return False
        if sql.lstrip().upper().startswith(("SELECT", "WITH")):
            results.append(result.rows)
    if len(results) < 2:
        return False
    return not rows_equal(results[-2], results[-1])


def main() -> None:
    statements = find_bug_case()
    print(f"unreduced bug case: {len(statements)} statements")
    if not still_fails(statements):
        raise SystemExit("reproduction did not replay; rerun")

    reduced = reduce_statements(statements, still_fails)
    print(f"reduced bug case:   {len(reduced)} statements\n")
    for sql in reduced:
        print(f"  {sql}")
    print(f"\ninjected root cause: {FAULT.description}")


if __name__ == "__main__":
    main()
