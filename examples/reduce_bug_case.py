#!/usr/bin/env python3
"""Automatically reduce a bug-inducing test case (paper Section 4.1:
"we manually reduced the bug-inducing test cases [39]" -- here the
delta-debugging citation [39] is implemented and applied automatically).

Hunts for a bug with CODDTest, then shrinks the reproduction with ddmin
over the statement list while preserving the original/folded-query
discrepancy.

Run:  python examples/reduce_bug_case.py
"""

from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
from repro.dialects.catalog import FAULTS_BY_ID
from repro.errors import ReproError, SqlError
from repro.oracles_base import rows_equal
from repro.runner import reduce_statements

FAULT = FAULTS_BY_ID["sqlite_view_join_where"]


def find_bug_case() -> list[str]:
    """Hunt until CODDTest reports a bug; return the reproduction:
    the state-building statements followed by the oracle's own
    statements (auxiliary / original / folded, in order)."""
    for seed in range(30):
        engine = make_engine("sqlite", faults=[FAULT])
        adapter = MiniDBAdapter(engine)
        state_log: list[str] = []
        original_execute = adapter.execute
        original_reset = adapter.reset

        def recording_execute(sql):
            state_log.append(sql)
            return original_execute(sql)

        def recording_reset():
            state_log.clear()  # a new state starts from an empty database
            return original_reset()

        adapter.execute = recording_execute  # type: ignore[method-assign]
        adapter.reset = recording_reset  # type: ignore[method-assign]
        stats = run_campaign(
            CoddTestOracle(), adapter, n_tests=400, seed=seed, max_reports=1
        )
        if stats.reports:
            report = stats.reports[0]
            # Setup = the current state's DDL/DML, excluding statements
            # the oracle issued itself during the failing test.
            oracle_tail = report.statements
            tail_set = set(oracle_tail)
            setup = [
                s
                for s in state_log
                if s not in tail_set
                and s.lstrip().upper().startswith(("CREATE", "INSERT"))
            ]
            return setup + oracle_tail
    raise SystemExit("no bug found; try more seeds")


def still_fails(statements: list[str]) -> bool:
    """Replay on a fresh engine; the failure is preserved when the last
    two SELECT-producing statements (original and folded query) still
    disagree."""
    engine = make_engine("sqlite", faults=[FAULT])
    results = []
    for sql in statements:
        try:
            result = engine.execute(sql)
        except (SqlError, ReproError):
            return False
        if sql.lstrip().upper().startswith(("SELECT", "WITH")):
            results.append(result.rows)
    if len(results) < 2:
        return False
    return not rows_equal(results[-2], results[-1])


def main() -> None:
    statements = find_bug_case()
    print(f"unreduced bug case: {len(statements)} statements")
    if not still_fails(statements):
        raise SystemExit("reproduction did not replay; rerun")

    reduced = reduce_statements(statements, still_fails)
    print(f"reduced bug case:   {len(reduced)} statements\n")
    for sql in reduced:
        print(f"  {sql}")
    print(f"\ninjected root cause: {FAULT.description}")


if __name__ == "__main__":
    main()
