"""Corpus lifecycle end to end: fleet hunt -> JSONL corpus -> triage.

Runs a small 4-worker buggy fleet into a corpus file, then does what
``coddtest corpus report`` does in code: load, cluster, replay-verify,
and render the Table-1-style summary.  Run from the repo root::

    PYTHONPATH=src python examples/triage_report.py

Everything below is deterministic: re-running prints the same corpus
and the same table (only the fleet's throughput varies).
"""

from __future__ import annotations

import tempfile
from pathlib import Path

from repro import (
    BugCorpus,
    FleetConfig,
    cluster_corpus,
    load_corpus,
    make_replay_reducer,
    render_triage,
    replay_clusters,
    run_fleet,
)


def main() -> None:
    with tempfile.TemporaryDirectory() as tmp:
        corpus_path = str(Path(tmp) / "bugs.jsonl")

        # 1. Hunt: a sharded campaign feeding a persistent corpus.
        config = FleetConfig(workers=4, n_tests=400, buggy=True, seed=3)
        corpus = BugCorpus.open(
            corpus_path, reduce_fn=make_replay_reducer(config)
        )
        result = run_fleet(config, corpus=corpus)
        corpus.save()
        print(
            f"fleet: {result.merged.tests} tests -> {len(corpus)} distinct "
            f"bugs in {len(result.clusters or [])} clusters\n"
        )

        # 2. Triage: cluster, replay-verify, render (what
        #    ``coddtest corpus report bugs.jsonl`` does).
        clusters = cluster_corpus(load_corpus(corpus_path))
        verdicts = replay_clusters(clusters)
        print(render_triage(clusters, verdicts, fmt="text"))


if __name__ == "__main__":
    main()
