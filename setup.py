"""Legacy setup shim (offline environments without the `wheel` package
cannot perform PEP 517 editable installs; `pip install -e . --no-build-isolation
--no-use-pep517` uses this file instead)."""

from setuptools import find_packages, setup

setup(
    name="repro",
    version="1.0.0",
    package_dir={"": "src"},
    packages=find_packages(where="src"),
    python_requires=">=3.10",
    entry_points={"console_scripts": ["coddtest = repro.cli:main"]},
)
