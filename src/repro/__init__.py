"""CODDTest reproduction: Constant Optimization Driven Database System
Testing (Zhang & Rigger, SIGMOD 2025).

Public API tour
---------------

>>> from repro import CoddTestOracle, MiniDBAdapter, make_engine, run_campaign
>>> adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True))
>>> stats = run_campaign(CoddTestOracle(), adapter, n_tests=200, seed=1)

See README.md for the corpus lifecycle and docs/architecture.md for
the package-layer map and the seed-to-triage-table data flow.
"""

from repro.adapters import MiniDBAdapter, Sqlite3Adapter
from repro.backends import (
    BackendInfo,
    CapabilityVector,
    available_backend_names,
    backend_names,
    build_backend,
    pair_policy,
    probe_backend,
    register_backend,
)
from repro.baselines import DQEOracle, EETOracle, NoRECOracle, TLPOracle
from repro.core import CoddTestOracle
from repro.dialects import ALL_FAULTS, LOGIC_FAULTS, get_dialect, make_engine
from repro.differential import (
    CompatPolicy,
    DifferentialAdapter,
    DifferentialOracle,
    build_pair_adapter,
    run_differential_campaign,
)
from repro.fleet import (
    BugCorpus,
    FleetConfig,
    FleetResult,
    fingerprint_report,
    make_replay_reducer,
    run_fleet,
)
from repro.guidance import Arm, CoverageMap, GuidedPolicy
from repro.minidb import Engine, EngineProfile
from repro.oracles_base import Oracle, TestOutcome, TestReport
from repro.perf import CacheStats, EvalCache
from repro.runner import (
    Campaign,
    CampaignStats,
    detection_matrix,
    detects_fault,
    run_campaign,
)
from repro.triage import (
    Cluster,
    cluster_corpus,
    load_corpus,
    merge_corpora,
    render_triage,
    replay_clusters,
)

__version__ = "1.0.0"

__all__ = [
    "CoddTestOracle",
    "NoRECOracle",
    "TLPOracle",
    "DQEOracle",
    "EETOracle",
    "DifferentialOracle",
    "DifferentialAdapter",
    "CompatPolicy",
    "build_pair_adapter",
    "run_differential_campaign",
    "BackendInfo",
    "CapabilityVector",
    "available_backend_names",
    "backend_names",
    "build_backend",
    "pair_policy",
    "probe_backend",
    "register_backend",
    "Oracle",
    "TestOutcome",
    "TestReport",
    "Engine",
    "EngineProfile",
    "MiniDBAdapter",
    "Sqlite3Adapter",
    "make_engine",
    "get_dialect",
    "ALL_FAULTS",
    "LOGIC_FAULTS",
    "Campaign",
    "CampaignStats",
    "run_campaign",
    "detects_fault",
    "detection_matrix",
    "BugCorpus",
    "FleetConfig",
    "FleetResult",
    "fingerprint_report",
    "make_replay_reducer",
    "run_fleet",
    "Arm",
    "CoverageMap",
    "GuidedPolicy",
    "EvalCache",
    "CacheStats",
    "Cluster",
    "cluster_corpus",
    "load_corpus",
    "merge_corpora",
    "render_triage",
    "replay_clusters",
    "__version__",
]
