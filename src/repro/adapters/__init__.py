"""Engine adapters: the black-box SQL interface the oracles test through.

The paper's oracles interact with DBMSs only via SQL (Section 1: "a
black-box approach ... on the SQL level").  :class:`EngineAdapter`
captures that contract; implementations exist for MiniDB (the simulated
DBMS family) and for the real SQLite via the stdlib ``sqlite3`` module.
"""

from repro.adapters.base import EngineAdapter, SchemaInfo, TableInfo, ColumnInfo
from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.adapters.sql_text import is_row_returning, statement_kind
from repro.adapters.sqlite3_adapter import Sqlite3Adapter

__all__ = [
    "EngineAdapter",
    "SchemaInfo",
    "TableInfo",
    "ColumnInfo",
    "MiniDBAdapter",
    "Sqlite3Adapter",
    "is_row_returning",
    "statement_kind",
]
