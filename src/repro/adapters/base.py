"""Adapter protocol and schema introspection types."""

from __future__ import annotations

import abc
from dataclasses import dataclass, field

from repro.minidb.values import SqlType, SqlValue


@dataclass(frozen=True)
class ColumnInfo:
    """One column as seen by the generators."""

    name: str
    sql_type: SqlType | None = None  # None = dynamically typed


@dataclass(frozen=True)
class TableInfo:
    """One relation (base table or view) available to generated queries."""

    name: str
    columns: tuple[ColumnInfo, ...]
    kind: str = "table"  # "table" | "view"


@dataclass
class SchemaInfo:
    """Snapshot of the schema, consumed by the random generators."""

    tables: list[TableInfo] = field(default_factory=list)
    indexes: list[str] = field(default_factory=list)

    @property
    def base_tables(self) -> list[TableInfo]:
        return [t for t in self.tables if t.kind == "table"]

    def table(self, name: str) -> TableInfo:
        for t in self.tables:
            if t.name.lower() == name.lower():
                return t
        raise KeyError(name)


@dataclass
class ExecResult:
    """Result of executing one statement through an adapter."""

    columns: list[str]
    rows: list[tuple[SqlValue, ...]]
    plan_fingerprint: str | None = None
    rows_affected: int = 0


class EngineAdapter(abc.ABC):
    """Black-box SQL interface to a DBMS under test.

    Implementations raise :class:`repro.errors.SqlError` subclasses for
    expected errors (counted as "unsuccessful queries", paper Table 3)
    and :class:`repro.errors.InternalError` / ``EngineCrash`` /
    ``EngineHang`` for the bug categories of Table 1.
    """

    name: str = "adapter"
    #: Dialect knobs the oracles consult (paper Section 3.3).
    supports_any_all: bool = True
    strict_typing: bool = False
    #: Generators must restrict themselves to constructs whose semantics
    #: coincide across engines (set by differential pair adapters, which
    #: compare results between two backends).
    portable_generation: bool = False
    #: Attached :class:`repro.obs.PhaseProfiler` (None = unprofiled).
    #: Wall-clock only: profiled and unprofiled executions are
    #: observationally identical.
    _profiler = None

    @abc.abstractmethod
    def execute(self, sql: str) -> ExecResult:
        """Execute one SQL statement."""

    @abc.abstractmethod
    def schema(self) -> SchemaInfo:
        """Introspect the current schema."""

    @abc.abstractmethod
    def reset(self) -> None:
        """Drop all user objects, returning to an empty database."""

    def fired_fault_ids(self) -> frozenset[str]:
        """Ground-truth fault attribution for the last statement
        (simulated engines only; real DBMSs return an empty set)."""
        return frozenset()

    def attach_eval_cache(self, cache, namespace: str = "") -> None:
        """Attach a worker-local :class:`repro.perf.EvalCache`.

        Optional: adapters that cannot cache safely simply ignore the
        call.  *namespace* disambiguates statement-result keys when one
        cache serves several adapters (e.g. a differential pair whose
        two backends may share a display name but not behaviour).
        """

    def set_vector_eval(self, enabled: bool) -> None:
        """Toggle column-at-a-time expression evaluation.

        Optional and purely a throughput lever: vector-on and vector-off
        executions are bit-identical (the perf-smoke gate enforces it).
        Adapters without a vector path ignore the call.
        """

    def attach_profiler(self, profiler) -> None:
        """Attach a :class:`repro.obs.PhaseProfiler` that scopes the
        ``parse`` and ``execute`` hot-path phases.  Purely observational
        -- results, errors, and side effects are identical with and
        without it; only the obs layer sees the timings."""
        self._profiler = profiler

    def prime_parse(self, sql: str, ast) -> None:
        """Offer the parser-normal AST of *sql* to the parse memo.

        Called by the oracles right after rendering *ast* to *sql*, so
        a cached adapter can skip re-parsing text it is about to
        receive.  No-op without an attached cache or for adapters that
        do not parse."""

    def clone(self) -> "EngineAdapter":
        """Copy of the adapter with identical state (used by DQE-style
        oracles that mutate data).  Optional."""
        raise NotImplementedError(f"{self.name} does not support cloning")
