"""Adapter for DuckDB via the optional ``duckdb`` package.

A second *real* DBMS behind the adapter protocol: with it installed,
the registry's ``duckdb`` backend becomes available and any registered
pair -- ``(minidb, duckdb)``, ``(duckdb, sqlite3)`` -- forms a
differential oracle whose compat policy is derived from probed
capability vectors, with no hand-written dialect rules.

Import-gated: this module imports ``duckdb`` unconditionally and is
itself imported only from the registry factory, *after*
:func:`repro.backends.builtin` has probed availability with
``importlib.util.find_spec`` -- environments without the package never
load it.
"""

from __future__ import annotations

import re

import duckdb

from repro.adapters.base import (
    ColumnInfo,
    EngineAdapter,
    ExecResult,
    SchemaInfo,
    TableInfo,
)
from repro.adapters.sql_text import is_row_returning
from repro.errors import SqlError
from repro.minidb.catalog import resolve_type_name


class DuckDBAdapter(EngineAdapter):
    """In-memory DuckDB database behind the adapter protocol."""

    name = "duckdb"
    # Class-level defaults only; the differential layer trusts the
    # probed capability vector, not these flags.
    supports_any_all = True
    strict_typing = True

    def __init__(self) -> None:
        self._conn = duckdb.connect(":memory:")

    def execute(self, sql: str) -> ExecResult:
        prof = self._profiler
        if prof is None:
            return self._execute(sql)
        # DuckDB parses internally, so the whole round trip counts as
        # the execute phase (same accounting as the sqlite3 adapter).
        t0 = prof.begin()
        try:
            return self._execute(sql)
        finally:
            prof.end("execute", t0)

    def _execute(self, sql: str) -> ExecResult:
        row_returning = is_row_returning(sql)
        fingerprint = None
        try:
            if row_returning:
                fingerprint = self._explain(sql)
            cursor = self._conn.execute(sql)
            if row_returning:
                rows = [
                    tuple(self._convert(v) for v in row)
                    for row in cursor.fetchall()
                ]
                columns = (
                    [d[0] for d in cursor.description]
                    if cursor.description
                    else []
                )
            else:
                # DML surfaces its affected-row count as a result row;
                # fetching it here would masquerade as query output.
                rows, columns = [], []
            return ExecResult(
                columns=columns,
                rows=rows,
                plan_fingerprint=fingerprint,
                rows_affected=max(getattr(cursor, "rowcount", -1), 0),
            )
        except duckdb.Error as exc:  # expected-error surface of a real DBMS
            raise SqlError(str(exc)) from exc

    def _explain(self, sql: str) -> "str | None":
        try:
            plan_rows = self._conn.execute("EXPLAIN " + sql).fetchall()
        except duckdb.Error:
            return None
        details = [str(r[-1]) for r in plan_rows]
        # Strip literals so the fingerprint captures plan shape only.
        cleaned = [re.sub(r"[0-9]+", "#", d) for d in details]
        return ";".join(cleaned)

    @staticmethod
    def _convert(value):
        if isinstance(value, bool):
            # MiniDB and SQLite render booleans as 0/1.
            return int(value)
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        return value

    def schema(self) -> SchemaInfo:
        info = SchemaInfo()
        objects = self._conn.execute(
            "SELECT table_name, table_type FROM information_schema.tables "
            "WHERE table_schema = 'main' ORDER BY table_name"
        ).fetchall()
        for name, table_type in objects:
            cols = self._conn.execute(
                "SELECT column_name, data_type FROM "
                "information_schema.columns WHERE table_schema = 'main' "
                "AND table_name = ? ORDER BY ordinal_position",
                [name],
            ).fetchall()
            columns = tuple(
                ColumnInfo(c[0], resolve_type_name(c[1] or None))
                for c in cols
            )
            kind = "view" if str(table_type).upper() == "VIEW" else "table"
            info.tables.append(TableInfo(name, columns, kind=kind))
        indexes = self._conn.execute(
            "SELECT index_name FROM duckdb_indexes() ORDER BY index_name"
        ).fetchall()
        info.indexes = [r[0] for r in indexes]
        return info

    def reset(self) -> None:
        self._conn.close()
        self._conn = duckdb.connect(":memory:")
