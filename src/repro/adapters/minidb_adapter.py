"""Adapter exposing a MiniDB engine through the black-box protocol."""

from __future__ import annotations

from repro.adapters.base import (
    ColumnInfo,
    EngineAdapter,
    ExecResult,
    SchemaInfo,
    TableInfo,
)
from repro.minidb.engine import Engine
from repro.minidb.values import TypingMode


class MiniDBAdapter(EngineAdapter):
    """Wraps an :class:`~repro.minidb.engine.Engine` instance."""

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine or Engine()
        self.name = f"minidb[{self.engine.profile.name}]"
        self.supports_any_all = self.engine.profile.supports_any_all
        self.strict_typing = self.engine.mode is TypingMode.STRICT

    def execute(self, sql: str) -> ExecResult:
        result = self.engine.execute(sql)
        return ExecResult(
            columns=result.columns,
            rows=result.rows,
            plan_fingerprint=result.plan_fingerprint,
            rows_affected=result.rows_affected,
        )

    def schema(self) -> SchemaInfo:
        info = SchemaInfo()
        db = self.engine.database
        for table in db.tables.values():
            info.tables.append(
                TableInfo(
                    table.name,
                    tuple(ColumnInfo(c.name, c.declared_type) for c in table.columns),
                    kind="table",
                )
            )
        for view in db.views.values():
            columns = view.columns or tuple(
                item.alias or f"c{i}" for i, item in enumerate(view.query.items)
            )
            info.tables.append(
                TableInfo(
                    view.name,
                    tuple(ColumnInfo(c, None) for c in columns),
                    kind="view",
                )
            )
        info.indexes = [ix.name for ix in db.indexes.values()]
        return info

    def reset(self) -> None:
        profile = self.engine.profile
        faults = self.engine.faults.faults
        self.engine = Engine(profile=profile, faults=faults)

    def fired_fault_ids(self) -> frozenset[str]:
        return frozenset(self.engine.faults.fired)

    def clone(self) -> "MiniDBAdapter":
        copy = Engine(profile=self.engine.profile, faults=self.engine.faults.faults)
        copy.database = self.engine.database.clone()
        return MiniDBAdapter(copy)
