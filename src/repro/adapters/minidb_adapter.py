"""Adapter exposing a MiniDB engine through the black-box protocol.

With an attached :class:`repro.perf.EvalCache` the adapter memoizes on
three levels -- parsed statements (optionally primed by the oracles
with parser-normal ASTs), whole read-only statement outcomes keyed by a
state-token hash chain, and row-independent subtrees inside the
evaluator -- while staying observationally identical to the uncached
path: statement-result replays restore fired fault ids, coverage tags,
``statements_executed``, and re-raise recorded errors.
"""

from __future__ import annotations

from repro.adapters.base import (
    ColumnInfo,
    EngineAdapter,
    ExecResult,
    SchemaInfo,
    TableInfo,
)
from repro.errors import EngineCrash, EngineHang, InternalError, SqlError
from repro.minidb import ast_nodes as A
from repro.minidb.engine import Engine
from repro.minidb.parser import parse_statement
from repro.minidb.values import TypingMode


class MiniDBAdapter(EngineAdapter):
    """Wraps an :class:`~repro.minidb.engine.Engine` instance."""

    def __init__(self, engine: Engine | None = None) -> None:
        self.engine = engine or Engine()
        self.name = f"minidb[{self.engine.profile.name}]"
        self.supports_any_all = self.engine.profile.supports_any_all
        self.strict_typing = self.engine.mode is TypingMode.STRICT
        self._cache = None
        self._cache_ns = self.name
        self._state_token = ""
        self._vector_eval = self.engine.vector_eval

    def set_vector_eval(self, enabled: bool) -> None:
        self._vector_eval = bool(enabled)
        self.engine.vector_eval = self._vector_eval

    # -- perf layer ----------------------------------------------------------

    def attach_eval_cache(self, cache, namespace: str = "") -> None:
        from repro.perf.cache import INITIAL_STATE_TOKEN

        self._cache = cache
        self._cache_ns = namespace or self.name
        # A pristine engine starts the shared hash chain (so fresh
        # adapters replaying the same program share results); an engine
        # with history gets a token no other chain can collide with.
        self._state_token = (
            INITIAL_STATE_TOKEN
            if self.engine.statements_executed == 0
            else cache.unique_token()
        )
        self.engine.eval_stats = cache.stats

    def prime_parse(self, sql: str, ast) -> None:
        # Membership check first: the normalization walk would be
        # discarded anyway for statements already memoized (first
        # writer wins), and repeats are the common case by design.
        if self._cache is not None and not self._cache.has_parse(sql):
            from repro.perf.normalize import parser_normal

            self._cache.prime_parse(sql, parser_normal(ast))

    # -- execution -----------------------------------------------------------

    @staticmethod
    def _to_exec_result(result) -> ExecResult:
        return ExecResult(
            columns=result.columns,
            rows=result.rows,
            plan_fingerprint=result.plan_fingerprint,
            rows_affected=result.rows_affected,
        )

    def execute(self, sql: str) -> ExecResult:
        cache = self._cache
        prof = self._profiler
        if cache is None:
            if prof is None:
                return self._to_exec_result(self.engine.execute(sql))
            # Split the engine's parse-then-execute so the profiler sees
            # the two phases separately (the perf layer showed parsing
            # dominating the uncached hot path).
            t0 = prof.begin()
            try:
                stmt = parse_statement(sql)
            finally:
                prof.end("parse", t0)
            t0 = prof.begin()
            try:
                return self._to_exec_result(self.engine.execute_ast(stmt))
            finally:
                prof.end("execute", t0)
        if prof is None:
            return self._execute_cached(sql, cache)
        # Cached path: the memo lookup *is* the parse phase (hits make
        # it shrink), everything downstream counts as execution.
        t0 = prof.begin()
        try:
            stmt = cache.parse(sql)
        finally:
            prof.end("parse", t0)
        t0 = prof.begin()
        try:
            return self._execute_cached(sql, cache, stmt=stmt)
        finally:
            prof.end("execute", t0)

    def _execute_cached(self, sql: str, cache, stmt=None) -> ExecResult:
        from repro.perf.cache import CachedStatement, advance_state_token

        if stmt is None:
            stmt = cache.parse(sql)  # parse errors propagate uncached
        engine = self.engine
        if not isinstance(stmt, A.Select):
            # State-changing statement: extend the hash chain before
            # executing (conservative on failure -- a lost hit, never a
            # stale one) and never consult the result memo.
            self._state_token = advance_state_token(self._state_token, sql)
            return self._to_exec_result(engine.execute_ast(stmt))

        key = (self._cache_ns, self._state_token, sql)
        entry = cache.lookup_statement(key)
        if entry is not None:
            # Replay every observable side effect of the recorded
            # execution, then return (or raise) its outcome.
            engine.statements_executed += 1
            engine.faults.reset_fired()
            engine.faults.fired |= entry.fired
            coverage = engine.coverage
            for tag in entry.cov_tags:
                coverage.hit(tag)
            entry.raise_error()
            return ExecResult(
                columns=list(entry.columns),
                rows=list(entry.rows),
                plan_fingerprint=entry.plan_fingerprint,
                rows_affected=entry.rows_affected,
            )

        # Capture the statement's *full* tag set (not the delta against
        # this engine's cumulative hits): the entry may be replayed on a
        # different engine with the same state token -- the ddmin and
        # triage-replay sharing pattern -- whose tracker has seen none
        # of these tags yet.
        saved_hits = engine.coverage.begin_capture()
        try:
            result = engine.execute_ast(stmt)
        except (SqlError, InternalError, EngineCrash, EngineHang) as exc:
            cache.store_statement(
                key,
                CachedStatement(
                    fired=frozenset(engine.faults.fired),
                    cov_tags=engine.coverage.end_capture(saved_hits),
                    error_type=type(exc),
                    error_message=str(exc),
                ),
            )
            raise
        except BaseException:
            # Unexpected failure class: restore cumulative coverage and
            # cache nothing.
            engine.coverage.end_capture(saved_hits)
            raise
        cache.store_statement(
            key,
            CachedStatement(
                columns=tuple(result.columns),
                rows=tuple(result.rows),
                plan_fingerprint=result.plan_fingerprint,
                rows_affected=result.rows_affected,
                fired=frozenset(engine.faults.fired),
                cov_tags=engine.coverage.end_capture(saved_hits),
            ),
        )
        return self._to_exec_result(result)

    def schema(self) -> SchemaInfo:
        info = SchemaInfo()
        db = self.engine.database
        for table in db.tables.values():
            info.tables.append(
                TableInfo(
                    table.name,
                    tuple(ColumnInfo(c.name, c.declared_type) for c in table.columns),
                    kind="table",
                )
            )
        for view in db.views.values():
            columns = view.columns or tuple(
                item.alias or f"c{i}" for i, item in enumerate(view.query.items)
            )
            info.tables.append(
                TableInfo(
                    view.name,
                    tuple(ColumnInfo(c, None) for c in columns),
                    kind="view",
                )
            )
        info.indexes = [ix.name for ix in db.indexes.values()]
        return info

    def reset(self) -> None:
        profile = self.engine.profile
        faults = self.engine.faults.faults
        self.engine = Engine(profile=profile, faults=faults)
        self.engine.vector_eval = self._vector_eval
        if self._cache is not None:
            self.attach_eval_cache(self._cache, self._cache_ns)

    def fired_fault_ids(self) -> frozenset[str]:
        return frozenset(self.engine.faults.fired)

    def clone(self) -> "MiniDBAdapter":
        copy = Engine(profile=self.engine.profile, faults=self.engine.faults.faults)
        copy.database = self.engine.database.clone()
        copy.vector_eval = self._vector_eval
        return MiniDBAdapter(copy)
