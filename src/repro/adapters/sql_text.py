"""Lightweight, dialect-agnostic SQL text classification.

Adapters and the differential layer need to know *what kind* of
statement a SQL string is without parsing it (the string may target a
real DBMS whose grammar MiniDB does not implement).  Keyword sniffing
on the raw text is not enough: statements may start with comments or a
parenthesized SELECT, so the helpers here first strip leading trivia.
"""

from __future__ import annotations

#: Statement kinds returned by :func:`statement_kind`.
KIND_SELECT = "select"  # row-returning: SELECT / WITH / VALUES / (SELECT ...)
KIND_WRITE = "write"  # INSERT / UPDATE / DELETE / REPLACE
KIND_INDEX = "index"  # CREATE [UNIQUE] INDEX
KIND_DDL = "ddl"  # other schema changes (CREATE TABLE/VIEW, DROP, ALTER)
KIND_OTHER = "other"  # anything else (PRAGMA, BEGIN, unknown)

_WRITE_KEYWORDS = ("INSERT", "UPDATE", "DELETE", "REPLACE")
_DDL_KEYWORDS = ("CREATE", "DROP", "ALTER")


def strip_leading_trivia(sql: str) -> str:
    """Drop leading whitespace, ``--`` line comments, ``/* */`` block
    comments, and redundant opening parentheses from *sql*.

    Generated programs routinely carry explanatory ``--`` headers, and
    several dialects accept parenthesized selects (compound-query
    arms), so statement-kind detection must see through both.
    """
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace() or ch == "(":
            i += 1
        elif sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
        elif sql.startswith("/*", i):
            end = sql.find("*/", i + 2)
            i = n if end == -1 else end + 2
        else:
            break
    return sql[i:]


def _leading_keyword(sql: str) -> str:
    text = strip_leading_trivia(sql)
    word = []
    for ch in text:
        if ch.isalpha() or ch == "_":
            word.append(ch)
        else:
            break
    return "".join(word).upper()


def statement_kind(sql: str) -> str:
    """Classify *sql* by its first meaningful keyword.

    Used by adapters to decide whether a statement returns rows (and so
    deserves a plan fingerprint) and by the differential layer to
    decide how a one-sided failure must be handled: a failed
    ``KIND_SELECT`` is harmless, a failed ``KIND_INDEX`` only perturbs
    plans, while a failed ``KIND_WRITE``/``KIND_DDL`` desynchronizes
    database states.
    """
    keyword = _leading_keyword(sql)
    if keyword in ("SELECT", "WITH", "VALUES"):
        return KIND_SELECT
    if keyword in _WRITE_KEYWORDS:
        return KIND_WRITE
    if keyword in _DDL_KEYWORDS:
        rest = strip_leading_trivia(sql)[len(keyword):].lstrip().upper()
        if keyword == "CREATE" and (
            rest.startswith("INDEX") or rest.startswith("UNIQUE INDEX")
        ):
            return KIND_INDEX
        return KIND_DDL
    return KIND_OTHER


def is_row_returning(sql: str) -> bool:
    """True when the statement produces a result set to compare."""
    return statement_kind(sql) == KIND_SELECT
