"""Adapter for the real SQLite via the Python stdlib ``sqlite3`` module.

This demonstrates that the reproduction's oracles run unmodified against
a production DBMS (the paper's primary test target).  A released SQLite
is expected to yield no discrepancies -- the examples use it to show
applicability, not to claim new bugs.
"""

from __future__ import annotations

import re
import sqlite3

from repro.adapters.base import (
    ColumnInfo,
    EngineAdapter,
    ExecResult,
    SchemaInfo,
    TableInfo,
)
from repro.adapters.sql_text import is_row_returning
from repro.errors import SqlError
from repro.minidb.catalog import resolve_type_name


class Sqlite3Adapter(EngineAdapter):
    """In-memory SQLite database behind the adapter protocol."""

    name = "sqlite3"
    supports_any_all = False
    strict_typing = False

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")
        self._cache = None
        self._cache_ns = self.name
        self._state_token = ""
        self._executed_any = False

    def attach_eval_cache(self, cache, namespace: str = "") -> None:
        """Memoize read-only statement results keyed by the state-token
        hash chain.  A released SQLite evaluates the generated (fully
        deterministic) dialect subset reproducibly, so replaying a
        recorded result -- including recorded ``sqlite3.Error`` messages
        -- is indistinguishable from re-executing the query."""
        from repro.perf.cache import INITIAL_STATE_TOKEN

        self._cache = cache
        self._cache_ns = namespace or self.name
        self._state_token = (
            INITIAL_STATE_TOKEN
            if not self._executed_any
            else cache.unique_token()
        )

    def execute(self, sql: str) -> ExecResult:
        prof = self._profiler
        if prof is None:
            return self._execute_maybe_cached(sql)
        # SQLite parses internally, so the whole round trip counts as
        # the execute phase.
        t0 = prof.begin()
        try:
            return self._execute_maybe_cached(sql)
        finally:
            prof.end("execute", t0)

    def _execute_maybe_cached(self, sql: str) -> ExecResult:
        row_returning = is_row_returning(sql)
        cache = self._cache
        if cache is None:
            return self._execute(sql, row_returning)
        from repro.perf.cache import CachedStatement, advance_state_token

        if not row_returning:
            self._state_token = advance_state_token(self._state_token, sql)
            return self._execute(sql, row_returning)
        key = (self._cache_ns, self._state_token, sql)
        entry = cache.lookup_statement(key)
        if entry is not None:
            entry.raise_error()
            return ExecResult(
                columns=list(entry.columns),
                rows=list(entry.rows),
                plan_fingerprint=entry.plan_fingerprint,
                rows_affected=entry.rows_affected,
            )
        try:
            result = self._execute(sql, row_returning)
        except SqlError as exc:
            cache.store_statement(
                key,
                CachedStatement(error_type=type(exc), error_message=str(exc)),
            )
            raise
        cache.store_statement(
            key,
            CachedStatement(
                columns=tuple(result.columns),
                rows=tuple(result.rows),
                plan_fingerprint=result.plan_fingerprint,
                rows_affected=result.rows_affected,
            ),
        )
        return result

    def _execute(self, sql: str, row_returning: bool | None = None) -> ExecResult:
        fingerprint = None
        self._executed_any = True
        try:
            # Robust statement-kind detection: leading comments,
            # parenthesized selects, VALUES clauses, and lowercase
            # keywords all still yield a plan fingerprint.  The caller
            # usually classified the statement already and passes the
            # verdict down.
            if is_row_returning(sql) if row_returning is None else row_returning:
                fingerprint = self._explain(sql)
            cursor = self._conn.execute(sql)
            rows = [tuple(self._convert(v) for v in row) for row in cursor.fetchall()]
            columns = (
                [d[0] for d in cursor.description] if cursor.description else []
            )
            self._conn.commit()
            return ExecResult(
                columns=columns,
                rows=rows,
                plan_fingerprint=fingerprint,
                rows_affected=max(cursor.rowcount, 0),
            )
        except sqlite3.Error as exc:  # expected-error surface of a real DBMS
            raise SqlError(str(exc)) from exc

    def _explain(self, sql: str) -> str | None:
        try:
            plan_rows = self._conn.execute("EXPLAIN QUERY PLAN " + sql).fetchall()
        except sqlite3.Error:
            return None
        details = [str(r[-1]) for r in plan_rows]
        # Strip literals so the fingerprint captures plan shape only.
        cleaned = [re.sub(r"[0-9]+", "#", d) for d in details]
        return ";".join(cleaned)

    @staticmethod
    def _convert(value):
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        return value

    def schema(self) -> SchemaInfo:
        info = SchemaInfo()
        objects = self._conn.execute(
            "SELECT name, type FROM sqlite_master WHERE type IN ('table', 'view') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        for name, kind in objects:
            cols = self._conn.execute(f"PRAGMA table_info({name})").fetchall()
            columns = tuple(
                ColumnInfo(c[1], resolve_type_name(c[2] or None)) for c in cols
            )
            info.tables.append(TableInfo(name, columns, kind=kind))
        indexes = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        info.indexes = [r[0] for r in indexes]
        return info

    def reset(self) -> None:
        self._conn.close()
        self._conn = sqlite3.connect(":memory:")
        self._executed_any = False
        if self._cache is not None:
            self.attach_eval_cache(self._cache, self._cache_ns)

    def clone(self) -> "Sqlite3Adapter":
        copy = Sqlite3Adapter()
        self._conn.commit()
        for line in self._conn.iterdump():
            try:
                copy._conn.execute(line)
            except sqlite3.Error:
                pass
        copy._conn.commit()
        return copy
