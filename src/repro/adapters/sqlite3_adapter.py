"""Adapter for the real SQLite via the Python stdlib ``sqlite3`` module.

This demonstrates that the reproduction's oracles run unmodified against
a production DBMS (the paper's primary test target).  A released SQLite
is expected to yield no discrepancies -- the examples use it to show
applicability, not to claim new bugs.
"""

from __future__ import annotations

import re
import sqlite3

from repro.adapters.base import (
    ColumnInfo,
    EngineAdapter,
    ExecResult,
    SchemaInfo,
    TableInfo,
)
from repro.adapters.sql_text import is_row_returning
from repro.errors import SqlError
from repro.minidb.catalog import resolve_type_name


class Sqlite3Adapter(EngineAdapter):
    """In-memory SQLite database behind the adapter protocol."""

    name = "sqlite3"
    supports_any_all = False
    strict_typing = False

    def __init__(self) -> None:
        self._conn = sqlite3.connect(":memory:")

    def execute(self, sql: str) -> ExecResult:
        fingerprint = None
        try:
            # Robust statement-kind detection: leading comments,
            # parenthesized selects, VALUES clauses, and lowercase
            # keywords all still yield a plan fingerprint.
            if is_row_returning(sql):
                fingerprint = self._explain(sql)
            cursor = self._conn.execute(sql)
            rows = [tuple(self._convert(v) for v in row) for row in cursor.fetchall()]
            columns = (
                [d[0] for d in cursor.description] if cursor.description else []
            )
            self._conn.commit()
            return ExecResult(
                columns=columns,
                rows=rows,
                plan_fingerprint=fingerprint,
                rows_affected=max(cursor.rowcount, 0),
            )
        except sqlite3.Error as exc:  # expected-error surface of a real DBMS
            raise SqlError(str(exc)) from exc

    def _explain(self, sql: str) -> str | None:
        try:
            plan_rows = self._conn.execute("EXPLAIN QUERY PLAN " + sql).fetchall()
        except sqlite3.Error:
            return None
        details = [str(r[-1]) for r in plan_rows]
        # Strip literals so the fingerprint captures plan shape only.
        cleaned = [re.sub(r"[0-9]+", "#", d) for d in details]
        return ";".join(cleaned)

    @staticmethod
    def _convert(value):
        if isinstance(value, bytes):
            return value.decode("utf-8", "replace")
        return value

    def schema(self) -> SchemaInfo:
        info = SchemaInfo()
        objects = self._conn.execute(
            "SELECT name, type FROM sqlite_master WHERE type IN ('table', 'view') "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        for name, kind in objects:
            cols = self._conn.execute(f"PRAGMA table_info({name})").fetchall()
            columns = tuple(
                ColumnInfo(c[1], resolve_type_name(c[2] or None)) for c in cols
            )
            info.tables.append(TableInfo(name, columns, kind=kind))
        indexes = self._conn.execute(
            "SELECT name FROM sqlite_master WHERE type = 'index' "
            "AND name NOT LIKE 'sqlite_%'"
        ).fetchall()
        info.indexes = [r[0] for r in indexes]
        return info

    def reset(self) -> None:
        self._conn.close()
        self._conn = sqlite3.connect(":memory:")

    def clone(self) -> "Sqlite3Adapter":
        copy = Sqlite3Adapter()
        self._conn.commit()
        for line in self._conn.iterdump():
            try:
                copy._conn.execute(line)
            except sqlite3.Error:
                pass
        copy._conn.commit()
        return copy
