"""Pluggable DBMS backends: registry + automatic capability probing.

Two layers:

* :mod:`repro.backends.registry` -- short-name -> adapter-factory
  registry with built-in and ``coddtest.backends`` entry-point
  discovery; :func:`build_backend` is the one place backend names
  resolve (the CLI, the fleet, and triage replay all route here).
* :mod:`repro.backends.probe` -- the canned feature-probe program set,
  disk-cached :class:`CapabilityVector` per backend build, and the
  probe-*derived* :class:`~repro.differential.compat.CompatPolicy`
  (the hand-written ``(minidb, sqlite3)`` intersection is reproduced
  exactly; enforced by test and the ``backend-smoke`` CI gate).

``coddtest backends list|probe`` is the CLI surface.
"""

from __future__ import annotations

from repro.backends.probe import (
    CACHE_DIR_ENV,
    PROBE_PROGRAMS,
    PROBE_SET_DIGEST,
    CapabilityVector,
    ProbeProgram,
    caps_from_vector,
    clear_probe_memo,
    derive_policy,
    pair_policy,
    probe_backend,
    run_probes,
    vector_cache_path,
)
from repro.backends.registry import (
    ENTRY_POINT_GROUP,
    BackendInfo,
    BackendUnavailable,
    all_backends,
    available_backend_names,
    backend_names,
    build_backend,
    discovery_errors,
    ensure_discovered,
    get_backend,
    register_backend,
    unregister_backend,
)

__all__ = [
    "BackendInfo",
    "BackendUnavailable",
    "CACHE_DIR_ENV",
    "CapabilityVector",
    "ENTRY_POINT_GROUP",
    "PROBE_PROGRAMS",
    "PROBE_SET_DIGEST",
    "ProbeProgram",
    "all_backends",
    "available_backend_names",
    "backend_names",
    "build_backend",
    "caps_from_vector",
    "clear_probe_memo",
    "derive_policy",
    "discovery_errors",
    "ensure_discovered",
    "get_backend",
    "pair_policy",
    "probe_backend",
    "register_backend",
    "run_probes",
    "unregister_backend",
    "vector_cache_path",
]
