"""The in-repo backends: two MiniDB builds, real SQLite, optional DuckDB.

* ``minidb`` -- the simulated engine at the selected dialect profile,
  the paper's engine under test; ``buggy`` seeds the full fault catalog.
* ``minidb@alt`` -- a second MiniDB build at a deliberately different
  dialect/fault configuration: quantified comparisons are compiled out
  (the probe-derived pair policy must discover this, not be told), and
  ``buggy`` seeds only the catalog's still-open ``VERIFIED`` faults --
  the "development build" side of a regression-diff pair such as
  ``--backends minidb@alt,minidb``.  Faults off, it is semantically
  identical to ``minidb`` on the generated surface, so a clean
  ``(minidb, minidb@alt)`` campaign must report zero divergences.
* ``sqlite3`` -- the real stdlib SQLite (always installed).
* ``duckdb`` -- registered unconditionally but *available* only when
  the ``duckdb`` package is importable; the registry's unavailability
  probe keeps ``backends list`` honest about why it cannot build.
"""

from __future__ import annotations

import dataclasses
import sqlite3

from repro.backends.registry import register_backend

#: Version suffix distinguishing the alt build in capability-vector
#: cache keys: same engine code, different compiled-in configuration.
ALT_VERSION_SUFFIX = "+alt.1"


def _engine_version() -> str:
    from repro.minidb.functions import ENGINE_VERSION

    return ENGINE_VERSION


def _minidb_factory(dialect: str = "sqlite", buggy: bool = False):
    from repro.adapters.minidb_adapter import MiniDBAdapter
    from repro.dialects import make_engine

    return MiniDBAdapter(make_engine(dialect, with_catalog_faults=buggy))


def _minidb_alt_factory(dialect: str = "sqlite", buggy: bool = False):
    from repro.adapters.minidb_adapter import MiniDBAdapter
    from repro.dialects import get_dialect
    from repro.minidb.engine import Engine

    spec = get_dialect(dialect)
    profile = dataclasses.replace(
        spec.engine_profile,
        supports_any_all=False,
        display_name=f"{spec.engine_profile.display_name} (alt build)",
    )
    faults = []
    if buggy:
        from repro.dialects.catalog import FAULTS_BY_PROFILE
        from repro.minidb.faults import BugStatus

        faults = [
            f
            for f in FAULTS_BY_PROFILE.get(dialect, [])
            if f.status is BugStatus.VERIFIED
        ]
    adapter = MiniDBAdapter(Engine(profile=profile, faults=faults))
    # The qualified name is campaign/corpus provenance: triage must be
    # able to tell the alt build from the stock one.
    adapter.name = f"minidb@alt[{dialect}]"
    return adapter


def _duckdb_unavailable() -> "str | None":
    import importlib.util

    if importlib.util.find_spec("duckdb") is None:
        return "python package 'duckdb' is not installed"
    return None


def _duckdb_factory(dialect: str = "sqlite", buggy: bool = False):
    from repro.adapters.duckdb_adapter import DuckDBAdapter

    return DuckDBAdapter()


def _duckdb_version(dialect: str) -> str:
    import duckdb

    return duckdb.__version__


def register_builtins() -> None:
    """Idempotent registration of the in-repo backends (called once by
    :func:`repro.backends.registry.ensure_discovered`)."""
    register_backend(
        "minidb",
        _minidb_factory,
        version=lambda dialect: _engine_version(),
        description="simulated engine at the selected dialect profile "
        "(ground-truth fault injection)",
        simulated=True,
        dialect_sensitive=True,
        replace=True,
    )
    register_backend(
        "minidb@alt",
        _minidb_alt_factory,
        version=lambda dialect: _engine_version() + ALT_VERSION_SUFFIX,
        description="second MiniDB build: quantified comparisons "
        "compiled out, --buggy seeds only open (VERIFIED) faults "
        "(regression-diff pairs)",
        simulated=True,
        dialect_sensitive=True,
        replace=True,
    )
    register_backend(
        "sqlite3",
        lambda dialect="sqlite", buggy=False: _sqlite3_factory(),
        version=lambda dialect: sqlite3.sqlite_version,
        description="real stdlib SQLite (in-memory)",
        replace=True,
    )
    register_backend(
        "duckdb",
        _duckdb_factory,
        version=_duckdb_version,
        description="real DuckDB (in-memory); optional, registers as "
        "unavailable when the package is missing",
        unavailable=_duckdb_unavailable,
        replace=True,
    )


def _sqlite3_factory():
    from repro.adapters.sqlite3_adapter import Sqlite3Adapter

    return Sqlite3Adapter()
