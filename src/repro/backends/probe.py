"""Automatic capability probing: derive the dialect intersection.

Instead of hand-maintaining a :class:`~repro.differential.compat.
BackendCaps` entry per backend, each backend runs a canned, seeded
feature-probe program set once -- quantified comparisons, FULL JOIN,
``VERSION()``, ``TYPEOF()`` type-name rendering, typed casts, division
semantics, NULL ordering, collation, scalar-subquery cardinality --
and the recorded outcomes form a serializable :class:`CapabilityVector`.
Pair policies are then *derived*: per-backend flags come straight from
probe success/failure, and cross-backend rules (skip ``TYPEOF()``,
rewrite ``VERSION()`` to a literal) come from comparing the recorded
values of probes both backends execute successfully.

Determinism guarantee: every probe program is a fixed constant query
over a fixed two-row state, all engines involved are deterministic, and
the JSON serialization sorts keys -- probing the same backend build
twice yields a byte-identical vector.  Vectors are cached in-process
per ``(backend, dialect, version, probe set)`` and, when a cache
directory is given, on disk keyed by backend name + version string (a
backend whose behaviour can change must change its version string; the
probe-set digest also keys the file, so editing the programs
invalidates stale vectors).

The derived ``(minidb, sqlite3)`` policy reproduces the hand-written
intersection exactly -- enforced by
``tests/backends/test_derived_policy.py`` and the ``backend-smoke`` CI
gate -- so the 0-false-positive guarantee of the differential oracle
carries over unchanged.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import os
import re
from dataclasses import dataclass

from repro.backends.registry import (
    BackendInfo,
    BackendUnavailable,
    get_backend,
)
from repro.differential.compat import BackendCaps, CompatPolicy
from repro.errors import ReproError
from repro.minidb.functions import ENGINE_VERSION


@dataclass(frozen=True)
class ProbeProgram:
    """One feature probe: a fixed setup prefix plus one query.

    ``ordered=True`` records result rows in arrival order (the probe is
    *about* ordering); otherwise rows are sorted so the recorded value
    is insensitive to harmless row-order differences between engines.
    """

    probe_id: str
    query: str
    setup: tuple[str, ...] = ()
    ordered: bool = False


_TWO_ROWS = (
    "CREATE TABLE cap_t (c0 INTEGER)",
    "INSERT INTO cap_t VALUES (1), (2)",
)

#: The canned probe set.  Append-only by convention: editing a program
#: changes :data:`PROBE_SET_DIGEST` and invalidates every cached vector.
PROBE_PROGRAMS: tuple[ProbeProgram, ...] = (
    ProbeProgram(
        "quantified_any",
        "SELECT c0 FROM cap_t WHERE c0 = ANY (SELECT c0 FROM cap_t)",
        _TWO_ROWS,
    ),
    ProbeProgram(
        "quantified_all",
        "SELECT c0 FROM cap_t WHERE c0 >= ALL (SELECT c0 FROM cap_t)",
        _TWO_ROWS,
    ),
    ProbeProgram(
        "full_outer_join",
        "SELECT cap_t.c0, cap_u.c0 FROM cap_t "
        "FULL OUTER JOIN cap_u ON cap_t.c0 = cap_u.c0",
        _TWO_ROWS
        + (
            "CREATE TABLE cap_u (c0 INTEGER)",
            "INSERT INTO cap_u VALUES (2), (3)",
        ),
    ),
    ProbeProgram("version_fn", "SELECT VERSION()"),
    ProbeProgram(
        "typeof_scalar",
        "SELECT TYPEOF(1), TYPEOF(1.5), TYPEOF('x'), TYPEOF(NULL)",
    ),
    ProbeProgram("typeof_comparison", "SELECT TYPEOF(1 = 1)"),
    ProbeProgram("cast_text_prefix", "SELECT CAST('12abc' AS INTEGER)"),
    ProbeProgram("integer_division", "SELECT 7 / 2"),
    ProbeProgram("division_by_zero", "SELECT 1 / 0"),
    ProbeProgram(
        "null_ordering",
        "SELECT c0 FROM cap_n ORDER BY c0",
        (
            "CREATE TABLE cap_n (c0 INTEGER)",
            "INSERT INTO cap_n VALUES (1), (NULL)",
        ),
        ordered=True,
    ),
    ProbeProgram("collation_case", "SELECT 'a' < 'B'"),
    ProbeProgram(
        "scalar_subquery_multi_row",
        "SELECT (SELECT c0 FROM cap_t)",
        _TWO_ROWS,
    ),
    ProbeProgram("string_concat", "SELECT 'a' || 'b'"),
)


def _probe_set_digest() -> str:
    payload = "\n".join(
        f"{p.probe_id}|{p.ordered}|{'; '.join(p.setup)}|{p.query}"
        for p in PROBE_PROGRAMS
    )
    return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()


#: Digest of the program set; part of every cache key.
PROBE_SET_DIGEST = _probe_set_digest()


def _encode_cell(value):
    """JSON-safe, engine-neutral cell encoding.

    Booleans collapse to integers: a backend returning ``True`` where
    another returns ``1`` agrees semantically (the comparison the
    differential oracle's ``canonical()`` also makes).
    """
    if isinstance(value, bool):
        return int(value)
    if value is None or isinstance(value, (int, float, str)):
        return value
    return str(value)


def _encode_rows(rows, ordered: bool) -> list:
    encoded = [[_encode_cell(v) for v in row] for row in rows]
    if not ordered:
        encoded.sort(key=lambda row: json.dumps(row))
    return encoded


@dataclass(frozen=True)
class CapabilityVector:
    """The recorded probe outcomes of one backend build."""

    #: Registry name (``minidb@alt``) and qualified adapter display name
    #: (``minidb@alt[sqlite]`` -- what campaign provenance records).
    backend: str
    qualified: str
    version: str
    simulated: bool
    probe_set: str
    #: ``probe_id -> {"ok": bool, "rows": encoded rows | None}``.
    probes: "dict[str, dict]"

    def ok(self, probe_id: str) -> bool:
        return bool(self.probes.get(probe_id, {}).get("ok"))

    def rows(self, probe_id: str) -> "list | None":
        outcome = self.probes.get(probe_id)
        return None if outcome is None else outcome.get("rows")

    def scalar(self, probe_id: str):
        """First cell of a single-row probe result, None on error."""
        rows = self.rows(probe_id)
        if not rows or not rows[0]:
            return None
        return rows[0][0]

    def typeof_signature(self) -> str:
        """The backend's TYPEOF rendering, comparable across backends."""
        return json.dumps(
            [self.rows("typeof_scalar"), self.rows("typeof_comparison")]
        )

    def to_payload(self) -> dict:
        return {
            "schema": 1,
            "backend": self.backend,
            "qualified": self.qualified,
            "version": self.version,
            "simulated": self.simulated,
            "probe_set": self.probe_set,
            "probes": self.probes,
        }

    def to_json(self) -> str:
        """Byte-stable serialization (sorted keys, trailing newline)."""
        return json.dumps(self.to_payload(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_payload(cls, payload: dict) -> "CapabilityVector":
        return cls(
            backend=payload["backend"],
            qualified=payload["qualified"],
            version=payload["version"],
            simulated=bool(payload["simulated"]),
            probe_set=payload["probe_set"],
            probes=dict(payload["probes"]),
        )


def run_probes(adapter) -> "dict[str, dict]":
    """Execute the probe set on *adapter* (reset between programs)."""
    outcomes: dict[str, dict] = {}
    for program in PROBE_PROGRAMS:
        adapter.reset()
        try:
            for sql in program.setup:
                adapter.execute(sql)
            result = adapter.execute(program.query)
        except ReproError:
            outcomes[program.probe_id] = {"ok": False, "rows": None}
        else:
            outcomes[program.probe_id] = {
                "ok": True,
                "rows": _encode_rows(result.rows, program.ordered),
            }
    adapter.reset()
    return outcomes


#: In-process memo: (backend, dialect, version, probe-set digest) ->
#: CapabilityVector.  Probing is cheap but happens on every pair build.
_MEMO: dict[tuple, CapabilityVector] = {}

#: Environment override for the on-disk vector cache directory.
CACHE_DIR_ENV = "CODDTEST_CAPVEC_DIR"


def clear_probe_memo() -> None:
    """Drop the in-process memo (test isolation)."""
    _MEMO.clear()


def _slug(text: str) -> str:
    return re.sub(r"[^A-Za-z0-9._@+-]+", "_", text)


def vector_cache_path(
    cache_dir: str, info: BackendInfo, dialect: str, version: str
) -> str:
    """The on-disk cache file for one backend build: keyed by qualified
    backend name + version string + probe-set digest."""
    qualified = (
        f"{info.name}[{dialect}]" if info.dialect_sensitive else info.name
    )
    name = f"{_slug(qualified)}@{_slug(version)}.{PROBE_SET_DIGEST}.json"
    return os.path.join(cache_dir, name)


def probe_backend(
    name: str,
    dialect: str = "sqlite",
    cache_dir: "str | None" = None,
    force: bool = False,
) -> CapabilityVector:
    """The :class:`CapabilityVector` of backend *name* at *dialect*.

    Cached in-process per ``(name, dialect, version, probe set)`` and,
    when *cache_dir* (or ``$CODDTEST_CAPVEC_DIR``) names a directory,
    on disk -- a cached file is reused only when its backend, version,
    and probe-set digest all match, so upgrading the backend or editing
    the probe set re-probes.  ``force=True`` bypasses both caches and
    rewrites the disk entry.
    """
    info = get_backend(name)
    reason = info.why_unavailable()
    if reason is not None:
        # Check before touching the version hook: an optional backend's
        # version callable imports the missing package.
        raise BackendUnavailable(
            f"backend {name!r} is unavailable: {reason}"
        )
    version = info.version(dialect)
    memo_key = (name, dialect, version, PROBE_SET_DIGEST)
    if not force and memo_key in _MEMO:
        return _MEMO[memo_key]

    cache_dir = cache_dir or os.environ.get(CACHE_DIR_ENV) or None
    path = (
        vector_cache_path(cache_dir, info, dialect, version)
        if cache_dir
        else None
    )
    if path is not None and not force:
        vector = _load_vector(path, info, version)
        if vector is not None:
            _MEMO[memo_key] = vector
            return vector

    adapter = info.build(dialect=dialect, buggy=False)
    vector = CapabilityVector(
        backend=name,
        qualified=adapter.name,
        version=version,
        simulated=info.simulated,
        probe_set=PROBE_SET_DIGEST,
        probes=run_probes(adapter),
    )
    if path is not None:
        os.makedirs(cache_dir, exist_ok=True)
        with open(path, "w", encoding="utf-8") as fh:
            fh.write(vector.to_json())
    _MEMO[memo_key] = vector
    return vector


def _load_vector(
    path: str, info: BackendInfo, version: str
) -> "CapabilityVector | None":
    try:
        with open(path, encoding="utf-8") as fh:
            payload = json.load(fh)
        vector = CapabilityVector.from_payload(payload)
    except (OSError, ValueError, KeyError, TypeError):
        return None
    if (
        vector.backend != info.name
        or vector.version != version
        or vector.probe_set != PROBE_SET_DIGEST
    ):
        return None  # stale entry: version or probe set moved on
    return vector


# ---------------------------------------------------------------------------
# Deriving BackendCaps / CompatPolicy from vectors
# ---------------------------------------------------------------------------


def caps_from_vector(vector: CapabilityVector) -> BackendCaps:
    """Per-backend capability flags, read off the probe outcomes."""
    return BackendCaps(
        name=vector.qualified,
        supports_any_all=(
            vector.ok("quantified_any") and vector.ok("quantified_all")
        ),
        strict_typing=not vector.ok("cast_text_prefix"),
        supports_full_join=vector.ok("full_outer_join"),
        supports_version_fn=vector.ok("version_fn"),
        supports_typeof=(
            vector.ok("typeof_scalar") and vector.ok("typeof_comparison")
        ),
        simulated=vector.simulated,
    )


def derive_policy(
    primary: CapabilityVector, secondary: CapabilityVector
) -> CompatPolicy:
    """A :class:`CompatPolicy` derived from two capability vectors.

    Per-backend flags come from :func:`caps_from_vector`; the pair
    rules compare recorded values of probes both sides ran successfully
    and demote the *secondary* (reference) side on disagreement, so the
    existing skip/rewrite machinery handles the divergence:

    * different ``TYPEOF`` renderings -> the reference loses
      ``supports_typeof`` (TYPEOF statements are skipped for it);
    * different ``VERSION()`` values -> the reference loses
      ``supports_version_fn`` and the policy's ``version_literal``
      becomes the primary's probed value, so the rewrite substitutes
      the value the primary actually returns.
    """
    p = caps_from_vector(primary)
    s = caps_from_vector(secondary)
    if (
        p.supports_typeof
        and s.supports_typeof
        and primary.typeof_signature() != secondary.typeof_signature()
    ):
        s = dataclasses.replace(s, supports_typeof=False)

    version_literal = ENGINE_VERSION
    primary_version = primary.scalar("version_fn")
    secondary_version = secondary.scalar("version_fn")
    if p.supports_version_fn and isinstance(primary_version, str):
        version_literal = primary_version
    elif s.supports_version_fn and isinstance(secondary_version, str):
        version_literal = secondary_version
    if (
        p.supports_version_fn
        and s.supports_version_fn
        and primary_version != secondary_version
    ):
        s = dataclasses.replace(s, supports_version_fn=False)
    return CompatPolicy(primary=p, secondary=s, version_literal=version_literal)


def pair_policy(
    primary_name: str,
    secondary_name: str,
    dialect: str = "sqlite",
    cache_dir: "str | None" = None,
) -> CompatPolicy:
    """The probe-derived policy for a registered backend pair."""
    return derive_policy(
        probe_backend(primary_name, dialect=dialect, cache_dir=cache_dir),
        probe_backend(secondary_name, dialect=dialect, cache_dir=cache_dir),
    )
