"""The pluggable DBMS backend registry.

Adding a backend to the differential fleet is one adapter class plus a
:func:`register_backend` call (SQLancer++'s scaling direction, PAPERS
"Scaling Automated Database System Testing"): the registry maps short
names (``minidb``, ``sqlite3``, ``minidb@alt``, ``duckdb``) to factories
that build :class:`~repro.adapters.base.EngineAdapter` instances, and
everything downstream -- ``build_backend``/``build_pair_adapter``, the
fleet's :class:`~repro.fleet.orchestrator.FleetConfig` validation, the
CLI's ``--backends`` parsing, triage replay -- resolves names here
instead of against a frozen tuple.

Discovery is two-phase and lazy: the in-repo built-ins register on
first use, then any installed distribution advertising the
``coddtest.backends`` entry-point group is loaded (an entry point may
resolve to a :class:`BackendInfo`, to a callable returning one or an
iterable of them, or to a callable that calls :func:`register_backend`
itself).  A broken entry point is recorded in :func:`discovery_errors`
and never takes the registry down.

Optional backends (a third-party DBMS driver that may not be
installed) register *unconditionally* with an ``unavailable`` probe:
they show up in ``coddtest backends list`` with the reason they cannot
build, and :func:`available_backend_names` excludes them.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.adapters.base import EngineAdapter

#: Entry-point group third-party distributions use to contribute
#: backends: ``[project.entry-points."coddtest.backends"]``.
ENTRY_POINT_GROUP = "coddtest.backends"


class BackendUnavailable(ValueError):
    """A registered optional backend cannot be built here (for example
    the ``duckdb`` package is not installed)."""


@dataclass(frozen=True)
class BackendInfo:
    """One registered backend: identity, construction, and probe keys.

    ``factory(dialect=..., buggy=...)`` builds a fresh adapter;
    ``version(dialect)`` returns the version string that keys the
    on-disk capability-vector cache (a backend whose behaviour can
    change must change its version string); ``unavailable`` (optional)
    returns a human-readable reason the backend cannot build right now,
    or None when it can.
    """

    name: str
    factory: Callable[..., EngineAdapter]
    version: Callable[[str], str]
    description: str = ""
    #: True for adapters backed by a simulated engine with ground-truth
    #: fault attribution (MiniDB builds); real DBMSs are False.
    simulated: bool = False
    #: Whether ``factory`` varies with the ``dialect`` argument (MiniDB
    #: builds do; real DBMSs ignore it).
    dialect_sensitive: bool = False
    unavailable: "Callable[[], str | None] | None" = field(
        default=None, compare=False
    )

    def why_unavailable(self) -> "str | None":
        return None if self.unavailable is None else self.unavailable()

    def available(self) -> bool:
        return self.why_unavailable() is None

    def build(self, dialect: str = "sqlite", buggy: bool = False) -> EngineAdapter:
        reason = self.why_unavailable()
        if reason is not None:
            raise BackendUnavailable(
                f"backend {self.name!r} is unavailable: {reason}"
            )
        return self.factory(dialect=dialect, buggy=buggy)


_REGISTRY: dict[str, BackendInfo] = {}
_BUILTINS_LOADED = False
_ENTRY_POINTS_LOADED = False
_DISCOVERY_ERRORS: list[str] = []


def register_backend(
    name: str,
    factory: Callable[..., EngineAdapter],
    *,
    version: "Callable[[str], str] | None" = None,
    description: str = "",
    simulated: bool = False,
    dialect_sensitive: bool = False,
    unavailable: "Callable[[], str | None] | None" = None,
    replace: bool = False,
) -> BackendInfo:
    """Register *factory* under *name*; returns the :class:`BackendInfo`.

    Duplicate names are rejected (``replace=True`` overrides -- test
    fixtures and deliberate shadowing only): two backends silently
    sharing a name would make campaign provenance ambiguous.
    """
    if not name or any(c.isspace() or c == "," for c in name):
        raise ValueError(
            f"invalid backend name {name!r}: must be non-empty and free "
            "of whitespace and commas (the CLI parses comma pairs)"
        )
    if name in _REGISTRY and not replace:
        raise ValueError(
            f"backend {name!r} is already registered; pass replace=True "
            "to shadow it deliberately"
        )
    info = BackendInfo(
        name=name,
        factory=factory,
        version=version if version is not None else (lambda dialect: "0"),
        description=description,
        simulated=simulated,
        dialect_sensitive=dialect_sensitive,
        unavailable=unavailable,
    )
    _REGISTRY[name] = info
    return info


def unregister_backend(name: str) -> None:
    """Remove *name* from the registry (primarily for test isolation)."""
    _REGISTRY.pop(name, None)


def ensure_discovered() -> None:
    """Idempotently load built-ins and ``coddtest.backends`` entry points."""
    global _BUILTINS_LOADED, _ENTRY_POINTS_LOADED
    if not _BUILTINS_LOADED:
        _BUILTINS_LOADED = True
        from repro.backends.builtin import register_builtins

        register_builtins()
    if not _ENTRY_POINTS_LOADED:
        _ENTRY_POINTS_LOADED = True
        _load_entry_points(_iter_entry_points())


def _iter_entry_points():
    """The installed ``coddtest.backends`` entry points (monkeypatch
    point for the discovery tests)."""
    from importlib.metadata import entry_points

    try:
        return list(entry_points(group=ENTRY_POINT_GROUP))
    except Exception:  # pragma: no cover - metadata backend quirks
        return []


def _load_entry_points(eps: Iterable) -> None:
    """Register every backend the entry points contribute.

    One broken distribution must not take down discovery for the rest:
    failures (import errors, duplicate names, bad return types) are
    recorded per entry point and the loop continues.
    """
    for ep in eps:
        try:
            obj = ep.load()
            contributed = obj() if callable(obj) and not isinstance(obj, BackendInfo) else obj
            if contributed is None:
                continue  # the callable registered itself
            infos = (
                [contributed]
                if isinstance(contributed, BackendInfo)
                else list(contributed)
            )
            for info in infos:
                if not isinstance(info, BackendInfo):
                    raise TypeError(
                        f"expected BackendInfo, got {type(info).__name__}"
                    )
                if info.name in _REGISTRY:
                    raise ValueError(
                        f"backend {info.name!r} is already registered"
                    )
                _REGISTRY[info.name] = info
        except Exception as exc:
            _DISCOVERY_ERRORS.append(f"{ep.name}: {exc}")


def discovery_errors() -> tuple[str, ...]:
    """Entry points that failed to load, as ``"<name>: <error>"`` lines."""
    return tuple(_DISCOVERY_ERRORS)


def backend_names() -> tuple[str, ...]:
    """All registered backend names, sorted (includes unavailable ones)."""
    ensure_discovered()
    return tuple(sorted(_REGISTRY))


def available_backend_names() -> tuple[str, ...]:
    """Registered backends that can actually be built here, sorted."""
    ensure_discovered()
    return tuple(
        name for name in sorted(_REGISTRY) if _REGISTRY[name].available()
    )


def all_backends() -> tuple[BackendInfo, ...]:
    """Every registered :class:`BackendInfo`, in name order."""
    ensure_discovered()
    return tuple(_REGISTRY[name] for name in sorted(_REGISTRY))


def get_backend(name: str) -> BackendInfo:
    """Look up *name*, raising ``ValueError`` listing the registered
    names (derived, never hand-maintained) when unknown."""
    ensure_discovered()
    info = _REGISTRY.get(name)
    if info is None:
        raise ValueError(
            f"unknown backend {name!r}; registered backends: "
            f"{', '.join(sorted(_REGISTRY))}"
        )
    return info


def build_backend(
    name: str, dialect: str = "sqlite", buggy: bool = False
) -> EngineAdapter:
    """Construct one backend by registry name.

    ``buggy`` seeds the build's fault catalog on simulated backends;
    real DBMS backends have no injectable faults and ignore it.
    """
    return get_backend(name).build(dialect=dialect, buggy=buggy)
