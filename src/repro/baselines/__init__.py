"""Baseline test oracles the paper compares against (Section 4):

* NoREC -- non-optimizing reference engine construction [30],
* TLP   -- ternary logic partitioning [31],
* DQE   -- differential query execution [35],
* EET   -- equivalent expression transformation [17] (lite variant).
"""

from repro.baselines.norec import NoRECOracle
from repro.baselines.tlp import TLPOracle
from repro.baselines.dqe import DQEOracle
from repro.baselines.eet import EETOracle

__all__ = ["NoRECOracle", "TLPOracle", "DQEOracle", "EETOracle"]
