"""DQE: Differential Query Execution (Song et al., ICSE 2023; paper
baseline [35]).

The same predicate must select the same rows in SELECT, UPDATE, and
DELETE.  Following the original tool, DQE works on a *single table*
with two bookkeeping columns: a unique row id and a modification marker
(paper Section 4.3 explains why this makes DQE's queries-per-test high,
around 17).  Joins and subqueries are out of scope (paper Section 4.3:
DQE "cannot test certain language features, such as JOIN").
"""

from __future__ import annotations

from repro.errors import SqlError
from repro.generator.expr_gen import ExprGenerator, ScopeColumn
from repro.minidb import ast_nodes as A
from repro.minidb.values import sql_literal
from repro.oracles_base import Oracle, OracleSkip, TestReport

WORK_TABLE = "dqe_w"


class DQEOracle(Oracle):
    name = "dqe"

    def __init__(self, max_depth: int = 3) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.expr_gen: ExprGenerator | None = None

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=False,
            supports_any_all=False,
            strict_typing=self.adapter.strict_typing,
        )

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.schema is not None
        base_tables = self.schema.base_tables
        if not base_tables:
            raise OracleSkip()
        table = self.rng.choice(base_tables)
        try:
            return self._differential(table)
        finally:
            self._drop_work_table()

    def _differential(self, table) -> TestReport | None:
        assert self.expr_gen is not None

        # Build the work table: original columns + id + marker.
        rows = self.execute(f"SELECT * FROM {table.name}").rows
        if not rows:
            raise OracleSkip()
        col_defs = ", ".join(c.name for c in table.columns)
        self.execute(
            f"CREATE TABLE {WORK_TABLE} ({col_defs}, dqe_id INT, dqe_mark INT)"
        )
        # Index a random data column so the predicate exercises the same
        # access paths the original table had.
        indexed = self.rng.choice(table.columns).name
        self.execute(f"CREATE INDEX dqe_ix ON {WORK_TABLE} ({indexed})")
        for i, row in enumerate(rows):
            values = ", ".join(sql_literal(v) for v in row)
            self.execute(
                f"INSERT INTO {WORK_TABLE} VALUES ({values}, {i}, 0)"
            )
        all_ids = set(range(len(rows)))

        scope = [
            ScopeColumn(WORK_TABLE, c.name, c.sql_type) for c in table.columns
        ]
        predicate = self.expr_gen.predicate(scope).expr
        p_sql = predicate.to_sql()

        select_ids = {
            r[0]
            for r in self.execute(
                f"SELECT dqe_id FROM {WORK_TABLE} WHERE {p_sql}",
                is_main_query=True,
            ).rows
        }

        self.execute(f"UPDATE {WORK_TABLE} SET dqe_mark = 1 WHERE {p_sql}")
        update_ids = {
            r[0]
            for r in self.execute(
                f"SELECT dqe_id FROM {WORK_TABLE} WHERE dqe_mark = 1"
            ).rows
        }

        self.execute(f"DELETE FROM {WORK_TABLE} WHERE {p_sql}")
        remaining = {
            r[0] for r in self.execute(f"SELECT dqe_id FROM {WORK_TABLE}").rows
        }
        delete_ids = all_ids - remaining

        if select_ids == update_ids == delete_ids:
            return None
        return self.report(
            f"predicate selected {sorted(select_ids)} rows in SELECT, "
            f"{sorted(update_ids)} in UPDATE, {sorted(delete_ids)} in DELETE"
        )

    def _drop_work_table(self) -> None:
        assert self.adapter is not None
        try:
            self.adapter.execute(f"DROP TABLE IF EXISTS {WORK_TABLE}")
        except SqlError:  # pragma: no cover - defensive
            pass
