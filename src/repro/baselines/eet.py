"""EET (lite): Equivalent Expression Transformation (Jiang & Su, OSDI
2024; paper baseline [17]).

EET rewrites a query's predicate into a semantically equivalent but
syntactically different form by introducing tautologies and
contradictions; the rewritten query must return the same rows.  This is
a lite reimplementation covering the transformation families the paper
describes (Section 6: "EET introduces tautologies and contradictions
while ensuring that the result remains equivalent").

All transformations preserve *retrieval* equivalence under three-valued
logic (rows are retrieved only when the predicate is TRUE).
"""

from __future__ import annotations

from repro.generator.expr_gen import ExprGenerator
from repro.generator.query_gen import QueryGenerator
from repro.minidb import ast_nodes as A
from repro.oracles_base import Oracle, TestReport


class EETOracle(Oracle):
    name = "eet"

    def __init__(self, max_depth: int = 3) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.expr_gen: ExprGenerator | None = None
        self.query_gen: QueryGenerator | None = None

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=False,
            supports_any_all=False,
            strict_typing=self.adapter.strict_typing,
        )
        self.query_gen = QueryGenerator(
            self.rng,
            self.schema,
            self.expr_gen,
            join_kinds=("INNER", "LEFT", "CROSS"),
            use_views=True,
        )

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        skeleton = self.query_gen.from_skeleton()
        predicate = self.expr_gen.predicate(skeleton.scope).expr
        transformed = self._transform(predicate)

        base = self.query_gen.star_query(skeleton, predicate)
        rewritten = self.query_gen.star_query(skeleton, transformed)
        base_rows = self.execute(base.to_sql(), is_main_query=True, ast=base).rows
        new_rows = self.execute(rewritten.to_sql(), ast=rewritten).rows
        if self.compare_rows(base_rows, new_rows):
            return None
        return self.report(
            f"equivalent transformation changed the result: "
            f"{len(base_rows)} vs {len(new_rows)} rows"
        )

    def _transform(self, p: A.Expr) -> A.Expr:
        kind = self.rng.choice(
            ["double_not", "and_tautology", "or_contradiction", "case_wrap"]
        )
        if kind == "double_not":
            # NOT(NOT p) == p under 3VL.
            return A.Unary("NOT", A.Unary("NOT", p))
        if kind == "and_tautology":
            # p AND (k = k) with a constant k is retrieval-equivalent.
            k = A.Literal(self.rng.randint(0, 9))
            return A.Binary("AND", p, A.Binary("=", k, k))
        if kind == "or_contradiction":
            # p OR (k != k) never adds rows: (k != k) is FALSE.
            k = A.Literal(self.rng.randint(0, 9))
            return A.Binary("OR", p, A.Binary("!=", k, k))
        # CASE WHEN p THEN TRUE ELSE FALSE END retrieves exactly p's rows
        # (UNKNOWN maps to FALSE, which does not retrieve either way).
        return A.Case(
            None, (A.CaseWhen(p, A.Literal(True)),), A.Literal(False)
        )
