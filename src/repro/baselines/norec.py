"""NoREC: Non-optimizing Reference Engine Construction (Rigger & Su,
ESEC/FSE 2020; paper baseline [30]).

The same predicate p is evaluated twice: once in the WHERE clause, where
the DBMS optimizes it (``SELECT COUNT(*) FROM ... WHERE p``), and once
in the fetch clause, where it is evaluated row-by-row without
optimization (``SELECT (p) FROM ...``).  The count of retrieved rows
must equal the number of rows for which p evaluates to TRUE.

As in the paper (Section 1), NoREC does not generate subqueries -- that
limitation is what CODDTest's comparison (Table 2) exploits.
"""

from __future__ import annotations

from repro.generator.expr_gen import ExprGenerator
from repro.generator.query_gen import QueryGenerator
from repro.minidb.values import TypingMode, truth
from repro.oracles_base import Oracle, TestReport


class NoRECOracle(Oracle):
    name = "norec"

    def __init__(self, max_depth: int = 3) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.expr_gen: ExprGenerator | None = None
        self.query_gen: QueryGenerator | None = None

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=False,  # out of scope for NoREC (paper Section 1)
            supports_any_all=False,
            strict_typing=self.adapter.strict_typing,
        )
        self.query_gen = QueryGenerator(
            self.rng,
            self.schema,
            self.expr_gen,
            join_kinds=("INNER", "LEFT", "CROSS"),
            use_views=True,
        )

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        skeleton = self.query_gen.from_skeleton()
        predicate = self.expr_gen.predicate(skeleton.scope).expr

        optimized = self.query_gen.count_query(skeleton, predicate)
        opt_rows = self.execute(
            optimized.to_sql(), is_main_query=True, ast=optimized
        ).rows
        optimized_count = opt_rows[0][0] if opt_rows else 0

        unoptimized = self.query_gen.fetch_predicate_query(skeleton, predicate)
        raw = self.execute(unoptimized.to_sql(), ast=unoptimized).rows
        reference_count = sum(
            1 for (value,) in raw if truth(value, TypingMode.RELAXED) is True
        )

        if optimized_count == reference_count:
            return None
        return self.report(
            f"optimized WHERE retrieved {optimized_count} rows but the "
            f"non-optimizing reference counted {reference_count}"
        )
