"""TLP: Ternary Logic Partitioning (Rigger & Su, OOPSLA 2020; paper
baseline [31]).

A query Q is decomposed into three partitioning queries whose predicates
are ``p``, ``NOT p``, and ``p IS NULL``; for any row exactly one of the
three holds, so the multiset union of the partitions must equal Q's
result.  TLP also covers aggregates and HAVING (paper Section 6), which
this implementation reproduces with three modes:

* ``plain``     -- row partitioning in WHERE,
* ``aggregate`` -- COUNT/SUM/MIN/MAX recombined across partitions,
* ``having``    -- partitioning HAVING over a grouped query.

Like NoREC, TLP generates no subqueries.
"""

from __future__ import annotations

from repro.generator.expr_gen import ExprGenerator
from repro.generator.query_gen import FromSkeleton, QueryGenerator
from repro.minidb import ast_nodes as A
from repro.minidb.values import SqlType
from repro.oracles_base import Oracle, OracleSkip, TestReport, canonical


class TLPOracle(Oracle):
    name = "tlp"

    def __init__(self, max_depth: int = 3) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.expr_gen: ExprGenerator | None = None
        self.query_gen: QueryGenerator | None = None

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=False,
            supports_any_all=False,
            strict_typing=self.adapter.strict_typing,
        )
        self.query_gen = QueryGenerator(
            self.rng,
            self.schema,
            self.expr_gen,
            join_kinds=("INNER", "LEFT", "CROSS"),
            use_views=True,
        )

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        mode = self.rng.choices(
            ["plain", "aggregate", "having"], weights=[0.7, 0.15, 0.15]
        )[0]
        skeleton = self.query_gen.from_skeleton()
        predicate = self.expr_gen.predicate(skeleton.scope).expr
        partitions = _partitions(predicate)
        if mode == "plain":
            return self._check_plain(skeleton, partitions)
        if mode == "aggregate":
            return self._check_aggregate(skeleton, partitions)
        return self._check_having(skeleton, partitions)

    # -- modes ------------------------------------------------------------------

    def _check_plain(
        self, skeleton: FromSkeleton, partitions: list[A.Expr]
    ) -> TestReport | None:
        assert self.query_gen is not None
        base = self.query_gen.star_query(skeleton, None)
        expected = self.execute(base.to_sql(), ast=base).rows
        union: list = []
        if self.rng.random() < 0.8:
            # Execute the three partitions as one UNION ALL query -- the
            # paper notes TLP randomly chooses between the two forms,
            # which is why its QPT averages just above 2 (Section 4.3).
            parts_sql = [
                self.query_gen.star_query(skeleton, part).to_sql()
                for part in partitions
            ]
            combined = " UNION ALL ".join(parts_sql)
            union = list(self.execute(combined, is_main_query=True).rows)
        else:
            for i, part in enumerate(partitions):
                q = self.query_gen.star_query(skeleton, part)
                union.extend(
                    self.execute(q.to_sql(), is_main_query=(i == 0), ast=q).rows
                )
        if self.compare_rows(expected, union):
            return None
        return self.report(
            f"partition union has {len(union)} rows, base query has "
            f"{len(expected)}"
        )

    def _check_aggregate(
        self, skeleton: FromSkeleton, partitions: list[A.Expr]
    ) -> TestReport | None:
        rng = self.rng
        # Typed numeric columns only: client-side recombination of MIN/MAX
        # over dynamically typed columns would have to re-implement the
        # engine's cross-type collation and risk false alarms.
        numeric = [
            c
            for c in skeleton.scope
            if c.sql_type in (SqlType.INTEGER, SqlType.REAL)
        ]
        if not numeric:
            raise OracleSkip()
        col = rng.choice(numeric)
        func = rng.choice(["COUNT", "SUM", "MIN", "MAX"])
        agg = A.FuncCall(func, (col.ref,))

        def agg_query(where: A.Expr | None) -> A.Select:
            return A.Select(
                items=(A.SelectItem(agg, alias="a"),),
                from_clause=skeleton.ref,
                where=where,
            )

        base_query = agg_query(None)
        base_rows = self.execute(base_query.to_sql(), ast=base_query).rows
        base = base_rows[0][0]
        parts = []
        for i, part in enumerate(partitions):
            q = agg_query(part)
            rows = self.execute(q.to_sql(), is_main_query=(i == 0), ast=q).rows
            parts.append(rows[0][0])

        combined = _combine(func, parts)
        if _agg_equal(base, combined):
            return None
        return self.report(
            f"{func} over partitions is {combined!r}, over base is {base!r}"
        )

    def _check_having(
        self, skeleton: FromSkeleton, partitions: list[A.Expr]
    ) -> TestReport | None:
        assert self.query_gen is not None
        group_col = self.rng.choice(skeleton.scope)
        base = self.query_gen.grouped_query(skeleton, having=None, group_col=group_col)
        expected = self.execute(base.to_sql(), ast=base).rows
        union: list = []
        for i, part in enumerate(partitions):
            q = self.query_gen.grouped_query(
                skeleton, having=part, group_col=group_col
            )
            union.extend(self.execute(q.to_sql(), is_main_query=(i == 0), ast=q).rows)
        if self.compare_rows(expected, union):
            return None
        return self.report(
            f"HAVING partition union has {len(union)} groups, base has "
            f"{len(expected)}"
        )


def _partitions(p: A.Expr) -> list[A.Expr]:
    """The TLP triple: p, NOT p, p IS NULL."""
    return [p, A.Unary("NOT", p), A.IsNull(p)]


def _combine(func: str, parts: list):
    non_null = [v for v in parts if v is not None]
    if func in ("COUNT", "SUM"):
        if func == "COUNT":
            return sum(non_null) if non_null else 0
        return sum(non_null) if non_null else None
    if not non_null:
        return None
    return min(non_null) if func == "MIN" else max(non_null)


def _agg_equal(a, b) -> bool:
    if isinstance(a, float) or isinstance(b, float):
        if a is None or b is None:
            return a is b
        return abs(float(a) - float(b)) < 1e-9
    return a == b
