"""``coddtest`` command-line interface.

Subcommands::

    coddtest hunt     --dialect sqlite --tests 1000 [--buggy] [--oracle coddtest] [--workers N]
    coddtest fleet    --workers 4 --tests 2000 [--corpus bugs.jsonl] [--trace run.jsonl] [--status-port N]
    coddtest diff     --backends minidb,sqlite3 --tests 500 [--workers N] [--corpus out.jsonl]
    coddtest compare  --tests 400 [--workers N]  # per-oracle detection counts
    coddtest sqlite3  --tests 200                # run against the real SQLite
    coddtest corpus   report|merge|replay ...    # triage JSONL bug corpora
    coddtest backends list|probe ...             # backend registry + capability probes
    coddtest top      RUN.trace.jsonl | http://HOST:PORT  # one top-style frame
    coddtest trace    report RUN.trace.jsonl     # offline trace analysis

Examples live in ``examples/``; this CLI wraps the same public API for
quick interactive use.  ``hunt`` and ``compare`` route through the
fleet orchestrator, so ``--workers 1`` (the default) reproduces the
historical serial behaviour bit-for-bit while ``--workers N`` shards
the same campaign across N processes.

Determinism guarantee: every subcommand is deterministic in its inputs
-- the same seed/workers/budget replays the same campaign, and the
``corpus`` subcommands render the same files byte-identically (only
wall-clock throughput lines differ between runs).
"""

from __future__ import annotations

import argparse
import sys

from repro.adapters import Sqlite3Adapter
from repro.core import CoddTestOracle
from repro.dialects import PROFILES
from repro.fleet import (
    BugCorpus,
    FleetConfig,
    ProgressPrinter,
    make_replay_reducer,
    run_fleet,
)
from repro.fleet.orchestrator import ORACLE_FACTORIES as ORACLES
from repro.guidance import GUIDANCE_MODES, CoverageMap

#: Oracles usable against a single backend (``hunt``/``fleet``/
#: ``compare``); the differential oracle needs a backend pair and has
#: its own ``diff`` subcommand.
SINGLE_ENGINE_ORACLES = sorted(n for n in ORACLES if n != "differential")
from repro.report import render_fleet_table
from repro.runner import run_campaign
from repro.triage import (
    cluster_corpus,
    load_corpus,
    merge_corpora,
    render_triage,
    replay_clusters,
    replay_representative,
    triage_summary_lines,
)

#: Shared help-text suffix: the guarantee every campaign subcommand makes.
_DETERMINISM = (
    "Deterministic: the same --seed/--workers/--tests always replays "
    "the same campaign and prints the same results (wall-clock "
    "throughput lines aside)."
)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="coddtest",
        description="CODDTest: constant-optimization-driven DBMS testing "
        "(SIGMOD 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hunt = sub.add_parser(
        "hunt",
        help="run a bug-hunting campaign on MiniDB",
        description="Run one bug-hunting campaign on MiniDB. "
        + _DETERMINISM,
    )
    _add_campaign_args(hunt, default_tests=1000)

    fleet = sub.add_parser(
        "fleet",
        help="sharded parallel campaign with a persistent bug corpus",
        description="Shard one campaign across a worker pool and feed "
        "a persistent, deduplicated JSONL bug corpus. " + _DETERMINISM
        + " A --seconds budget trades that guarantee for wall-clock "
        "control.",
    )
    _add_campaign_args(fleet, default_tests=None)
    fleet.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="wall-clock budget per shard (default when --tests is "
        "omitted: 2000 tests)",
    )
    fleet.add_argument(
        "--corpus",
        default=None,
        metavar="PATH",
        help="JSONL bug corpus: resumed if it exists, new bugs appended",
    )
    fleet.add_argument(
        "--coverage",
        default=None,
        metavar="PATH",
        help="plan-coverage checkpoint (JSON) for guided runs: loaded "
        "if it exists, saved at the end (default with --guidance and "
        "--corpus: CORPUS.coverage.json)",
    )
    fleet.add_argument(
        "--max-reports", type=int, default=1000, dest="max_reports"
    )
    fleet.add_argument(
        "--no-reduce",
        action="store_true",
        help="skip ddmin reduction of first-seen bugs",
    )

    diff = sub.add_parser(
        "diff",
        help="differential campaign: replay generated states and "
        "queries against two backends and report divergences",
        description="Tee every generated statement to a primary and a "
        "reference backend and report result divergences. "
        + _DETERMINISM,
    )
    diff.add_argument(
        "--backends",
        default="minidb,sqlite3",
        metavar="PRIMARY,SECONDARY",
        help="comma-separated pair of registered backend names (see "
        "`coddtest backends list`); the first is the engine under test "
        "(receives --buggy faults), the second the trusted reference "
        "(default: minidb,sqlite3)",
    )
    diff.add_argument(
        "--dialect",
        choices=sorted(PROFILES),
        default="sqlite",
        help="MiniDB profile for minidb backends",
    )
    diff.add_argument("--tests", type=int, default=None)
    diff.add_argument("--seed", type=int, default=0)
    diff.add_argument("--workers", type=int, default=1)
    diff.add_argument(
        "--buggy",
        action="store_true",
        help="seed the primary's injected fault catalog",
    )
    diff.add_argument(
        "--seconds",
        type=float,
        default=None,
        help="wall-clock budget per shard (default when --tests is "
        "omitted: 500 tests)",
    )
    diff.add_argument(
        "--corpus",
        default=None,
        metavar="PATH",
        help="JSONL bug corpus: resumed if it exists, new bugs appended",
    )
    diff.add_argument(
        "--coverage",
        default=None,
        metavar="PATH",
        help="plan-coverage checkpoint (JSON) for guided runs: loaded "
        "if it exists, saved at the end (default with --guidance and "
        "--corpus: CORPUS.coverage.json)",
    )
    diff.add_argument(
        "--max-reports", type=int, default=1000, dest="max_reports"
    )
    _add_guidance_args(diff)
    _add_cache_args(diff)
    _add_obs_args(diff)

    compare = sub.add_parser(
        "compare",
        help="compare oracle throughput",
        description="Run every single-engine oracle on the same budget "
        "and print efficiency metrics side by side. " + _DETERMINISM,
    )
    compare.add_argument("--tests", type=int, default=400)
    compare.add_argument("--dialect", choices=sorted(PROFILES), default="sqlite")
    compare.add_argument("--seed", type=int, default=0)
    compare.add_argument("--workers", type=int, default=1)
    _add_cache_args(compare)

    real = sub.add_parser(
        "sqlite3",
        help="test the real stdlib SQLite",
        description="Run the CODDTest oracle against the real stdlib "
        "sqlite3 module. Deterministic: the same --seed/--tests "
        "generates the same statements (findings depend on the "
        "installed SQLite version).",
    )
    real.add_argument("--tests", type=int, default=200)
    real.add_argument("--seed", type=int, default=0)
    _add_cache_args(real)

    _add_corpus_parser(sub)
    _add_backends_parser(sub)
    _add_top_parser(sub)
    _add_trace_parser(sub)

    args = parser.parse_args(argv)

    try:
        if args.command == "hunt":
            return _hunt(args)
        if args.command == "fleet":
            return _fleet(args)
        if args.command == "diff":
            return _diff(args)
        if args.command == "compare":
            return _compare(args)
        if args.command == "corpus":
            return _corpus(args)
        if args.command == "backends":
            return _backends(args)
        if args.command == "top":
            return _top(args)
        if args.command == "trace":
            return _trace(args)
        return _sqlite3(args)
    except (ValueError, OSError) as exc:
        # Bad config (e.g. --workers 0), unusable --corpus path, or a
        # malformed corpus file.
        print(f"coddtest: error: {exc}", file=sys.stderr)
        return 2


def _add_corpus_parser(sub) -> None:
    corpus = sub.add_parser(
        "corpus",
        help="triage JSONL bug corpora: report, merge, replay",
        description="Load one or many corpus files (any fleet era; "
        "entries without backend_pair load as single-engine), cluster "
        "them by fault id, plan-fingerprint signature, and backend "
        "pair, and render Table-1-style summaries. Deterministic: the "
        "same input files render byte-identical output (stable cluster "
        "order, no timestamps).",
    )
    csub = corpus.add_subparsers(dest="corpus_command", required=True)

    report = csub.add_parser(
        "report",
        help="render a Table-1-style triage summary of corpus files",
        description="Cluster corpus entries and render per-fault / "
        "per-oracle counts plus one line per cluster (first-seen "
        "shard/seed, reduced witness size, replay verdict). "
        "Deterministic: two consecutive invocations on the same files "
        "are byte-identical; replay drives only deterministic engines.",
    )
    report.add_argument("paths", nargs="+", metavar="CORPUS.jsonl")
    report.add_argument(
        "--format",
        choices=("text", "markdown", "json"),
        default="text",
        help="output format (default: text)",
    )
    report.add_argument(
        "--no-replay",
        action="store_true",
        help="skip replay verification of cluster representatives",
    )
    report.add_argument(
        "--dialect",
        choices=sorted(PROFILES),
        default=None,
        help="override the MiniDB profile used for replay (default: "
        "the dialect recorded per entry, else inferred from fault ids)",
    )
    _add_replay_cache_arg(report)

    merge = csub.add_parser(
        "merge",
        help="merge corpus files into one deduplicated corpus",
        description="Deduplicate entries by fingerprint (first seen "
        "wins, sighting counters accumulate) and write one merged "
        "corpus. Deterministic: output entries are sorted by "
        "fingerprint, so the same inputs write a byte-identical file.",
    )
    merge.add_argument("paths", nargs="+", metavar="CORPUS.jsonl")
    merge.add_argument(
        "--out", required=True, metavar="PATH", help="merged corpus path"
    )

    replay = csub.add_parser(
        "replay",
        help="replay-verify one representative witness per cluster",
        description="Replay each cluster's best witness on a freshly "
        "built engine (or backend pair) and print reproduces / stale / "
        "unverifiable verdicts. Deterministic: replay drives only "
        "deterministic engines, so verdicts repeat across invocations.",
    )
    replay.add_argument("paths", nargs="+", metavar="CORPUS.jsonl")
    replay.add_argument(
        "--dialect",
        choices=sorted(PROFILES),
        default=None,
        help="override the MiniDB profile used for replay",
    )
    replay.add_argument(
        "--strict",
        action="store_true",
        help="exit nonzero when any cluster replays as stale "
        "(unverifiable clusters have nothing to re-check and pass)",
    )
    _add_replay_cache_arg(replay)


def _add_backends_parser(sub) -> None:
    backends = sub.add_parser(
        "backends",
        help="list registered DBMS backends and probe their capabilities",
        description="Inspect the pluggable backend registry: the "
        "built-in backends plus anything third-party packages register "
        "through 'coddtest.backends' entry points.  'probe' runs the "
        "canned feature-probe program set against a backend build and "
        "prints (or caches) its capability vector -- the input the "
        "differential compat policy is derived from.  Deterministic: "
        "probing the same backend build twice yields a byte-identical "
        "vector.",
    )
    bsub = backends.add_subparsers(dest="backends_command", required=True)

    bsub.add_parser(
        "list",
        help="list registered backends with availability and version",
        description="One row per registered backend: availability "
        "(optional backends report why they cannot build here), "
        "simulated flag (ground-truth fault attribution), version, "
        "and description.  Broken entry points are reported on stderr "
        "without failing discovery.",
    )

    probe = bsub.add_parser(
        "probe",
        help="run the capability probe set against backends",
        description="Build each named backend faults-off, run the "
        "canned probe programs, and print one summary line per "
        "capability vector.  Vectors are cached per (backend, "
        "version, probe set) when --cache-dir or CODDTEST_CAPVEC_DIR "
        "is set.",
    )
    probe.add_argument(
        "names",
        nargs="*",
        metavar="BACKEND",
        help="backends to probe (default: every available backend)",
    )
    probe.add_argument(
        "--dialect",
        choices=sorted(PROFILES),
        default="sqlite",
        help="MiniDB profile for dialect-sensitive backends",
    )
    probe.add_argument(
        "--cache-dir",
        default=None,
        metavar="DIR",
        dest="cache_dir",
        help="on-disk capability-vector cache directory (also settable "
        "via CODDTEST_CAPVEC_DIR)",
    )
    probe.add_argument(
        "--out",
        default=None,
        metavar="PATH",
        help="write every probed vector into one JSON document",
    )
    probe.add_argument(
        "--force",
        action="store_true",
        help="re-probe even when a cached vector exists",
    )


def _add_top_parser(sub) -> None:
    top = sub.add_parser(
        "top",
        help="render a top-style status frame from a trace or live URL",
        description="Render one top-style frame of a fleet's status: "
        "pass a trace file for a finished run, or the http://HOST:PORT "
        "URL of a live --status-port endpoint.  Frames rendered from a "
        "trace file are deterministic; live frames report wall-clock.",
    )
    top.add_argument(
        "source",
        metavar="TRACE.jsonl|URL",
        help="trace file path, or http(s):// status endpoint URL",
    )
    top.add_argument(
        "--follow",
        action="store_true",
        help="poll a live URL every --interval seconds until the run "
        "reports state=done (ignored for trace files)",
    )
    top.add_argument(
        "--interval",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="--follow poll interval (default: 2.0)",
    )


def _add_trace_parser(sub) -> None:
    trace = sub.add_parser(
        "trace",
        help="offline analysis of structured trace files",
        description="Analyze a JSONL trace written by --trace. "
        "Deterministic: the same trace file renders byte-identical "
        "output (all times are offsets from the first record).",
    )
    tsub = trace.add_subparsers(dest="trace_command", required=True)
    report = tsub.add_parser(
        "report",
        help="render run timeline and per-phase time breakdown",
        description="Fold a trace into a run summary: shard lifecycle "
        "timeline, guided round barriers, bug arrivals, and a "
        "flamegraph-style per-phase table.",
    )
    report.add_argument("path", metavar="TRACE.jsonl")


def _add_obs_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--trace",
        default=None,
        metavar="PATH",
        help="write a structured JSONL trace of the run (schema-"
        "versioned events: shard lifecycle, tests, bugs, round "
        "barriers); analyze with `coddtest trace report PATH` or "
        "`coddtest top PATH`.  Campaign results are bit-identical "
        "with and without tracing.",
    )
    sub_parser.add_argument(
        "--status-port",
        type=int,
        default=None,
        dest="status_port",
        metavar="N",
        help="serve a live JSON status snapshot on 127.0.0.1:N while "
        "the fleet runs (0 picks a free port; watch it with "
        "`coddtest top http://127.0.0.1:N`)",
    )
    sub_parser.add_argument(
        "--quiet", action="store_true", help="suppress progress lines"
    )


def _add_replay_cache_arg(sub_parser) -> None:
    sub_parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="share one evaluation cache across replayed witnesses "
        "(default: on; verdicts are identical either way).  --no-cache "
        "replays every witness on the uncached reference path.",
    )


def _add_cache_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--cache",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="worker-local evaluation caching on the oracle hot path "
        "(default: on).  Campaign results are bit-identical with and "
        "without the cache (gated in CI); only throughput and the "
        "cache-stats line differ.  --no-cache disables it.",
    )
    sub_parser.add_argument(
        "--vector",
        action=argparse.BooleanOptionalAction,
        default=True,
        help="column-at-a-time expression evaluation in the engine "
        "(default: on).  Bit-identical to per-row evaluation (gated in "
        "CI); only throughput differs.  --no-vector disables it.",
    )


def _add_campaign_args(sub_parser, default_tests: int | None) -> None:
    sub_parser.add_argument(
        "--dialect", choices=sorted(PROFILES), default="sqlite"
    )
    sub_parser.add_argument(
        "--oracle", choices=SINGLE_ENGINE_ORACLES, default="coddtest"
    )
    sub_parser.add_argument("--tests", type=int, default=default_tests)
    sub_parser.add_argument("--seed", type=int, default=0)
    sub_parser.add_argument("--workers", type=int, default=1)
    sub_parser.add_argument(
        "--buggy",
        action="store_true",
        help="enable the profile's injected fault catalog",
    )
    _add_guidance_args(sub_parser)
    _add_cache_args(sub_parser)
    _add_obs_args(sub_parser)


def _add_guidance_args(sub_parser) -> None:
    sub_parser.add_argument(
        "--guidance",
        choices=GUIDANCE_MODES,
        default=None,
        help="steer generation with a plan-coverage bandit instead of "
        "uniform-random knobs (deterministic for a fixed "
        "--seed/--workers; a 1-worker guided run is bit-reproducible "
        "from its seed)",
    )
    sub_parser.add_argument(
        "--guidance-rounds",
        type=int,
        default=4,
        dest="guidance_rounds",
        metavar="N",
        help="snapshot-exchange barriers per guided run (default: 4; "
        "clamped so every worker runs at least 64 tests -- or, for "
        "--seconds budgets, 2 seconds -- per round; small budgets may "
        "run as a single round with no exchange)",
    )


def _hunt(args) -> int:
    config = FleetConfig(
        oracle=args.oracle,
        dialect=args.dialect,
        buggy=args.buggy,
        workers=args.workers,
        seed=args.seed,
        n_tests=args.tests,
        guidance=args.guidance,
        guidance_rounds=args.guidance_rounds,
        use_cache=args.cache,
        use_vector=args.vector,
        trace_path=args.trace,
        status_port=args.status_port,
    )
    printer = None if args.quiet else ProgressPrinter()
    result = run_fleet(config, printer=printer)
    stats = result.merged
    _print_arm_summary(result)
    _print_cache_line(stats)
    _print_phase_line(args, stats, result.wall_seconds)
    _print_trace_note(args)
    print(
        f"{args.oracle} on {args.dialect}: {stats.tests} tests, "
        f"{stats.queries_ok} queries, QPT {stats.qpt:.2f}, "
        f"{len(stats.unique_plans)} unique plans, "
        f"coverage {100 * stats.branch_coverage:.1f}%"
    )
    print(f"bug reports: {len(stats.reports)} ({stats.bug_reports_by_kind})")
    if stats.detected_fault_ids:
        print("distinct injected bugs found:")
        for fid in sorted(stats.detected_fault_ids):
            print(f"  - {fid}")
    if stats.reports:
        report = stats.reports[0]
        print("\nfirst bug-inducing test case:")
        for sql in report.statements:
            print(f"  {sql}")
    return 0


def _fleet(args) -> int:
    n_tests = args.tests
    if n_tests is None and args.seconds is None:
        n_tests = 2000
    config = FleetConfig(
        oracle=args.oracle,
        dialect=args.dialect,
        buggy=args.buggy,
        workers=args.workers,
        seed=args.seed,
        n_tests=n_tests,
        seconds=args.seconds,
        max_reports=args.max_reports,
        guidance=args.guidance,
        guidance_rounds=args.guidance_rounds,
        use_cache=args.cache,
        use_vector=args.vector,
        trace_path=args.trace,
        status_port=args.status_port,
    )
    reduce_fn = None if args.no_reduce else make_replay_reducer(config)
    corpus, known_before = _open_corpus(args.corpus, reduce_fn)
    printer = None if args.quiet else ProgressPrinter()
    coverage, coverage_path = _open_coverage(args)

    result = run_fleet(config, corpus=corpus, printer=printer, coverage=coverage)
    _print_arm_summary(result)
    _print_cache_line(result.merged)
    _print_phase_line(args, result.merged, result.wall_seconds)
    _print_trace_note(args)

    print(render_fleet_table(result.shards, result.merged))
    print(
        f"\nfleet wall-clock {result.wall_seconds:.1f}s, "
        f"{result.merged.tests / max(result.wall_seconds, 1e-9):.1f} tests/s "
        f"across {config.workers} worker(s)"
    )
    # End-of-run triage summary: the clustered corpus, not the raw
    # entry count, is what a human acts on.
    for line in triage_summary_lines(
        result.clusters or [],
        new_unique=len(result.new_fingerprints),
        duplicates=result.duplicate_reports,
    ):
        print(line)
    if known_before:
        print(f"  ({known_before} known before this run, {len(corpus)} total)")
    if args.corpus:
        corpus.save()
        print(f"corpus saved to {args.corpus}")
    if coverage_path and result.coverage is not None:
        result.coverage.save(coverage_path)
        print(f"coverage checkpoint saved to {coverage_path}")
    _print_new_entries(corpus, set(result.new_fingerprints), cap=5, noun="bugs")
    return 0


def _open_coverage(args) -> "tuple[CoverageMap | None, str | None]":
    """The fleet's coverage checkpoint: explicit --coverage path, else
    derived from --corpus for guided runs, else in-memory only."""
    if args.guidance is None:
        if getattr(args, "coverage", None):
            # Unguided runs track no coverage; silently ignoring the
            # path would leave the user believing a checkpoint exists.
            raise ValueError(
                "--coverage requires --guidance plan-coverage"
            )
        return None, None
    path = getattr(args, "coverage", None)
    if path is None and args.corpus:
        path = args.corpus + ".coverage.json"
    if path is None:
        return None, None
    return CoverageMap.load(path), path


def _print_cache_line(stats) -> None:
    """One-line hit/miss summary of the worker-local evaluation cache
    (silent when the run was uncached).  Cache counters are the only
    campaign output allowed to vary between cache-on and cache-off
    runs of the same seed."""
    cs = stats.cache_stats
    if not cs:
        return
    print(
        f"eval cache: {stats.cache_hits} hits / {stats.cache_misses} "
        f"misses ({100 * stats.cache_hit_rate:.1f}% hit rate; "
        f"parse {cs.get('parse_hits', 0)}/{cs.get('parse_hits', 0) + cs.get('parse_misses', 0)}, "
        f"stmt {cs.get('stmt_hits', 0)}/{cs.get('stmt_hits', 0) + cs.get('stmt_misses', 0)}, "
        f"expr {cs.get('eval_hits', 0)}/{cs.get('eval_hits', 0) + cs.get('eval_misses', 0)})"
    )


def _print_phase_line(args, stats, wall_seconds: float = 0.0) -> None:
    """One-line per-phase wall-clock breakdown (generate / parse /
    execute / compare, plus the unprofiled residual).  Phase timings
    are wall-clock, so they go to stderr with the other diagnostics:
    stdout stays a pure function of the seed (diffable across runs).
    Suppressed by --quiet."""
    if getattr(args, "quiet", False):
        return
    from repro.obs import format_phase_breakdown

    line = format_phase_breakdown(stats.phase_stats, wall_seconds)
    if line:
        print(line, file=sys.stderr)


def _print_trace_note(args) -> None:
    if getattr(args, "trace", None):
        print(f"trace written to {args.trace}")


def _top(args) -> int:
    """Render top-style frame(s) from a live status URL or a trace."""
    import time as _time

    from repro.obs import (
        fetch_status,
        read_trace,
        render_top_frame,
        snapshot_from_trace,
    )

    if args.source.startswith(("http://", "https://")):
        while True:
            snap = fetch_status(args.source)
            sys.stdout.write(render_top_frame(snap))
            sys.stdout.flush()
            if not args.follow or snap.get("state") == "done":
                return 0
            _time.sleep(args.interval)
    records = read_trace(args.source)
    sys.stdout.write(render_top_frame(snapshot_from_trace(records)))
    return 0


def _trace(args) -> int:
    from repro.obs import read_trace, render_trace_report

    sys.stdout.write(render_trace_report(read_trace(args.path)))
    return 0


def _print_arm_summary(result) -> None:
    """Per-arm pull/yield table of a guided run (no-op when unguided)."""
    rows = result.arm_summary
    if not rows:
        return
    print("guidance arms (new plan fingerprints per arm):")
    for arm, pulls, new_plans in rows:
        print(f"  {arm:18s} {pulls:6d} pulls  {new_plans:5d} new plans")


def _open_corpus(path, reduce_fn=None) -> "tuple[BugCorpus, int]":
    """Open (or create) the JSONL corpus at *path*; None means an
    in-memory corpus.  Returns it with the number of already-known
    bugs."""
    if not path:
        return BugCorpus(reduce_fn=reduce_fn), 0
    corpus = BugCorpus.open(path, reduce_fn=reduce_fn)
    # Fail fast on an unwritable path -- not after a long campaign.
    with open(path, "a", encoding="utf-8"):
        pass
    return corpus, len(corpus)


def _print_new_entries(
    corpus: BugCorpus,
    new: set,
    cap: int,
    noun: str,
    with_description: bool = False,
) -> None:
    """Show up to *cap* of this run's newly fingerprinted entries."""
    shown = 0
    for entry in corpus.entries.values():
        if entry.fingerprint not in new:
            continue
        if shown >= cap:
            print(f"\n... and {len(new) - shown} more new {noun}")
            break
        shown += 1
        print(f"\n[{entry.kind}] {entry.fingerprint} ({entry.oracle})")
        if with_description:
            print(f"  {entry.description}")
        for sql in entry.reduced_statements or entry.statements:
            print(f"  {sql}")


def _diff(args) -> int:
    pair = tuple(b.strip() for b in args.backends.split(",") if b.strip())
    if len(pair) != 2:
        print(
            f"coddtest: error: --backends expects two comma-separated "
            f"names, got {args.backends!r}",
            file=sys.stderr,
        )
        return 2
    n_tests = args.tests
    if n_tests is None and args.seconds is None:
        n_tests = 500
    config = FleetConfig(
        oracle="differential",
        backend_pair=pair,
        dialect=args.dialect,
        buggy=args.buggy,
        workers=args.workers,
        seed=args.seed,
        n_tests=n_tests,
        seconds=args.seconds,
        max_reports=args.max_reports,
        guidance=args.guidance,
        guidance_rounds=args.guidance_rounds,
        use_cache=args.cache,
        use_vector=args.vector,
        trace_path=args.trace,
        status_port=args.status_port,
    )
    corpus, known_before = _open_corpus(args.corpus)
    printer = None if args.quiet else ProgressPrinter()
    coverage, coverage_path = _open_coverage(args)

    result = run_fleet(config, corpus=corpus, printer=printer, coverage=coverage)
    stats = result.merged
    _print_arm_summary(result)
    _print_cache_line(stats)
    _print_phase_line(args, stats, result.wall_seconds)
    _print_trace_note(args)

    print(render_fleet_table(result.shards, stats))
    print(
        f"\ndifferential {pair[0]} vs {pair[1]}: {stats.tests} tests, "
        f"{stats.skipped} skipped, {len(stats.unique_plans)} unique "
        f"primary plans, {result.wall_seconds:.1f}s wall across "
        f"{config.workers} worker(s)"
    )
    print(f"divergences: {len(stats.reports)} report(s)")
    for line in triage_summary_lines(
        result.clusters or [],
        new_unique=len(result.new_fingerprints),
        duplicates=result.duplicate_reports,
    ):
        print(line)
    if known_before:
        print(f"  ({known_before} known before this run, {len(corpus)} total)")
    if stats.detected_fault_ids:
        print("distinct injected bugs implicated:")
        for fid in sorted(stats.detected_fault_ids):
            print(f"  - {fid}")
    if args.corpus:
        corpus.save()
        print(f"corpus saved to {args.corpus}")
    if coverage_path and result.coverage is not None:
        result.coverage.save(coverage_path)
        print(f"coverage checkpoint saved to {coverage_path}")
    _print_new_entries(
        corpus,
        set(result.new_fingerprints),
        cap=3,
        noun="divergences",
        with_description=True,
    )
    # Without injected faults every divergence is unexpected -- either
    # a real engine drift or a generator portability hole -- so signal
    # it in the exit code (this is what lets CI smoke runs fail).
    if stats.reports and not args.buggy:
        return 1
    return 0


def _compare(args) -> int:
    for name in SINGLE_ENGINE_ORACLES:
        config = FleetConfig(
            oracle=name,
            dialect=args.dialect,
            workers=args.workers,
            seed=args.seed,
            n_tests=args.tests,
            use_cache=args.cache,
        )
        stats = run_fleet(config).merged
        print(
            f"{name:10s} tests/s {stats.tests_per_second:8.1f}  "
            f"QPT {stats.qpt:5.2f}  plans {len(stats.unique_plans):5d}  "
            f"coverage {100 * stats.branch_coverage:5.1f}%"
        )
    return 0


def _backends(args) -> int:
    from repro import backends as registry

    registry.ensure_discovered()
    if args.backends_command == "list":
        return _backends_list(registry)
    return _backends_probe(registry, args)


def _backends_list(registry) -> int:
    rows = [["NAME", "STATUS", "SIMULATED", "VERSION", "DESCRIPTION"]]
    for info in registry.all_backends():
        reason = info.why_unavailable()
        rows.append(
            [
                info.name,
                "available" if reason is None else f"unavailable ({reason})",
                "yes" if info.simulated else "no",
                info.version("sqlite") if reason is None else "-",
                info.description,
            ]
        )
    widths = [max(len(r[i]) for r in rows) for i in range(len(rows[0]) - 1)]
    for row in rows:
        cells = [row[i].ljust(widths[i]) for i in range(len(widths))]
        print("  ".join(cells + [row[-1]]).rstrip())
    for err in registry.discovery_errors():
        print(f"coddtest: entry-point error: {err}", file=sys.stderr)
    return 0


def _backends_probe(registry, args) -> int:
    import json

    names = list(args.names) or registry.available_backend_names()
    vectors = []
    for name in names:
        registry.get_backend(name)  # unknown names fail before probing
        vector = registry.probe_backend(
            name,
            dialect=args.dialect,
            cache_dir=args.cache_dir,
            force=args.force,
        )
        ok = sum(1 for probe in vector.probes.values() if probe["ok"])
        print(
            f"{vector.qualified}: version {vector.version}, "
            f"{ok}/{len(vector.probes)} probes ok, "
            f"probe set {vector.probe_set}"
        )
        vectors.append(vector)
    if args.out:
        payload = {v.qualified: v.to_payload() for v in vectors}
        with open(args.out, "w", encoding="utf-8") as fh:
            json.dump(payload, fh, indent=2, sort_keys=True)
            fh.write("\n")
        print(f"capability vectors written to {args.out}")
    return 0


def _corpus(args) -> int:
    if args.corpus_command == "report":
        return _corpus_report(args)
    if args.corpus_command == "merge":
        return _corpus_merge(args)
    return _corpus_replay(args)


def _corpus_report(args) -> int:
    clusters = cluster_corpus(load_corpus(args.paths))
    verdicts = (
        None
        if args.no_replay
        else replay_clusters(
            clusters, dialect=args.dialect, use_cache=args.cache
        )
    )
    print(render_triage(clusters, verdicts, fmt=args.format))
    return 0


def _corpus_merge(args) -> int:
    merged = merge_corpora(args.paths, out_path=args.out)
    total_seen = merged.total_seen
    print(
        f"merged {len(args.paths)} corpus file(s) -> {len(merged)} "
        f"distinct bugs ({total_seen} sightings) in {args.out}"
    )
    return 0


def _corpus_replay(args) -> int:
    clusters = cluster_corpus(load_corpus(args.paths))
    stale = 0
    # One cache across the whole corpus (like `corpus report`), so
    # witnesses sharing DDL prefixes parse once; None replays every
    # witness uncached.
    cache = None
    if args.cache:
        from repro.perf import EvalCache

        cache = EvalCache()
    for cluster in clusters:
        verdict = replay_representative(
            cluster, dialect=args.dialect, cache=cache, use_cache=args.cache
        )
        if verdict.status == "stale":
            stale += 1
        witness = (
            f" [{verdict.witness} witness]" if verdict.witness != "-" else ""
        )
        print(
            f"{cluster.cluster_id}  {verdict.status:12s} "
            f"[{cluster.kind}] {cluster.fault_label}{witness}: "
            f"{verdict.detail}"
        )
    print(
        f"\n{len(clusters)} cluster(s): {stale} stale, "
        f"{len(clusters) - stale} reproducing or unverifiable"
    )
    if args.strict and stale:
        return 1
    return 0


def _sqlite3(args) -> int:
    adapter = Sqlite3Adapter()
    oracle = CoddTestOracle(relation_mode_prob=0.0)
    stats = run_campaign(
        oracle,
        adapter,
        n_tests=args.tests,
        seed=args.seed,
        use_cache=args.cache,
        use_vector=args.vector,
    )
    print(
        f"coddtest on real sqlite3: {stats.tests} tests, "
        f"{stats.queries_ok} queries, {len(stats.reports)} reports"
    )
    for report in stats.reports[:5]:
        print(f"- [{report.kind}] {report.description}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
