"""``coddtest`` command-line interface.

Subcommands::

    coddtest hunt     --dialect sqlite --tests 1000 [--buggy] [--oracle coddtest]
    coddtest compare  --tests 400            # per-oracle detection counts
    coddtest sqlite3  --tests 200            # run against the real SQLite

Examples live in ``examples/``; this CLI wraps the same public API for
quick interactive use.
"""

from __future__ import annotations

import argparse
import sys

from repro.adapters import MiniDBAdapter, Sqlite3Adapter
from repro.baselines import DQEOracle, EETOracle, NoRECOracle, TLPOracle
from repro.core import CoddTestOracle
from repro.dialects import PROFILES, make_engine
from repro.runner import run_campaign

ORACLES = {
    "coddtest": CoddTestOracle,
    "norec": NoRECOracle,
    "tlp": TLPOracle,
    "dqe": DQEOracle,
    "eet": EETOracle,
}


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        prog="coddtest",
        description="CODDTest: constant-optimization-driven DBMS testing "
        "(SIGMOD 2025 reproduction)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    hunt = sub.add_parser("hunt", help="run a bug-hunting campaign on MiniDB")
    hunt.add_argument("--dialect", choices=sorted(PROFILES), default="sqlite")
    hunt.add_argument("--oracle", choices=sorted(ORACLES), default="coddtest")
    hunt.add_argument("--tests", type=int, default=1000)
    hunt.add_argument("--seed", type=int, default=0)
    hunt.add_argument(
        "--buggy",
        action="store_true",
        help="enable the profile's injected fault catalog",
    )

    compare = sub.add_parser("compare", help="compare oracle throughput")
    compare.add_argument("--tests", type=int, default=400)
    compare.add_argument("--dialect", choices=sorted(PROFILES), default="sqlite")
    compare.add_argument("--seed", type=int, default=0)

    real = sub.add_parser("sqlite3", help="test the real stdlib SQLite")
    real.add_argument("--tests", type=int, default=200)
    real.add_argument("--seed", type=int, default=0)

    args = parser.parse_args(argv)

    if args.command == "hunt":
        return _hunt(args)
    if args.command == "compare":
        return _compare(args)
    return _sqlite3(args)


def _hunt(args) -> int:
    adapter = MiniDBAdapter(
        make_engine(args.dialect, with_catalog_faults=args.buggy)
    )
    oracle = ORACLES[args.oracle]()
    stats = run_campaign(oracle, adapter, n_tests=args.tests, seed=args.seed)
    print(
        f"{oracle.name} on {args.dialect}: {stats.tests} tests, "
        f"{stats.queries_ok} queries, QPT {stats.qpt:.2f}, "
        f"{len(stats.unique_plans)} unique plans, "
        f"coverage {100 * stats.branch_coverage:.1f}%"
    )
    print(f"bug reports: {len(stats.reports)} ({stats.bug_reports_by_kind})")
    if stats.detected_fault_ids:
        print("distinct injected bugs found:")
        for fid in sorted(stats.detected_fault_ids):
            print(f"  - {fid}")
    if stats.reports:
        report = stats.reports[0]
        print("\nfirst bug-inducing test case:")
        for sql in report.statements:
            print(f"  {sql}")
    return 0


def _compare(args) -> int:
    for name, cls in ORACLES.items():
        adapter = MiniDBAdapter(make_engine(args.dialect))
        stats = run_campaign(cls(), adapter, n_tests=args.tests, seed=args.seed)
        print(
            f"{name:10s} tests/s {stats.tests_per_second:8.1f}  "
            f"QPT {stats.qpt:5.2f}  plans {len(stats.unique_plans):5d}  "
            f"coverage {100 * stats.branch_coverage:5.1f}%"
        )
    return 0


def _sqlite3(args) -> int:
    adapter = Sqlite3Adapter()
    oracle = CoddTestOracle(relation_mode_prob=0.0)
    stats = run_campaign(oracle, adapter, n_tests=args.tests, seed=args.seed)
    print(
        f"coddtest on real sqlite3: {stats.tests} tests, "
        f"{stats.queries_ok} queries, {len(stats.reports)} reports"
    )
    for report in stats.reports[:5]:
        print(f"- [{report.kind}] {report.description}")
    return 0


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
