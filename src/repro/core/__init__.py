"""CODDTest: the paper's primary contribution.

Constant-Optimization-Driven Database Testing derives, for a random
*original query* O containing an expression phi, a *folded query* F in
which phi has been replaced by its constant-folded result (obtained via
an *auxiliary query* A).  ``E_s(O) != E_s(F)`` signals a bug
(paper Section 3, Algorithm 1).
"""

from repro.core.coddtest import CoddTestOracle
from repro.core.folding import (
    FoldResult,
    build_case_mapping,
    fold_expression,
    fold_value_list,
)
from repro.core.relations import RelationFolder

__all__ = [
    "CoddTestOracle",
    "FoldResult",
    "fold_expression",
    "fold_value_list",
    "build_case_mapping",
    "RelationFolder",
]
