"""The CODDTest oracle (paper Algorithm 1).

Per test:

1. choose a FROM skeleton and a predicate placement (WHERE / HAVING /
   JOIN ON -- Section 3.3, "Query construction"),
2. ``GenExpr``: generate phi and its referenced outer columns {c_i},
3. constant folding: run the auxiliary query A[phi],
4. build and run the original query O embedding phi,
5. constant propagation: build and run F = O[phi / R_phi],
6. any result discrepancy is a bug.

Configurations mirror the paper's Table 3 variants:
``expression_only`` (CODDTest & Expression) disables subqueries in phi;
``subquery_only`` (CODDTest & Subquery) makes phi subquery-rooted.
"""

from __future__ import annotations

import dataclasses

from repro.core.folding import (
    FoldResult,
    FoldSkip,
    fold_expression,
    is_correlated_select,
)
from repro.core.relations import RelationFolder
from repro.generator.expr_gen import ExprGenerator, GenExpr
from repro.generator.query_gen import (
    FromSkeleton,
    QueryGenerator,
    replace_join_on,
)
from repro.minidb import ast_nodes as A
from repro.oracles_base import Oracle, OracleSkip, TestReport


class CoddTestOracle(Oracle):
    """Constant-Optimization-Driven Database Testing."""

    name = "coddtest"

    def __init__(
        self,
        max_depth: int = 3,
        expression_only: bool = False,
        subquery_only: bool = False,
        relation_mode_prob: float = 0.15,
        dml_prob: float = 0.0,
    ) -> None:
        super().__init__()
        if expression_only and subquery_only:
            raise ValueError("choose at most one of expression/subquery only")
        self.max_depth = max_depth
        self.expression_only = expression_only
        self.subquery_only = subquery_only
        self.relation_mode_prob = 0.0 if (expression_only or subquery_only) else relation_mode_prob
        self.dml_prob = dml_prob
        if expression_only:
            self.name = "coddtest-expr"
        elif subquery_only:
            self.name = "coddtest-subq"
        self.expr_gen: ExprGenerator | None = None
        self.query_gen: QueryGenerator | None = None
        self.relation_folder: RelationFolder | None = None

    # -- lifecycle ---------------------------------------------------------------

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=not self.expression_only,
            supports_any_all=self.adapter.supports_any_all,
            strict_typing=self.adapter.strict_typing,
        )
        self.query_gen = QueryGenerator(
            self.rng,
            self.schema,
            self.expr_gen,
            join_kinds=("INNER", "LEFT", "CROSS", "FULL"),
            use_views=True,
        )
        self.relation_folder = RelationFolder(self)

    # -- one test ------------------------------------------------------------------

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        if self.relation_folder is not None and (
            self.rng.random() < self.relation_mode_prob
        ):
            return self.relation_folder.check_once()
        return self._predicate_test()

    def _predicate_test(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        rng = self.rng
        with self.profiled("generate"):
            skeleton = self.query_gen.from_skeleton()

            placements = ["where"] * 6 + ["having"] * 2
            if skeleton.on_join is not None:
                placements += ["join_on"] * 2
            placement = rng.choice(placements)

            phi_gen = self._generate_phi(skeleton, placement)
        phi = phi_gen.expr

        # Step 3: constant folding via the auxiliary query.
        try:
            fold = fold_expression(
                phi_gen,
                skeleton,
                phi_in_join_on=(placement == "join_on"),
                execute=lambda sql, ast=None: self.execute(sql, ast=ast).rows,
                scalar_multi_row=self._scalar_multi_row_policy(),
                is_correlated=is_correlated_select,
            )
        except FoldSkip:
            raise OracleSkip() from None

        # Step 4: the original query embeds phi as a sub-expression.  The
        # query shape is fixed *before* building O so that F differs from
        # O only in the propagated constant.
        if placement == "join_on":
            predicate = phi
        else:
            predicate = self.query_gen.combined_predicate(phi, skeleton.scope)
        shape = self._choose_shape(skeleton, placement)

        original = self._make_query(skeleton, placement, predicate, shape)
        o_result = self.execute(
            original.to_sql(), is_main_query=True, ast=original
        )

        # Step 5: constant propagation yields the folded query.
        folded_pred = A.replace_node(predicate, fold.target, fold.replacement)
        folded = self._make_query(skeleton, placement, folded_pred, shape)
        f_result = self.execute(folded.to_sql(), ast=folded)

        if self.compare_rows(o_result.rows, f_result.rows):
            return None
        return self.report(
            f"original and folded queries disagree: "
            f"{len(o_result.rows)} vs {len(f_result.rows)} rows "
            f"(placement={placement})"
        )

    # -- helpers --------------------------------------------------------------------

    def _generate_phi(self, skeleton: FromSkeleton, placement: str) -> GenExpr:
        assert self.expr_gen is not None
        rng = self.rng
        scope = skeleton.scope
        if self.subquery_only:
            if rng.random() < 0.4:
                return self.expr_gen.subquery_predicate([])
            return self.expr_gen.subquery_predicate(scope)
        if self.expression_only:
            if rng.random() < 0.3:
                return self.expr_gen.independent_predicate()
            return self.expr_gen.predicate(scope)
        r = rng.random()
        if r < 0.25:
            # Independent expression (Figure 1 left branch): constants or
            # non-correlated subqueries.
            return self.expr_gen.independent_predicate()
        if r < 0.55:
            return self.expr_gen.subquery_predicate(scope)
        return self.expr_gen.predicate(scope)

    def _scalar_multi_row_policy(self) -> str:
        engine = getattr(self.adapter, "engine", None)
        if engine is not None:
            return engine.profile.scalar_subquery_multi_row
        return "first"  # real SQLite takes the first row

    def _choose_shape(self, skeleton: FromSkeleton, placement: str):
        """Fix the non-predicate parts of O and F up front."""
        if placement == "having":
            return ("grouped", self.rng.choice(skeleton.scope))
        return ("count" if self.rng.random() < 0.5 else "star", None)

    def _make_query(
        self,
        skeleton: FromSkeleton,
        placement: str,
        predicate: A.Expr,
        shape,
    ) -> A.Select:
        assert self.query_gen is not None
        kind, group_col = shape
        if placement == "having":
            return self.query_gen.grouped_query(
                skeleton, having=predicate, group_col=group_col
            )
        if placement == "join_on":
            new_ref = replace_join_on(skeleton.ref, skeleton.on_join, predicate)
            skeleton = dataclasses.replace(skeleton, ref=new_ref)
            predicate = None  # type: ignore[assignment]
        if kind == "count":
            return self.query_gen.count_query(skeleton, predicate)
        return self.query_gen.star_query(skeleton, predicate)
