"""Constant folding and propagation of expressions (paper Sections 3.1-3.2).

Given the generated expression phi and the FROM skeleton of the original
query, this module builds the *auxiliary query* A[phi], interprets its
result R_phi, and produces the replacement expression for constant
propagation:

* independent phi  -> a literal constant (``SELECT phi``), a value list
  (non-correlated subquery under IN), or a FROM-less UNION chain (under
  ANY/ALL, paper Section 3.3's MySQL workaround);
* dependent phi    -> a searched CASE expression mapping each row of the
  referenced columns {c_i} to phi's value (paper Section 3.2, the
  "polymorphic inline cache" pattern), with NULL keys rendered as
  ``c IS NULL`` (paper Listing 4).
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.generator.expr_gen import GenExpr, ScopeColumn
from repro.generator.query_gen import FromSkeleton
from repro.minidb import ast_nodes as A
from repro.minidb.values import SqlValue

#: Safety caps: beyond these the test is discarded rather than building
#: unwieldy folded queries (mirrors the paper discarding empty-join tests).
MAX_MAP_ENTRIES = 64
MAX_LIST_ITEMS = 32


def is_correlated_select(select: A.Select) -> bool:
    """Syntactic correlation check: a subquery is correlated when it
    references a qualified column whose binding is not declared anywhere
    within the subquery itself (paper Section 2, Subqueries).

    Generated subqueries always qualify their references, so this purely
    syntactic check is exact for oracle-produced queries and conservative
    for hand-written ones.
    """
    bindings: set[str] = set()

    def collect(ref: A.TableRef | None) -> None:
        if ref is None:
            return
        if isinstance(ref, A.NamedTable):
            bindings.add(ref.binding.lower())
        elif isinstance(ref, (A.DerivedTable, A.ValuesTable)):
            bindings.add(ref.alias.lower())
        elif isinstance(ref, A.Join):
            collect(ref.left)
            collect(ref.right)

    def collect_select(sel: A.Select) -> None:
        collect(sel.from_clause)
        for cte in sel.ctes:
            bindings.add(cte.name.lower())
        for node in _select_exprs(sel):
            for sub in A.walk(node):
                if isinstance(
                    sub, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)
                ):
                    collect_select(sub.query)
        if sel.set_op is not None:
            collect_select(sel.set_op[2])

    collect_select(select)
    for expr in _all_exprs(select):
        for ref in A.column_refs(expr):
            if ref.table is not None and ref.table.lower() not in bindings:
                return True
    return False


def _select_exprs(sel: A.Select) -> list[A.Expr]:
    out: list[A.Expr] = [i.expr for i in sel.items if i.expr is not None]
    if sel.where is not None:
        out.append(sel.where)
    out.extend(sel.group_by)
    if sel.having is not None:
        out.append(sel.having)
    out.extend(o.expr for o in sel.order_by)
    return out


def _all_exprs(sel: A.Select) -> list[A.Expr]:
    out = _select_exprs(sel)
    if sel.set_op is not None:
        out.extend(_all_exprs(sel.set_op[2]))
    return out


@dataclass
class FoldResult:
    """Everything needed to derive the folded query F from O."""

    #: SQL text of the auxiliary query (for bug reports).
    aux_sql: str
    #: The node inside O to replace ...
    target: A.Expr
    #: ... and its constant-propagated replacement.
    replacement: A.Expr


class FoldSkip(Exception):
    """The fold cannot be represented (empty join input, oversized map)."""


# ---------------------------------------------------------------------------
# Auxiliary query construction
# ---------------------------------------------------------------------------


def aux_for_independent(phi: A.Expr) -> A.Select:
    """``SELECT phi`` (Algorithm 1 line 4).  For a bare non-correlated
    subquery the SELECT wrapper is dropped (Section 3.1)."""
    if isinstance(phi, A.ScalarSubquery):
        return phi.query
    return A.Select(items=(A.SelectItem(phi, alias="phi"),))


def aux_for_dependent(
    phi: A.Expr,
    refs: list[ScopeColumn],
    skeleton: FromSkeleton,
    phi_in_join_on: bool,
) -> A.Select:
    """``SELECT {c_i}, phi FROM {t_i}`` (Algorithm 1 line 8).

    The auxiliary query replicates the original query's JOIN clauses --
    except when phi is itself a JOIN ON predicate, where it must see the
    raw row pairs before the join applies (paper Section 3.2, Listing 4
    discussion), so the relations are cross-joined without ON.
    """
    items = [A.SelectItem(c.ref, alias=f"k{i}") for i, c in enumerate(refs)]
    items.append(A.SelectItem(phi, alias="phi"))
    from_ref = skeleton.join_free_ref() if phi_in_join_on else skeleton.ref
    return A.Select(items=tuple(items), from_clause=from_ref)


# ---------------------------------------------------------------------------
# Constant propagation
# ---------------------------------------------------------------------------


def fold_scalar(rows: list[tuple[SqlValue, ...]], multi_row: str) -> A.Expr:
    """Interpret an independent expression's auxiliary result as a single
    constant.  An empty result is NULL (Section 3, "the empty result can
    be considered as NULL")."""
    if not rows:
        return A.Literal(None)
    if len(rows[0]) != 1:
        raise FoldSkip("independent expression must fold to one column")
    if len(rows) > 1:
        if multi_row == "first":
            return A.Literal(rows[0][0])
        raise FoldSkip("scalar fold got more than one row")
    return A.Literal(rows[0][0])


def fold_value_list(rows: list[tuple[SqlValue, ...]]) -> list[A.Expr]:
    """Interpret a subquery result as a constant list (for IN)."""
    if rows and len(rows[0]) != 1:
        raise FoldSkip("value list fold needs a single column")
    if len(rows) > MAX_LIST_ITEMS:
        raise FoldSkip("value list too large")
    return [A.Literal(r[0]) for r in rows]


def fold_union_chain(rows: list[tuple[SqlValue, ...]]) -> A.Select:
    """A FROM-less ``SELECT v1 UNION ALL SELECT v2 ...`` chain -- the
    representation of a constant list accepted as an ANY/ALL operand
    (paper Section 3.3)."""
    values = fold_value_list(rows)
    if not values:
        raise FoldSkip("cannot build an empty UNION chain")
    head: A.Select | None = None
    for lit in reversed(values):
        core = A.Select(items=(A.SelectItem(lit, alias="v"),))
        if head is not None:
            core = A.Select(
                items=core.items,
                set_op=("UNION", True, head),
            )
        head = core
    assert head is not None
    return head


def build_case_mapping(
    refs: list[ScopeColumn],
    rows: list[tuple[SqlValue, ...]],
) -> A.Expr:
    """Build the CASE expression representing a dependent expression's
    row->value mapping (paper Section 3.2, Figure 1 step 5).

    Each auxiliary row ``(k_1 ... k_n, v)`` becomes one arm::

        WHEN (c_1 = k_1 AND ... AND c_n = k_n) THEN v

    NULL keys render as ``c IS NULL`` (paper Listing 4).  Duplicate keys
    are collapsed (a dependent expression is a function of its
    arguments, so duplicates agree for deterministic expressions).
    """
    whens: list[A.CaseWhen] = []
    seen: set[tuple] = set()
    for row in rows:
        if len(row) != len(refs) + 1:
            raise FoldSkip("auxiliary row width mismatch")
        keys, value = row[:-1], row[-1]
        dedup_key = tuple(
            (type(k).__name__, k) for k in keys
        )
        if dedup_key in seen:
            continue
        seen.add(dedup_key)
        conds: list[A.Expr] = []
        for col, key in zip(refs, keys):
            if key is None:
                conds.append(A.IsNull(col.ref))
            else:
                conds.append(A.Binary("=", col.ref, A.Literal(key)))
        whens.append(A.CaseWhen(A.conjoin(conds), A.Literal(value)))
        if len(whens) > MAX_MAP_ENTRIES:
            raise FoldSkip("CASE mapping too large")
    if not whens:
        raise FoldSkip("empty mapping (empty join input); discard test")
    return A.Case(None, tuple(whens), None)


# ---------------------------------------------------------------------------
# Top-level fold dispatch
# ---------------------------------------------------------------------------


def fold_expression(
    gen: GenExpr,
    skeleton: FromSkeleton,
    phi_in_join_on: bool,
    execute,
    *,
    scalar_multi_row: str = "error",
    is_correlated=None,
) -> FoldResult:
    """Fold phi, executing auxiliary queries through *execute*.

    *execute* is a callable ``(sql, ast) -> rows`` provided by the
    oracle (so query accounting stays in one place); *ast* is the
    auxiliary SELECT the SQL was rendered from, letting a cached
    adapter skip the re-parse.  The auxiliary SQL doubles as the
    canonical phi fingerprint under which the perf layer memoizes the
    auxiliary result for the current database state.  ``is_correlated`` decides
    whether a subquery node can be folded independently of the outer row
    (non-correlated, paper Section 3.1) or must go through the dependent
    path (correlated, Section 3.2).
    """
    phi = gen.expr

    def correlated(query: A.Select) -> bool:
        if is_correlated is not None:
            return bool(is_correlated(query))
        return bool(gen.outer_refs)

    # Special shapes: subquery operands folded structurally.
    if isinstance(phi, A.InSubquery) and not correlated(phi.query):
        aux = phi.query
        rows = execute(aux.to_sql(), aux)
        values = fold_value_list(rows)
        if values:
            replacement: A.Expr = A.InList(phi.operand, tuple(values), phi.negated)
        else:
            # x IN (empty set) is FALSE; NOT IN is TRUE.
            replacement = A.Literal(bool(phi.negated))
        return FoldResult(aux.to_sql(), phi, replacement)

    if isinstance(phi, A.Quantified) and not correlated(phi.query):
        aux = phi.query
        rows = execute(aux.to_sql(), aux)
        if not rows:
            # op ANY over the empty set is FALSE; op ALL is TRUE.
            lit = A.Literal(phi.quantifier.upper() == "ALL")
            return FoldResult(aux.to_sql(), phi, lit)
        chain = fold_union_chain(rows)
        replacement = A.Quantified(phi.operand, phi.op, phi.quantifier, chain)
        return FoldResult(aux.to_sql(), phi, replacement)

    if isinstance(phi, A.Exists) and not correlated(phi.query):
        aux = phi.query
        rows = execute(aux.to_sql(), aux)
        result = len(rows) > 0
        if phi.negated:
            result = not result
        return FoldResult(aux.to_sql(), phi, A.Literal(result))

    if isinstance(phi, A.ScalarSubquery) and not correlated(phi.query):
        aux = aux_for_independent(phi)
        rows = execute(aux.to_sql(), aux)
        return FoldResult(
            aux.to_sql(), phi, fold_scalar(rows, scalar_multi_row)
        )

    if gen.independent:
        aux = aux_for_independent(phi)
        rows = execute(aux.to_sql(), aux)
        return FoldResult(
            aux.to_sql(), phi, fold_scalar(rows, scalar_multi_row)
        )

    # Dependent expression: per-row CASE mapping.
    aux = aux_for_dependent(phi, gen.outer_refs, skeleton, phi_in_join_on)
    rows = execute(aux.to_sql(), aux)
    mapping = build_case_mapping(gen.outer_refs, rows)
    return FoldResult(aux.to_sql(), phi, mapping)
