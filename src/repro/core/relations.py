"""Relation-level constant folding (paper Section 3.4).

Beyond predicates, CODDTest folds *relations*: a non-correlated subquery
computing a non-empty result serves as the source of an original
relation, and the folded relation sources the same rows from a table
value constructor (``VALUES``).  Three constructions exist on each side,
chosen at random (paper Section 3.4):

* a real table populated by ``INSERT ... SELECT`` (original) or
  ``INSERT ... VALUES`` (folded) -- how the paper found the TiDB
  ``INSERT`` bug of Listing 6;
* a derived table in FROM;
* a common table expression.

A wrapper predicate applied identically to both relations makes the test
sensitive to downstream evaluation too (the CockroachDB CTE bug of
Listing 7 requires exactly this shape).
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SqlError
from repro.generator.expr_gen import ScopeColumn
from repro.minidb import ast_nodes as A
from repro.minidb.values import SqlType, SqlValue, sql_literal
from repro.oracles_base import OracleSkip, TestReport

if TYPE_CHECKING:  # pragma: no cover
    from repro.core.coddtest import CoddTestOracle

#: Row cap for folded VALUES constructors.
MAX_RELATION_ROWS = 24

_TYPE_NAMES = {
    SqlType.INTEGER: "INT",
    SqlType.REAL: "REAL",
    SqlType.TEXT: "TEXT",
    SqlType.BOOLEAN: "BOOL",
}


class RelationFolder:
    """Implements the Section 3.4 extension on top of a bound oracle."""

    ORIGINAL_KINDS = ("insert_select", "derived", "cte")
    FOLDED_KINDS = ("insert_values", "derived_values", "cte_values")

    def __init__(self, oracle: "CoddTestOracle") -> None:
        self.oracle = oracle

    def check_once(self) -> TestReport | None:
        oracle = self.oracle
        rng = oracle.rng
        assert oracle.schema is not None and oracle.expr_gen is not None

        base_tables = oracle.schema.base_tables
        if not base_tables:
            raise OracleSkip()
        table = rng.choice(base_tables)

        # The source subquery Q (must be non-correlated and non-empty).
        source = self._source_query(table)
        source_sql = source.to_sql()
        rows = oracle.execute(source_sql).rows
        if not rows or len(rows) > MAX_RELATION_ROWS:
            raise OracleSkip()

        columns = [f"rc{i}" for i in range(len(table.columns))]
        col_types = [c.sql_type for c in table.columns]
        scope = [
            ScopeColumn("codd_rel", name, t) for name, t in zip(columns, col_types)
        ]
        if rng.random() < 0.2 and len(scope) >= 1:
            # The Listing-7 shape: NOT BETWEEN with a CASE-valued bound
            # over a CTE/derived relation.
            col = rng.choice(scope)
            case_bound = A.Case(
                None,
                (A.CaseWhen(A.Literal(None), A.Literal(rng.randint(0, 5))),),
                col.ref,
            )
            predicate: A.Expr | None = A.Between(
                col.ref, col.ref, case_bound, negated=True
            )
        elif rng.random() < 0.7:
            predicate = oracle.expr_gen.predicate(scope).expr
        else:
            predicate = None

        o_kind = rng.choice(self.ORIGINAL_KINDS)
        f_kind = rng.choice(self.FOLDED_KINDS)
        try:
            o_rows = self._run_original(o_kind, source, columns, col_types, predicate)
            f_rows = self._run_folded(f_kind, rows, columns, col_types, predicate)
        finally:
            self._cleanup()

        if oracle.compare_rows(o_rows, f_rows):
            return None
        return oracle.report(
            f"relation folding mismatch ({o_kind} vs {f_kind}): "
            f"{len(o_rows)} vs {len(f_rows)} rows"
        )

    # -- source subquery ------------------------------------------------------

    def _source_query(self, table) -> A.Select:
        oracle = self.oracle
        rng = oracle.rng
        alias = "src0"
        items = tuple(
            A.SelectItem(A.ColumnRef(alias, c.name), alias=f"rc{i}")
            for i, c in enumerate(table.columns)
        )
        where: A.Expr | None = None
        r = rng.random()
        if r < 0.25:
            # The Listing-6 shape: a deterministic function in the
            # INSERT ... SELECT predicate (sometimes negated).
            col = rng.choice(table.columns)
            where = A.Binary(
                ">=", A.FuncCall("VERSION", ()), A.ColumnRef(alias, col.name)
            )
            if rng.random() < 0.4:
                where = A.Unary(
                    "NOT",
                    A.Binary(
                        "<", A.FuncCall("VERSION", ()), A.ColumnRef(alias, col.name)
                    ),
                )
        elif r < 0.6:
            col = rng.choice(table.columns)
            inner_scope = [
                ScopeColumn(alias, c.name, c.sql_type) for c in table.columns
            ]
            assert oracle.expr_gen is not None
            saved = oracle.expr_gen.allow_subqueries
            oracle.expr_gen.allow_subqueries = False
            try:
                where = oracle.expr_gen.predicate(inner_scope).expr
            finally:
                oracle.expr_gen.allow_subqueries = saved
        limit = A.Literal(rng.randint(1, 8)) if rng.random() < 0.3 else None
        return A.Select(
            items=items,
            from_clause=A.NamedTable(table.name, alias),
            where=where,
            limit=limit,
        )

    # -- original / folded construction -----------------------------------------

    def _run_original(
        self,
        kind: str,
        source: A.Select,
        columns: list[str],
        col_types: list[SqlType | None],
        predicate: A.Expr | None,
    ) -> list[tuple[SqlValue, ...]]:
        oracle = self.oracle
        if kind == "insert_select":
            self._create_table("codd_o", columns, col_types)
            oracle.execute(f"INSERT INTO codd_o {source.to_sql()}")
            sql = self._select_over("codd_o", predicate)
            return oracle.execute(sql, is_main_query=True).rows
        if kind == "derived":
            pred = _rebind(predicate, "codd_rel", "codd_rel")
            where = f" WHERE {pred.to_sql()}" if pred is not None else ""
            sql = f"SELECT * FROM ({source.to_sql()}) AS codd_rel{where}"
            return oracle.execute(sql, is_main_query=True).rows
        # CTE
        pred = _rebind(predicate, "codd_rel", "codd_rel")
        where = f" WHERE {pred.to_sql()}" if pred is not None else ""
        cols = ", ".join(columns)
        sql = (
            f"WITH codd_rel({cols}) AS ({source.to_sql()}) "
            f"SELECT * FROM codd_rel{where}"
        )
        return oracle.execute(sql, is_main_query=True).rows

    def _run_folded(
        self,
        kind: str,
        rows: list[tuple[SqlValue, ...]],
        columns: list[str],
        col_types: list[SqlType | None],
        predicate: A.Expr | None,
    ) -> list[tuple[SqlValue, ...]]:
        oracle = self.oracle
        values_sql = ", ".join(
            "(" + ", ".join(sql_literal(v) for v in row) + ")" for row in rows
        )
        if kind == "insert_values":
            self._create_table("codd_f", columns, col_types)
            oracle.execute(f"INSERT INTO codd_f VALUES {values_sql}")
            sql = self._select_over("codd_f", predicate)
            return oracle.execute(sql).rows
        pred = _rebind(predicate, "codd_rel", "codd_rel")
        where = f" WHERE {pred.to_sql()}" if pred is not None else ""
        cols = ", ".join(columns)
        if kind == "derived_values":
            sql = (
                f"SELECT * FROM (VALUES {values_sql}) AS codd_rel({cols}){where}"
            )
            return oracle.execute(sql).rows
        sql = (
            f"WITH codd_rel({cols}) AS (VALUES {values_sql}) "
            f"SELECT * FROM codd_rel{where}"
        )
        return oracle.execute(sql).rows

    def _select_over(self, table_name: str, predicate: A.Expr | None) -> str:
        pred = _rebind(predicate, "codd_rel", table_name)
        where = f" WHERE {pred.to_sql()}" if pred is not None else ""
        return f"SELECT * FROM {table_name}{where}"

    def _create_table(
        self, name: str, columns: list[str], col_types: list[SqlType | None]
    ) -> None:
        defs = []
        for col, sql_type in zip(columns, col_types):
            type_name = _TYPE_NAMES.get(sql_type, "") if sql_type else ""
            defs.append(f"{col} {type_name}".strip())
        self.oracle.execute(f"CREATE TABLE {name} ({', '.join(defs)})")

    def _cleanup(self) -> None:
        """Drop scratch tables without disturbing test accounting
        (paper Section 4.3: the extra create/drop statements are why
        CODDTest's QPT exceeds three)."""
        assert self.oracle.adapter is not None
        for name in ("codd_o", "codd_f"):
            try:
                self.oracle.adapter.execute(f"DROP TABLE IF EXISTS {name}")
            except SqlError:  # pragma: no cover - defensive
                pass


def _rebind(
    expr: A.Expr | None, old_binding: str, new_binding: str
) -> A.Expr | None:
    """Re-qualify column references from one relation alias to another."""
    if expr is None or old_binding == new_binding:
        return expr

    def fn(node: A.Expr) -> A.Expr | None:
        if isinstance(node, A.ColumnRef) and node.table == old_binding:
            return A.ColumnRef(new_binding, node.column)
        return None

    return A.transform(expr, fn)
