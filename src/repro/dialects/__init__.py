"""Dialect profiles simulating the paper's five DBMSs under test.

Each profile pairs an :class:`~repro.minidb.engine.EngineProfile`
(typing strictness, feature support -- paper Section 3.3) with the
catalog of injected faults modelled on the bugs reported in Table 1.
"""

from repro.dialects.base import DialectSpec, PROFILES, get_dialect, make_engine
from repro.dialects.catalog import (
    ALL_FAULTS,
    FAULTS_BY_ID,
    FAULTS_BY_PROFILE,
    LOGIC_FAULTS,
)

__all__ = [
    "DialectSpec",
    "PROFILES",
    "get_dialect",
    "make_engine",
    "ALL_FAULTS",
    "FAULTS_BY_ID",
    "FAULTS_BY_PROFILE",
    "LOGIC_FAULTS",
]
