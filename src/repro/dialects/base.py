"""Dialect specifications for the five simulated DBMSs.

The paper tests SQLite, MySQL, CockroachDB, DuckDB, and TiDB (Section 4,
"Tested DBMSs").  Each :class:`DialectSpec` configures a MiniDB engine to
behave like that family:

* **typing** -- SQLite/MySQL/TiDB coerce freely, DuckDB/CockroachDB are
  strict (paper Section 3.3, "Implementation details");
* **ANY/ALL** -- unsupported in SQLite and DuckDB; MySQL/TiDB accept them
  only with subqueries, which the oracles satisfy via ``UNION`` chains
  (paper Section 3.3);
* **scalar subquery cardinality** -- MySQL-family errors when a scalar
  subquery returns more than one row (paper Listing 5), SQLite takes the
  first row.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.minidb.engine import Engine, EngineProfile
from repro.minidb.faults import Fault
from repro.minidb.values import TypingMode


@dataclass(frozen=True)
class DialectSpec:
    """One simulated DBMS: an engine profile plus its seeded faults."""

    name: str
    engine_profile: EngineProfile
    #: GitHub-style star count, only used by reporting (paper Section 4).
    description: str = ""


PROFILES: dict[str, DialectSpec] = {
    "sqlite": DialectSpec(
        name="sqlite",
        engine_profile=EngineProfile(
            name="sqlite",
            typing_mode=TypingMode.RELAXED,
            supports_any_all=False,
            scalar_subquery_multi_row="first",
            display_name="SQLite-like",
        ),
        description="embedded, relaxed typing, no ANY/ALL",
    ),
    "mysql": DialectSpec(
        name="mysql",
        engine_profile=EngineProfile(
            name="mysql",
            typing_mode=TypingMode.RELAXED,
            supports_any_all=True,
            scalar_subquery_multi_row="error",
            display_name="MySQL-like",
        ),
        description="client-server, relaxed typing",
    ),
    "cockroachdb": DialectSpec(
        name="cockroachdb",
        engine_profile=EngineProfile(
            name="cockroachdb",
            typing_mode=TypingMode.STRICT,
            supports_any_all=True,
            scalar_subquery_multi_row="error",
            display_name="CockroachDB-like",
        ),
        description="distributed, strict typing",
    ),
    "duckdb": DialectSpec(
        name="duckdb",
        engine_profile=EngineProfile(
            name="duckdb",
            typing_mode=TypingMode.STRICT,
            supports_any_all=False,
            scalar_subquery_multi_row="error",
            display_name="DuckDB-like",
        ),
        description="embedded analytics, strict typing, no ANY/ALL",
    ),
    "tidb": DialectSpec(
        name="tidb",
        engine_profile=EngineProfile(
            name="tidb",
            typing_mode=TypingMode.RELAXED,
            supports_any_all=True,
            scalar_subquery_multi_row="error",
            display_name="TiDB-like",
        ),
        description="distributed HTAP, relaxed typing",
    ),
}


def get_dialect(name: str) -> DialectSpec:
    """Look up a dialect by name, raising ``KeyError`` with the valid
    options listed."""
    try:
        return PROFILES[name]
    except KeyError:
        valid = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown dialect {name!r}; expected one of: {valid}") from None


def make_engine(
    name: str = "sqlite",
    faults: list[Fault] | None = None,
    with_catalog_faults: bool = False,
) -> Engine:
    """Create an engine for dialect *name*.

    ``with_catalog_faults=True`` seeds the full fault catalog for that
    profile (the "buggy development version" setting of the paper's
    effectiveness evaluation); otherwise only explicitly passed faults
    are active (an idealized bug-free engine).
    """
    spec = get_dialect(name)
    active = list(faults or [])
    if with_catalog_faults:
        from repro.dialects.catalog import FAULTS_BY_PROFILE

        active.extend(FAULTS_BY_PROFILE.get(name, []))
    return Engine(profile=spec.engine_profile, faults=active)
