"""The 45-bug fault catalog (paper Table 1).

Every fault is modelled on a bug class the paper reports, with a
*context-sensitive* trigger so that each test oracle's ability to detect
it is an emergent property of the queries that oracle generates:

* ``where_result`` faults fire during row retrieval of a SELECT -- the
  unoptimized (fetch-clause) form NoREC compares against is unaffected,
  TLP's partition queries are corrupted, and DQE's UPDATE/DELETE
  counterparts use different sites;
* expression-site faults (IN, CASE, BETWEEN, ...) fire wherever the
  expression is evaluated, so oracles that merely move the predicate
  between clauses (NoREC/DQE) only detect them when the trigger is
  conditioned on clause or statement -- mirroring paper Listings 9/10;
* subquery-, JOIN ON-, CTE-, and INSERT-related faults live in features
  only CODDTest exercises (paper Section 4.2: 11 bugs "only by
  CODDTest").

The key asymmetry CODDTest exploits: constant folding *changes the
feature vector* of the query (a subquery becomes a constant, a value
list, or a CASE mapping; a constant-false WHERE eliminates the scan), so
a trigger keyed on those features fires for exactly one of the original
and folded queries.

Totals match Table 1: 24 logic + 14 internal error + 2 crash + 5 hang =
45, distributed as SQLite 7, MySQL 2, CockroachDB 13, DuckDB 12, TiDB 11.
"""

from __future__ import annotations

from repro.minidb.faults import (
    BugStatus,
    BugType,
    Fault,
    Features,
    all_of,
    any_of,
    feature_is,
    feature_true,
)

FIXED = BugStatus.FIXED
VERIFIED = BugStatus.VERIFIED
LOGIC = BugType.LOGIC
INTERNAL = BugType.INTERNAL_ERROR
CRASH = BugType.CRASH
HANG = BugType.HANG


def _no_subquery(features: Features) -> bool:
    return not features.get("has_subquery")


def _has_join(features: Features) -> bool:
    return bool(features.get("join_kinds"))


def _f(
    fault_id: str,
    profile: str,
    bug_type: BugType,
    status: BugStatus,
    sites: set[str],
    trigger,
    effect: str,
    description: str,
    paper_ref: str = "",
    introduced_year: int = 2023,
) -> Fault:
    return Fault(
        fault_id=fault_id,
        profile=profile,
        bug_type=bug_type,
        status=status,
        description=description,
        sites=frozenset(sites),
        trigger=trigger,
        effect=effect,
        paper_ref=paper_ref,
        introduced_year=introduced_year,
    )


# ===========================================================================
# Logic faults (24) -- what CODDTest is designed to find
# ===========================================================================

LOGIC_FAULTS: list[Fault] = [
    # -- SQLite-like (6 logic) ------------------------------------------------
    _f(
        "sqlite_agg_subquery_indexed",
        "sqlite",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(
            feature_true("has_agg_subquery", "has_group_by_subquery"),
            feature_is(access_path="index_scan", statement="SELECT"),
        ),
        "force_true",
        "Aggregate subquery with GROUP BY under an indexed outer query is "
        "mis-evaluated to true (query-planner optimization bug).",
        paper_ref="Listing 1",
        introduced_year=2022,
    ),
    _f(
        "sqlite_join_on_exists",
        "sqlite",
        LOGIC,
        FIXED,
        {"join_on_result"},
        feature_true("has_exists"),
        "force_true",
        "EXISTS predicate in a JOIN ... ON clause is treated as always "
        "true, joining rows that should not match.",
        paper_ref="Listing 8",
        introduced_year=2022,
    ),
    _f(
        "sqlite_view_join_where",
        "sqlite",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(_no_subquery, feature_true("has_view"), _has_join),
        "force_false",
        "Filtering a join that includes a view drops all rows "
        "(view-flattening optimization bug).",
        paper_ref="Section 4.2 (ON-clause family)",
        introduced_year=2019,
    ),
    _f(
        "sqlite_index_between_where",
        "sqlite",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_true("has_between"),
            feature_is(access_path="index_scan"),
        ),
        "invert",
        "BETWEEN range predicate over an index scan returns the "
        "complement row set (index range boundary bug).",
        introduced_year=2019,
    ),
    _f(
        "sqlite_join_like_where",
        "sqlite",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(_no_subquery, feature_true("has_like"), _has_join),
        "force_false",
        "LIKE predicate above a join drops every row (LIKE optimization "
        "applied with wrong table binding).",
        introduced_year=2021,
    ),
    _f(
        "sqlite_having_between",
        "sqlite",
        LOGIC,
        FIXED,
        {"having_result"},
        feature_true("has_between"),
        "force_false",
        "HAVING clause containing BETWEEN rejects every group.",
        introduced_year=2021,
    ),
    # -- MySQL-like (1 logic) --------------------------------------------------
    _f(
        "mysql_join_cast_where",
        "mysql",
        LOGIC,
        VERIFIED,
        {"where_result"},
        all_of(_no_subquery, feature_true("has_cast"), _has_join),
        "invert",
        "CAST inside a join predicate flips comparison results (mixed "
        "type comparison bug; the paper's 14-year-latent bug).",
        paper_ref="Section 4.2, longest-latency bug",
        introduced_year=2009,
    ),
    # -- CockroachDB-like (7 logic) ---------------------------------------------
    _f(
        "cockroach_cte_case_not_between",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"between_result"},
        all_of(
            feature_true("has_case", "stmt_has_cte"),
            feature_is(negated=True),
        ),
        "invert",
        "NOT BETWEEN whose bound contains a CASE evaluates to the "
        "opposite value when the query reads from a CTE (the Listing-7 "
        "bug retrieved a row that NOT BETWEEN should have excluded).",
        paper_ref="Listing 7",
        introduced_year=2021,
    ),
    _f(
        "cockroach_in_large_int",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"in_list_result"},
        all_of(feature_is(rhs="list"), feature_true("has_large_int")),
        "force_false",
        "IN with a value list containing an out-of-INT4-range constant "
        "returns empty (value-list type coercion bug).",
        paper_ref="Listing 9",
        introduced_year=2022,
    ),
    _f(
        "cockroach_any_union_fold",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"quantified_result"},
        feature_true("subquery_no_from"),
        "invert",
        "ANY/ALL over a FROM-less UNION chain (a folded value list) "
        "evaluates to the opposite result.",
        paper_ref="Section 4.2, ANY expressions",
        introduced_year=2022,
    ),
    _f(
        "cockroach_avg_subquery",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"agg_finish"},
        all_of(feature_is(func="AVG"), feature_true("in_subquery")),
        "off_by_one",
        "AVG computed inside a subquery accumulates in a different order "
        "and returns a perturbed value.",
        paper_ref="Section 4.2, AVG function",
        introduced_year=2021,
    ),
    _f(
        "cockroach_index_cmp_where",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_is(access_path="index_scan"),
            lambda f: f.get("node_count", 0) >= 3,
        ),
        "force_false",
        "Comparison predicates served by an index scan return no rows "
        "(index constraint span bug).",
        introduced_year=2020,
    ),
    _f(
        "cockroach_cross_not_where",
        "cockroachdb",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_true("has_not"),
            lambda f: "CROSS" in f.get("join_kinds", ()),
        ),
        "invert",
        "NOT above a cross join is dropped during filter pushdown, "
        "inverting the retrieved row set.",
        introduced_year=2019,
    ),
    _f(
        "cockroach_left_isnull_where",
        "cockroachdb",
        LOGIC,
        VERIFIED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_true("has_is_null"),
            lambda f: "LEFT" in f.get("join_kinds", ()),
        ),
        "null_as_true",
        "IS NULL filters above LEFT JOIN treat unknown predicates as "
        "true for null-extended rows.",
        paper_ref="Listing 4 family",
        introduced_year=2022,
    ),
    # -- DuckDB-like (5 logic) -----------------------------------------------------
    _f(
        "duckdb_scalar_subquery_type",
        "duckdb",
        LOGIC,
        FIXED,
        {"scalar_subquery"},
        all_of(feature_is(correlated=False), feature_true("has_agg_subquery")),
        "negate_number",
        "Return type of an uncorrelated aggregate scalar subquery is "
        "mishandled, corrupting the value the outer query sees (the "
        "auxiliary query obtains it with the correct type, paper "
        "Section 4.2).",
        paper_ref="Section 4.2, subquery return type",
        introduced_year=2022,
    ),
    _f(
        "duckdb_not_in_subquery",
        "duckdb",
        LOGIC,
        FIXED,
        {"in_subquery_result"},
        feature_is(negated=True, rhs="subquery"),
        "null_as_true",
        "NOT IN (subquery) collapses UNKNOWN to TRUE, retrieving rows "
        "whose membership is unknown (NULLs present).",
        introduced_year=2022,
    ),
    _f(
        "duckdb_exists_where",
        "duckdb",
        LOGIC,
        FIXED,
        {"exists_result"},
        feature_is(negated=False, clause="where", statement="SELECT"),
        "force_true",
        "EXISTS in a SELECT's WHERE clause is always true (subquery "
        "elimination applied on a non-empty assumption).",
        introduced_year=2023,
    ),
    _f(
        "duckdb_index_isnull_where",
        "duckdb",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_true("has_is_null"),
            feature_is(access_path="index_scan"),
        ),
        "force_true",
        "IS NULL predicates over an index scan keep every row.",
        introduced_year=2021,
    ),
    _f(
        "duckdb_join_depth_where",
        "duckdb",
        LOGIC,
        FIXED,
        {"where_result"},
        all_of(_no_subquery, _has_join, lambda f: f.get("depth", 0) >= 5),
        "force_false",
        "Deeply nested predicates above a join are mis-normalized and "
        "drop all rows.",
        introduced_year=2023,
    ),
    # -- TiDB-like (5 logic) ----------------------------------------------------------
    _f(
        "tidb_insert_select_version",
        "tidb",
        LOGIC,
        VERIFIED,
        {"insert_select_rows"},
        feature_true("has_version_fn"),
        "empty_rows",
        "INSERT ... SELECT whose predicate calls VERSION() inserts no "
        "rows although the bare SELECT returns rows.",
        paper_ref="Listing 6",
        introduced_year=2022,
    ),
    _f(
        "tidb_correlated_shadow",
        "tidb",
        LOGIC,
        VERIFIED,
        {"scalar_subquery"},
        all_of(
            feature_is(correlated=False, clause="where"),
            lambda f: not f.get("subquery_no_from"),
        ),
        "force_null",
        "Uncorrelated scalar subquery in WHERE is misclassified as "
        "correlated (identically-named columns) and yields NULL.",
        paper_ref="Section 4.2, third subquery bug",
        introduced_year=2022,
    ),
    _f(
        "tidb_in_list_where_select",
        "tidb",
        LOGIC,
        FIXED,
        {"in_list_result"},
        feature_is(rhs="list", clause="where", statement="SELECT"),
        "force_false",
        "IN with a value list is always false in SELECT WHERE clauses "
        "but works in other clauses and statements.",
        paper_ref="Listing 10",
        introduced_year=2021,
    ),
    _f(
        "tidb_join_in_where",
        "tidb",
        LOGIC,
        VERIFIED,
        {"where_result"},
        all_of(_no_subquery, feature_true("has_in_list"), _has_join),
        "invert",
        "IN predicates above joins retrieve the complement row set "
        "(join reorder loses the IN filter).",
        introduced_year=2019,
    ),
    _f(
        "tidb_having_case",
        "tidb",
        LOGIC,
        VERIFIED,
        {"having_result"},
        feature_true("has_case"),
        "invert",
        "HAVING predicates containing CASE keep the complement group "
        "set.",
        introduced_year=2020,
    ),
]

# ===========================================================================
# Internal errors (14), crashes (2), hangs (5) -- paper Table 1 "other bugs"
# ===========================================================================

OTHER_FAULTS: list[Fault] = [
    # SQLite: 1 internal error
    _f(
        "sqlite_ie_corr_group_subquery",
        "sqlite",
        INTERNAL,
        FIXED,
        {"scalar_subquery"},
        all_of(feature_is(correlated=True), feature_true("has_group_by_subquery")),
        "identity",
        "Correlated aggregate subquery with GROUP BY aborts with a "
        "malformed-plan internal error.",
    ),
    # MySQL: 1 internal error
    _f(
        "mysql_ie_sum_distinct",
        "mysql",
        INTERNAL,
        VERIFIED,
        {"agg_finish"},
        all_of(feature_is(func="SUM"), feature_true("distinct")),
        "identity",
        "SUM(DISTINCT ...) raises an internal error during aggregation.",
    ),
    # CockroachDB: 4 internal errors + 2 hangs
    _f(
        "cockroach_ie_all_quantifier",
        "cockroachdb",
        INTERNAL,
        FIXED,
        {"quantified_result"},
        feature_is(quantifier="ALL"),
        "identity",
        "ALL comparisons fail with an internal planning error.",
    ),
    _f(
        "cockroach_ie_case_simple_subquery",
        "cockroachdb",
        INTERNAL,
        FIXED,
        {"case_result"},
        all_of(feature_is(form="simple"), feature_true("in_subquery")),
        "identity",
        "Simple-form CASE inside a subquery hits an internal error.",
    ),
    _f(
        "cockroach_ie_concat_cast",
        "cockroachdb",
        INTERNAL,
        FIXED,
        {"where_result"},
        feature_true("has_concat", "has_cast"),
        "identity",
        "String concatenation combined with CAST in a predicate raises "
        "an internal error.",
    ),
    _f(
        "cockroach_ie_between_quantified",
        "cockroachdb",
        INTERNAL,
        VERIFIED,
        {"where_result"},
        feature_true("has_quantified", "has_between"),
        "identity",
        "A predicate combining BETWEEN with a quantified comparison "
        "raises an internal error.",
    ),
    _f(
        "cockroach_hang_not_in_subquery",
        "cockroachdb",
        HANG,
        FIXED,
        {"in_subquery_result"},
        all_of(feature_is(negated=True), feature_true("in_subquery")),
        "identity",
        "Nested NOT IN (subquery) never terminates (decorrelation loop).",
    ),
    _f(
        "cockroach_hang_having_subquery",
        "cockroachdb",
        HANG,
        FIXED,
        {"having_result"},
        feature_true("has_subquery"),
        "identity",
        "Subquery in HAVING makes the optimizer loop forever.",
    ),
    # DuckDB: 2 internal errors + 2 crashes + 3 hangs
    _f(
        "duckdb_ie_wide_in_list",
        "duckdb",
        INTERNAL,
        FIXED,
        {"in_list_result"},
        lambda f: f.get("in_list_size", 0) >= 4,
        "identity",
        "IN lists with four or more items raise an internal error.",
    ),
    _f(
        "duckdb_ie_min_compound",
        "duckdb",
        INTERNAL,
        FIXED,
        {"agg_finish"},
        all_of(feature_is(func="MIN"), feature_true("arg_is_compound")),
        "identity",
        "MIN over a compound expression raises an internal error.",
    ),
    _f(
        "duckdb_crash_iejoin_between",
        "duckdb",
        CRASH,
        FIXED,
        {"where_result"},
        all_of(
            _no_subquery,
            feature_true("has_between"),
            lambda f: "CROSS" in f.get("join_kinds", ()),
        ),
        "identity",
        "BETWEEN above a cross join segfaults (IEJoin index "
        "out-of-bounds, paper Section 4.1 'Other bugs').",
        paper_ref="Section 4.1, IEJoin crashes",
    ),
    _f(
        "duckdb_crash_iejoin_on",
        "duckdb",
        CRASH,
        FIXED,
        {"join_on_result"},
        feature_true("has_between"),
        "identity",
        "BETWEEN inside JOIN ... ON segfaults (IEJoin type mismatch).",
        paper_ref="Section 4.1, IEJoin crashes",
    ),
    _f(
        "duckdb_hang_like_not_join",
        "duckdb",
        HANG,
        FIXED,
        {"where_result"},
        all_of(feature_true("has_like", "has_not"), _has_join),
        "identity",
        "NOT ... LIKE above a join spins in the pattern matcher.",
    ),
    _f(
        "duckdb_hang_nested_not_exists",
        "duckdb",
        HANG,
        FIXED,
        {"exists_result"},
        all_of(feature_is(negated=True), feature_true("in_subquery")),
        "identity",
        "Nested NOT EXISTS never terminates.",
    ),
    _f(
        "duckdb_hang_corr_group",
        "duckdb",
        HANG,
        FIXED,
        {"scalar_subquery"},
        all_of(feature_is(correlated=True), feature_true("has_group_by_subquery")),
        "identity",
        "Correlated subquery with GROUP BY loops in decorrelation.",
    ),
    # TiDB: 6 internal errors
    _f(
        "tidb_ie_case_else_having",
        "tidb",
        INTERNAL,
        VERIFIED,
        {"case_result"},
        feature_is(form="else", clause="having"),
        "identity",
        "CASE falling through to ELSE inside HAVING raises an internal "
        "error.",
    ),
    _f(
        "tidb_ie_avg_distinct",
        "tidb",
        INTERNAL,
        VERIFIED,
        {"agg_finish"},
        all_of(feature_is(func="AVG"), feature_true("distinct")),
        "identity",
        "AVG(DISTINCT ...) raises an internal error.",
    ),
    _f(
        "tidb_ie_exists_join_on",
        "tidb",
        INTERNAL,
        VERIFIED,
        {"exists_result"},
        feature_is(clause="join_on"),
        "identity",
        "EXISTS inside JOIN ... ON raises an internal error.",
    ),
    _f(
        "tidb_ie_version_where",
        "tidb",
        INTERNAL,
        VERIFIED,
        {"where_result"},
        all_of(
            feature_true("has_version_fn", "has_not"),
            feature_is(statement="SELECT"),
        ),
        "identity",
        "VERSION() under a negated SELECT predicate raises an internal "
        "error.",
    ),
    _f(
        "tidb_ie_some_quantifier",
        "tidb",
        INTERNAL,
        FIXED,
        {"quantified_result"},
        feature_is(quantifier="SOME"),
        "identity",
        "SOME comparisons raise an internal error.",
    ),
    _f(
        "tidb_ie_fetch_quantified",
        "tidb",
        INTERNAL,
        FIXED,
        {"fetch_value"},
        all_of(feature_true("has_quantified"), feature_is(clause="fetch")),
        "identity",
        "Projecting a quantified comparison raises an internal error.",
    ),
]

ALL_FAULTS: list[Fault] = LOGIC_FAULTS + OTHER_FAULTS

FAULTS_BY_ID: dict[str, Fault] = {f.fault_id: f for f in ALL_FAULTS}

FAULTS_BY_PROFILE: dict[str, list[Fault]] = {}
for _fault in ALL_FAULTS:
    FAULTS_BY_PROFILE.setdefault(_fault.profile, []).append(_fault)


def table1_expected() -> dict[str, dict[str, int]]:
    """Per-profile bug-type counts implied by the catalog (equals paper
    Table 1 by construction; the benchmark asserts the campaign *finds*
    them)."""
    out: dict[str, dict[str, int]] = {}
    for fault in ALL_FAULTS:
        row = out.setdefault(
            fault.profile,
            {"logic": 0, "internal error": 0, "crash": 0, "hang": 0,
             "fixed": 0, "verified": 0},
        )
        row[fault.bug_type.value] += 1
        row[fault.status.value] += 1
    return out
