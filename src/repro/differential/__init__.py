"""Cross-backend differential testing (MiniDB profile vs. real SQLite).

The three layers:

* :mod:`repro.differential.compat` -- the dialect intersection of a
  backend pair plus per-pair statement translation/skip rules,
* :mod:`repro.differential.pair` -- :class:`DifferentialAdapter`, a tee
  adapter that executes every statement on both backends and raises
  :class:`~repro.errors.DifferentialMismatch` when canonical result
  sets diverge,
* :mod:`repro.differential.oracle` -- :class:`DifferentialOracle`,
  generating portable queries and reporting divergences as bugs.

``coddtest diff --backends minidb,sqlite3`` runs this stack sharded
over the fleet orchestrator.

Determinism guarantee: generation is seeded and both backends are
deterministic engines, so the same ``(seed, workers, budget)`` replays
the same differential campaign and reports the same divergences; a
1-worker fleet bit-matches the serial campaign.
"""

from __future__ import annotations

from typing import Callable

from repro.adapters.base import EngineAdapter
from repro.differential.compat import (
    BackendCaps,
    CompatPolicy,
    CompatSkip,
    capabilities,
)
from repro.differential.oracle import (
    BACKEND_NAMES,
    DifferentialOracle,
    build_backend,
    build_pair_adapter,
)
from repro.differential.pair import DifferentialAdapter
from repro.runner.campaign import Campaign, CampaignStats


def run_differential_campaign(
    factory_pair: "tuple[Callable[[], EngineAdapter], Callable[[], EngineAdapter]]",
    *,
    n_tests: int | None = None,
    seconds: float | None = None,
    seed: int = 0,
    tests_per_state: int = 25,
    max_reports: int = 1000,
) -> CampaignStats:
    """Serial differential campaign from an adapter *factory pair*.

    The factories build the primary (under test) and secondary
    (reference) adapters; everything else matches
    :func:`repro.runner.campaign.run_campaign`.
    """
    campaign = Campaign.from_adapter_factories(
        DifferentialOracle(),
        factory_pair,
        seed=seed,
        tests_per_state=tests_per_state,
        max_reports=max_reports,
    )
    return campaign.run(n_tests=n_tests, seconds=seconds)


__all__ = [
    "BACKEND_NAMES",
    "BackendCaps",
    "CompatPolicy",
    "CompatSkip",
    "DifferentialAdapter",
    "DifferentialOracle",
    "build_backend",
    "build_pair_adapter",
    "capabilities",
    "run_differential_campaign",
]
