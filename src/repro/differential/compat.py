"""Dialect-compatibility layer for cross-backend differential testing.

Two backends only form a usable differential pair on the *intersection*
of their dialects.  This module computes that intersection from the
adapters' capability flags (the same ``supports_any_all`` /
``strict_typing`` knobs the dialect profiles configure, paper Section
3.3) and provides per-pair statement translation: a statement is either
passed through, rewritten for one backend (``VERSION()`` becomes its
deterministic literal on engines that lack the function), or skipped
with a :class:`CompatSkip` explaining why.

Skips are classified by the caller via
:func:`repro.adapters.sql_text.statement_kind`: a skipped ``CREATE
INDEX`` only perturbs plans and may run one-sided, while a skipped
data statement must abort the whole state.
"""

from __future__ import annotations

import re
import sqlite3
from dataclasses import dataclass

from repro.adapters.base import EngineAdapter
from repro.minidb.functions import ENGINE_VERSION

#: Join kinds the differential generator may emit, before capability
#: filtering.
ALL_JOIN_KINDS = ("INNER", "LEFT", "CROSS", "FULL")

#: SQLite grew FULL [OUTER] JOIN in 3.39 (2022-06).
_SQLITE_FULL_JOIN_MIN = (3, 39)

#: Quantified comparisons: ``expr op ANY/ALL/SOME (SELECT ...)``.
_QUANTIFIED = re.compile(
    r"(?:=|!=|<>|<=?|>=?)\s*(?:ANY|ALL|SOME)\s*\(", re.IGNORECASE
)
_VERSION_CALL = re.compile(r"\bVERSION\s*\(\s*\)", re.IGNORECASE)
_TYPEOF_CALL = re.compile(r"\bTYPEOF\s*\(", re.IGNORECASE)
_FULL_JOIN = re.compile(r"\bFULL\s+(?:OUTER\s+)?JOIN\b", re.IGNORECASE)


class CompatSkip(Exception):
    """A statement is not expressible on one backend of the pair."""

    def __init__(self, backend: str, reason: str) -> None:
        super().__init__(f"{backend}: {reason}")
        self.backend = backend
        self.reason = reason


@dataclass(frozen=True)
class BackendCaps:
    """Capability snapshot of one backend, as the policy consumes it."""

    name: str
    supports_any_all: bool
    strict_typing: bool
    supports_full_join: bool
    supports_version_fn: bool
    supports_typeof: bool
    #: True for adapters backed by a simulated engine with ground-truth
    #: fault attribution (MiniDB); real DBMSs are False.
    simulated: bool


def capabilities(adapter: EngineAdapter) -> BackendCaps:
    """Derive :class:`BackendCaps` from an adapter instance.

    MiniDB-backed adapters implement the full generated surface; the
    stdlib ``sqlite3`` backend lacks quantified comparisons and
    ``VERSION()``, renders ``TYPEOF()`` with different type names, and
    supports FULL JOIN only from 3.39.
    """
    engine = getattr(adapter, "engine", None)
    if engine is not None:  # MiniDB profile
        return BackendCaps(
            name=adapter.name,
            supports_any_all=adapter.supports_any_all,
            strict_typing=adapter.strict_typing,
            supports_full_join=True,
            supports_version_fn=True,
            supports_typeof=True,
            simulated=True,
        )
    return BackendCaps(
        name=adapter.name,
        supports_any_all=adapter.supports_any_all,
        strict_typing=adapter.strict_typing,
        supports_full_join=sqlite3.sqlite_version_info >= _SQLITE_FULL_JOIN_MIN,
        supports_version_fn=False,
        supports_typeof=False,
        simulated=False,
    )


@dataclass(frozen=True)
class CompatPolicy:
    """The dialect intersection of a differential pair.

    ``supports_any_all`` and ``join_kinds`` feed the portable query
    generators (constructs one backend cannot parse are never emitted);
    :meth:`translate` is the per-statement escape hatch for anything
    that still reaches a backend it does not fit.
    """

    primary: BackendCaps
    secondary: BackendCaps
    #: The literal ``VERSION()`` rewrites to on backends lacking the
    #: function.  Defaults to MiniDB's deterministic version string;
    #: probe-derived policies (:func:`repro.backends.derive_policy`)
    #: substitute the value the supporting backend actually returned.
    version_literal: str = ENGINE_VERSION

    @classmethod
    def for_pair(
        cls, primary: EngineAdapter, secondary: EngineAdapter
    ) -> "CompatPolicy":
        return cls(capabilities(primary), capabilities(secondary))

    @property
    def supports_any_all(self) -> bool:
        return (
            self.primary.supports_any_all and self.secondary.supports_any_all
        )

    @property
    def join_kinds(self) -> tuple[str, ...]:
        kinds = list(ALL_JOIN_KINDS)
        if not (
            self.primary.supports_full_join
            and self.secondary.supports_full_join
        ):
            kinds.remove("FULL")
        return tuple(kinds)

    @property
    def strict_typing(self) -> bool:
        """Generation-side typing discipline for the pair.

        Always strict for cross-engine pairs: even two *relaxed* engines
        disagree on mixed-type coercion (SQLite orders numbers before
        text where MiniDB's relaxed mode coerces text to a numeric
        prefix), so portable queries must compare like with like.
        """
        return True

    def backend_names(self) -> tuple[str, str]:
        return (self.primary.name, self.secondary.name)

    def translate(self, sql: str, caps: BackendCaps) -> str:
        """Return *sql* adjusted for the backend described by *caps*.

        Raises :class:`CompatSkip` when no faithful rewrite exists.
        """
        if not caps.supports_version_fn and _VERSION_CALL.search(sql):
            # VERSION() is deterministic in MiniDB, so substituting the
            # literal preserves semantics exactly.
            sql = _VERSION_CALL.sub(f"'{self.version_literal}'", sql)
        if not caps.supports_typeof and _TYPEOF_CALL.search(sql):
            raise CompatSkip(caps.name, "TYPEOF() type names differ")
        if not caps.supports_any_all and _QUANTIFIED.search(sql):
            raise CompatSkip(caps.name, "quantified comparison (ANY/ALL/SOME)")
        if not caps.supports_full_join and _FULL_JOIN.search(sql):
            raise CompatSkip(caps.name, "FULL JOIN unsupported")
        return sql
