"""The cross-backend differential oracle.

Where CODDTest compares a query against its constant-folded twin on
*one* engine, the differential oracle compares the *same* query across
*two* engines (MiniDB profile vs. real SQLite) -- the classic way to
widen the oracle surface beyond planted ground truth (Rigger & Su,
NoREC, 2020; ROADMAP "Multi-backend differential fleet").

Each test generates one portable query (type-matched operands,
order-insensitive subqueries -- see
:class:`~repro.generator.expr_gen.ExprGenerator` portable mode) and
executes it through a :class:`~repro.differential.pair.
DifferentialAdapter`, which tees it to both backends and raises
:class:`~repro.errors.DifferentialMismatch` when the canonical result
multisets differ.  Engine failures (internal error / crash / hang)
surface through the ordinary oracle machinery with ground-truth fault
attribution from the primary.
"""

from __future__ import annotations

import dataclasses

from repro.adapters.base import EngineAdapter
from repro.differential.compat import ALL_JOIN_KINDS
from repro.differential.pair import DifferentialAdapter
from repro.errors import DifferentialMismatch
from repro.generator.expr_gen import ExprGenerator
from repro.generator.query_gen import QueryGenerator, replace_join_on
from repro.oracles_base import Oracle, TestOutcome, TestReport

#: The historical seed pair.  Kept for backward compatibility only:
#: the registry (:mod:`repro.backends`) is the source of truth for
#: which backends exist -- use :func:`repro.backends.backend_names`.
BACKEND_NAMES = ("minidb", "sqlite3")


def build_backend(
    name: str, dialect: str = "sqlite", buggy: bool = False
) -> EngineAdapter:
    """Construct one backend by registry name.

    ``buggy`` seeds the fault catalog on simulated backends; real DBMS
    backends have no injectable faults and ignore it.  Unknown names
    raise ``ValueError`` listing the *registered* backends (imported
    lazily: the registry's built-ins construct adapters, so importing
    it at module level would be circular).
    """
    from repro.backends import build_backend as registry_build

    return registry_build(name, dialect=dialect, buggy=buggy)


def build_pair_adapter(
    backend_pair: tuple[str, str], dialect: str = "sqlite", buggy: bool = False
) -> DifferentialAdapter:
    """A :class:`DifferentialAdapter` from two registered backend names.

    Only the *primary* (first) backend receives injected faults: the
    secondary is the trusted reference the primary is diffed against.
    The pair's :class:`~repro.differential.compat.CompatPolicy` is
    *derived* from each backend's probed capability vector (cached per
    process); for ``(minidb, sqlite3)`` it reproduces the hand-written
    intersection exactly.
    """
    from repro.backends import pair_policy

    primary_name, secondary_name = backend_pair
    primary = build_backend(primary_name, dialect=dialect, buggy=buggy)
    secondary = build_backend(secondary_name, dialect=dialect, buggy=False)
    policy = pair_policy(primary_name, secondary_name, dialect=dialect)
    return DifferentialAdapter(primary, secondary, policy=policy)


class DifferentialOracle(Oracle):
    """One generated query per test, checked across two backends."""

    name = "differential"

    def __init__(self, max_depth: int = 3, allow_subqueries: bool = True) -> None:
        super().__init__()
        self.max_depth = max_depth
        self.allow_subqueries = allow_subqueries
        self.expr_gen: ExprGenerator | None = None
        self.query_gen: QueryGenerator | None = None

    # -- lifecycle ---------------------------------------------------------------

    def on_prepare(self) -> None:
        assert self.adapter is not None and self.schema is not None
        policy = getattr(self.adapter, "policy", None)
        join_kinds = policy.join_kinds if policy is not None else ALL_JOIN_KINDS
        self.expr_gen = ExprGenerator(
            self.rng,
            self.schema,
            max_depth=self.max_depth,
            allow_subqueries=self.allow_subqueries,
            supports_any_all=self.adapter.supports_any_all,
            strict_typing=True,
            portable=True,
        )
        self.query_gen = QueryGenerator(
            self.rng,
            self.schema,
            self.expr_gen,
            join_kinds=join_kinds,
            use_views=True,
            portable=True,
        )

    # -- one test ----------------------------------------------------------------

    def check_once(self) -> TestReport | None:
        assert self.expr_gen is not None and self.query_gen is not None
        rng = self.rng
        skeleton = self.query_gen.from_skeleton()

        placements = ["where"] * 6 + ["having"] * 2
        if skeleton.on_join is not None:
            placements += ["join_on"] * 2
        placement = rng.choice(placements)

        if placement == "having":
            # HAVING predicates may only reference the grouping column:
            # bare non-grouped columns take an engine-chosen row of the
            # group, which two engines need not agree on.
            group_col = rng.choice(skeleton.scope)
            phi = self.expr_gen.predicate([group_col])
            query = self.query_gen.grouped_query(
                skeleton, having=phi.expr, group_col=group_col
            )
        elif placement == "join_on":
            phi = self.expr_gen.predicate(skeleton.scope)
            new_ref = replace_join_on(skeleton.ref, skeleton.on_join, phi.expr)
            skeleton = dataclasses.replace(skeleton, ref=new_ref)
            query = (
                self.query_gen.count_query(skeleton, None)
                if rng.random() < 0.5
                else self.query_gen.star_query(skeleton, None)
            )
        else:
            phi = self.expr_gen.predicate(skeleton.scope)
            predicate = self.query_gen.combined_predicate(
                phi.expr, skeleton.scope
            )
            query = (
                self.query_gen.count_query(skeleton, predicate)
                if rng.random() < 0.5
                else self.query_gen.star_query(skeleton, predicate)
            )

        try:
            self.execute(query.to_sql(), is_main_query=True, ast=query)
        except DifferentialMismatch as exc:
            # Ground-truth attribution: the fault (if any) fired on the
            # primary while producing the diverging result.
            self._fired |= self.adapter.fired_fault_ids()
            out = self.report(f"divergence: {exc}")
            # Both engines' plans are the triage signature: the same
            # statements diverging through different plan shapes are
            # different behaviors (Query Plan Guidance).
            primary_fp, secondary_fp = exc.fingerprints
            out.plan_fingerprint = (
                f"{primary_fp or '?'}|{secondary_fp or '?'}"
            )
            return out
        return None

    # -- reporting ----------------------------------------------------------------

    def _pair(self) -> tuple[str, str] | None:
        names = getattr(self.adapter, "backend_names", None)
        return tuple(names) if names is not None else None

    def report(self, description: str) -> TestReport:
        out = super().report(description)
        out.backend_pair = self._pair()
        return out

    def _bug(self, kind: str, message: str) -> TestOutcome:
        out = super()._bug(kind, message)
        if out.report is not None:
            out.report.backend_pair = self._pair()
        return out
