"""The differential pair adapter: one logical database, two engines.

:class:`DifferentialAdapter` implements the ordinary
:class:`~repro.adapters.base.EngineAdapter` protocol, so the existing
state generator, campaign driver, and fleet all run unmodified -- every
statement they issue is *teed* to a primary (the engine under test) and
a secondary (the trusted reference).  Row-returning statements have
their canonical result multisets compared on the spot; a difference
raises :class:`~repro.errors.DifferentialMismatch` carrying both plan
fingerprints (the NoREC-style cross-engine oracle, Rigger & Su 2020).

State synchronization invariants:

* the primary executes first; if it rejects a statement the secondary
  never sees it (MiniDB statements are atomic, so a rejected statement
  mutated nothing);
* a data statement that succeeds on the primary but fails on the
  secondary *poisons* the pair -- every later statement raises
  :class:`~repro.errors.StateDesyncError` until ``reset()`` -- so a
  campaign simply regenerates the state instead of diffing two
  databases that no longer hold the same rows;
* a failed ``CREATE INDEX`` on the secondary is tolerated one-sided:
  indexes change plans, not results, and one-sided indexes are exactly
  what drives the two engines through *different* plans for the same
  query -- the point of differential testing.
"""

from __future__ import annotations

from repro.adapters.base import EngineAdapter, ExecResult, SchemaInfo
from repro.adapters.sql_text import (
    KIND_INDEX,
    KIND_SELECT,
    statement_kind,
)
from repro.differential.compat import CompatPolicy, CompatSkip
from repro.errors import (
    DifferentialMismatch,
    EngineCrash,
    EngineHang,
    InternalError,
    SqlError,
    StateDesyncError,
)
from repro.oracles_base import canonical


class DifferentialAdapter(EngineAdapter):
    """Tee adapter executing every statement on two backends."""

    def __init__(
        self,
        primary: EngineAdapter,
        secondary: EngineAdapter,
        policy: CompatPolicy | None = None,
    ) -> None:
        self.primary = primary
        self.secondary = secondary
        self.policy = policy or CompatPolicy.for_pair(primary, secondary)
        self.name = f"diff[{primary.name}|{secondary.name}]"
        self.supports_any_all = self.policy.supports_any_all
        # Generation-side discipline: portable queries are always typed.
        self.strict_typing = self.policy.strict_typing
        self.portable_generation = True
        #: Reason the pair is desynchronized, None while healthy.
        self._desync: str | None = None
        #: (primary, secondary) results of the last teed statement;
        #: secondary is None when the statement ran one-sided.
        self.last_pair: tuple[ExecResult, ExecResult | None] | None = None
        #: Statements that ran on the primary only (skipped or failed
        #: plan-only statements on the secondary).
        self.secondary_skips = 0

    # -- plumbing the campaign driver relies on --------------------------------

    @property
    def engine(self):
        """The primary's engine, when simulated (coverage accounting)."""
        return getattr(self.primary, "engine", None)

    def fired_fault_ids(self) -> frozenset[str]:
        return self.primary.fired_fault_ids()

    @property
    def backend_names(self) -> tuple[str, str]:
        return self.policy.backend_names()

    def attach_eval_cache(self, cache, namespace: str = "") -> None:
        """One cache serves both backends, under role-based namespaces:
        the pair may be built from two engines with the same display
        name but different fault catalogs (only the primary is seeded
        with bugs), so results must never cross between roles."""
        prefix = namespace or "diff"
        self.primary.attach_eval_cache(cache, f"{prefix}/primary")
        self.secondary.attach_eval_cache(cache, f"{prefix}/secondary")

    def attach_profiler(self, profiler) -> None:
        """Both backends report into the same profiler: the pair's
        parse/execute time is the sum over the two engines (its own
        result comparison is part of the execute phase)."""
        self._profiler = profiler
        self.primary.attach_profiler(profiler)
        self.secondary.attach_profiler(profiler)

    def set_vector_eval(self, enabled: bool) -> None:
        self.primary.set_vector_eval(enabled)
        self.secondary.set_vector_eval(enabled)

    def prime_parse(self, sql: str, ast) -> None:
        self.primary.prime_parse(sql, ast)
        self.secondary.prime_parse(sql, ast)

    # -- EngineAdapter protocol --------------------------------------------------

    def execute(self, sql: str) -> ExecResult:
        if self._desync is not None:
            raise StateDesyncError(self._desync)
        kind = statement_kind(sql)

        try:
            primary_sql = self.policy.translate(sql, self.policy.primary)
        except CompatSkip as skip:
            raise SqlError(f"differential skip: {skip}") from None
        try:
            secondary_sql: str | None = self.policy.translate(
                sql, self.policy.secondary
            )
        except CompatSkip as skip:
            if kind != KIND_INDEX:
                raise SqlError(f"differential skip: {skip}") from None
            secondary_sql = None  # plan-only: run one-sided

        try:
            result_a = self.primary.execute(primary_sql)
        except (InternalError, EngineCrash, EngineHang):
            if kind != KIND_SELECT:
                # An injected failure mid-write may have left partial
                # effects on the primary only.
                self._desync = (
                    f"engine failure during non-query statement: {sql!r}"
                )
            raise

        result_b: ExecResult | None = None
        if secondary_sql is None:
            self.secondary_skips += 1
        else:
            try:
                result_b = self.secondary.execute(secondary_sql)
            except SqlError as exc:
                if kind == KIND_INDEX:
                    # Plans may now differ between the backends -- that
                    # is a feature, not a desync.
                    self.secondary_skips += 1
                elif kind == KIND_SELECT:
                    # No side effects on either backend; an error
                    # asymmetry on a query is an expected-error skip,
                    # not a bug (SQLancer treats it the same way).
                    raise SqlError(
                        f"secondary {self.policy.secondary.name} rejected "
                        f"query the primary accepted: {exc}"
                    ) from exc
                else:
                    self._desync = (
                        f"statement succeeded on {self.policy.primary.name} "
                        f"but failed on {self.policy.secondary.name} "
                        f"({exc}); states differ until reset: {sql!r}"
                    )
                    raise StateDesyncError(self._desync) from exc

        self.last_pair = (result_a, result_b)
        if result_b is not None and kind == KIND_SELECT:
            self._compare(sql, result_a, result_b)
        return result_a

    def _compare(
        self, sql: str, result_a: ExecResult, result_b: ExecResult
    ) -> None:
        rows_a = canonical(result_a.rows)
        rows_b = canonical(result_b.rows)
        if rows_a == rows_b:
            return
        a_name, b_name = self.backend_names
        raise DifferentialMismatch(
            f"result sets diverge: {a_name} returned {len(rows_a)} row(s), "
            f"{b_name} returned {len(rows_b)} row(s) for the same query "
            f"[plan {a_name}: {result_a.plan_fingerprint!r} | "
            f"plan {b_name}: {result_b.plan_fingerprint!r}]",
            fingerprints=(
                result_a.plan_fingerprint,
                result_b.plan_fingerprint,
            ),
        )

    def schema(self) -> SchemaInfo:
        """The primary's schema drives generation (the secondary holds
        the same objects by construction)."""
        return self.primary.schema()

    def reset(self) -> None:
        self.primary.reset()
        self.secondary.reset()
        self._desync = None
        self.last_pair = None
