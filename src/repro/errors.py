"""Exception taxonomy for the CODDTest reproduction.

The paper (Section 4, Table 1) distinguishes four observable failure modes
of a DBMS under test:

* **logic bugs** -- silently wrong results; these are what the oracles
  detect via result comparison and are *not* exceptions,
* **internal errors** -- the engine raises an unexpected error for a valid
  query (:class:`InternalError`),
* **crashes** -- the engine process dies (:class:`EngineCrash` simulates a
  segmentation fault),
* **hangs** -- the engine never returns (:class:`EngineHang` simulates a
  detected timeout).

On top of those, the engine raises :class:`SqlError` subclasses for
*expected* errors: malformed SQL, semantic violations, unsupported features.
The campaign runner counts queries raising expected errors as
"unsuccessful queries" (Table 3) rather than bugs.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all exceptions raised by this package."""


class SqlError(ReproError):
    """Base class for *expected* SQL-level errors (not bugs)."""


class ParseError(SqlError):
    """The SQL text could not be tokenized or parsed."""

    def __init__(self, message: str, position: int | None = None) -> None:
        super().__init__(message)
        self.position = position


class CatalogError(SqlError):
    """Unknown/duplicate table, column, index, or view."""


class TypeError_(SqlError):
    """Operation applied to operands of incompatible types.

    Strict-typing profiles (DuckDB/CockroachDB-like, paper Section 3.3)
    raise this where relaxed profiles coerce.
    """


class ValueError_(SqlError):
    """Runtime value error, e.g. CAST failure or subquery returning more
    than one row where a scalar is required (paper Listing 5)."""


class UnsupportedError(SqlError):
    """Feature not supported by the active dialect profile (e.g. ``ANY``
    in the SQLite/DuckDB-like profiles, paper Section 3.3)."""


class StateDesyncError(SqlError):
    """A differential pair's databases can no longer be assumed equal
    (a data-affecting statement succeeded on one backend and failed on
    the other).  The pair refuses further statements until ``reset()``;
    campaigns treat this like any expected error and regenerate the
    state."""


class DifferentialMismatch(ReproError):
    """Two backends returned different result sets for the same query
    -- the differential oracle's bug signal (NoREC-style cross-engine
    testing, Rigger & Su 2020).  Not an :class:`SqlError`: a mismatch
    is a finding, not an expected error."""

    def __init__(
        self,
        message: str,
        fingerprints: "tuple[str | None, str | None]" = (None, None),
    ) -> None:
        super().__init__(message)
        #: ``(primary, secondary)`` plan fingerprints of the diverging
        #: query, attached to bug reports.
        self.fingerprints = fingerprints


class InternalError(ReproError):
    """Unexpected engine-internal failure -- a bug category in Table 1."""


class EngineCrash(ReproError):
    """Simulated process crash (segfault) -- a bug category in Table 1."""


class EngineHang(ReproError):
    """Simulated non-termination detected by a watchdog -- Table 1."""
