"""Fleet: sharded parallel campaign orchestration with a persistent bug
corpus.

The paper's evaluation runs thousands of test cases per oracle per
dialect; a single-process loop is the binding constraint on bugs found
per hour ("Scaling Automated Database System Testing", Zhong & Rigger
2025).  This package shards one logical campaign across a
``multiprocessing`` worker pool:

* :mod:`repro.fleet.sharding` -- deterministic per-shard seeds and
  budget splits (a 1-worker fleet bit-matches the serial campaign),
* :mod:`repro.fleet.orchestrator` -- the worker pool, result streaming,
  stats merging, and fleet-wide early stop,
* :mod:`repro.fleet.corpus` -- a JSONL-backed deduplicated bug corpus
  with ddmin reduction of first-seen bugs and checkpoint/resume,
* :mod:`repro.fleet.progress` -- periodic throughput/dedup reporting,
* :mod:`repro.fleet.telemetry` -- the optional observability surfaces
  (structured trace, live status endpoint) bundled per fleet run.
"""

from repro.fleet.corpus import (
    BugCorpus,
    CorpusEntry,
    fingerprint_report,
    normalize_statement,
)
from repro.fleet.orchestrator import (
    FleetConfig,
    FleetResult,
    build_shards,
    make_replay_reducer,
    run_fleet,
)
from repro.fleet.progress import ProgressPrinter, ProgressSnapshot
from repro.fleet.sharding import (
    ShardSpec,
    derive_round_seed,
    derive_shard_seeds,
    split_tests,
)
from repro.fleet.telemetry import FleetTelemetry

__all__ = [
    "BugCorpus",
    "CorpusEntry",
    "fingerprint_report",
    "normalize_statement",
    "FleetConfig",
    "FleetResult",
    "build_shards",
    "make_replay_reducer",
    "run_fleet",
    "ProgressPrinter",
    "ProgressSnapshot",
    "FleetTelemetry",
    "ShardSpec",
    "derive_round_seed",
    "derive_shard_seeds",
    "split_tests",
]
