"""Persistent, deduplicated bug corpus (JSONL).

Long campaigns re-find the same injected fault through hundreds of
superficially different test cases; what makes a fleet's output
analyzable is the set of *distinct* bugs (QPG, Ba & Rigger 2023, make
the same observation for query-plan corpora).  This module fingerprints
each :class:`~repro.oracles_base.TestReport`, keeps one corpus entry per
fingerprint, reduces the first-seen witness with the existing ddmin
reducer, and persists everything as one JSON object per line so corpora
can be appended to, merged, and resumed across fleet invocations.

Determinism guarantee: fingerprints are pure functions of the
normalized witness, so the same campaign always produces the same
entry set; only sighting counters and provenance reflect scheduling.
The on-disk format is append-only and era-tolerant -- entries written
before a field existed (e.g. PR-1 corpora without ``backend_pair``)
load with that field defaulted, never rejected.
"""

from __future__ import annotations

import hashlib
import json
import os
import re
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator

from repro.oracles_base import TestReport

#: Random index names (``ix_t0_731``) would make otherwise-identical
#: test cases hash differently; sequence numbers are noise, the indexed
#: table is signal.
_INDEX_NAME = re.compile(r"\bix_(\w+?)_\d+\b")
_WS = re.compile(r"\s+")

#: Optional reduction hook: takes the first-seen report, returns the
#: reduced statement list or None when reduction is impossible (e.g. no
#: ground-truth faults to replay against).
ReduceFn = Callable[[TestReport], "list[str] | None"]


def normalize_statement(sql: str) -> str:
    """Canonical statement text for fingerprinting: collapsed
    whitespace, no trailing semicolon, case-insensitive, stable index
    names."""
    text = _WS.sub(" ", sql).strip().rstrip(";").lower()
    return _INDEX_NAME.sub(r"ix_\1_#", text)


def fingerprint_report(report: TestReport) -> str:
    """Stable identity of a bug-inducing test case.

    Built from the failure kind, the normalized statement sequence, and
    the ground-truth fault ids -- *not* the description, which embeds
    volatile row values, nor the oracle name, so the same witness found
    by two oracles deduplicates.  Differential reports additionally key
    on the backend pair: the same statements diverging between a
    *different* pair of engines is a different bug (the fingerprint of
    single-engine reports is unchanged).
    """
    payload_dict = {
        "kind": report.kind,
        "statements": [normalize_statement(s) for s in report.statements],
        "faults": sorted(report.fired_faults),
    }
    if report.backend_pair is not None:
        payload_dict["backends"] = list(report.backend_pair)
    payload = json.dumps(payload_dict, sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()[:16]


@dataclass
class CorpusEntry:
    """One distinct bug with its first-seen witness.

    Only the witness fields are guaranteed present: corpora are
    append-only files spanning fleet eras, so every field added after
    PR 1 (``backend_pair``, and the provenance quartet
    ``plan_fingerprint`` / ``dialect`` / ``first_seen_shard`` /
    ``first_seen_seed``) is optional and defaults to "unknown /
    single-engine" on load.
    """

    fingerprint: str
    oracle: str
    kind: str
    statements: list[str]
    description: str
    fired_faults: list[str] = field(default_factory=list)
    reduced_statements: list[str] | None = None
    times_seen: int = 1
    #: (primary, secondary) backend names for differential findings.
    backend_pair: list[str] | None = None
    #: Plan-fingerprint signature of the main query (triage clustering
    #: signal); differential entries carry "primary|secondary".
    plan_fingerprint: str | None = None
    #: MiniDB profile of the campaign that found the bug.
    dialect: str | None = None
    #: Fleet provenance of the first sighting: which shard of which
    #: ``--seed`` found it first (replay the fleet to re-find it).
    first_seen_shard: int | None = None
    first_seen_seed: int | None = None

    def to_dict(self) -> dict:
        return {
            "fingerprint": self.fingerprint,
            "oracle": self.oracle,
            "kind": self.kind,
            "statements": self.statements,
            "description": self.description,
            "fired_faults": self.fired_faults,
            "reduced_statements": self.reduced_statements,
            "times_seen": self.times_seen,
            "backend_pair": self.backend_pair,
            "plan_fingerprint": self.plan_fingerprint,
            "dialect": self.dialect,
            "first_seen_shard": self.first_seen_shard,
            "first_seen_seed": self.first_seen_seed,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "CorpusEntry":
        pair = data.get("backend_pair")
        shard = data.get("first_seen_shard")
        seed = data.get("first_seen_seed")
        fingerprint = data.get("fingerprint")
        if fingerprint is None:
            # Pre-corpus report dumps carry no fingerprint; recompute it
            # from the witness so they cluster with modern entries.
            fingerprint = fingerprint_report(
                TestReport(
                    oracle=data.get("oracle", "unknown"),
                    kind=data["kind"],
                    statements=list(data["statements"]),
                    description=data.get("description", ""),
                    fired_faults=frozenset(data.get("fired_faults", ())),
                    backend_pair=tuple(pair) if pair else None,
                )
            )
        return cls(
            fingerprint=fingerprint,
            oracle=data.get("oracle", "unknown"),
            kind=data["kind"],
            statements=list(data["statements"]),
            description=data.get("description", ""),
            fired_faults=list(data.get("fired_faults", ())),
            reduced_statements=data.get("reduced_statements"),
            times_seen=int(data.get("times_seen", 1)),
            backend_pair=list(pair) if pair else None,
            plan_fingerprint=data.get("plan_fingerprint"),
            dialect=data.get("dialect"),
            first_seen_shard=None if shard is None else int(shard),
            first_seen_seed=None if seed is None else int(seed),
        )


class BugCorpus:
    """In-memory index of distinct bugs, optionally backed by a JSONL
    file.

    ``add()`` appends newly fingerprinted entries to the backing file
    immediately, so even an interrupted fleet leaves a loadable corpus;
    ``save()`` rewrites the file to also persist updated ``times_seen``
    counters.  Fingerprints are monotonic: nothing is ever removed.
    """

    def __init__(
        self, path: str | None = None, reduce_fn: ReduceFn | None = None
    ) -> None:
        self.path = path
        self.reduce_fn = reduce_fn
        self.entries: dict[str, CorpusEntry] = {}

    # -- construction ------------------------------------------------------------

    @classmethod
    def open(
        cls, path: str, reduce_fn: ReduceFn | None = None
    ) -> "BugCorpus":
        """Load *path* if it exists (resume), else start empty."""
        corpus = cls(path=path, reduce_fn=reduce_fn)
        if os.path.exists(path):
            for entry in _read_jsonl(path):
                corpus.entries[entry.fingerprint] = entry
        return corpus

    # -- mutation ----------------------------------------------------------------

    def add(
        self,
        report: TestReport,
        *,
        shard_index: int | None = None,
        seed: int | None = None,
        dialect: str | None = None,
    ) -> bool:
        """Record *report*; True iff its fingerprint is new.

        First-seen bugs are reduced (when a reducer is configured)
        before persisting; duplicates just bump ``times_seen``.  The
        keyword arguments stamp fleet provenance (first-seen shard,
        fleet seed, dialect) onto first-seen entries for triage.
        """
        fp = fingerprint_report(report)
        entry = self.entries.get(fp)
        if entry is not None:
            entry.times_seen += 1
            return False
        entry = CorpusEntry(
            fingerprint=fp,
            oracle=report.oracle,
            kind=report.kind,
            statements=list(report.statements),
            description=report.description,
            fired_faults=sorted(report.fired_faults),
            backend_pair=(
                list(report.backend_pair)
                if report.backend_pair is not None
                else None
            ),
            plan_fingerprint=report.plan_fingerprint,
            dialect=dialect,
            first_seen_shard=shard_index,
            first_seen_seed=seed,
        )
        if self.reduce_fn is not None:
            entry.reduced_statements = self.reduce_fn(report)
        self.entries[fp] = entry
        if self.path is not None:
            with open(self.path, "a", encoding="utf-8") as fh:
                fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        return True

    def merge(self, other: "BugCorpus | Iterable[CorpusEntry]") -> int:
        """Fold another corpus in; returns the number of new entries."""
        entries = other.entries.values() if isinstance(other, BugCorpus) else other
        new = 0
        for entry in entries:
            mine = self.entries.get(entry.fingerprint)
            if mine is None:
                self.entries[entry.fingerprint] = entry
                new += 1
            else:
                mine.times_seen += entry.times_seen
        return new

    def save(self, path: str | None = None, *, sort: bool = False) -> None:
        """Rewrite the backing file with current counters.

        ``sort=True`` orders entries by fingerprint instead of first-seen
        order, so merging the same inputs always writes a byte-identical
        file (``coddtest corpus merge`` relies on this).
        """
        target = path or self.path
        if target is None:
            raise ValueError("no path given and corpus has no backing file")
        entries = list(self.entries.values())
        if sort:
            entries.sort(key=lambda e: e.fingerprint)
        tmp = target + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            for entry in entries:
                fh.write(json.dumps(entry.to_dict(), sort_keys=True) + "\n")
        os.replace(tmp, target)

    # -- queries -----------------------------------------------------------------

    def __len__(self) -> int:
        return len(self.entries)

    def __contains__(self, fingerprint: str) -> bool:
        return fingerprint in self.entries

    @property
    def total_seen(self) -> int:
        return sum(e.times_seen for e in self.entries.values())

    @property
    def by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for entry in self.entries.values():
            out[entry.kind] = out.get(entry.kind, 0) + 1
        return out


def _read_jsonl(path: str) -> Iterator[CorpusEntry]:
    with open(path, "r", encoding="utf-8") as fh:
        for line in fh:
            line = line.strip()
            if line:
                yield CorpusEntry.from_dict(json.loads(line))
