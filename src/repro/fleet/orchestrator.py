"""Sharded campaign orchestration over a multiprocessing worker pool.

Each worker owns a full private stack -- engine, adapter, oracle,
state generator -- built from a picklable :class:`ShardSpec`, runs a
plain serial :class:`~repro.runner.campaign.Campaign`, and streams
progress plus its final :class:`CampaignStats` back over a queue.  The
orchestrator merges shard stats (set-union of plans, max coverage, QPT
recomputed from merged counters), enforces the fleet-wide
``max_reports`` bound via a shared stop event, and feeds every report
through the bug corpus for deduplication.

A 1-worker fleet runs in-process through the same shard code path, so
``run_fleet(workers=1, seed=S)`` bit-matches the serial
``run_campaign(seed=S)`` (modulo wall-clock timing).
"""

from __future__ import annotations

import multiprocessing
import queue as queue_mod
import time
import traceback
from dataclasses import dataclass, field
from typing import Callable

from repro.backends import backend_names, build_backend, get_backend
from repro.baselines import DQEOracle, EETOracle, NoRECOracle, TLPOracle
from repro.core import CoddTestOracle
from repro.differential import DifferentialOracle, build_pair_adapter
from repro.errors import (
    EngineCrash,
    EngineHang,
    InternalError,
    ReproError,
    SqlError,
)
from repro.fleet.corpus import BugCorpus, ReduceFn, fingerprint_report
from repro.fleet.progress import ProgressPrinter, ProgressSnapshot
from repro.fleet.sharding import (
    ShardSpec,
    derive_round_seed,
    derive_shard_seeds,
    split_tests,
)
from repro.fleet.telemetry import FleetTelemetry
from repro.guidance import (
    GUIDANCE_MODES,
    CoverageMap,
    GuidedPolicy,
    policy_seed,
)
from repro.obs.metrics import MetricsRegistry, merge_all
from repro.obs.trace import TraceWriter
from repro.oracles_base import Oracle, TestReport
from repro.perf import EvalCache
from repro.runner.campaign import Campaign, CampaignStats
from repro.runner.reducer import reduce_statements

#: Oracle registry shared with the CLI.
ORACLE_FACTORIES: dict[str, Callable[..., Oracle]] = {
    "coddtest": CoddTestOracle,
    "norec": NoRECOracle,
    "tlp": TLPOracle,
    "dqe": DQEOracle,
    "eet": EETOracle,
    "differential": DifferentialOracle,
}

#: How often (seconds) a worker posts a progress message at most.
PROGRESS_EVERY = 0.5


@dataclass
class FleetConfig:
    """One fleet invocation, fully picklable."""

    oracle: str = "coddtest"
    oracle_kwargs: dict = field(default_factory=dict)
    #: Single-backend campaigns: any registered backend name (see
    #: :func:`repro.backends.backend_names`).
    adapter: str = "minidb"
    dialect: str = "sqlite"
    buggy: bool = False
    workers: int = 1
    seed: int = 0
    n_tests: int | None = None
    seconds: float | None = None
    tests_per_state: int = 25
    max_reports: int = 1000
    #: Differential campaigns: (primary, secondary) backend names, e.g.
    #: ``("minidb", "sqlite3")``.  Requires ``oracle="differential"``.
    backend_pair: tuple[str, str] | None = None
    #: Guidance mode: None (uniform random, the historical behaviour)
    #: or "plan-coverage" (coverage-guided arms; see repro.guidance).
    guidance: str | None = None
    #: Number of snapshot-exchange barriers a guided fleet runs: the
    #: budget is split into this many rounds, each round's shards run
    #: to completion, then coverage merges and arm priors rebalance.
    guidance_rounds: int = 4
    #: Fleet-wide sightings at which a fault counts as saturated.
    saturation_threshold: int = 20
    #: Worker-local evaluation caching (repro.perf): each shard owns one
    #: EvalCache, never shared across processes.  On by default because
    #: cache-on campaigns are bit-identical to cache-off ones (gated by
    #: the perf-smoke CI job); ``coddtest ... --no-cache`` turns it off.
    use_cache: bool = True
    #: Column-at-a-time expression evaluation in worker engines.  On by
    #: default for the same reason as ``use_cache``: vector-on campaigns
    #: are bit-identical to vector-off ones (same perf-smoke gate);
    #: ``coddtest ... --no-vector`` turns it off.
    use_vector: bool = True
    #: Structured trace output (``--trace out.jsonl``): workers write
    #: per-shard part files, the orchestrator merges them plus its own
    #: events into one JSONL stream sorted by timestamp.  None traces
    #: nothing; tracing never changes deterministic outputs.
    trace_path: str | None = None
    #: Live status endpoint (``--status-port N``): a stdlib HTTP server
    #: in the orchestrator serving the latest fleet snapshot as JSON.
    #: 0 binds an ephemeral port; None disables the server.
    status_port: int | None = None

    def __post_init__(self) -> None:
        if self.oracle not in ORACLE_FACTORIES:
            raise ValueError(f"unknown oracle {self.oracle!r}")
        registered = backend_names()
        if self.adapter not in registered:
            raise ValueError(
                f"unknown adapter {self.adapter!r}; registered backends: "
                f"{', '.join(registered)}"
            )
        if self.workers < 1:
            raise ValueError(f"workers must be >= 1, got {self.workers}")
        if self.n_tests is None and self.seconds is None:
            raise ValueError("specify n_tests and/or seconds")
        if self.backend_pair is not None:
            self.backend_pair = tuple(self.backend_pair)
            if len(self.backend_pair) != 2 or any(
                b not in registered for b in self.backend_pair
            ):
                raise ValueError(
                    "backend_pair must name two registered backends "
                    f"({', '.join(registered)}), got {self.backend_pair!r}"
                )
            if self.oracle != "differential":
                raise ValueError(
                    "backend_pair requires oracle='differential'"
                )
        elif self.oracle == "differential":
            raise ValueError(
                "the differential oracle requires a backend_pair, e.g. "
                "('minidb', 'sqlite3')"
            )
        # Fail fast on optional backends that cannot build here (for
        # example duckdb without the package) -- not in a worker.
        for name in self.backend_pair or (self.adapter,):
            reason = get_backend(name).why_unavailable()
            if reason is not None:
                raise ValueError(
                    f"backend {name!r} is unavailable: {reason}"
                )
        if self.guidance is not None and self.guidance not in GUIDANCE_MODES:
            raise ValueError(
                f"unknown guidance mode {self.guidance!r}; "
                f"choose one of {GUIDANCE_MODES}"
            )
        if self.guidance_rounds < 1:
            raise ValueError(
                f"guidance_rounds must be >= 1, got {self.guidance_rounds}"
            )


@dataclass
class FleetResult:
    """Merged outcome of a fleet run."""

    merged: CampaignStats
    shards: list[CampaignStats]
    wall_seconds: float
    new_fingerprints: list[str] = field(default_factory=list)
    duplicate_reports: int = 0
    corpus: BugCorpus | None = None
    #: End-of-run triage of the (whole) attached corpus: clusters keyed
    #: by fault ids, plan signature, and backend pair, in stable order.
    #: None when the fleet ran without a corpus.
    clusters: "list | None" = None
    #: Merged plan-coverage map of a guided run (None when unguided).
    #: Save it alongside the corpus to resume guidance across fleets.
    coverage: CoverageMap | None = None
    #: Per-shard arm schedule of a guided run (arm name per test, in
    #: order) -- the reproducibility witness: same seed + workers must
    #: yield identical schedules.  None when unguided.
    arm_schedules: "list[list[str]] | None" = None
    #: CRDT-merged metrics of the run: per-shard counters/gauges/timers
    #: plus the orchestrator's own stream (see :mod:`repro.obs.metrics`).
    metrics: MetricsRegistry | None = None

    @property
    def arm_summary(self) -> "list[tuple[str, int, int]]":
        """``(arm, pulls, new_plans)`` rows of a guided run, best first."""
        if self.coverage is None:
            return []
        return self.coverage.arm_summary()


def _shard_trace_path(config: FleetConfig, shard_index: int) -> "str | None":
    if config.trace_path is None:
        return None
    from repro.obs.trace import shard_part_path

    return shard_part_path(config.trace_path, shard_index)


def build_shards(config: FleetConfig) -> list[ShardSpec]:
    """Deterministic shard plan for *config*."""
    seeds = derive_shard_seeds(config.seed, config.workers)
    quotas = split_tests(config.n_tests, config.workers)
    return [
        ShardSpec(
            shard_index=i,
            workers=config.workers,
            seed=seeds[i],
            n_tests=quotas[i],
            seconds=config.seconds,
            oracle=config.oracle,
            oracle_kwargs=dict(config.oracle_kwargs),
            adapter=config.adapter,
            dialect=config.dialect,
            buggy=config.buggy,
            tests_per_state=config.tests_per_state,
            # Each shard stays within the fleet-wide bound; the merge
            # truncates again, and the stop event ends the other shards.
            max_reports=config.max_reports,
            backend_pair=config.backend_pair,
            use_cache=config.use_cache,
            use_vector=config.use_vector,
            trace_path=_shard_trace_path(config, i),
        )
        for i in range(config.workers)
    ]


# ---------------------------------------------------------------------------
# Worker side
# ---------------------------------------------------------------------------


def _build_adapter(spec: ShardSpec):
    if spec.backend_pair is not None:
        return build_pair_adapter(
            spec.backend_pair, dialect=spec.dialect, buggy=spec.buggy
        )
    return build_backend(
        spec.adapter, dialect=spec.dialect, buggy=spec.buggy
    )


def _build_policy(spec: ShardSpec) -> GuidedPolicy | None:
    """The shard's generation policy: fresh on round 0, resumed from the
    serialized state afterwards, with the merged fleet snapshot folded
    in either way (fleet-known fingerprints are not novel here)."""
    if spec.guidance is None:
        return None
    snapshot = CoverageMap.from_dict(spec.coverage_snapshot)
    saturated = frozenset(spec.saturated_faults)
    if spec.policy_state is not None:
        policy = GuidedPolicy.from_state(spec.policy_state)
        policy.absorb_snapshot(snapshot, saturated)
    else:
        policy = GuidedPolicy(
            policy_seed(spec.seed),
            source=spec.coverage_source or f"shard{spec.shard_index}",
            known_plans=snapshot.seen_plans(),
            saturated=saturated,
        )
    # Budget rebalance: arms the fleet pulled hard for little yield
    # start this round deprioritized (prior excludes this shard's own
    # counters, which live in the resumed policy state).
    policy.inject_prior(_arm_prior(snapshot, exclude_source=policy.source))
    return policy


def _arm_prior(
    snapshot: CoverageMap, exclude_source: str
) -> "dict[str, tuple[int, float]]":
    prior: dict[str, tuple[int, float]] = {}
    for source, arms in snapshot.arms.items():
        if source == exclude_source:
            continue
        for arm, counters in arms.items():
            pulls, reward = prior.get(arm, (0, 0.0))
            prior[arm] = (
                pulls + counters.get("pulls", 0),
                reward + float(counters.get("new_plans", 0)),
            )
    return prior


def _run_shard(
    spec: ShardSpec,
    should_stop: Callable[[], bool] | None = None,
    on_progress: Callable[[CampaignStats], None] | None = None,
) -> dict:
    """Run one shard to completion in the current process.

    Returns the shard payload: ``{"stats": CampaignStats}`` plus, for
    guided shards, the serialized policy state and coverage snapshot
    the orchestrator merges at the next round barrier.
    """
    oracle = ORACLE_FACTORIES[spec.oracle](**spec.oracle_kwargs)
    policy = _build_policy(spec)
    cache = EvalCache() if spec.use_cache else None
    tracer = (
        TraceWriter(spec.trace_path, shard=spec.shard_index)
        if spec.trace_path is not None
        else None
    )
    if tracer is not None:
        tracer.emit("shard_start", seed=spec.seed, round=spec.round_index)
    campaign = Campaign(
        oracle,
        _build_adapter(spec),
        seed=spec.seed,
        tests_per_state=spec.tests_per_state,
        max_reports=spec.max_reports,
        should_stop=should_stop,
        on_progress=on_progress,
        policy=policy,
        cache=cache,
        vector=spec.use_vector,
        tracer=tracer,
    )
    try:
        stats = campaign.run(n_tests=spec.n_tests, seconds=spec.seconds)
    finally:
        if tracer is not None:
            tracer.flush()
    if tracer is not None:
        tracer.emit(
            "shard_finish",
            tests=stats.tests,
            skipped=stats.skipped,
            reports=len(stats.reports),
            round=spec.round_index,
            phases=stats.phase_stats,
            cache=stats.cache_stats,
            unique_plans=len(stats.unique_plans),
        )
        tracer.close()
    payload: dict = {"stats": stats}
    if policy is not None:
        payload["policy"] = policy.to_state()
        payload["coverage"] = policy.coverage.to_dict()
    payload["metrics"] = _shard_metrics(spec, stats).to_dict()
    return payload


def _shard_metrics(spec: ShardSpec, stats: CampaignStats) -> MetricsRegistry:
    """One shard-round's metrics stream.

    The source name includes the round index: each guided round is a
    fresh campaign counting from zero, so giving every round its own
    single-writer stream lets the CRDT max-join stay idempotent while
    cross-round totals come from summing the per-source views.
    """
    registry = MetricsRegistry(
        source=f"shard{spec.shard_index}/r{spec.round_index}"
    )
    registry.incr("tests", stats.tests)
    registry.incr("skipped", stats.skipped)
    registry.incr("queries_ok", stats.queries_ok)
    registry.incr("queries_err", stats.queries_err)
    registry.incr("states", stats.states)
    registry.incr("reports", len(stats.reports))
    for name, value in stats.cache_stats.items():
        registry.incr(f"cache/{name}", value)
    registry.gauge("branch_coverage", stats.branch_coverage)
    registry.observe("shard_wall", stats.wall_seconds)
    registry.absorb_phase_totals(stats.phase_stats)
    return registry


def _worker_main(spec: ShardSpec, out_queue, stop_event) -> None:
    """Worker process entry point: run the shard, stream progress.

    Progress messages carry the reports found since the previous
    message, so the orchestrator can absorb them into the bug corpus
    while the fleet is still running -- an interrupted fleet keeps the
    bugs streamed so far.
    """
    last_sent = 0.0
    reports_sent = 0

    def on_progress(stats: CampaignStats) -> None:
        nonlocal last_sent, reports_sent
        now = time.monotonic()
        if now - last_sent < PROGRESS_EVERY:
            return
        last_sent = now
        new_reports = stats.reports[reports_sent:]
        reports_sent = len(stats.reports)
        out_queue.put(
            (
                "progress",
                spec.shard_index,
                {
                    "tests": stats.tests,
                    "skipped": stats.skipped,
                    "queries_ok": stats.queries_ok,
                    "queries_err": stats.queries_err,
                    "reports": len(stats.reports),
                    "unique_plans": len(stats.unique_plans),
                    "cache": dict(stats.cache_stats),
                    "new_reports": new_reports,
                },
            )
        )

    try:
        payload = _run_shard(
            spec, should_stop=stop_event.is_set, on_progress=on_progress
        )
    except Exception:
        out_queue.put(("error", spec.shard_index, traceback.format_exc()))
    else:
        out_queue.put(("result", spec.shard_index, payload))


# ---------------------------------------------------------------------------
# Orchestrator side
# ---------------------------------------------------------------------------


class _CorpusSink:
    """Feeds reports into the corpus *as they arrive*, so an
    interrupted fleet keeps every bug streamed so far (matching the
    corpus' append-on-add crash-safety), and tracks the new/duplicate
    split for progress lines and the final result."""

    def __init__(
        self,
        corpus: BugCorpus | None,
        config: "FleetConfig | None" = None,
        telemetry: "FleetTelemetry | None" = None,
    ) -> None:
        self.corpus = corpus
        self.config = config
        self.telemetry = telemetry
        self.new_fingerprints: list[str] = []
        self.duplicates = 0
        #: Reports already absorbed per shard (progress streaming).
        self.absorbed: dict[int, int] = {}

    def absorb(self, shard_index: int, reports: list[TestReport]) -> None:
        if self.corpus is None or not reports:
            return
        self.absorbed[shard_index] = (
            self.absorbed.get(shard_index, 0) + len(reports)
        )
        seed = self.config.seed if self.config is not None else None
        dialect = self.config.dialect if self.config is not None else None
        for report in reports:
            added = self.corpus.add(
                report,
                shard_index=shard_index,
                seed=seed,
                dialect=dialect,
            )
            if added:
                fingerprint = fingerprint_report(report)
                self.new_fingerprints.append(fingerprint)
                if self.telemetry is not None:
                    self.telemetry.cluster_new(fingerprint, report.kind)
            else:
                self.duplicates += 1

    def absorb_remainder(self, shard_index: int, stats: CampaignStats) -> None:
        """Absorb the reports of a finished shard that no progress
        message carried yet."""
        done = self.absorbed.get(shard_index, 0)
        self.absorb(shard_index, stats.reports[done:])

    def start_round(self) -> None:
        """Reset the per-shard absorption offsets at a guided round
        barrier: each round's campaigns report from index 0 again, so a
        stale offset would slice past (and silently drop) every report
        the new round finds.  Corpus dedup state is untouched."""
        self.absorbed.clear()

    @property
    def unique(self) -> int | None:
        """Newly fingerprinted this run; None without a corpus."""
        return None if self.corpus is None else len(self.new_fingerprints)


def run_fleet(
    config: FleetConfig,
    corpus: BugCorpus | None = None,
    printer: ProgressPrinter | None = None,
    coverage: CoverageMap | None = None,
    telemetry: FleetTelemetry | None = None,
) -> FleetResult:
    """Run a sharded campaign and merge the results.

    *corpus* (optional) deduplicates reports across shards and past
    invocations (first-seen entries are stamped with shard/seed/dialect
    provenance); *printer* (optional) emits periodic progress lines;
    *coverage* (optional, guided fleets) seeds the plan-coverage map --
    pass a loaded checkpoint to resume guidance across invocations;
    *telemetry* (optional) bundles every observability surface --
    progress printer, ``--trace`` stream, ``--status-port`` endpoint
    (one is built from *config* + *printer* when omitted).
    The result is deterministic for a given ``(seed, workers, budget)``:
    shard stats merge in spec order and the corpus holds the same entry
    set regardless of scheduling.  Telemetry never feeds back into
    scheduling, so every deterministic output is identical with the
    surfaces on or off.
    """
    if telemetry is None:
        telemetry = FleetTelemetry(
            printer=printer,
            trace_path=config.trace_path,
            status_port=config.status_port,
        )
    telemetry.open(config)
    try:
        if config.guidance is not None:
            return _run_guided(config, corpus, telemetry, coverage)
        return _run_unguided(config, corpus, telemetry)
    finally:
        telemetry.close()


def _run_unguided(
    config: FleetConfig,
    corpus: BugCorpus | None,
    telemetry: FleetTelemetry,
) -> FleetResult:
    shards = build_shards(config)
    sink = _CorpusSink(corpus, config, telemetry)
    start = time.monotonic()
    if config.workers == 1:
        payloads = [_run_one_inprocess(shards[0], sink, telemetry, start)]
    else:
        payloads = _run_pool(shards, config, sink, telemetry, start)
    shard_stats = [p["stats"] for p in payloads]
    wall = time.monotonic() - start

    # Both collection paths return shards in spec order, so the merge
    # is deterministic; the corpus, fed in arrival order, holds the
    # same entry *set* regardless of scheduling.
    merged = CampaignStats.merge(shard_stats, max_reports=config.max_reports)
    if config.workers > 1:
        # Shards ran concurrently: fleet wall-clock, not max shard time.
        merged.wall_seconds = wall

    result = FleetResult(
        merged=merged,
        shards=shard_stats,
        wall_seconds=wall,
        corpus=corpus,
        new_fingerprints=sink.new_fingerprints,
        duplicate_reports=sink.duplicates,
        metrics=_merged_metrics(payloads, telemetry),
    )
    _attach_clusters(result, corpus)
    telemetry.finish(
        _snapshot(shard_stats, config, wall, sink, result.clusters),
        merged,
        wall,
    )
    return result


def _merged_metrics(
    payloads: "list[dict]", telemetry: FleetTelemetry
) -> MetricsRegistry:
    """Join every shard's metrics stream with the orchestrator's own."""
    return merge_all(
        [
            MetricsRegistry.from_dict(p["metrics"])
            for p in payloads
            if p.get("metrics")
        ]
        + [telemetry.metrics]
    )


def _attach_clusters(result: FleetResult, corpus: BugCorpus | None) -> None:
    if corpus is None:
        return
    # End-of-run triage: the raw entry count is not the unit of
    # truth, the clustered corpus is (ROADMAP "Corpus triage").
    # Imported lazily: the triage package reads corpus entries, so
    # importing it at module level would be circular.
    from repro.triage.cluster import cluster_corpus

    result.clusters = cluster_corpus(corpus.entries.values())


# ---------------------------------------------------------------------------
# Guided fleets: deterministic rounds with snapshot exchange
# ---------------------------------------------------------------------------


#: Minimum tests a shard should run between snapshot barriers: below
#: this the bandit re-pays its exploration phase every round for no
#: exchange benefit (measured on 200-test campaigns).
_MIN_TESTS_PER_ROUND = 64


#: Minimum seconds per round for wall-clock-only budgets (the test
#: clamp cannot apply when the test count is unknown up front).
_MIN_SECONDS_PER_ROUND = 2.0


def _effective_rounds(config: FleetConfig) -> int:
    """Clamp the round count so every shard gets a meaningful slice of
    work per round: at least ``_MIN_TESTS_PER_ROUND`` tests for test
    budgets, at least ``_MIN_SECONDS_PER_ROUND`` seconds for
    wall-clock-only budgets (and always at least one round)."""
    if config.n_tests is None:
        return max(
            1,
            min(
                config.guidance_rounds,
                int(config.seconds / _MIN_SECONDS_PER_ROUND) or 1,
            ),
        )
    per_worker = config.n_tests // config.workers
    return max(
        1,
        min(
            config.guidance_rounds,
            per_worker // _MIN_TESTS_PER_ROUND or 1,
            per_worker,
        ),
    )


def _saturated_fault_ids(
    coverage: CoverageMap, corpus: BugCorpus | None, threshold: int
) -> frozenset[str]:
    """The union of both saturation signals: faults the coverage map has
    counted *threshold* times, and faults whose triage clusters have
    accumulated *threshold* sightings in the corpus."""
    saturated = set(coverage.saturated_faults(threshold))
    if corpus is not None:
        from repro.triage.cluster import cluster_corpus, saturated_fault_ids

        clusters = cluster_corpus(corpus.entries.values())
        saturated |= saturated_fault_ids(clusters, threshold)
    return frozenset(saturated)


def _coverage_epoch(initial: CoverageMap) -> str:
    """Disambiguates counter ownership across resumed invocations.

    Coverage sources must be single-writer, monotone streams for the
    CRDT max-merge to count correctly.  A fresh run owns the bare
    ``seed:shard/workers`` source, so re-running the identical fleet
    merges idempotently; a run resumed from a non-empty checkpoint
    makes *different* decisions (its novelty set starts from the
    checkpoint), so its counters get a new owner derived from the
    checkpoint content -- same checkpoint, same owner (still
    idempotent), different checkpoint, separate counters that sum.
    """
    import hashlib
    import json

    if not initial.plans and not initial.faults and not initial.arms:
        return ""
    payload = json.dumps(initial.to_dict(), sort_keys=True)
    return "@" + hashlib.blake2b(payload.encode(), digest_size=4).hexdigest()


def _build_guided_shards(
    config: FleetConfig,
    round_index: int,
    round_tests: int | None,
    round_seconds: float | None,
    policy_states: "list[dict | None]",
    coverage: CoverageMap,
    saturated: frozenset[str],
    epoch: str = "",
    max_reports: int | None = None,
) -> list[ShardSpec]:
    seeds = derive_shard_seeds(config.seed, config.workers)
    quotas = split_tests(round_tests, config.workers)
    snapshot = coverage.to_dict()
    report_cap = config.max_reports if max_reports is None else max_reports
    return [
        ShardSpec(
            shard_index=i,
            workers=config.workers,
            seed=derive_round_seed(seeds[i], round_index),
            n_tests=quotas[i],
            seconds=round_seconds,
            oracle=config.oracle,
            oracle_kwargs=dict(config.oracle_kwargs),
            adapter=config.adapter,
            dialect=config.dialect,
            buggy=config.buggy,
            tests_per_state=config.tests_per_state,
            max_reports=report_cap,
            backend_pair=config.backend_pair,
            guidance=config.guidance,
            round_index=round_index,
            policy_state=policy_states[i],
            coverage_snapshot=snapshot,
            saturated_faults=tuple(sorted(saturated)),
            coverage_source=f"{config.seed}:{i}/{config.workers}{epoch}",
            use_cache=config.use_cache,
            use_vector=config.use_vector,
            trace_path=_shard_trace_path(config, i),
        )
        for i in range(config.workers)
    ]


def _progress_base(per_shard: "list[list[CampaignStats]]") -> dict:
    """Earlier rounds' cumulative counters, so mid-round progress lines
    keep counting up across guided round barriers."""
    parts = [stats for rounds in per_shard for stats in rounds]
    hits, misses = _cache_hits_misses([s.cache_stats for s in parts])
    return {
        "tests": sum(s.tests for s in parts),
        "skipped": sum(s.skipped for s in parts),
        "queries_ok": sum(s.queries_ok for s in parts),
        "queries_err": sum(s.queries_err for s in parts),
        "reports": sum(len(s.reports) for s in parts),
        "cache_hits": hits,
        "cache_misses": misses,
    }


def _run_guided(
    config: FleetConfig,
    corpus: BugCorpus | None,
    telemetry: FleetTelemetry,
    coverage: CoverageMap | None,
) -> FleetResult:
    """Guided fleet: the budget is split into rounds; between rounds the
    orchestrator merges every shard's coverage snapshot (CRDT join, so
    order and repetition are harmless), recomputes the saturated-fault
    set from the corpus triage clusters, and rebalances the remaining
    budget toward under-covered arms by injecting fleet-global arm
    priors into each shard's bandit.

    Exchanging only at round barriers keeps the whole fleet a pure
    function of ``(seed, workers, budget)``: within a round shards are
    independent deterministic campaigns, and the merge is a CRDT join.
    """
    coverage = coverage if coverage is not None else CoverageMap()
    epoch = _coverage_epoch(coverage)
    sink = _CorpusSink(corpus, config, telemetry)
    start = time.monotonic()
    rounds = _effective_rounds(config)
    policy_states: list[dict | None] = [None] * config.workers
    per_shard: list[list[CampaignStats]] = [[] for _ in range(config.workers)]
    metric_payloads: list[dict] = []
    known_saturated: set[str] = set()
    remaining = config.n_tests
    reports_so_far = 0
    for round_index in range(rounds):
        round_tests: int | None = None
        if remaining is not None:
            round_tests = remaining // (rounds - round_index)
            remaining -= round_tests
        round_seconds = (
            None if config.seconds is None else config.seconds / rounds
        )
        saturated = _saturated_fault_ids(
            coverage, corpus, config.saturation_threshold
        )
        for fault in sorted(saturated - known_saturated):
            telemetry.cluster_saturated(fault)
        known_saturated |= saturated
        telemetry.round_barrier(
            round_index,
            rounds,
            saturated=len(saturated),
            plans=len(coverage.seen_plans()),
        )
        # The fleet-wide report cap is cumulative across rounds: each
        # round only gets the remainder, so a guided fleet overshoots
        # by at most the same race window as an unguided one.
        remaining_reports = max(0, config.max_reports - reports_so_far)
        sink.start_round()
        specs = _build_guided_shards(
            config,
            round_index,
            round_tests,
            round_seconds,
            policy_states,
            coverage,
            saturated,
            epoch,
            max_reports=remaining_reports,
        )
        progress_base = _progress_base(per_shard)
        if config.workers == 1:
            payloads = [
                _run_one_inprocess(
                    specs[0], sink, telemetry, start,
                    progress_base=progress_base,
                )
            ]
        else:
            payloads = _run_pool(
                specs, config, sink, telemetry, start,
                max_reports=remaining_reports,
                progress_base=progress_base,
            )
        for i, payload in enumerate(payloads):
            per_shard[i].append(payload["stats"])
            policy_states[i] = payload.get("policy")
            shard_coverage = payload.get("coverage")
            if shard_coverage:
                coverage.update(CoverageMap.from_dict(shard_coverage))
            metric_payloads.append(payload)
        reports_so_far = sum(
            len(stats.reports) for parts in per_shard for stats in parts
        )
        if reports_so_far >= config.max_reports:
            break
    wall = time.monotonic() - start

    shard_stats: list[CampaignStats] = []
    for parts in per_shard:
        merged_shard = CampaignStats.merge(parts)
        # Rounds of one shard ran sequentially, not concurrently.
        merged_shard.wall_seconds = sum(p.wall_seconds for p in parts)
        shard_stats.append(merged_shard)
    merged = CampaignStats.merge(shard_stats, max_reports=config.max_reports)
    if config.workers > 1:
        merged.wall_seconds = wall

    result = FleetResult(
        merged=merged,
        shards=shard_stats,
        wall_seconds=wall,
        corpus=corpus,
        new_fingerprints=sink.new_fingerprints,
        duplicate_reports=sink.duplicates,
        coverage=coverage,
        arm_schedules=[
            list(state["schedule"]) if state else []
            for state in policy_states
        ],
        metrics=_merged_metrics(metric_payloads, telemetry),
    )
    _attach_clusters(result, corpus)
    telemetry.finish(
        _snapshot(shard_stats, config, wall, sink, result.clusters),
        merged,
        wall,
    )
    return result


def _run_one_inprocess(
    spec: ShardSpec,
    sink: _CorpusSink,
    telemetry: FleetTelemetry,
    start: float,
    progress_base: "dict | None" = None,
) -> dict:
    base = progress_base or _EMPTY_PROGRESS_BASE
    def on_progress(stats: CampaignStats) -> None:
        sink.absorb_remainder(spec.shard_index, stats)
        telemetry.shard_seen(spec.shard_index)
        hits, misses = _cache_hits_misses([stats.cache_stats])
        snap = ProgressSnapshot(
            elapsed=time.monotonic() - start,
            workers=1,
            shards_done=0,
            tests=base["tests"] + stats.tests,
            skipped=base["skipped"] + stats.skipped,
            queries_ok=base["queries_ok"] + stats.queries_ok,
            queries_err=base["queries_err"] + stats.queries_err,
            reports=base["reports"] + len(stats.reports),
            unique_reports=sink.unique,
            cache_hits=base["cache_hits"] + hits,
            cache_misses=base["cache_misses"] + misses,
            unique_plans=len(stats.unique_plans),
        )
        telemetry.progress(
            snap, {spec.shard_index: _final_payload(stats)}
        )

    payload = _run_shard(spec, on_progress=on_progress)
    sink.absorb_remainder(spec.shard_index, payload["stats"])
    telemetry.shard_seen(spec.shard_index, done=True)
    return payload


def _run_pool(
    shards: list[ShardSpec],
    config: FleetConfig,
    sink: _CorpusSink,
    telemetry: FleetTelemetry,
    start: float,
    max_reports: int | None = None,
    progress_base: "dict | None" = None,
) -> list[dict]:
    """*max_reports* overrides the fleet-wide stop threshold for this
    pool invocation (guided rounds pass the cap *remaining* after
    earlier rounds; None keeps the config-wide bound).  *progress_base*
    carries earlier rounds' cumulative counters so progress lines never
    jump backward at a round barrier."""
    report_cap = config.max_reports if max_reports is None else max_reports
    base = progress_base or _EMPTY_PROGRESS_BASE
    ctx = _mp_context()
    out_queue = ctx.Queue()
    stop_event = ctx.Event()
    procs = [
        ctx.Process(
            target=_worker_main,
            args=(spec, out_queue, stop_event),
            daemon=True,
            name=f"fleet-shard-{spec.shard_index}",
        )
        for spec in shards
    ]
    for proc in procs:
        proc.start()

    latest: dict[int, dict] = {}
    results: dict[int, dict] = {}
    errors: dict[int, str] = {}
    dead_since: dict[int, float] = {}
    try:
        while len(results) + len(errors) < len(shards):
            try:
                kind, shard_index, payload = out_queue.get(timeout=0.5)
            except queue_mod.Empty:
                _check_liveness(procs, results, errors, dead_since)
                continue
            if kind == "progress":
                latest[shard_index] = payload
                sink.absorb(shard_index, payload.pop("new_reports", []))
                telemetry.shard_seen(shard_index)
            elif kind == "result":
                results[shard_index] = payload
                latest[shard_index] = _final_payload(payload["stats"])
                sink.absorb_remainder(shard_index, payload["stats"])
                telemetry.shard_seen(shard_index, done=True)
                # A result that raced the liveness check wins.
                errors.pop(shard_index, None)
                dead_since.pop(shard_index, None)
            else:  # "error"
                errors[shard_index] = payload
            if _reports_so_far(latest) >= report_cap:
                stop_event.set()
            telemetry.progress(
                _queue_snapshot(
                    latest, config, start, len(results), sink, base
                ),
                latest,
                set(results),
            )
    finally:
        stop_event.set()
        for proc in procs:
            proc.join(timeout=10)
            if proc.is_alive():  # pragma: no cover - defensive
                proc.terminate()
                proc.join()

    if errors:
        detail = "\n".join(
            f"--- shard {idx} ---\n{tb}" for idx, tb in sorted(errors.items())
        )
        raise ReproError(
            f"{len(errors)}/{len(shards)} fleet shards failed:\n{detail}"
        )
    return [results[i] for i in sorted(results)]


def _mp_context():
    """Prefer fork (workers inherit the loaded package; much cheaper
    startup), fall back to the platform default elsewhere."""
    methods = multiprocessing.get_all_start_methods()
    return multiprocessing.get_context("fork" if "fork" in methods else None)


#: How long a dead worker may stay silent before its shard is declared
#: lost.  A worker that exits cleanly right after queueing its result
#: can look dead while the queue's feeder thread is still flushing, so
#: a missing result only counts as a failure after this grace window.
_DEAD_GRACE_SECONDS = 5.0


def _check_liveness(procs, results, errors, dead_since) -> None:
    now = time.monotonic()
    for proc in procs:
        shard_index = int(proc.name.rsplit("-", 1)[1])
        if (
            proc.is_alive()
            or shard_index in results
            or shard_index in errors
        ):
            continue
        first_seen_dead = dead_since.setdefault(shard_index, now)
        if now - first_seen_dead < _DEAD_GRACE_SECONDS:
            continue
        errors[shard_index] = (
            f"worker exited with code {proc.exitcode} without reporting "
            "a result (killed or crashed hard)"
        )


def _final_payload(stats: CampaignStats) -> dict:
    return {
        "tests": stats.tests,
        "skipped": stats.skipped,
        "queries_ok": stats.queries_ok,
        "queries_err": stats.queries_err,
        "reports": len(stats.reports),
        "unique_plans": len(stats.unique_plans),
        "cache": dict(stats.cache_stats),
    }


def _cache_hits_misses(payloads: "list[dict]") -> tuple[int, int]:
    """Sum hit/miss counters over per-shard ``cache`` payload dicts."""
    hits = misses = 0
    for cache in payloads:
        for key, value in cache.items():
            if key.endswith("_hits"):
                hits += value
            elif key.endswith("_misses"):
                misses += value
    return hits, misses


def _reports_so_far(latest: dict[int, dict]) -> int:
    return sum(p["reports"] for p in latest.values())


#: Zero baseline for single-invocation (unguided) progress reporting.
_EMPTY_PROGRESS_BASE = {
    "tests": 0,
    "skipped": 0,
    "queries_ok": 0,
    "queries_err": 0,
    "reports": 0,
    "cache_hits": 0,
    "cache_misses": 0,
}


def _queue_snapshot(
    latest: dict[int, dict],
    config: FleetConfig,
    start: float,
    done: int,
    sink: _CorpusSink,
    base: dict = _EMPTY_PROGRESS_BASE,
) -> ProgressSnapshot:
    hits, misses = _cache_hits_misses(
        [p.get("cache", {}) for p in latest.values()]
    )
    return ProgressSnapshot(
        elapsed=time.monotonic() - start,
        workers=config.workers,
        shards_done=done,
        tests=base["tests"] + sum(p["tests"] for p in latest.values()),
        skipped=base["skipped"] + sum(p["skipped"] for p in latest.values()),
        queries_ok=base["queries_ok"]
        + sum(p["queries_ok"] for p in latest.values()),
        queries_err=base["queries_err"]
        + sum(p["queries_err"] for p in latest.values()),
        reports=base["reports"] + _reports_so_far(latest),
        unique_reports=sink.unique,
        cache_hits=base["cache_hits"] + hits,
        cache_misses=base["cache_misses"] + misses,
        unique_plans=sum(p.get("unique_plans", 0) for p in latest.values()),
    )


def _snapshot(
    shard_stats: list[CampaignStats],
    config: FleetConfig,
    wall: float,
    sink: _CorpusSink,
    clusters: "list | None" = None,
) -> ProgressSnapshot:
    merged = CampaignStats.merge(shard_stats)
    return ProgressSnapshot(
        elapsed=wall,
        workers=config.workers,
        shards_done=config.workers,
        tests=merged.tests,
        skipped=merged.skipped,
        queries_ok=merged.queries_ok,
        queries_err=merged.queries_err,
        reports=len(merged.reports),
        # Newly fingerprinted this run, so a resumed corpus shows how
        # much of the run was already-known bugs.
        unique_reports=sink.unique,
        clusters=None if clusters is None else len(clusters),
        cache_hits=merged.cache_hits,
        cache_misses=merged.cache_misses,
        unique_plans=len(merged.unique_plans),
    )


# ---------------------------------------------------------------------------
# Corpus reduction wired to the fleet's engine configuration
# ---------------------------------------------------------------------------


def make_replay_reducer(config: FleetConfig) -> ReduceFn | None:
    """A corpus ``reduce_fn`` that ddmin-reduces first-seen bugs by
    replaying candidate statement lists on a fresh engine.

    Ground truth drives the "still fails" check: a candidate reproduces
    the bug when the report's injected faults all fire again (logic
    bugs) or the engine raises the same failure class (internal error /
    crash / hang).  Real DBMS adapters have no ground truth, so there
    is nothing safe to replay against -- returns None (the registry's
    ``simulated`` flag is the ground-truth marker), as do differential
    configs (a reduced witness would need *both* engines to disagree
    again, which single-engine replay cannot check).
    """
    if config.backend_pair is not None:
        return None
    if not get_backend(config.adapter).simulated:
        return None

    def reduce_fn(report: TestReport) -> list[str] | None:
        target = set(report.fired_faults)
        exceptional = report.kind in ("internal error", "crash", "hang")
        if not target and not exceptional:
            return None  # nothing observable to check against

        # One cache per reduction: ddmin replays dozens of candidate
        # programs that share the state-building DDL prefix, so the
        # parse memo and the state-token-keyed result memo turn the
        # shared prefix into lookups instead of re-parsing and
        # re-executing it per candidate (identical prefixes produce
        # identical tokens, so sharing across fresh engines is exact).
        # --no-cache fleets reduce uncached too, keeping the flag a
        # genuine reference path for isolating cache bugs.
        cache = EvalCache() if config.use_cache else None

        def still_fails(stmts: list[str]) -> bool:
            adapter = _build_adapter(
                ShardSpec(
                    shard_index=0,
                    workers=1,
                    seed=0,
                    n_tests=None,
                    seconds=0.0,
                    oracle=config.oracle,
                    adapter=config.adapter,
                    dialect=config.dialect,
                    buggy=config.buggy,
                )
            )
            if cache is not None:
                adapter.attach_eval_cache(cache)
            if config.use_vector:
                adapter.set_vector_eval(True)
            fired: set[str] = set()
            for sql in stmts:
                try:
                    adapter.execute(sql)
                except SqlError:
                    return False  # candidate no longer a valid program
                except (InternalError, EngineCrash, EngineHang):
                    fired |= adapter.fired_fault_ids()
                    return exceptional and (not target or target <= fired)
                fired |= adapter.fired_fault_ids()
            return not exceptional and bool(target) and target <= fired

        if not still_fails(report.statements):
            return None  # witness not reproducible by replay; keep as-is
        return reduce_statements(list(report.statements), still_fails)

    return reduce_fn
