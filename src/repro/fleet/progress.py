"""Periodic fleet progress reporting.

The orchestrator aggregates the latest per-shard snapshots and hands
them here; this module owns formatting and rate-limiting so campaign
logic never touches a terminal.  Lines go to stderr by default, keeping
stdout clean for the rendered result tables.  Progress lines are the
one deliberately non-deterministic surface (they report wall-clock
throughput); everything on stdout stays a pure function of the seed.
"""

from __future__ import annotations

import sys
import time
from dataclasses import dataclass, field
from typing import TextIO


@dataclass
class ProgressSnapshot:
    """Fleet-wide counters at one instant."""

    elapsed: float = 0.0
    workers: int = 1
    shards_done: int = 0
    tests: int = 0
    skipped: int = 0
    queries_ok: int = 0
    queries_err: int = 0
    reports: int = 0
    unique_reports: int | None = None  # None when no corpus is attached
    #: Root-cause clusters in the attached corpus (end-of-run triage);
    #: None when no corpus is attached or while the fleet is running.
    clusters: int | None = None
    #: Evaluation-cache counters summed across shards (0/0 when the
    #: fleet runs uncached).
    cache_hits: int = 0
    cache_misses: int = 0
    #: Sum of per-shard unique-plan counts -- a live upper bound on the
    #: merged set-union the final table reports.
    unique_plans: int = 0
    #: Guided-fleet round progress (1-based); None when unguided.
    round: int | None = None
    rounds: int | None = None

    @property
    def tests_per_second(self) -> float:
        return self.tests / self.elapsed if self.elapsed > 0 else 0.0

    @property
    def cache_hit_rate(self) -> float | None:
        """Overall hit fraction; None when no cache lookups happened."""
        total = self.cache_hits + self.cache_misses
        if total == 0:
            return None
        return self.cache_hits / total

    @property
    def qpt(self) -> float:
        return self.queries_ok / self.tests if self.tests else 0.0

    @property
    def dedup_rate(self) -> float | None:
        """Fraction of reports that were duplicates of a known bug."""
        if self.unique_reports is None or self.reports == 0:
            return None
        return 1.0 - self.unique_reports / self.reports


@dataclass
class ProgressPrinter:
    """Rate-limited one-line progress renderer."""

    interval: float = 2.0
    stream: TextIO = field(default_factory=lambda: sys.stderr)
    _last: float = field(default=0.0, repr=False)

    def maybe_print(self, snap: ProgressSnapshot) -> bool:
        """Print if at least *interval* seconds passed since the last
        line; returns whether a line was emitted."""
        now = time.monotonic()
        if now - self._last < self.interval:
            return False
        self._last = now
        self.stream.write(format_progress(snap) + "\n")
        self.stream.flush()
        return True

    def final(self, snap: ProgressSnapshot) -> None:
        self.stream.write(format_progress(snap, final=True) + "\n")
        self.stream.flush()


def format_progress(snap: ProgressSnapshot, final: bool = False) -> str:
    tag = "fleet done" if final else "fleet"
    parts = [
        f"[{tag} {snap.elapsed:6.1f}s]",
        f"{snap.shards_done}/{snap.workers} shards",
        f"{snap.tests} tests ({snap.tests_per_second:.1f}/s)",
        f"QPT {snap.qpt:.2f}",
    ]
    if snap.round is not None and snap.rounds is not None:
        parts.append(f"round {snap.round}/{snap.rounds}")
    hit_rate = snap.cache_hit_rate
    if hit_rate is not None:
        parts.append(f"cache {100 * hit_rate:.0f}%")
    if snap.unique_reports is not None:
        dedup = snap.dedup_rate
        dedup_text = f", dedup {100 * dedup:.0f}%" if dedup is not None else ""
        parts.append(
            f"{snap.reports} reports ({snap.unique_reports} unique{dedup_text})"
        )
    else:
        parts.append(f"{snap.reports} reports")
    if snap.clusters is not None:
        parts.append(f"{snap.clusters} clusters")
    return " | ".join(parts)
