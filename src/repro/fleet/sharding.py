"""Deterministic campaign sharding.

A fleet splits one logical campaign ``fleet(seed=S, workers=N)`` into N
independent shards, each a plain serial :class:`~repro.runner.campaign.
Campaign` with its own derived seed and slice of the test budget.  Two
properties are load-bearing:

* **Reproducibility** -- shard seeds are a pure function of
  ``(seed, shard_index, workers)``, so re-running the same fleet
  replays the same campaigns regardless of scheduling.
* **Serial equivalence** -- a 1-worker fleet derives exactly ``[seed]``
  and the full budget, so its single shard bit-matches today's serial
  ``run_campaign(seed=seed)``.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field


def derive_shard_seeds(seed: int, workers: int) -> list[int]:
    """Per-shard seeds for a fleet of *workers* shards.

    With one worker the seed passes through unchanged (serial
    equivalence).  Otherwise each shard seed is a 63-bit digest of
    ``(seed, shard, workers)`` so that fleets of different widths
    explore disjoint random streams even for small consecutive seeds
    (``random.Random(1)`` and ``random.Random(2)`` are unrelated
    streams, but hashing also decorrelates shard 0 from the serial
    campaign a user may already have run with the same seed).
    """
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if workers == 1:
        return [seed]
    return [_mix(seed, shard, workers) for shard in range(workers)]


def _mix(seed: int, shard: int, workers: int) -> int:
    digest = hashlib.blake2b(
        f"{seed}:{shard}:{workers}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


def derive_round_seed(shard_seed: int, round_index: int) -> int:
    """Per-round seed for guided fleets.

    Guided campaigns run in rounds with a coverage-snapshot barrier in
    between; each round must explore a fresh random stream (replaying
    round 0's stream would regenerate the very states and queries whose
    plans are already covered).  Round 0 passes the shard seed through
    unchanged so a 1-round guided run derives exactly the same stream
    as an unguided shard.
    """
    if round_index == 0:
        return shard_seed
    digest = hashlib.blake2b(
        f"{shard_seed}:round:{round_index}".encode(), digest_size=8
    ).digest()
    return int.from_bytes(digest, "big") >> 1


def split_tests(n_tests: int | None, workers: int) -> list[int | None]:
    """Fair split of an n-tests budget: quotas sum to *n_tests* and
    differ by at most one.  A wall-clock-only budget (None) passes
    through: every shard runs the full time window."""
    if workers < 1:
        raise ValueError(f"workers must be >= 1, got {workers}")
    if n_tests is None:
        return [None] * workers
    base, extra = divmod(n_tests, workers)
    return [base + (1 if shard < extra else 0) for shard in range(workers)]


@dataclass(frozen=True)
class ShardSpec:
    """Everything a worker process needs to run its shard.

    Specs cross the process boundary, so they hold only picklable
    primitives: the oracle/adapter are named, not instantiated -- each
    worker builds its own engine, adapter, and oracle from the spec.
    """

    shard_index: int
    workers: int
    seed: int
    n_tests: int | None
    seconds: float | None
    oracle: str
    oracle_kwargs: dict = field(default_factory=dict)
    adapter: str = "minidb"  # any registered backend (repro.backends)
    dialect: str = "sqlite"
    buggy: bool = False
    tests_per_state: int = 25
    max_reports: int = 1000
    #: Differential campaigns: (primary, secondary) backend names; the
    #: worker builds a DifferentialAdapter instead of a single backend.
    backend_pair: tuple[str, str] | None = None
    #: Guidance mode (None = uniform random, "plan-coverage" = guided);
    #: when set the worker builds a GuidedPolicy for its campaign.
    guidance: str | None = None
    #: Which guided round this spec belongs to (0-based); rounds are
    #: the deterministic barriers at which coverage snapshots merge.
    round_index: int = 0
    #: Serialized GuidedPolicy state carried across round barriers
    #: (None on the first round: the worker seeds a fresh policy).
    policy_state: dict | None = None
    #: Fleet-global CoverageMap snapshot (merged at the last barrier);
    #: its fingerprints stop counting as novel in this round.
    coverage_snapshot: dict | None = None
    #: Fault ids the fleet considers saturated (triage signal): arms
    #: whose tests only re-fire these are de-prioritized.
    saturated_faults: tuple[str, ...] = ()
    #: Stable owner id for this shard's coverage counters (includes the
    #: fleet seed, so re-running the same fleet merges idempotently).
    coverage_source: str = ""
    #: Build a worker-local :class:`repro.perf.EvalCache` for this
    #: shard's campaign.  Caches are per-process and never pickled, so
    #: the flag travels instead of the cache; shard results are
    #: bit-identical either way.
    use_cache: bool = False
    #: Column-at-a-time evaluation in this shard's engines (bit-identical
    #: to scalar evaluation; a pure throughput lever like ``use_cache``).
    use_vector: bool = False
    #: Per-shard trace part file (``<trace>.shardN.part``); the worker
    #: appends structured events here and the orchestrator merges every
    #: part into the final trace.  None disables tracing for the shard.
    trace_path: str | None = None
