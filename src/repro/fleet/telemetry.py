"""Fleet-side telemetry: one bundle for progress lines, the live
status endpoint, and the orchestrator's half of the trace stream.

The orchestrator already aggregates per-shard counters to print
progress lines; :class:`FleetTelemetry` fans that same data out to the
optional surfaces -- a :class:`~repro.obs.status.StatusBoard` behind a
stdlib HTTP server (``--status-port``) and an orchestrator-side trace
record list merged with the workers' part files at the end
(``--trace``).  Nothing here feeds back into campaign control flow, so
a fleet with every surface enabled is bit-identical to a silent one
(gated by ``tests/obs/test_fleet_obs.py`` and the obs-smoke CI job).

Import direction: ``repro.fleet`` depends on ``repro.obs``, never the
reverse -- the obs layer stays usable from serial campaigns and
offline tools alike.
"""

from __future__ import annotations

import os
import time

from repro.fleet.progress import ProgressPrinter, ProgressSnapshot
from repro.obs.metrics import MetricsRegistry
from repro.obs.status import StatusBoard, StatusServer, now_monotonic
from repro.obs.trace import (
    format_record,
    merge_trace_files,
    shard_part_path,
)


class FleetTelemetry:
    """Bundles every optional observability surface of one fleet run.

    Lifecycle: :meth:`open` (clear stale parts, start the server, emit
    ``run_start``), then :meth:`progress` from the orchestrator's
    collection loop, :meth:`finish` once with the final snapshot, and
    :meth:`close` in a ``finally`` (idempotent; merges whatever part
    files exist even when the run died mid-way).
    """

    def __init__(
        self,
        printer: "ProgressPrinter | None" = None,
        trace_path: "str | None" = None,
        status_port: "int | None" = None,
    ) -> None:
        self.printer = printer
        self.trace_path = trace_path
        self.status_port = status_port
        self.board: "StatusBoard | None" = (
            StatusBoard() if status_port is not None else None
        )
        self.server: "StatusServer | None" = None
        #: Orchestrator-side records, already formatted; merged with the
        #: worker part files by :meth:`close`.
        self._lines: list[str] = []
        #: Deterministic orchestrator counters (rounds run, clusters
        #: discovered); merged into the fleet-wide registry.
        self.metrics = MetricsRegistry(source="orchestrator")
        self._run_meta: dict = {}
        self._workers = 1
        self._round: "int | None" = None
        self._rounds: "int | None" = None
        self._last_seen: dict[int, float] = {}
        self._last_shards: dict[int, dict] = {}
        self._done: set[int] = set()
        self._closed = False

    # -- lifecycle -----------------------------------------------------------

    def open(self, config) -> "FleetTelemetry":
        """Bind to one fleet *config*: reset per-run state, clear stale
        part files, start the status server, emit ``run_start``."""
        self._workers = config.workers
        self._run_meta = {
            "oracle": config.oracle,
            "workers": config.workers,
            "seed": config.seed,
        }
        if self.trace_path is not None:
            # Part files are opened append-mode by the workers (guided
            # rounds accumulate), so leftovers of a previous run with
            # the same path must go first.
            for index in range(config.workers):
                part = shard_part_path(self.trace_path, index)
                if os.path.exists(part):
                    os.remove(part)
        if self.board is not None and self.server is None:
            self.server = StatusServer(self.board, port=self.status_port or 0)
            self.server.start()
            if self.printer is not None:
                # The bound port is wall-clock-free but run-specific
                # (--status-port 0 picks a free one), so it goes to the
                # progress stream, never stdout.
                self.printer.stream.write(
                    f"status endpoint: {self.server.url}\n"
                )
                self.printer.stream.flush()
        self.emit("run_start", **self._run_meta)
        return self

    @property
    def url(self) -> "str | None":
        """The live status endpoint URL (None when disabled)."""
        return None if self.server is None else self.server.url

    def shard_trace_path(self, shard_index: int) -> "str | None":
        if self.trace_path is None:
            return None
        return shard_part_path(self.trace_path, shard_index)

    # -- orchestrator-side trace events --------------------------------------

    def emit(self, ev: str, **payload) -> None:
        """Record one orchestrator-side trace event (no-op untraced)."""
        if self.trace_path is None:
            return
        self._lines.append(
            format_record(ev, time.time(), None, payload) + "\n"
        )

    def round_barrier(
        self, round_index: int, rounds: int, saturated: int, plans: int
    ) -> None:
        self._round, self._rounds = round_index + 1, rounds
        self.metrics.incr("rounds")
        self.emit(
            "round_barrier",
            round=round_index,
            rounds=rounds,
            saturated=saturated,
            plans=plans,
        )

    def cluster_new(self, fingerprint: str, kind: str) -> None:
        self.metrics.incr("clusters_new")
        self.emit("cluster_new", fingerprint=fingerprint, kind=kind)

    def cluster_saturated(self, fault: str) -> None:
        self.emit("cluster_saturated", fault=fault)

    # -- progress fan-out ----------------------------------------------------

    def progress(
        self,
        snap: ProgressSnapshot,
        shards: "dict[int, dict] | None" = None,
        done: "set[int] | None" = None,
    ) -> None:
        """One aggregation step: rate-limited progress line plus a fresh
        status snapshot.  *shards* maps shard index to its latest
        progress payload; *done* holds finished shard indexes."""
        snap.round, snap.rounds = self._round, self._rounds
        if self.printer is not None:
            self.printer.maybe_print(snap)
        if shards:
            self._last_shards = dict(shards)
        self._publish(
            snap, shards or self._last_shards, done or set(), state="running"
        )

    def finish(self, snap: ProgressSnapshot, merged, wall: float) -> None:
        """Final progress line, ``run_finish`` record, terminal status."""
        snap.round, snap.rounds = self._round, self._rounds
        if self.printer is not None:
            self.printer.final(snap)
        self.emit(
            "run_finish",
            tests=merged.tests,
            reports=len(merged.reports),
            wall_s=round(wall, 6),
        )
        self._done = set(range(self._workers))
        self._publish(snap, self._last_shards, self._done, state="done")

    def shard_seen(self, shard_index: int, done: bool = False) -> None:
        self._last_seen[shard_index] = now_monotonic()
        if done:
            self._done.add(shard_index)

    def _publish(
        self,
        snap: ProgressSnapshot,
        shards: "dict[int, dict]",
        done: "set[int]",
        state: str,
    ) -> None:
        if self.board is None:
            return
        now = now_monotonic()
        shard_view: dict[str, dict] = {}
        for index, payload in sorted(shards.items()):
            last = self._last_seen.get(index)
            shard_view[str(index)] = {
                "tests": int(payload.get("tests", 0)),
                "reports": int(payload.get("reports", 0)),
                "done": index in done or index in self._done,
                "age_s": round(now - last, 3) if last is not None else 0.0,
            }
        cache_total = snap.cache_hits + snap.cache_misses
        self.board.publish(
            {
                "state": state,
                "oracle": self._run_meta.get("oracle"),
                "workers": self._run_meta.get("workers", self._workers),
                "seed": self._run_meta.get("seed"),
                "elapsed_s": round(snap.elapsed, 3),
                "tests": snap.tests,
                "tests_per_second": round(snap.tests_per_second, 2),
                "qpt": round(snap.qpt, 3),
                "skipped": snap.skipped,
                "queries_ok": snap.queries_ok,
                "queries_err": snap.queries_err,
                "reports": snap.reports,
                "unique_reports": snap.unique_reports,
                "clusters": snap.clusters,
                "unique_plans": snap.unique_plans,
                "round": snap.round,
                "rounds": snap.rounds,
                "cache": {
                    "hits": snap.cache_hits,
                    "misses": snap.cache_misses,
                    "hit_rate": (
                        round(snap.cache_hits / cache_total, 4)
                        if cache_total
                        else 0.0
                    ),
                },
                "shards": shard_view,
            }
        )

    # -- teardown ------------------------------------------------------------

    def close(self) -> None:
        """Merge the trace (orchestrator lines + worker part files) and
        stop the status server.  Idempotent, safe on error paths."""
        if self._closed:
            return
        self._closed = True
        if self.trace_path is not None:
            parts = [
                shard_part_path(self.trace_path, index)
                for index in range(self._workers)
            ]
            merge_trace_files(self.trace_path, parts, self._lines)
            self._lines.clear()
        if self.server is not None:
            self.server.stop()
            self.server = None
