"""Random generators: database states, expressions, and queries.

Plays the role of SQLancer's rule-based generators (paper Section 4,
Implementation): the state generator creates non-empty tables, views and
indexes; the expression generator produces the expression phi that
undergoes constant folding (with `max_depth` matching SQLancer's
MaxDepth option, Figures 2-3); the query generator assembles original
queries around phi.
"""

from repro.generator.state_gen import StateGenerator
from repro.generator.expr_gen import ExprGenerator, GenExpr, ScopeColumn
from repro.generator.query_gen import FromSkeleton, QueryGenerator

__all__ = [
    "StateGenerator",
    "ExprGenerator",
    "GenExpr",
    "ScopeColumn",
    "QueryGenerator",
    "FromSkeleton",
]
