"""Random expression generation (``GenExpr`` of Algorithm 1).

Generates the expression phi that undergoes constant folding, together
with the referenced outer-scope columns {c_i} that constant propagation
keys the CASE mapping on (paper Section 3.2).

Independent expressions (empty {c_i}) are constant expressions or
non-correlated subqueries; dependent expressions reference scope columns
directly or through correlated subqueries (paper Section 3, "Approach
overview").

Floating-point literals are avoided by construction: the paper reports
false alarms from folding floats and eschews them (Section 4.1).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.adapters.base import SchemaInfo, TableInfo
from repro.minidb import ast_nodes as A
from repro.minidb.values import SqlType, SqlValue

from repro.generator.state_gen import LARGE_INTS, TEXT_POOL


@dataclass(frozen=True)
class ScopeColumn:
    """A column visible to the expression being generated."""

    binding: str
    name: str
    sql_type: SqlType | None = None

    @property
    def ref(self) -> A.ColumnRef:
        return A.ColumnRef(self.binding, self.name)


@dataclass
class GenExpr:
    """A generated expression plus its outer references.

    ``outer_refs`` is the {c_i} set of Algorithm 1: empty means phi is an
    *independent* expression (foldable to a constant), non-empty means it
    is *dependent* (foldable to a per-row CASE mapping).
    """

    expr: A.Expr
    outer_refs: list[ScopeColumn] = field(default_factory=list)

    @property
    def independent(self) -> bool:
        return not self.outer_refs


class ExprGenerator:
    """Seeded random expression generator."""

    def __init__(
        self,
        rng: random.Random,
        schema: SchemaInfo,
        max_depth: int = 3,
        allow_subqueries: bool = True,
        supports_any_all: bool = True,
        strict_typing: bool = False,
        portable: bool = False,
    ) -> None:
        self.rng = rng
        self.schema = schema
        self.max_depth = max_depth
        self.allow_subqueries = allow_subqueries
        self.supports_any_all = supports_any_all
        self.strict_typing = strict_typing
        #: Portable mode (differential testing): only emit constructs
        #: whose semantics are *defined to coincide* across engines --
        #: type-matched comparisons (relaxed engines disagree on mixed
        #: text/number coercion), order-insensitive subqueries (no bare
        #: LIMIT, no GROUP BY inside scalar subqueries), and no
        #: comparisons against untyped (view) columns.
        self.portable = portable
        #: Guidance knobs (set per test by a guided policy's arm): a
        #: multiplier on the subquery-rooted choices of the boolean /
        #: scalar grammars, and on the aggregate-vs-LIMIT-1 split inside
        #: scalar subqueries.  1.0 is *exactly* the unguided
        #: distribution (weights multiply by 1.0, thresholds compare
        #: against the same literals), so default campaigns stay
        #: bit-identical to their pre-guidance streams.
        self.subquery_weight = 1.0
        self.aggregate_weight = 1.0
        self._alias_counter = 0

    # -- entry points ---------------------------------------------------------

    def predicate(self, scope: list[ScopeColumn]) -> GenExpr:
        """A boolean expression over *scope* (possibly independent)."""
        used: list[ScopeColumn] = []
        expr = self._boolean(scope, self.max_depth, used)
        return GenExpr(expr, _dedupe(used))

    def scalar(self, scope: list[ScopeColumn]) -> GenExpr:
        """A scalar expression over *scope*."""
        used: list[ScopeColumn] = []
        expr = self._scalar(scope, self.max_depth, used)
        return GenExpr(expr, _dedupe(used))

    def independent_predicate(self) -> GenExpr:
        """A predicate with no outer references (constant or built from a
        non-correlated subquery) -- the left branch of Figure 1."""
        return self.predicate([])

    def subquery_predicate(self, scope: list[ScopeColumn]) -> GenExpr:
        """A predicate whose root is a subquery construct (EXISTS, IN,
        quantified comparison, or scalar-subquery comparison)."""
        used: list[ScopeColumn] = []
        expr = self._subquery_bool(scope, self.max_depth, used)
        return GenExpr(expr, _dedupe(used))

    def scalar_subquery(self, scope: list[ScopeColumn]) -> GenExpr:
        """A bare (possibly correlated) scalar subquery."""
        used: list[ScopeColumn] = []
        expr = self._scalar_subquery(scope, used)
        return GenExpr(expr, _dedupe(used))

    # -- booleans ---------------------------------------------------------------

    def _boolean(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        if depth <= 0:
            return self._leaf_bool(scope, used)
        choices: list[tuple[float, str]] = [
            (4.0, "comparison"),
            (1.5, "logic"),
            (1.0, "between"),
            (1.0, "in_list"),
            (0.8, "is_null"),
            (0.7, "not"),
            (0.6, "like"),
            (0.8, "case_bool"),
            (0.3, "literal"),
        ]
        if self.allow_subqueries and self.schema.base_tables:
            w = self.subquery_weight
            choices.extend(
                [
                    (1.2 * w, "exists"),
                    (1.2 * w, "in_subquery"),
                    (1.0 * w, "scalar_sub_cmp"),
                ]
            )
            if self.supports_any_all:
                choices.append((0.8 * w, "quantified"))
        kind = _weighted(rng, choices)

        if kind == "comparison":
            left, right = self._typed_operands(scope, depth - 1, used)
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            return A.Binary(op, left, right)
        if kind == "logic":
            op = rng.choice(["AND", "OR"])
            return A.Binary(
                op,
                self._boolean(scope, depth - 1, used),
                self._boolean(scope, depth - 1, used),
            )
        if kind == "not":
            return A.Unary("NOT", self._boolean(scope, depth - 1, used))
        if kind == "between":
            if self.portable:
                # All three operands must share a type: BETWEEN expands
                # to two comparisons, and a bound of another type is
                # exactly the mixed comparison engines disagree on.
                return self._portable_between(scope, used)
            operand, low = self._typed_operands(scope, depth - 1, used)
            if depth > 1 and rng.random() < 0.3:
                # Complex bound (possibly a CASE) -- the paper Listing 7
                # bug needs NOT BETWEEN with a CASE-valued bound.
                high = self._scalar(scope, depth - 1, used)
            else:
                _, high = self._typed_operands(scope, depth - 1, used)
            return A.Between(operand, low, high, negated=rng.random() < 0.3)
        if kind == "in_list":
            if self.portable:
                # Every list item must share the operand's type:
                # _literal_like falls back to integer literals for
                # column templates, which against a TEXT operand is the
                # mixed-type membership test engines disagree on.
                return self._portable_in_list(scope, used)
            operand, sample = self._typed_operands(scope, depth - 1, used)
            items: list[A.Expr] = [sample]
            for _ in range(rng.randint(0, 3)):
                items.append(self._literal_like(sample))
            return A.InList(operand, tuple(items), negated=rng.random() < 0.3)
        if kind == "is_null":
            return A.IsNull(
                self._scalar(scope, depth - 1, used), negated=rng.random() < 0.4
            )
        if kind == "like":
            operand = self._text_operand(scope, used)
            pattern = A.Literal(rng.choice(["a%", "%b%", "_", "%", "abc", "x_"]))
            op = "NOT LIKE" if rng.random() < 0.3 else "LIKE"
            return A.Binary(op, operand, pattern)
        if kind == "case_bool":
            return A.Case(
                None,
                (
                    A.CaseWhen(
                        self._boolean(scope, depth - 1, used),
                        self._boolean(scope, depth - 1, used),
                    ),
                ),
                self._boolean(scope, depth - 1, used)
                if rng.random() < 0.7
                else None,
            )
        if kind == "literal":
            return A.Literal(rng.choice([True, False, None]))
        if kind == "exists":
            return self._exists(scope, used)
        if kind == "in_subquery":
            if self.portable:
                operand, select = self._subquery_operand_pair(scope, used)
            else:
                operand, _ = self._typed_operands(scope, depth - 1, used)
                select = self._single_column_select(scope, used)
            return A.InSubquery(operand, select, negated=rng.random() < 0.3)
        if kind == "scalar_sub_cmp":
            if self.portable:
                # Portable scalar subqueries are numeric aggregates, so
                # the comparison operand must be numeric too.
                left = self._numeric_operand(scope, depth - 1, used)
            else:
                left = self._scalar(scope, depth - 1, used)
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            return A.Binary(op, left, self._scalar_subquery(scope, used))
        if kind == "quantified":
            if self.portable:
                operand, select = self._subquery_operand_pair(scope, used)
                op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
                quant = rng.choice(["ANY", "ALL", "SOME"])
                return A.Quantified(operand, op, quant, select)
            operand, _ = self._typed_operands(scope, depth - 1, used)
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            quant = rng.choice(["ANY", "ALL", "SOME"])
            return A.Quantified(
                operand, op, quant, self._single_column_select(scope, used)
            )
        raise AssertionError(kind)

    def _portable_operand(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> tuple[A.Expr, SqlType | None]:
        """A typed-column or literal operand plus its type, so every
        expression compared against it can be generated type-matched."""
        rng = self.rng
        typed = [c for c in scope if c.sql_type is not None]
        if typed and rng.random() < 0.75:
            col = rng.choice(typed)
            used.append(col)
            return col.ref, col.sql_type
        value = self._literal_value()
        return A.Literal(value), _value_type(value)

    def _portable_between(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        operand, sql_type = self._portable_operand(scope, used)
        low = self._match_type(sql_type, scope, used)
        high = self._match_type(sql_type, scope, used)
        return A.Between(operand, low, high, negated=rng.random() < 0.3)

    def _portable_in_list(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        operand, sql_type = self._portable_operand(scope, used)
        items = tuple(
            self._match_type(sql_type, scope, used)
            for _ in range(rng.randint(1, 4))
        )
        return A.InList(operand, items, negated=rng.random() < 0.3)

    def _leaf_bool(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        left, right = self._typed_operands(scope, 0, used)
        op = self.rng.choice(["=", "!=", "<", ">", "<=", ">="])
        return A.Binary(op, left, right)

    def _subquery_bool(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        options = ["exists", "in_subquery", "scalar_sub_cmp", "scalar_sub_truth"]
        if self.supports_any_all:
            options.append("quantified")
        kind = rng.choice(options)
        if kind == "exists":
            return self._exists(scope, used)
        if kind == "in_subquery":
            if self.portable:
                operand, select = self._subquery_operand_pair(scope, used)
            else:
                operand, _ = self._typed_operands(scope, max(depth - 1, 0), used)
                select = self._single_column_select(scope, used)
            return A.InSubquery(operand, select, negated=rng.random() < 0.3)
        if kind == "scalar_sub_cmp":
            if self.portable:
                left = self._numeric_operand(scope, max(depth - 1, 0), used)
            else:
                left = self._scalar(scope, max(depth - 1, 0), used)
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            return A.Binary(op, left, self._scalar_subquery(scope, used))
        if kind == "scalar_sub_truth":
            # Bare subquery as a predicate (relaxed profiles), or compared
            # against a constant under strict typing.
            sub = self._scalar_subquery(scope, used)
            if self.strict_typing:
                return A.Binary(">", sub, A.Literal(0))
            return sub
        if self.portable:
            operand, select = self._subquery_operand_pair(scope, used)
            op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
            quant = rng.choice(["ANY", "ALL", "SOME"])
            return A.Quantified(operand, op, quant, select)
        operand, _ = self._typed_operands(scope, max(depth - 1, 0), used)
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        quant = rng.choice(["ANY", "ALL", "SOME"])
        return A.Quantified(
            operand, op, quant, self._single_column_select(scope, used)
        )

    # -- scalars ---------------------------------------------------------------

    def _scalar(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        if depth <= 0:
            return self._leaf_scalar(scope, used)
        choices: list[tuple[float, str]] = [
            (3.0, "leaf"),
            (2.0, "arith"),
            (0.8, "case"),
            (0.6, "cast"),
            (0.8, "func"),
            (0.5, "neg"),
            (0.5, "concat"),
        ]
        if self.allow_subqueries and self.schema.base_tables:
            choices.append((0.8 * self.subquery_weight, "scalar_subquery"))
        kind = _weighted(rng, choices)
        if kind == "leaf":
            return self._leaf_scalar(scope, used)
        if kind == "arith":
            op = rng.choice(["+", "-", "*", "/", "%"])
            return A.Binary(
                op,
                self._numeric_operand(scope, depth - 1, used),
                self._numeric_operand(scope, depth - 1, used),
            )
        if kind == "case":
            return A.Case(
                None,
                (
                    A.CaseWhen(
                        self._boolean(scope, depth - 1, used),
                        self._scalar(scope, depth - 1, used),
                    ),
                ),
                self._scalar(scope, depth - 1, used)
                if rng.random() < 0.7
                else None,
            )
        if kind == "cast":
            target = rng.choice(["INTEGER", "TEXT", "REAL"])
            return A.Cast(self._scalar(scope, depth - 1, used), target)
        if kind == "func":
            return self._func(scope, depth, used)
        if kind == "neg":
            return A.Unary("-", self._numeric_operand(scope, depth - 1, used))
        if kind == "concat":
            if self.strict_typing:
                # Strict dialects concatenate text only.
                return A.Binary(
                    "||",
                    self._text_operand(scope, used),
                    self._text_operand(scope, used),
                )
            return A.Binary(
                "||",
                self._scalar(scope, depth - 1, used),
                self._scalar(scope, depth - 1, used),
            )
        if kind == "scalar_subquery":
            return self._scalar_subquery(scope, used)
        raise AssertionError(kind)

    def _func(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        name = rng.choice(
            ["LENGTH", "ABS", "COALESCE", "NULLIF", "IFNULL", "UPPER", "LOWER"]
        )
        if name in ("LENGTH", "UPPER", "LOWER"):
            return A.FuncCall(name, (self._text_operand(scope, used),))
        if name == "ABS":
            return A.FuncCall(name, (self._numeric_operand(scope, depth - 1, used),))
        if self.portable:
            # NULLIF compares its arguments, and COALESCE/IFNULL results
            # flow into comparisons -- keep the types uniform.
            args = (
                self._numeric_operand(scope, depth - 1, used),
                self._numeric_operand(scope, depth - 1, used),
            )
        else:
            args = (
                self._scalar(scope, depth - 1, used),
                self._scalar(scope, depth - 1, used),
            )
        return A.FuncCall(name, args)

    def _leaf_scalar(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        if scope and rng.random() < 0.6:
            col = rng.choice(scope)
            used.append(col)
            return col.ref
        return A.Literal(self._literal_value())

    # -- operand helpers -----------------------------------------------------------

    def _typed_operands(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> tuple[A.Expr, A.Expr]:
        """A pair of comparison operands with compatible types (required
        under strict typing, paper Section 3.3)."""
        rng = self.rng
        if self.portable:
            # Untyped columns (views) hold values of unknown runtime
            # type; comparing them is exactly the mixed-type territory
            # relaxed engines disagree on.
            scope = [c for c in scope if c.sql_type is not None]
        if scope and rng.random() < 0.75:
            col = rng.choice(scope)
            used.append(col)
            left: A.Expr = col.ref
            right = self._match_type(col.sql_type, scope, used)
            if rng.random() < 0.12:
                type_name = {
                    SqlType.TEXT: "TEXT",
                    SqlType.REAL: "REAL",
                    SqlType.BOOLEAN: "BOOL",
                }.get(col.sql_type, "INTEGER")
                left = A.Cast(left, type_name)
            return left, right
        value = self._literal_value()
        left = A.Literal(value)
        if self.strict_typing:
            right = A.Literal(self._literal_of_type(_value_type(value)))
        else:
            right = (
                A.Literal(self._literal_value())
                if not scope or rng.random() < 0.5
                else self._leaf_scalar(scope, used)
            )
        return left, right

    def _match_type(
        self,
        sql_type: SqlType | None,
        scope: list[ScopeColumn],
        used: list[ScopeColumn],
    ) -> A.Expr:
        rng = self.rng
        same_type = [c for c in scope if c.sql_type == sql_type]
        if same_type and rng.random() < 0.35:
            col = rng.choice(same_type)
            used.append(col)
            return col.ref
        if self.strict_typing:
            return A.Literal(self._literal_of_type(sql_type))
        return A.Literal(self._literal_value())

    def _numeric_operand(
        self, scope: list[ScopeColumn], depth: int, used: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        numeric = [
            c
            for c in scope
            if c.sql_type in (SqlType.INTEGER, SqlType.REAL)
            # Untyped (view) columns may hold text: fine inside relaxed
            # arithmetic, but a bare reference can end up as a direct
            # comparison operand, where engines disagree on text.
            or (c.sql_type is None and not self.portable)
        ]
        if numeric and rng.random() < 0.55:
            col = rng.choice(numeric)
            used.append(col)
            return col.ref
        if depth > 0 and rng.random() < 0.3:
            op = rng.choice(["+", "-", "*"])
            return A.Binary(
                op,
                self._numeric_operand(scope, depth - 1, used),
                self._numeric_operand(scope, depth - 1, used),
            )
        return A.Literal(self.rng.randint(-5, 10))

    def _text_operand(
        self, scope: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        expr: A.Expr
        texts = [c for c in scope if c.sql_type in (SqlType.TEXT, None)]
        if texts and self.rng.random() < 0.6:
            col = self.rng.choice(texts)
            used.append(col)
            expr = col.ref
        else:
            expr = A.Literal(self.rng.choice(TEXT_POOL))
        if self.rng.random() < 0.15:
            expr = A.Cast(expr, "TEXT")
        return expr

    def _literal_value(self) -> SqlValue:
        rng = self.rng
        r = rng.random()
        if r < 0.10:
            return None
        if r < 0.55:
            return rng.randint(-5, 10)
        if r < 0.62:
            return rng.choice(LARGE_INTS)
        if r < 0.82:
            return rng.choice(TEXT_POOL)
        if r < 0.94:
            return rng.random() < 0.5
        return float(rng.randint(-5, 10))

    def _literal_of_type(self, sql_type: SqlType | None) -> SqlValue:
        rng = self.rng
        if rng.random() < 0.08:
            return None
        if sql_type is SqlType.TEXT:
            return rng.choice(TEXT_POOL)
        if sql_type is SqlType.BOOLEAN:
            return rng.random() < 0.5
        if sql_type is SqlType.REAL:
            return float(rng.randint(-5, 10))
        if rng.random() < 0.1:
            return rng.choice(LARGE_INTS)
        return rng.randint(-5, 10)

    def _literal_like(self, template: A.Expr) -> A.Expr:
        """A literal compatible with an existing operand (for IN lists)."""
        if isinstance(template, A.ColumnRef):
            return A.Literal(self.rng.randint(-5, 10))
        if isinstance(template, A.Literal):
            return A.Literal(self._literal_of_type(_value_type(template.value)))
        return A.Literal(self.rng.randint(-5, 10))

    # -- subqueries -----------------------------------------------------------------

    def _fresh_alias(self) -> str:
        self._alias_counter += 1
        return f"sq{self._alias_counter}"

    def _pick_table(self) -> tuple[TableInfo, str]:
        table = self.rng.choice(self.schema.base_tables)
        return table, self._fresh_alias()

    def _inner_scope(self, table: TableInfo, alias: str) -> list[ScopeColumn]:
        return [ScopeColumn(alias, c.name, c.sql_type) for c in table.columns]

    def _inner_where(
        self,
        inner: list[ScopeColumn],
        outer: list[ScopeColumn],
        used: list[ScopeColumn],
    ) -> A.Expr | None:
        """Random subquery predicate, correlated when *outer* is non-empty
        (paper Listing 2)."""
        rng = self.rng
        r = rng.random()
        if r < 0.22:
            return None
        if outer and r < 0.55:
            if not self.portable:
                outer_col = rng.choice(outer)
                inner_col = rng.choice(inner)
                used.append(outer_col)
                op = rng.choice(["=", "=", "!=", "<", ">"])
                return A.Binary(op, outer_col.ref, inner_col.ref)
            pairs = [
                (o, i)
                for o in outer
                for i in inner
                if o.sql_type is not None and o.sql_type == i.sql_type
            ]
            if pairs:
                outer_col, inner_col = rng.choice(pairs)
                used.append(outer_col)
                op = rng.choice(["=", "=", "!=", "<", ">"])
                return A.Binary(op, outer_col.ref, inner_col.ref)
        if r < 0.63 and self.schema.base_tables:
            # Nested subquery predicate (the paper's hang-class bugs live
            # in nested NOT IN / NOT EXISTS shapes).
            table = rng.choice(self.schema.base_tables)
            nested_alias = self._fresh_alias()
            nested_col = rng.choice(table.columns)
            nested = A.Select(
                items=(A.SelectItem(A.ColumnRef(nested_alias, nested_col.name)),),
                from_clause=A.NamedTable(table.name, nested_alias),
            )
            in_candidates = [
                c
                for c in inner
                if not self.portable
                or (c.sql_type is not None and c.sql_type == nested_col.sql_type)
            ]
            if in_candidates and rng.random() < 0.5:
                inner_col = rng.choice(in_candidates)
                return A.InSubquery(inner_col.ref, nested, negated=rng.random() < 0.5)
            return A.Exists(nested, negated=rng.random() < 0.5)
        if r < 0.72:
            # Simple-form CASE over an inner column (reaches the paper's
            # CASE-in-subquery internal errors).
            inner_col = rng.choice(inner)
            lit = A.Literal(self._literal_of_type(inner_col.sql_type))
            return A.Case(
                inner_col.ref,
                (A.CaseWhen(lit, A.Literal(rng.random() < 0.5)),),
                A.Literal(rng.random() < 0.5) if rng.random() < 0.7 else None,
            )
        inner_col = rng.choice(inner)
        op = rng.choice(["=", "!=", "<", "<=", ">", ">="])
        lit = A.Literal(self._literal_of_type(inner_col.sql_type))
        return A.Binary(op, inner_col.ref, lit)

    def _scalar_subquery(
        self, outer: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        """Aggregate (no GROUP BY) or LIMIT 1 ensures a scalar result
        (paper Section 3.3, Predicate construction)."""
        rng = self.rng
        table, alias = self._pick_table()
        inner = self._inner_scope(table, alias)
        if self.portable:
            return self._portable_scalar_subquery(table, alias, inner, outer, used)
        target = rng.choice(inner)
        where = self._inner_where(inner, outer, used)
        group_by: tuple[A.Expr, ...] = ()
        if rng.random() < min(0.97, 0.7 * self.aggregate_weight):
            agg = rng.choice(["COUNT", "SUM", "AVG", "MIN", "MAX"])
            distinct = rng.random() < 0.12
            arg: A.Expr = target.ref
            if not distinct and rng.random() < 0.25:
                numeric_inner = [
                    c for c in inner
                    if c.sql_type in (SqlType.INTEGER, SqlType.REAL)
                    or (c.sql_type is None and not self.strict_typing)
                ]
                if numeric_inner:
                    target = rng.choice(numeric_inner)
                    arg = A.Binary("+", target.ref, A.Literal(rng.randint(0, 3)))
            item = A.SelectItem(A.FuncCall(agg, (arg,), distinct=distinct))
            limit = None
            if rng.random() < 0.25:
                # Aggregate subquery with a GROUP BY whose term is not in
                # the result set -- the paper Listing 1 shape (the SQLite
                # bug needs exactly this).  Multi-row results are taken
                # first-row or rejected per dialect (paper Listing 5).
                group_col = rng.choice(inner)
                group_by = (A.Binary(">", A.Literal(1), group_col.ref),)
        else:
            item = A.SelectItem(target.ref)
            limit = A.Literal(1)
        select = A.Select(
            items=(item,),
            from_clause=A.NamedTable(table.name, alias),
            where=where,
            group_by=group_by,
            limit=limit,
        )
        return A.ScalarSubquery(select)

    def _portable_scalar_subquery(
        self,
        table: TableInfo,
        alias: str,
        inner: list[ScopeColumn],
        outer: list[ScopeColumn],
        used: list[ScopeColumn],
    ) -> A.Expr:
        """Order-insensitive scalar subquery: an aggregate without GROUP
        BY over a numeric column (or ``COUNT(*)``).

        The general form's ``LIMIT 1``-without-ORDER-BY and multi-row
        GROUP BY shapes make the scalar depend on scan order, which two
        engines need not share.
        """
        rng = self.rng
        numeric = [
            c for c in inner if c.sql_type in (SqlType.INTEGER, SqlType.REAL)
        ]
        where = self._inner_where(inner, outer, used)
        if numeric and rng.random() < min(0.97, 0.7 * self.aggregate_weight):
            target = rng.choice(numeric)
            agg = rng.choice(["COUNT", "SUM", "AVG", "MIN", "MAX"])
            distinct = rng.random() < 0.12
            item = A.SelectItem(A.FuncCall(agg, (target.ref,), distinct=distinct))
        else:
            item = A.SelectItem(A.FuncCall("COUNT", (), star=True))
        select = A.Select(
            items=(item,),
            from_clause=A.NamedTable(table.name, alias),
            where=where,
        )
        return A.ScalarSubquery(select)

    def _subquery_operand_pair(
        self, outer: list[ScopeColumn], used: list[ScopeColumn]
    ) -> tuple[A.Expr, A.Select]:
        """Type-matched (operand, single-column SELECT) for IN/quantified
        predicates in portable mode: the subquery target column is chosen
        first and the operand is a scope column or literal of the *same*
        type, so membership tests never compare across types."""
        rng = self.rng
        table, alias = self._pick_table()
        inner = self._inner_scope(table, alias)
        typed = [c for c in inner if c.sql_type is not None]
        target = rng.choice(typed or inner)
        matches = [
            c
            for c in outer
            if c.sql_type is not None and c.sql_type == target.sql_type
        ]
        if matches and rng.random() < 0.7:
            col = rng.choice(matches)
            used.append(col)
            operand: A.Expr = col.ref
        else:
            operand = A.Literal(self._literal_of_type(target.sql_type))
        where = self._inner_where(inner, outer, used)
        select = A.Select(
            items=(A.SelectItem(target.ref),),
            from_clause=A.NamedTable(table.name, alias),
            where=where,
        )
        return operand, select

    def _single_column_select(
        self, outer: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Select:
        rng = self.rng
        table, alias = self._pick_table()
        inner = self._inner_scope(table, alias)
        target = rng.choice(inner)
        where = self._inner_where(inner, outer, used)
        limit = None
        if not self.portable and rng.random() < 0.3:
            # LIMIT without ORDER BY returns engine-dependent rows.
            limit = A.Literal(rng.randint(1, 3))
        return A.Select(
            items=(A.SelectItem(target.ref),),
            from_clause=A.NamedTable(table.name, alias),
            where=where,
            limit=limit,
        )

    def _exists(
        self, outer: list[ScopeColumn], used: list[ScopeColumn]
    ) -> A.Expr:
        select = self._single_column_select(outer, used)
        return A.Exists(select, negated=self.rng.random() < 0.3)


# ---------------------------------------------------------------------------
# helpers
# ---------------------------------------------------------------------------


def _weighted(rng: random.Random, choices: list[tuple[float, str]]) -> str:
    total = sum(w for w, _ in choices)
    pick = rng.random() * total
    acc = 0.0
    for weight, kind in choices:
        acc += weight
        if pick <= acc:
            return kind
    return choices[-1][1]


def _dedupe(cols: list[ScopeColumn]) -> list[ScopeColumn]:
    seen: set[tuple[str, str]] = set()
    out: list[ScopeColumn] = []
    for col in cols:
        key = (col.binding.lower(), col.name.lower())
        if key not in seen:
            seen.add(key)
            out.append(col)
    return out


def _value_type(value: SqlValue) -> SqlType | None:
    from repro.minidb.values import type_of

    if value is None:
        return None
    return type_of(value)
