"""Random query construction (step 4 of Figure 1, ``QueryGenerate``).

Builds FROM skeletons (tables, views, joins with ON predicates) and
assembles original queries embedding the expression phi in a chosen
predicate position (WHERE / HAVING / JOIN ON), per paper Section 3.3.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field

from repro.adapters.base import SchemaInfo
from repro.generator.expr_gen import ExprGenerator, ScopeColumn
from repro.minidb import ast_nodes as A


@dataclass
class FromSkeleton:
    """A FROM clause plus the column scope it exposes.

    ``join_free_ref`` is the same set of relations combined with CROSS
    joins and no ON predicates: the FROM clause auxiliary queries use
    when phi *is* a JOIN ON predicate, because phi is then evaluated on
    the raw row pairs before the join (paper Section 3.2).
    """

    ref: A.TableRef
    scope: list[ScopeColumn]
    relations: list[str] = field(default_factory=list)
    join_kinds: list[str] = field(default_factory=list)
    on_join: A.Join | None = None  # innermost join (phi-as-ON target)

    @property
    def has_join(self) -> bool:
        return bool(self.join_kinds)

    def join_free_ref(self) -> A.TableRef:
        """The relations cross-joined without ON predicates."""
        return _strip_ons(self.ref)


def _strip_ons(ref: A.TableRef) -> A.TableRef:
    if isinstance(ref, A.Join):
        return A.Join(
            "CROSS", _strip_ons(ref.left), _strip_ons(ref.right), None
        )
    return ref


def replace_join_on(
    ref: A.TableRef, target: A.Join | None, predicate: A.Expr
) -> A.TableRef:
    """Rebuild a FROM tree with *target*'s ON clause replaced by
    *predicate* (a CROSS target becomes INNER so the ON is legal).
    Used by oracles that place the tested expression in JOIN ... ON
    position (paper Section 3.3, "Query construction")."""
    if isinstance(ref, A.Join):
        if ref is target:
            kind = "INNER" if ref.kind == "CROSS" else ref.kind
            return A.Join(kind, ref.left, ref.right, predicate)
        return A.Join(
            ref.kind,
            replace_join_on(ref.left, target, predicate),
            replace_join_on(ref.right, target, predicate),
            ref.on,
        )
    return ref


class QueryGenerator:
    """Seeded random query generator shared by all oracles."""

    def __init__(
        self,
        rng: random.Random,
        schema: SchemaInfo,
        expr_gen: ExprGenerator,
        join_kinds: tuple[str, ...] = ("INNER", "LEFT", "CROSS", "FULL"),
        use_views: bool = True,
        max_relations: int = 2,
        portable: bool = False,
    ) -> None:
        self.rng = rng
        self.schema = schema
        self.expr_gen = expr_gen
        self.join_kinds = join_kinds
        self.use_views = use_views
        self.max_relations = max_relations
        #: Portable mode (differential testing): ON predicates only
        #: compare columns of equal declared type -- relaxed engines
        #: disagree on mixed text/number comparison semantics.
        self.portable = portable
        #: Guidance knob (set per test by a guided policy's arm): tilt
        #: the relation-count pick toward wider FROM clauses.  At the
        #: neutral 1.0 the original ``randint`` path is taken, so the
        #: unguided random stream is bit-identical to pre-guidance code.
        self.join_weight = 1.0

    # -- FROM clause ------------------------------------------------------------

    def from_skeleton(self, with_on_predicates: bool = True) -> FromSkeleton:
        """Pick 1..max_relations relations and join them."""
        rng = self.rng
        pool = [
            t for t in self.schema.tables if self.use_views or t.kind == "table"
        ]
        if not pool:
            raise ValueError("schema has no relations")
        top = min(self.max_relations, len(pool))
        if self.join_weight == 1.0:
            count = rng.randint(1, top)
        else:
            # Geometric tilt toward more relations: weight w**(k-1) for
            # k relations (w>1 favors joins, w<1 favors single tables).
            weights = [self.join_weight ** k for k in range(top)]
            pick = rng.random() * sum(weights)
            count = top
            acc = 0.0
            for k, weight in enumerate(weights, start=1):
                acc += weight
                if pick <= acc:
                    count = k
                    break
        picked = rng.sample(pool, count)

        scope: list[ScopeColumn] = []
        relations: list[str] = []
        join_kinds: list[str] = []
        ref: A.TableRef | None = None
        on_join: A.Join | None = None
        for i, table in enumerate(picked):
            binding = table.name if count == 1 else f"j{i}"
            alias = None if count == 1 else binding
            named = A.NamedTable(table.name, alias)
            table_scope = [
                ScopeColumn(binding, c.name, c.sql_type) for c in table.columns
            ]
            if ref is None:
                ref = named
            else:
                kind = rng.choice(self.join_kinds)
                on: A.Expr | None = None
                if kind != "CROSS" and with_on_predicates:
                    on = self._on_predicate(scope, table_scope)
                join = A.Join(kind, ref, named, on)
                ref = join
                on_join = join
                join_kinds.append(kind)
            scope.extend(table_scope)
            relations.append(table.name)
        assert ref is not None
        return FromSkeleton(ref, scope, relations, join_kinds, on_join)

    def _on_predicate(
        self, left_scope: list[ScopeColumn], right_scope: list[ScopeColumn]
    ) -> A.Expr:
        rng = self.rng
        if left_scope and right_scope and rng.random() < 0.7:
            if not self.portable:
                lcol = rng.choice(left_scope)
                rcol = rng.choice(right_scope)
                op = rng.choice(["=", "=", "!=", "<"])
                return A.Binary(op, lcol.ref, rcol.ref)
            pairs = [
                (l, r)
                for l in left_scope
                for r in right_scope
                if l.sql_type is not None and l.sql_type == r.sql_type
            ]
            if pairs:
                lcol, rcol = rng.choice(pairs)
                op = rng.choice(["=", "=", "!=", "<"])
                return A.Binary(op, lcol.ref, rcol.ref)
        return A.Literal(rng.random() < 0.8)

    # -- whole queries -----------------------------------------------------------

    def count_query(self, skeleton: FromSkeleton, where: A.Expr | None) -> A.Select:
        """``SELECT COUNT(*) FROM ... WHERE p`` -- the workhorse original
        query shape (Figure 1 step 4)."""
        return A.Select(
            items=(A.SelectItem(A.FuncCall("COUNT", (), star=True)),),
            from_clause=skeleton.ref,
            where=where,
        )

    def star_query(self, skeleton: FromSkeleton, where: A.Expr | None) -> A.Select:
        return A.Select(
            items=(A.SelectItem(None),),
            from_clause=skeleton.ref,
            where=where,
        )

    def grouped_query(
        self,
        skeleton: FromSkeleton,
        having: A.Expr | None,
        where: A.Expr | None = None,
        group_col=None,
    ) -> A.Select:
        """``SELECT g, COUNT(*) ... GROUP BY g HAVING p``.

        Pass *group_col* when the same grouping must be reused across
        several related queries (metamorphic pairs/partitions).
        """
        if group_col is None:
            group_col = self.rng.choice(skeleton.scope)
        return A.Select(
            items=(
                A.SelectItem(group_col.ref, alias="g"),
                A.SelectItem(A.FuncCall("COUNT", (), star=True), alias="n"),
            ),
            from_clause=skeleton.ref,
            where=where,
            group_by=(group_col.ref,),
            having=having,
        )

    def fetch_predicate_query(
        self, skeleton: FromSkeleton, predicate: A.Expr
    ) -> A.Select:
        """``SELECT (p) FROM ...`` -- NoREC's non-optimizing form."""
        return A.Select(
            items=(A.SelectItem(predicate, alias="p"),),
            from_clause=skeleton.ref,
        )

    def combined_predicate(
        self, phi: A.Expr, scope: list[ScopeColumn]
    ) -> A.Expr:
        """Wrap phi into a larger random predicate (Figure 1: the query
        takes phi *as a sub-expression*)."""
        rng = self.rng
        r = rng.random()
        if r < 0.4:
            return phi
        extra_gen = self.expr_gen.predicate(scope)
        extra = extra_gen.expr
        if r < 0.7:
            return A.Binary("AND", phi, extra)
        if r < 0.9:
            return A.Binary("OR", phi, extra)
        return A.Unary("NOT", A.Binary("AND", phi, extra))
