"""Random database-state generation.

Step 1 of the approach (paper Figure 1): "initialize the database and
create non-empty tables ... randomly by using rule-based generators".
Non-empty tables guarantee at least one row is available for constant
folding; indexes and views are created because several of the paper's
bugs require them (Listings 1 and 8).

All state is created through the adapter's SQL interface, so the same
generator drives both MiniDB profiles and the real SQLite.
"""

from __future__ import annotations

import random

from repro.adapters.base import EngineAdapter, SchemaInfo
from repro.errors import SqlError
from repro.minidb.values import SqlValue, sql_literal

#: A large INT8 constant family (outside INT4 range) -- needed to reach
#: value-list bugs like paper Listing 9.
LARGE_INTS = [8628276060272066657, 2**33, -(2**35), 2**31 + 1]

TEXT_POOL = ["a", "b", "abc", "x", "", "1", "0.5x"]


def _insert_sql(table: str, rows: "list[list[SqlValue]]") -> str:
    rendered = ", ".join(
        "(" + ", ".join(sql_literal(v) for v in row) + ")" for row in rows
    )
    return f"INSERT INTO {table} VALUES {rendered}"


class StateGenerator:
    """Generates a random schema plus contents via SQL statements."""

    def __init__(
        self,
        rng: random.Random,
        max_tables: int = 3,
        max_columns: int = 4,
        max_rows: int = 6,
        create_indexes: bool = True,
        create_views: bool = True,
        strict_typing: bool = False,
        portable: bool = False,
    ) -> None:
        self.rng = rng
        self.max_tables = max_tables
        self.max_columns = max_columns
        self.max_rows = max_rows
        self.create_indexes = create_indexes
        self.create_views = create_views
        self.strict_typing = strict_typing
        #: Portable mode (differential testing): view definitions avoid
        #: constructs whose semantics differ across engines -- here, the
        #: ``GROUP BY 1 > col`` aggregate view over non-numeric columns
        #: (engines disagree on mixed text/number comparison and on
        #: AVG over text).
        self.portable = portable
        #: Statements that built the current state (successful ones
        #: only).  Prepending them to a bug report's queries yields a
        #: self-contained, replayable program -- what the fleet corpus
        #: persists and the reducer minimizes.
        self.last_statements: list[str] = []

    # -- public -------------------------------------------------------------

    def generate(self, adapter: EngineAdapter) -> SchemaInfo:
        """Reset the adapter and build a fresh random state."""
        adapter.reset()
        self.last_statements = []
        n_tables = self.rng.randint(1, self.max_tables)
        for t in range(n_tables):
            self._create_table(adapter, f"t{t}")
        if self.create_views and self.rng.random() < 0.6:
            self._create_view(adapter, "v0", n_tables)
        return adapter.schema()

    def _exec(self, adapter: EngineAdapter, sql: str) -> None:
        """Execute one setup statement, recording it on success."""
        adapter.execute(sql)
        self.last_statements.append(sql)

    # -- pieces -------------------------------------------------------------

    def _create_table(self, adapter: EngineAdapter, name: str) -> None:
        n_cols = self.rng.randint(1, self.max_columns)
        col_defs: list[str] = []
        col_types: list[str] = []
        not_nulls: list[bool] = []
        for c in range(n_cols):
            sql_type = self.rng.choice(
                ["INT", "INT", "INT", "BIGINT", "BIGINT", "TEXT", "BOOL", "REAL"]
            )
            if not self.strict_typing and self.rng.random() < 0.15:
                # SQLite-style dynamically typed column.
                col_defs.append(f"c{c}")
                col_types.append("ANY")
                not_nulls.append(False)
                continue
            not_null = self.rng.random() < 0.15
            col_defs.append(f"c{c} {sql_type}{' NOT NULL' if not_null else ''}")
            col_types.append(sql_type)
            not_nulls.append(not_null)
        self._exec(adapter, f"CREATE TABLE {name} ({', '.join(col_defs)})")

        n_rows = self.rng.randint(1, self.max_rows)
        rows: list[list[SqlValue]] = [
            [self._random_value(col_types[c]) for c in range(n_cols)]
            for _ in range(n_rows)
        ]
        try:
            self._exec(adapter, _insert_sql(name, rows))
        except SqlError:
            # NOT NULL violation: statements are atomic, so nothing was
            # inserted.  Patch the offending NULLs and retry with the
            # full row set (single-row tables trigger far fewer join
            # bugs), falling back to one all-safe row.
            patched = [
                [
                    self._safe_value(col_types[c])
                    if v is None and not_nulls[c]
                    else v
                    for c, v in enumerate(row)
                ]
                for row in rows
            ]
            try:
                self._exec(adapter, _insert_sql(name, patched))
            except SqlError:
                safe = [[self._safe_value(t) for t in col_types]]
                self._exec(adapter, _insert_sql(name, safe))

        if self.create_indexes and self.rng.random() < 0.7:
            self._create_index(adapter, name, n_cols)

    def _random_value(self, sql_type: str) -> SqlValue:
        r = self.rng.random()
        if r < 0.12:
            return None
        if sql_type in ("INT", "BIGINT", "ANY"):
            if sql_type == "BIGINT" and self.rng.random() < 0.5:
                return self.rng.choice(LARGE_INTS)
            return self.rng.randint(-5, 10)
        if sql_type == "TEXT":
            return self.rng.choice(TEXT_POOL)
        if sql_type == "BOOL":
            return self.rng.random() < 0.5
        if sql_type == "REAL":
            # Whole-valued reals avoid the floating-point false alarms the
            # paper eschews (Section 4.1).
            return float(self.rng.randint(-5, 10))
        return self.rng.randint(-5, 10)

    def _safe_value(self, sql_type: str) -> SqlValue:
        return {
            "INT": 1,
            "BIGINT": 1,
            "ANY": 1,
            "TEXT": "a",
            "BOOL": True,
            "REAL": 1.0,
        }.get(sql_type, 1)

    def _create_index(self, adapter: EngineAdapter, table: str, n_cols: int) -> None:
        col = f"c{self.rng.randrange(n_cols)}"
        ix_name = f"ix_{table}_{self.rng.randrange(1000)}"
        choice = self.rng.random()
        try:
            if choice < 0.5:
                self._exec(adapter, f"CREATE INDEX {ix_name} ON {table} ({col})")
            elif choice < 0.8:
                self._exec(adapter, f"CREATE INDEX {ix_name} ON {table} ({col} > 0)")
            else:
                self._exec(
                    adapter, f"CREATE INDEX {ix_name} ON {table} ({col}) WHERE {col} IS NOT NULL"
                )
        except SqlError:
            pass  # e.g. expression indexes unsupported by a dialect

    def _create_view(self, adapter: EngineAdapter, name: str, n_tables: int) -> None:
        from repro.minidb.values import SqlType

        table = f"t{self.rng.randrange(n_tables)}"
        try:
            info = adapter.schema().table(table)
        except KeyError:
            return
        col = self.rng.choice(info.columns).name
        choice = self.rng.random()
        if self.portable and choice < 0.7:
            # The aggregate-view shape needs a numeric column: cross-
            # engine, ``1 > text_col`` groups differently and AVG(text)
            # is engine-defined.
            numeric = [
                c.name
                for c in info.columns
                if c.sql_type in (SqlType.INTEGER, SqlType.REAL)
            ]
            if not numeric:
                choice = 0.0  # fall back to the plain projection view
            elif 0.4 <= choice:
                col = self.rng.choice(numeric)
        try:
            if choice < 0.4:
                self._exec(
                    adapter, f"CREATE VIEW {name} (c0) AS SELECT {col} FROM {table}"
                )
            elif choice < 0.7:
                self._exec(
                    adapter, f"CREATE VIEW {name} (c0) AS "
                    f"SELECT AVG({col}) FROM {table} GROUP BY 1 > {col}"
                )
            else:
                self._exec(
                    adapter, f"CREATE VIEW {name} (c0, c1) AS "
                    f"SELECT {col}, COUNT(*) FROM {table} GROUP BY {col}"
                )
        except SqlError:
            pass
