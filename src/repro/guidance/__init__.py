"""Plan-coverage-guided generation and adaptive fleet scheduling.

The feedback loop that turns the existing plan-fingerprint machinery
into a generation/scheduling signal (Query Plan Guidance, Ba & Rigger
ICSE 2023; adaptive generation per "Scaling Automated Database System
Testing", Zhong & Rigger 2025):

* :mod:`repro.guidance.coverage` -- :class:`CoverageMap`, a CRDT of
  per-shard plan-fingerprint / fault / arm counters whose ``merge`` is
  commutative, associative, and idempotent (safe snapshot exchange and
  checkpoint/resume),
* :mod:`repro.guidance.policy` -- :class:`GuidedPolicy`, a seeded UCB
  bandit over generator knob arms (MaxDepth, join/subquery/aggregate
  weights, portable dialect mode) rewarding fleet-globally new plan
  fingerprints and de-prioritizing arms that only re-fire saturated
  fault clusters.

Wiring: ``Campaign(policy=...)`` applies the chosen arm's knobs before
every test; the fleet orchestrator runs guided campaigns in
deterministic *rounds*, merging shard coverage snapshots and
rebalancing the remaining budget toward under-covered arms at each
barrier (``coddtest hunt|fleet|diff --guidance plan-coverage``).
"""

from repro.guidance.coverage import CoverageMap, merge_all
from repro.guidance.policy import (
    ARMS_BY_NAME,
    DEFAULT_ARMS,
    GUIDANCE_MODES,
    PLAN_COVERAGE,
    Arm,
    GuidedPolicy,
    policy_seed,
)

__all__ = [
    "Arm",
    "ARMS_BY_NAME",
    "CoverageMap",
    "DEFAULT_ARMS",
    "GUIDANCE_MODES",
    "GuidedPolicy",
    "PLAN_COVERAGE",
    "merge_all",
    "policy_seed",
]
