"""Plan-coverage accounting for guided generation.

The paper's campaigns are uniform-random; its own Figure 3 shows plan
diversity saturating with MaxDepth, so most budget re-exercises plans
the campaign has already covered.  Query Plan Guidance (Ba & Rigger,
ICSE 2023) turns plan fingerprints into a feedback signal; this module
is the bookkeeping half of that loop: which plan fingerprints, faults,
and knob arms each shard has exercised, mergeable across shards and
fleet invocations.

The map is a grow-only CRDT (a G-counter per key): every counter is
owned by exactly one *source* (one shard of one fleet seed) and only
ever increments, so :func:`CoverageMap.merge` can take the elementwise
maximum per ``(source, key)``.  That makes merge

* **commutative** -- ``merge(a, b) == merge(b, a)``,
* **associative** -- ``merge(merge(a, b), c) == merge(a, merge(b, c))``,
* **idempotent**  -- ``merge(a, a) == a``,

which is exactly what snapshot exchange needs: the orchestrator can
merge the same shard snapshot any number of times, in any order, and
resumed fleets can re-merge a checkpoint file without double counting.
The contract is that a writer never decrements and never writes a
source it does not own.

Determinism guarantee: all views (global counts, saturation, arm
summaries) are pure functions of the map contents with sorted
iteration orders, so two equal maps render identically.
"""

from __future__ import annotations

import json
import os
from dataclasses import dataclass, field
from typing import Iterable

#: Key under which arm pull/yield counters live in the per-source arm
#: dicts.
PULLS = "pulls"
NEW_PLANS = "new_plans"


@dataclass
class CoverageMap:
    """Per-source plan / fault / arm counters with CRDT merge.

    ``plans[source][fingerprint]`` counts how often *source* produced a
    test whose main query planned to *fingerprint*;
    ``faults[source][fault_id]`` counts tests of *source* that fired the
    injected fault; ``arms[source][arm][PULLS | NEW_PLANS]`` counts how
    often *source* pulled a knob arm and how many globally new
    fingerprints those pulls yielded.
    """

    plans: dict[str, dict[str, int]] = field(default_factory=dict)
    faults: dict[str, dict[str, int]] = field(default_factory=dict)
    arms: dict[str, dict[str, dict[str, int]]] = field(default_factory=dict)

    # -- recording (single-writer per source) -------------------------------

    def record_plan(self, source: str, fingerprint: str, n: int = 1) -> None:
        bucket = self.plans.setdefault(source, {})
        bucket[fingerprint] = bucket.get(fingerprint, 0) + n

    def record_fault(self, source: str, fault_id: str, n: int = 1) -> None:
        bucket = self.faults.setdefault(source, {})
        bucket[fault_id] = bucket.get(fault_id, 0) + n

    def record_arm(
        self, source: str, arm: str, *, new_plan: bool = False
    ) -> None:
        bucket = self.arms.setdefault(source, {}).setdefault(
            arm, {PULLS: 0, NEW_PLANS: 0}
        )
        bucket[PULLS] += 1
        if new_plan:
            bucket[NEW_PLANS] += 1

    # -- merge --------------------------------------------------------------

    @staticmethod
    def merge(a: "CoverageMap", b: "CoverageMap") -> "CoverageMap":
        """Pure CRDT join of two maps (elementwise max per source)."""
        out = CoverageMap()
        out.update(a)
        out.update(b)
        return out

    def update(self, other: "CoverageMap") -> None:
        """In-place CRDT join: absorb *other* into this map."""
        _join_counts(self.plans, other.plans)
        _join_counts(self.faults, other.faults)
        for source, arms in other.arms.items():
            mine = self.arms.setdefault(source, {})
            for arm, counters in arms.items():
                slot = mine.setdefault(arm, {PULLS: 0, NEW_PLANS: 0})
                for key, value in counters.items():
                    slot[key] = max(slot.get(key, 0), value)

    # -- views --------------------------------------------------------------

    def seen_plans(self) -> set[str]:
        """Every plan fingerprint any source has produced."""
        out: set[str] = set()
        for bucket in self.plans.values():
            out |= bucket.keys()
        return out

    def global_plan_counts(self) -> dict[str, int]:
        """Fleet-wide count per fingerprint (sum across sources)."""
        out: dict[str, int] = {}
        for bucket in self.plans.values():
            for fp, n in bucket.items():
                out[fp] = out.get(fp, 0) + n
        return out

    def global_fault_counts(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for bucket in self.faults.values():
            for fid, n in bucket.items():
                out[fid] = out.get(fid, 0) + n
        return out

    def saturated_faults(self, threshold: int) -> frozenset[str]:
        """Fault ids sighted at least *threshold* times fleet-wide --
        the faults further witnesses of which teach us nothing new."""
        return frozenset(
            fid
            for fid, n in self.global_fault_counts().items()
            if n >= threshold
        )

    def arm_summary(self) -> list[tuple[str, int, int]]:
        """``(arm, pulls, new_plans)`` rows summed across sources, in
        descending new-plan order (pulls, then name, break ties)."""
        totals: dict[str, list[int]] = {}
        for arms in self.arms.values():
            for arm, counters in arms.items():
                slot = totals.setdefault(arm, [0, 0])
                slot[0] += counters.get(PULLS, 0)
                slot[1] += counters.get(NEW_PLANS, 0)
        return sorted(
            ((arm, pulls, new) for arm, (pulls, new) in totals.items()),
            key=lambda row: (-row[2], -row[1], row[0]),
        )

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        return {
            "plans": {s: dict(b) for s, b in sorted(self.plans.items())},
            "faults": {s: dict(b) for s, b in sorted(self.faults.items())},
            "arms": {
                s: {a: dict(c) for a, c in sorted(arms.items())}
                for s, arms in sorted(self.arms.items())
            },
        }

    @classmethod
    def from_dict(cls, data: "dict | None") -> "CoverageMap":
        if not data:
            return cls()
        return cls(
            plans={s: dict(b) for s, b in data.get("plans", {}).items()},
            faults={s: dict(b) for s, b in data.get("faults", {}).items()},
            arms={
                s: {a: dict(c) for a, c in arms.items()}
                for s, arms in data.get("arms", {}).items()
            },
        )

    def save(self, path: str) -> None:
        """Atomically write the map as JSON (checkpoint file)."""
        tmp = path + ".tmp"
        with open(tmp, "w", encoding="utf-8") as fh:
            json.dump(self.to_dict(), fh, sort_keys=True)
            fh.write("\n")
        os.replace(tmp, path)

    @classmethod
    def load(cls, path: str) -> "CoverageMap":
        """Load a checkpoint; a missing file starts an empty map."""
        if not os.path.exists(path):
            return cls()
        with open(path, "r", encoding="utf-8") as fh:
            return cls.from_dict(json.load(fh))


def merge_all(maps: Iterable[CoverageMap]) -> CoverageMap:
    """CRDT join of any number of maps (order irrelevant)."""
    out = CoverageMap()
    for m in maps:
        out.update(m)
    return out


def _join_counts(
    mine: dict[str, dict[str, int]], other: dict[str, dict[str, int]]
) -> None:
    for source, bucket in other.items():
        slot = mine.setdefault(source, {})
        for key, value in bucket.items():
            slot[key] = max(slot.get(key, 0), value)
