"""Plan-coverage-guided generation policy (a seeded bandit over knobs).

Uniform-random campaigns spend most of their budget re-exercising plans
they have already covered (paper Figure 3: plan diversity saturates
with MaxDepth).  :class:`GuidedPolicy` instead treats generator knob
bundles -- *arms* -- as a multi-armed bandit: before every test it
picks an arm (UCB1 with seeded epsilon exploration), applies the arm's
knobs to the oracle's live generators, and after the test rewards the
arm iff the test's main query planned to a fingerprint nobody in the
fleet has seen.  Arms whose recent tests only re-fire saturated fault
clusters (the triage signal) are penalized, steering budget away from
bugs the corpus already holds many witnesses of.

Determinism guarantee: arm selection is a pure function of
``(seed, observation history, injected prior)``.  A 1-worker guided
run is bit-reproducible from its seed; a multi-worker guided fleet
exchanges snapshots only at deterministic round barriers (see
``fleet.orchestrator``), so the arm schedule is reproducible for a
fixed ``(seed, workers)`` too.
"""

from __future__ import annotations

import math
import random
from dataclasses import dataclass, field

from repro.guidance.coverage import CoverageMap
from repro.oracles_base import TestOutcome

#: The single guidance mode currently implemented; CLI flag value.
PLAN_COVERAGE = "plan-coverage"

GUIDANCE_MODES = (PLAN_COVERAGE,)


@dataclass(frozen=True)
class Arm:
    """One knob bundle the bandit can pull.

    ``max_depth``/``max_relations`` bound expression and FROM-clause
    size -- None means "leave the campaign's configured baseline
    alone", so arms are *deltas* from whatever the oracle was built
    with (a user's ``oracle_kwargs={"max_depth": 5}`` survives uniform
    pulls).  The three weights tilt the generator's choice
    distributions (1.0 is exactly the uniform-random behaviour);
    ``portable`` switches generation to the dialect-intersection mode
    for this test (the knob differential campaigns run in permanently
    -- here an *extra* restriction reaching the planner's type-uniform
    paths).
    """

    name: str
    max_depth: int | None = None
    max_relations: int | None = None
    subquery_weight: float = 1.0
    aggregate_weight: float = 1.0
    join_weight: float = 1.0
    portable: bool = False

    def apply(self, oracle) -> None:
        """Push this arm's knobs onto *oracle*'s live generators.

        Generic across oracles: every oracle exposes ``max_depth`` (read
        when generators are rebuilt per state) plus ``expr_gen`` /
        ``query_gen`` instances that read their knobs per call.  The
        baseline value of every absolute knob is captured the first
        time an arm touches its owner, so a None knob (and the next
        arm after a portable pull) restores the configured behaviour
        rather than inheriting the previous arm's override.  Portable
        baselines are per generator *instance* (rebuilt each state), so
        an adapter that requires portable generation (differential
        pairs) is never widened.
        """
        depth = self.max_depth
        if hasattr(oracle, "max_depth"):
            base_depth = _baseline(oracle, "max_depth")
            depth = base_depth if depth is None else depth
            oracle.max_depth = depth
        expr_gen = getattr(oracle, "expr_gen", None)
        if expr_gen is not None:
            # Baselines are captured eagerly, before this arm's writes,
            # so a later arm can restore them even when this arm's
            # value would short-circuit the lookup.
            base_portable = _baseline(expr_gen, "portable")
            if depth is not None:
                expr_gen.max_depth = depth
            expr_gen.subquery_weight = self.subquery_weight
            expr_gen.aggregate_weight = self.aggregate_weight
            expr_gen.portable = self.portable or base_portable
        query_gen = getattr(oracle, "query_gen", None)
        if query_gen is not None:
            base_rel = _baseline(query_gen, "max_relations")
            base_portable = _baseline(query_gen, "portable")
            query_gen.max_relations = (
                base_rel if self.max_relations is None else self.max_relations
            )
            query_gen.join_weight = self.join_weight
            query_gen.portable = self.portable or base_portable


def _baseline(owner, knob: str):
    """The knob value *owner* was configured with, captured before the
    first arm override (oracles persist across states; generators are
    rebuilt per state, so their pristine constructor values re-capture
    naturally)."""
    attr = f"_guidance_base_{knob}"
    base = getattr(owner, attr, None)
    if base is None:
        base = getattr(owner, knob)
        setattr(owner, attr, base)
    return base


#: The default arm space.  "uniform" is exactly the unguided generator
#: configuration; the other arms push toward the structures that mint
#: new plan fingerprints (subquery shape, join arity, aggregate
#: subqueries -- paper Section 4.3: only subqueries keep adding plans).
#: Weights were measured per arm on 200-test planted-fault campaigns;
#: every non-uniform arm mints at least as many unique plans per test
#: as uniform (shallow low-subquery variants measured *worse* and were
#: dropped), so even the bandit's exploration phase does no harm.
DEFAULT_ARMS: tuple[Arm, ...] = (
    Arm("uniform"),  # every knob at the campaign's configured baseline
    Arm("deep-subquery", max_depth=5, subquery_weight=2.5, aggregate_weight=1.5),
    Arm("join-heavy", max_relations=3, join_weight=3.0, subquery_weight=1.5),
    Arm("aggregate-heavy", max_depth=4, subquery_weight=1.8, aggregate_weight=3.0),
    Arm("deep-join", max_depth=4, max_relations=3, join_weight=3.0, subquery_weight=2.0),
    Arm("portable-dialect", portable=True, subquery_weight=1.5),
)

ARMS_BY_NAME = {arm.name: arm for arm in DEFAULT_ARMS}


@dataclass
class _ArmStats:
    """Local pull/reward tally plus the fleet prior injected at round
    barriers (budget rebalance: globally exhausted arms start the next
    round with a low prior mean and lose UCB priority everywhere)."""

    pulls: int = 0
    reward: float = 0.0
    prior_pulls: int = 0
    prior_reward: float = 0.0

    @property
    def total_pulls(self) -> int:
        return self.pulls + self.prior_pulls

    @property
    def mean(self) -> float:
        total = self.total_pulls
        if total == 0:
            return 0.0
        return (self.reward + self.prior_reward) / total


class GuidedPolicy:
    """Seeded UCB1 bandit over generator knob arms.

    The :class:`~repro.runner.campaign.Campaign` calls
    :meth:`begin_test` before each test (the returned arm's knobs are
    applied to the oracle) and :meth:`observe` after it.
    """

    #: UCB exploration constant (rewards live in [-penalty, 1]).
    exploration = 0.6
    #: Seeded epsilon exploration on top of UCB.
    epsilon = 0.08
    #: Reward subtracted when a test's only yield is re-firing faults
    #: the fleet has already saturated.
    saturation_penalty = 0.25

    def __init__(
        self,
        seed: int,
        source: str,
        arms: "tuple[Arm, ...]" = DEFAULT_ARMS,
        known_plans: "set[str] | None" = None,
        saturated: "frozenset[str]" = frozenset(),
    ) -> None:
        self.arms = arms
        self.source = source
        self.rng = random.Random(seed)
        #: Fingerprints known anywhere in the fleet (merged snapshot +
        #: everything this shard saw) -- the novelty reference set.
        self.known: set[str] = set(known_plans or ())
        self.saturated = saturated
        self.coverage = CoverageMap()
        self.stats: dict[str, _ArmStats] = {a.name: _ArmStats() for a in arms}
        #: Arm name per test, in order -- the reproducibility witness
        #: the determinism regression pack asserts on.
        self.schedule: list[str] = []
        self._current: Arm | None = None
        self._t = 0

    # -- campaign hook -------------------------------------------------------

    def begin_test(self) -> Arm:
        """Pick the next arm (and remember it for :meth:`observe`)."""
        self._t += 1
        arm = self._select()
        self._current = arm
        self.schedule.append(arm.name)
        return arm

    def observe(self, outcome: TestOutcome) -> None:
        """Account the finished test to the arm that generated it."""
        arm = self._current
        if arm is None:
            return
        self._current = None
        fp = outcome.fingerprint
        new_plan = fp is not None and fp not in self.known
        if fp is not None:
            self.known.add(fp)
            self.coverage.record_plan(self.source, fp)
        for fault_id in sorted(outcome.fired_faults):
            self.coverage.record_fault(self.source, fault_id)
        reward = 1.0 if new_plan else 0.0
        if (
            not new_plan
            and outcome.fired_faults
            and outcome.fired_faults <= self.saturated
        ):
            reward -= self.saturation_penalty
        stats = self.stats[arm.name]
        stats.pulls += 1
        stats.reward += reward
        self.coverage.record_arm(self.source, arm.name, new_plan=new_plan)

    # -- selection -----------------------------------------------------------

    def _select(self) -> Arm:
        # Unpulled arms first, in declaration order (deterministic).
        for arm in self.arms:
            if self.stats[arm.name].total_pulls == 0:
                return arm
        if self.rng.random() < self.epsilon:
            return self.arms[self.rng.randrange(len(self.arms))]
        total = sum(s.total_pulls for s in self.stats.values())
        log_total = math.log(max(total, 2))
        best, best_score = self.arms[0], float("-inf")
        for arm in self.arms:  # declaration order breaks ties
            stats = self.stats[arm.name]
            score = stats.mean + self.exploration * math.sqrt(
                log_total / stats.total_pulls
            )
            if score > best_score:
                best, best_score = arm, score
        return best

    # -- round barriers ------------------------------------------------------

    def absorb_snapshot(
        self, snapshot: CoverageMap, saturated: "frozenset[str]"
    ) -> None:
        """Fold a merged fleet snapshot in at a round barrier: every
        fingerprint anyone saw stops counting as novel here, and the
        fleet's saturated-fault set replaces the local one."""
        self.known |= snapshot.seen_plans()
        self.saturated = saturated

    def inject_prior(self, arm_pulls: "dict[str, tuple[int, float]]") -> None:
        """Install fleet-global ``(pulls, reward)`` priors per arm --
        the orchestrator's budget rebalance: arms the fleet has pulled
        hard for little yield start the round deprioritized."""
        for name, (pulls, reward) in arm_pulls.items():
            stats = self.stats.get(name)
            if stats is not None:
                stats.prior_pulls = pulls
                stats.prior_reward = reward

    # -- (de)serialization across round/process boundaries --------------------

    def to_state(self) -> dict:
        """Picklable/JSON-able snapshot of the full decision state."""
        rng_state = self.rng.getstate()
        return {
            "source": self.source,
            "rng": [rng_state[0], list(rng_state[1]), rng_state[2]],
            "known": sorted(self.known),
            "saturated": sorted(self.saturated),
            "t": self._t,
            "schedule": list(self.schedule),
            "stats": {
                name: [s.pulls, s.reward, s.prior_pulls, s.prior_reward]
                for name, s in sorted(self.stats.items())
            },
            "coverage": self.coverage.to_dict(),
        }

    @classmethod
    def from_state(
        cls, state: dict, arms: "tuple[Arm, ...]" = DEFAULT_ARMS
    ) -> "GuidedPolicy":
        policy = cls(seed=0, source=state["source"], arms=arms)
        rng_version, internal, gauss = state["rng"]
        policy.rng.setstate((rng_version, tuple(internal), gauss))
        policy.known = set(state["known"])
        policy.saturated = frozenset(state["saturated"])
        policy._t = state["t"]
        policy.schedule = list(state["schedule"])
        for name, (pulls, reward, p_pulls, p_reward) in state["stats"].items():
            if name in policy.stats:
                policy.stats[name] = _ArmStats(pulls, reward, p_pulls, p_reward)
        policy.coverage = CoverageMap.from_dict(state["coverage"])
        return policy


def policy_seed(shard_seed: int) -> int:
    """The bandit's RNG stream, decorrelated from the generation stream
    (the campaign RNG is ``Random(shard_seed)``; reusing it would let
    knob exploration perturb generation in a worker-count-dependent
    way)."""
    return (shard_seed * 0x9E3779B97F4A7C15 + 0x1B) % (2**63)
