"""MiniDB: the from-scratch SQL engine used as the DBMS under test.

The paper evaluates CODDTest against five production DBMSs; this package
is the substitute substrate -- a complete (small) relational engine with
a parser, planner, optimizer, executor, dialect profiles, fault
injection, and branch-coverage probes.  See DESIGN.md for the mapping.
"""

from repro.minidb.engine import Engine, EngineProfile, QueryResult
from repro.minidb.faults import BugStatus, BugType, Fault, FaultInjector
from repro.minidb.values import SqlType, TypingMode

__all__ = [
    "Engine",
    "EngineProfile",
    "QueryResult",
    "Fault",
    "FaultInjector",
    "BugType",
    "BugStatus",
    "SqlType",
    "TypingMode",
]
