"""Abstract syntax tree for MiniDB SQL.

The same AST is produced by the parser (:mod:`repro.minidb.parser`),
by the random generators (:mod:`repro.generator`), and transformed by the
test oracles (:mod:`repro.core`, :mod:`repro.baselines`).

Every node renders back to SQL text via :meth:`Node.to_sql`.  Rendering is
deliberately over-parenthesized: the oracles compare *results* of queries,
never their text, so unambiguous round-tripping matters more than pretty
output.  This mirrors the paper's implementation note that folded queries
are derived "by replacing child nodes in the Abstract Syntax Tree"
(Section 4, Implementation).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Callable, Iterator

from repro.minidb.values import SqlValue, sql_literal

# ---------------------------------------------------------------------------
# Base
# ---------------------------------------------------------------------------


class Node:
    """Base class for every AST node."""

    def to_sql(self) -> str:
        raise NotImplementedError

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.to_sql()


class Expr(Node):
    """Base class for expression nodes."""

    def children(self) -> tuple["Expr", ...]:
        """Direct sub-expressions (not descending into subqueries)."""
        return ()


def walk(expr: Expr) -> Iterator[Expr]:
    """Yield *expr* and all sub-expressions, pre-order.

    Subquery bodies are not entered: a subquery is treated as an opaque
    expression, matching how the paper treats it as a single foldable
    unit (Section 3.1).
    """
    yield expr
    for child in expr.children():
        yield from walk(child)


def transform(expr: Expr, fn: Callable[[Expr], Expr | None]) -> Expr:
    """Rebuild *expr* bottom-up, replacing nodes where *fn* returns non-None.

    This is the ``ReplaceExpr`` primitive of Algorithm 1 (line 13): the
    oracles use it to substitute the folded constant for the chosen
    expression.  Matching is by object identity, handled by the caller's
    *fn*; the tree is copied so the original query is left intact.
    """
    replaced = fn(expr)
    if replaced is not None:
        return replaced
    updates: dict[str, object] = {}
    for f in dataclasses.fields(expr):  # type: ignore[arg-type]
        value = getattr(expr, f.name)
        if isinstance(value, Expr):
            new = transform(value, fn)
            if new is not value:
                updates[f.name] = new
        elif isinstance(value, tuple) and value and isinstance(value[0], Expr):
            new_items = tuple(transform(v, fn) for v in value)
            if any(a is not b for a, b in zip(new_items, value)):
                updates[f.name] = new_items
        elif isinstance(value, tuple) and value and isinstance(value[0], CaseWhen):
            new_whens = tuple(
                CaseWhen(transform(w.condition, fn), transform(w.result, fn))
                for w in value
            )
            updates[f.name] = new_whens
    if updates:
        return dataclasses.replace(expr, **updates)  # type: ignore[type-var]
    return expr


def replace_node(root: Expr, target: Expr, replacement: Expr) -> Expr:
    """Return a copy of *root* with the node *target* (by identity)
    replaced by *replacement*."""

    def fn(node: Expr) -> Expr | None:
        return replacement if node is target else None

    return transform(root, fn)


# ---------------------------------------------------------------------------
# Expressions
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Literal(Expr):
    """A constant literal (NULL, boolean, number, or string)."""

    value: SqlValue

    def to_sql(self) -> str:
        return sql_literal(self.value)


@dataclass(frozen=True)
class ColumnRef(Expr):
    """A (possibly qualified) column reference."""

    table: str | None
    column: str

    def to_sql(self) -> str:
        if self.table:
            return f"{self.table}.{self.column}"
        return self.column

    @property
    def key(self) -> str:
        """Canonical lookup key, e.g. ``t0.c1`` or ``c1``."""
        return f"{self.table}.{self.column}" if self.table else self.column


@dataclass(frozen=True)
class Unary(Expr):
    """Unary operator: ``-`` or ``NOT``."""

    op: str
    operand: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        if self.op.upper() == "NOT":
            return f"(NOT {self.operand.to_sql()})"
        # A space avoids "--" (a SQL comment) when negations nest.
        return f"({self.op} {self.operand.to_sql()})"


@dataclass(frozen=True)
class Binary(Expr):
    """Binary operator: arithmetic, comparison, logical, ``||``, LIKE."""

    op: str
    left: Expr
    right: Expr

    def children(self) -> tuple[Expr, ...]:
        return (self.left, self.right)

    def to_sql(self) -> str:
        return f"({self.left.to_sql()} {self.op} {self.right.to_sql()})"


@dataclass(frozen=True)
class IsNull(Expr):
    """``expr IS [NOT] NULL``."""

    operand: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        suffix = "IS NOT NULL" if self.negated else "IS NULL"
        return f"({self.operand.to_sql()} {suffix})"


@dataclass(frozen=True)
class Between(Expr):
    """``expr [NOT] BETWEEN low AND high``."""

    operand: Expr
    low: Expr
    high: Expr
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, self.low, self.high)

    def to_sql(self) -> str:
        kw = "NOT BETWEEN" if self.negated else "BETWEEN"
        return (
            f"({self.operand.to_sql()} {kw} "
            f"{self.low.to_sql()} AND {self.high.to_sql()})"
        )


@dataclass(frozen=True)
class InList(Expr):
    """``expr [NOT] IN (v1, v2, ...)`` with a value list."""

    operand: Expr
    items: tuple[Expr, ...]
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand, *self.items)

    def to_sql(self) -> str:
        kw = "NOT IN" if self.negated else "IN"
        inner = ", ".join(item.to_sql() for item in self.items)
        return f"({self.operand.to_sql()} {kw} ({inner}))"


@dataclass(frozen=True)
class CaseWhen:
    """One ``WHEN condition THEN result`` arm of a CASE expression."""

    condition: Expr
    result: Expr


@dataclass(frozen=True)
class Case(Expr):
    """``CASE [operand] WHEN ... THEN ... [ELSE ...] END``.

    The searched form (``operand is None``) is what CODDTest emits for
    dependent-expression mappings (paper Section 3.2, "Constant
    propagation" -- likened to a polymorphic inline cache).
    """

    operand: Expr | None
    whens: tuple[CaseWhen, ...]
    else_: Expr | None = None

    def children(self) -> tuple[Expr, ...]:
        out: list[Expr] = []
        if self.operand is not None:
            out.append(self.operand)
        for w in self.whens:
            out.append(w.condition)
            out.append(w.result)
        if self.else_ is not None:
            out.append(self.else_)
        return tuple(out)

    def to_sql(self) -> str:
        parts = ["CASE"]
        if self.operand is not None:
            parts.append(self.operand.to_sql())
        for w in self.whens:
            parts.append(f"WHEN {w.condition.to_sql()} THEN {w.result.to_sql()}")
        if self.else_ is not None:
            parts.append(f"ELSE {self.else_.to_sql()}")
        parts.append("END")
        return "(" + " ".join(parts) + ")"


@dataclass(frozen=True)
class Cast(Expr):
    """``CAST(expr AS type)``."""

    operand: Expr
    type_name: str

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return f"CAST({self.operand.to_sql()} AS {self.type_name})"


@dataclass(frozen=True)
class FuncCall(Expr):
    """Scalar function or aggregate call."""

    name: str
    args: tuple[Expr, ...] = ()
    star: bool = False  # COUNT(*)
    distinct: bool = False

    def children(self) -> tuple[Expr, ...]:
        return self.args

    def to_sql(self) -> str:
        if self.star:
            return f"{self.name}(*)"
        inner = ", ".join(a.to_sql() for a in self.args)
        prefix = "DISTINCT " if self.distinct else ""
        return f"{self.name}({prefix}{inner})"


@dataclass(frozen=True)
class Exists(Expr):
    """``[NOT] EXISTS (subquery)``."""

    query: "Select"
    negated: bool = False

    def to_sql(self) -> str:
        kw = "NOT EXISTS" if self.negated else "EXISTS"
        return f"({kw} ({self.query.to_sql()}))"


@dataclass(frozen=True)
class ScalarSubquery(Expr):
    """A parenthesized subquery used as a scalar expression."""

    query: "Select"

    def to_sql(self) -> str:
        return f"({self.query.to_sql()})"


@dataclass(frozen=True)
class InSubquery(Expr):
    """``expr [NOT] IN (subquery)``."""

    operand: Expr
    query: "Select"
    negated: bool = False

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        kw = "NOT IN" if self.negated else "IN"
        return f"({self.operand.to_sql()} {kw} ({self.query.to_sql()}))"


@dataclass(frozen=True)
class Quantified(Expr):
    """``expr op ANY|ALL|SOME (subquery)`` (paper Section 3.3)."""

    operand: Expr
    op: str
    quantifier: str  # ANY / ALL / SOME
    query: "Select"

    def children(self) -> tuple[Expr, ...]:
        return (self.operand,)

    def to_sql(self) -> str:
        return (
            f"({self.operand.to_sql()} {self.op} "
            f"{self.quantifier} ({self.query.to_sql()}))"
        )


# ---------------------------------------------------------------------------
# FROM-clause table references
# ---------------------------------------------------------------------------


class TableRef(Node):
    """Base class for FROM-clause items."""


@dataclass(frozen=True)
class NamedTable(TableRef):
    """A base table or view, with optional alias and ``INDEXED BY`` hint."""

    name: str
    alias: str | None = None
    indexed_by: str | None = None

    def to_sql(self) -> str:
        sql = self.name
        if self.alias:
            sql += f" AS {self.alias}"
        if self.indexed_by:
            sql += f" INDEXED BY {self.indexed_by}"
        return sql

    @property
    def binding(self) -> str:
        """Name under which columns of this table are visible."""
        return self.alias or self.name


@dataclass(frozen=True)
class DerivedTable(TableRef):
    """``(SELECT ...) AS alias`` -- one of the three relation sources of
    paper Section 3.4."""

    query: "Select"
    alias: str
    column_aliases: tuple[str, ...] = ()

    def to_sql(self) -> str:
        sql = f"({self.query.to_sql()}) AS {self.alias}"
        if self.column_aliases:
            sql += "(" + ", ".join(self.column_aliases) + ")"
        return sql


@dataclass(frozen=True)
class ValuesTable(TableRef):
    """``(VALUES (...), (...)) AS alias(c0, c1)`` -- the table value
    constructor CODDTest folds relations into (paper Section 3.4)."""

    rows: tuple[tuple[Expr, ...], ...]
    alias: str
    column_aliases: tuple[str, ...] = ()

    def to_sql(self) -> str:
        rows_sql = ", ".join(
            "(" + ", ".join(e.to_sql() for e in row) + ")" for row in self.rows
        )
        sql = f"(VALUES {rows_sql}) AS {self.alias}"
        if self.column_aliases:
            sql += "(" + ", ".join(self.column_aliases) + ")"
        return sql


@dataclass(frozen=True)
class Join(TableRef):
    """A binary join between two table references."""

    kind: str  # INNER / LEFT / RIGHT / FULL / CROSS
    left: TableRef
    right: TableRef
    on: Expr | None = None

    def to_sql(self) -> str:
        kw = {
            "INNER": "INNER JOIN",
            "LEFT": "LEFT JOIN",
            "RIGHT": "RIGHT JOIN",
            "FULL": "FULL OUTER JOIN",
            "CROSS": "CROSS JOIN",
        }[self.kind]
        sql = f"{self.left.to_sql()} {kw} {self.right.to_sql()}"
        if self.on is not None:
            sql += f" ON {self.on.to_sql()}"
        return sql


# ---------------------------------------------------------------------------
# SELECT and other statements
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class SelectItem:
    """One item of the fetch (projection) list."""

    expr: Expr | None  # None means bare *
    alias: str | None = None
    table_star: str | None = None  # "t" for t.*

    def to_sql(self) -> str:
        if self.table_star is not None:
            return f"{self.table_star}.*"
        if self.expr is None:
            return "*"
        sql = self.expr.to_sql()
        if self.alias:
            sql += f" AS {self.alias}"
        return sql


@dataclass(frozen=True)
class OrderItem:
    """One ORDER BY term."""

    expr: Expr
    ascending: bool = True

    def to_sql(self) -> str:
        return f"{self.expr.to_sql()} {'ASC' if self.ascending else 'DESC'}"


@dataclass(frozen=True)
class Cte:
    """One common table expression of a WITH clause (paper Section 3.4)."""

    name: str
    columns: tuple[str, ...]
    query: "Select | ValuesSource"

    def to_sql(self) -> str:
        cols = f"({', '.join(self.columns)})" if self.columns else ""
        return f"{self.name}{cols} AS ({self.query.to_sql()})"


@dataclass(frozen=True)
class Select(Node):
    """A SELECT statement (possibly compound via ``set_op``)."""

    items: tuple[SelectItem, ...]
    from_clause: TableRef | None = None
    where: Expr | None = None
    group_by: tuple[Expr, ...] = ()
    having: Expr | None = None
    order_by: tuple[OrderItem, ...] = ()
    limit: Expr | None = None
    offset: Expr | None = None
    distinct: bool = False
    ctes: tuple[Cte, ...] = ()
    set_op: tuple[str, bool, "Select"] | None = None  # (op, all, rhs)

    def to_sql(self) -> str:
        parts: list[str] = []
        if self.ctes:
            parts.append("WITH " + ", ".join(c.to_sql() for c in self.ctes))
        parts.append("SELECT")
        if self.distinct:
            parts.append("DISTINCT")
        parts.append(", ".join(i.to_sql() for i in self.items))
        if self.from_clause is not None:
            parts.append("FROM " + self.from_clause.to_sql())
        if self.where is not None:
            parts.append("WHERE " + self.where.to_sql())
        if self.group_by:
            parts.append("GROUP BY " + ", ".join(e.to_sql() for e in self.group_by))
        if self.having is not None:
            parts.append("HAVING " + self.having.to_sql())
        sql = " ".join(parts)
        if self.set_op is not None:
            op, all_, rhs = self.set_op
            sql += f" {op}{' ALL' if all_ else ''} {rhs.to_sql()}"
        if self.order_by:
            sql += " ORDER BY " + ", ".join(o.to_sql() for o in self.order_by)
        if self.limit is not None:
            sql += " LIMIT " + self.limit.to_sql()
        if self.offset is not None:
            sql += " OFFSET " + self.offset.to_sql()
        return sql


@dataclass(frozen=True)
class ValuesSource(Node):
    """``VALUES (...), (...)`` used as an INSERT source or CTE body."""

    rows: tuple[tuple[Expr, ...], ...]

    def to_sql(self) -> str:
        return "VALUES " + ", ".join(
            "(" + ", ".join(e.to_sql() for e in row) + ")" for row in self.rows
        )


@dataclass(frozen=True)
class ColumnDef(Node):
    """Column definition in CREATE TABLE."""

    name: str
    type_name: str | None = None
    not_null: bool = False
    primary_key: bool = False

    def to_sql(self) -> str:
        sql = self.name
        if self.type_name:
            sql += f" {self.type_name}"
        if self.primary_key:
            sql += " PRIMARY KEY"
        if self.not_null:
            sql += " NOT NULL"
        return sql


@dataclass(frozen=True)
class CreateTable(Node):
    name: str
    columns: tuple[ColumnDef, ...]
    if_not_exists: bool = False

    def to_sql(self) -> str:
        ine = "IF NOT EXISTS " if self.if_not_exists else ""
        cols = ", ".join(c.to_sql() for c in self.columns)
        return f"CREATE TABLE {ine}{self.name} ({cols})"


@dataclass(frozen=True)
class CreateIndex(Node):
    """``CREATE [UNIQUE] INDEX name ON table (expr, ...) [WHERE pred]``.

    Expression and partial indexes matter: the Listing-1 bug requires
    an expression index plus ``INDEXED BY``.
    """

    name: str
    table: str
    exprs: tuple[Expr, ...]
    where: Expr | None = None
    unique: bool = False

    def to_sql(self) -> str:
        uq = "UNIQUE " if self.unique else ""
        cols = ", ".join(e.to_sql() for e in self.exprs)
        sql = f"CREATE {uq}INDEX {self.name} ON {self.table} ({cols})"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


@dataclass(frozen=True)
class CreateView(Node):
    name: str
    columns: tuple[str, ...]
    query: Select

    def to_sql(self) -> str:
        cols = f"({', '.join(self.columns)})" if self.columns else ""
        return f"CREATE VIEW {self.name}{cols} AS {self.query.to_sql()}"


@dataclass(frozen=True)
class Drop(Node):
    kind: str  # TABLE / VIEW / INDEX
    name: str
    if_exists: bool = False

    def to_sql(self) -> str:
        ie = "IF EXISTS " if self.if_exists else ""
        return f"DROP {self.kind} {ie}{self.name}"


@dataclass(frozen=True)
class Insert(Node):
    table: str
    columns: tuple[str, ...]
    source: ValuesSource | Select

    def to_sql(self) -> str:
        cols = f" ({', '.join(self.columns)})" if self.columns else ""
        return f"INSERT INTO {self.table}{cols} {self.source.to_sql()}"


@dataclass(frozen=True)
class Update(Node):
    table: str
    assignments: tuple[tuple[str, Expr], ...]
    where: Expr | None = None

    def to_sql(self) -> str:
        sets = ", ".join(f"{c} = {e.to_sql()}" for c, e in self.assignments)
        sql = f"UPDATE {self.table} SET {sets}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


@dataclass(frozen=True)
class Delete(Node):
    table: str
    where: Expr | None = None

    def to_sql(self) -> str:
        sql = f"DELETE FROM {self.table}"
        if self.where is not None:
            sql += f" WHERE {self.where.to_sql()}"
        return sql


Statement = (
    Select
    | Insert
    | Update
    | Delete
    | CreateTable
    | CreateIndex
    | CreateView
    | Drop
)


# ---------------------------------------------------------------------------
# Helpers used across generators and oracles
# ---------------------------------------------------------------------------

TRUE = Literal(True)
FALSE = Literal(False)
NULL = Literal(None)


def conjoin(exprs: list[Expr]) -> Expr:
    """AND together a non-empty list of expressions."""
    out = exprs[0]
    for e in exprs[1:]:
        out = Binary("AND", out, e)
    return out


def column_refs(expr: Expr) -> list[ColumnRef]:
    """All column references in *expr*, including those inside subqueries.

    Used by ``GenExpr`` (Algorithm 1, line 2) to compute the referenced
    column set {c_i}.  Subquery bodies *are* entered here because a
    correlated subquery's outer references make the whole expression
    dependent (paper Section 3.2) -- the caller filters to outer-scope
    columns.
    """
    found: list[ColumnRef] = []
    _collect_refs(expr, found)
    return found


def _collect_refs(expr: Expr, out: list[ColumnRef]) -> None:
    if isinstance(expr, ColumnRef):
        out.append(expr)
    for child in expr.children():
        _collect_refs(child, out)
    if isinstance(expr, (Exists, ScalarSubquery, InSubquery, Quantified)):
        _collect_select_refs(expr.query, out)


def _collect_select_refs(select: Select, out: list[ColumnRef]) -> None:
    for item in select.items:
        if item.expr is not None:
            _collect_refs(item.expr, out)
    if select.where is not None:
        _collect_refs(select.where, out)
    for e in select.group_by:
        _collect_refs(e, out)
    if select.having is not None:
        _collect_refs(select.having, out)
    for o in select.order_by:
        _collect_refs(o.expr, out)
    if select.set_op is not None:
        _collect_select_refs(select.set_op[2], out)
