"""Catalog and row storage for MiniDB.

A :class:`Database` holds tables (rows stored as lists of value tuples),
views (stored as their defining query AST), and indexes (stored as their
expression list; MiniDB keeps no physical index structure -- the planner
uses index *metadata* to pick access paths, which is all the paper's
bug classes need, e.g. the ``INDEXED BY`` requirement of Listing 1).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import CatalogError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb.values import SqlType, SqlValue


_TYPE_NAME_MAP = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "SMALLINT": SqlType.INTEGER,
    "INT4": SqlType.INTEGER,
    "INT8": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "TEXT": SqlType.TEXT,
    "VARCHAR": SqlType.TEXT,
    "CHAR": SqlType.TEXT,
    "STRING": SqlType.TEXT,
    "BOOL": SqlType.BOOLEAN,
    "BOOLEAN": SqlType.BOOLEAN,
}


def resolve_type_name(name: str | None) -> SqlType | None:
    """Map a declared column type name to a runtime type (None = dynamic,
    SQLite-style)."""
    if name is None:
        return None
    base = name.upper().split("(")[0].strip()
    if base in _TYPE_NAME_MAP:
        return _TYPE_NAME_MAP[base]
    return None


@dataclass
class Column:
    """A table column."""

    name: str
    declared_type: SqlType | None = None
    not_null: bool = False


@dataclass
class Table:
    """A base table with in-memory row storage."""

    name: str
    columns: list[Column]
    rows: list[tuple[SqlValue, ...]] = field(default_factory=list)

    @property
    def column_names(self) -> list[str]:
        return [c.name for c in self.columns]

    def column_index(self, name: str) -> int:
        lowered = name.lower()
        for i, col in enumerate(self.columns):
            if col.name.lower() == lowered:
                return i
        raise CatalogError(f"no column {name!r} in table {self.name!r}")

    def insert_row(self, row: tuple[SqlValue, ...]) -> None:
        if len(row) != len(self.columns):
            raise ValueError_(
                f"table {self.name} has {len(self.columns)} columns "
                f"but {len(row)} values were supplied"
            )
        for col, value in zip(self.columns, row):
            if col.not_null and value is None:
                raise ValueError_(f"NOT NULL constraint failed: {col.name}")
        self.rows.append(tuple(row))


@dataclass
class Index:
    """Index metadata (logical only)."""

    name: str
    table: str
    exprs: tuple[A.Expr, ...]
    where: A.Expr | None = None
    unique: bool = False


@dataclass
class View:
    """A view: a named query with optional column renaming."""

    name: str
    columns: tuple[str, ...]
    query: A.Select


class Database:
    """The full catalog: tables, views, and indexes."""

    def __init__(self) -> None:
        self.tables: dict[str, Table] = {}
        self.views: dict[str, View] = {}
        self.indexes: dict[str, Index] = {}

    # -- lookup ------------------------------------------------------------

    def _key(self, name: str) -> str:
        return name.lower()

    def has_relation(self, name: str) -> bool:
        k = self._key(name)
        return k in self.tables or k in self.views

    def get_table(self, name: str) -> Table:
        table = self.tables.get(self._key(name))
        if table is None:
            raise CatalogError(f"no such table: {name}")
        return table

    def get_view(self, name: str) -> View | None:
        return self.views.get(self._key(name))

    def get_index(self, name: str) -> Index:
        index = self.indexes.get(self._key(name))
        if index is None:
            raise CatalogError(f"no such index: {name}")
        return index

    def indexes_on(self, table: str) -> list[Index]:
        k = self._key(table)
        return [ix for ix in self.indexes.values() if self._key(ix.table) == k]

    # -- DDL ----------------------------------------------------------------

    def create_table(self, table: Table, if_not_exists: bool = False) -> None:
        k = self._key(table.name)
        if k in self.tables or k in self.views:
            if if_not_exists:
                return
            raise CatalogError(f"relation {table.name!r} already exists")
        self.tables[k] = table

    def create_view(self, view: View) -> None:
        k = self._key(view.name)
        if k in self.tables or k in self.views:
            raise CatalogError(f"relation {view.name!r} already exists")
        self.views[k] = view

    def create_index(self, index: Index) -> None:
        k = self._key(index.name)
        if k in self.indexes:
            raise CatalogError(f"index {index.name!r} already exists")
        self.get_table(index.table)  # must exist
        self.indexes[k] = index

    def drop(self, kind: str, name: str, if_exists: bool = False) -> None:
        k = self._key(name)
        kind = kind.upper()
        if kind == "TABLE":
            if k in self.tables:
                del self.tables[k]
                for ix_name in [
                    n for n, ix in self.indexes.items() if self._key(ix.table) == k
                ]:
                    del self.indexes[ix_name]
                return
        elif kind == "VIEW":
            if k in self.views:
                del self.views[k]
                return
        elif kind == "INDEX":
            if k in self.indexes:
                del self.indexes[k]
                return
        else:
            raise CatalogError(f"cannot drop object of kind {kind!r}")
        if not if_exists:
            raise CatalogError(f"no such {kind.lower()}: {name}")

    # -- utilities -----------------------------------------------------------

    def snapshot(self) -> dict[str, list[tuple[SqlValue, ...]]]:
        """Copy of all table contents (used by tests and the reducer)."""
        return {name: list(t.rows) for name, t in self.tables.items()}

    def clone(self) -> "Database":
        """Deep-ish copy: rows copied, ASTs shared (they are immutable)."""
        db = Database()
        for k, t in self.tables.items():
            db.tables[k] = Table(t.name, list(t.columns), list(t.rows))
        db.views = dict(self.views)
        db.indexes = dict(self.indexes)
        return db
