"""Branch-coverage instrumentation for MiniDB.

The paper's Table 3 reports *branch coverage* of the DBMS under test
(measured with gcov on SQLite).  MiniDB is the DBMS under test here, so we
instrument its own decision points: engine code calls
:meth:`CoverageTracker.hit` with a stable tag at each interesting branch
(one tag per branch direction).  The denominator is the static registry of
all declared tags, so the percentage is comparable across campaigns.

The tracker is owned by the :class:`~repro.minidb.engine.Engine`; campaigns
reset it between runs.
"""

from __future__ import annotations

#: Registry of every branch tag the engine can emit.  Modules register
#: their tags at import time via :func:`register_tags`.
_ALL_TAGS: set[str] = set()


def register_tags(*tags: str) -> None:
    """Declare branch tags (idempotent)."""
    _ALL_TAGS.update(tags)


def all_tags() -> frozenset[str]:
    """The full set of declared branch tags."""
    return frozenset(_ALL_TAGS)


class CoverageTracker:
    """Per-engine set of branch tags hit since the last reset."""

    def __init__(self) -> None:
        self._hits: set[str] = set()
        self.enabled = True

    def hit(self, tag: str) -> None:
        if self.enabled:
            self._hits.add(tag)

    def reset(self) -> None:
        self._hits.clear()

    def begin_capture(self) -> set[str]:
        """Start recording the *full* tag set of the next statement.

        Swaps in an empty hit set and returns the saved one; pass it to
        :meth:`end_capture`.  Needed by the perf layer: a cached
        statement outcome must record every tag the statement exercises
        (not just the tags new to this tracker), because the entry may
        be replayed onto a different engine whose tracker has not seen
        them yet.
        """
        saved = self._hits
        self._hits = set()
        return saved

    def end_capture(self, saved: set[str]) -> frozenset[str]:
        """Finish a :meth:`begin_capture` scope: fold the captured tags
        back into *saved* (restoring cumulative state exactly as if no
        capture had happened) and return them."""
        captured = frozenset(self._hits)
        saved.update(self._hits)
        self._hits = saved
        return captured

    def snapshot(self) -> set[str]:
        """Copy of the *active* hit set (the capture set inside a
        :meth:`begin_capture` scope), for speculative evaluation."""
        return set(self._hits)

    def rollback(self, snap: set[str]) -> None:
        """Drop tags added since *snap* was taken.  Mutates the active
        set in place -- capture scopes hold a reference to it -- and is
        valid because ``hit`` only ever adds."""
        self._hits.intersection_update(snap)

    @property
    def hits(self) -> frozenset[str]:
        return frozenset(self._hits)

    def branch_coverage(self) -> float:
        """Fraction of declared branches exercised (0.0 - 1.0)."""
        total = len(_ALL_TAGS)
        if total == 0:
            return 0.0
        return len(self._hits & _ALL_TAGS) / total
