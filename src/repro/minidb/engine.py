"""The MiniDB engine facade.

:class:`Engine` is the "DBMS under test": it parses SQL text, plans and
executes statements against an in-memory catalog, and exposes the knobs
the reproduction needs -- a dialect :class:`EngineProfile`, a
:class:`~repro.minidb.faults.FaultInjector`, and a
:class:`~repro.minidb.coverage.CoverageTracker`.

The oracles treat the engine as a black box through
:meth:`Engine.execute`, exactly as the paper's oracles treat real DBMSs
through their SQL interfaces.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.errors import SqlError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb.catalog import Column, Database, Index, Table, View, resolve_type_name
from repro.minidb.coverage import CoverageTracker, register_tags
from repro.minidb.evaluator import EvalCtx, evaluate
from repro.minidb.executor import Materialized, execute_select
from repro.minidb.faults import Fault, FaultInjector, expr_features
from repro.minidb.parser import parse_statement
from repro.minidb.planner import plan_select
from repro.minidb.values import (
    SqlType,
    SqlValue,
    TypingMode,
    cast,
    truth,
)

register_tags(
    "stmt.select",
    "stmt.insert.values",
    "stmt.insert.select",
    "stmt.update",
    "stmt.delete",
    "stmt.create_table",
    "stmt.create_index",
    "stmt.create_view",
    "stmt.drop",
)


@dataclass(frozen=True)
class EngineProfile:
    """Dialect knobs distinguishing the five simulated DBMSs.

    Mirrors the implementation details of paper Section 3.3: strict vs
    relaxed typing, ANY/ALL support, and scalar-subquery cardinality
    behaviour (paper Listing 5).
    """

    name: str = "minidb"
    typing_mode: TypingMode = TypingMode.RELAXED
    supports_any_all: bool = True
    #: "error" (MySQL-like) or "first" (SQLite-like LIMIT-1 behaviour).
    scalar_subquery_multi_row: str = "error"
    supports_full_join: bool = True
    #: Reported by pg_typeof()/typeof()-style introspection helpers.
    display_name: str = "MiniDB"


@dataclass
class QueryResult:
    """Result of one statement execution."""

    columns: list[str] = field(default_factory=list)
    rows: list[tuple[SqlValue, ...]] = field(default_factory=list)
    plan_fingerprint: str | None = None
    rows_affected: int = 0


class Engine:
    """An in-process SQL engine instance."""

    def __init__(
        self,
        profile: EngineProfile | None = None,
        faults: list[Fault] | None = None,
    ) -> None:
        self.profile = profile or EngineProfile()
        self.mode = self.profile.typing_mode
        self.database = Database()
        self.coverage = CoverageTracker()
        self.faults = FaultInjector(faults)
        self.statements_executed = 0
        #: Bumped once per state-changing statement (anything that is not
        #: a plain SELECT), before it executes.  Introspection mirror of
        #: the perf layer's invalidation signal: the cached adapters key
        #: results on a *hash chain* over the write history (a plain
        #: counter would alias same-length histories -- see
        #: repro.perf.cache.advance_state_token), but this counter makes
        #: "did DML/DDL invalidate?" observable per engine and is what
        #: the invalidation tests assert against.
        self.state_version = 0
        #: Hit/miss sink for the expression memo (a
        #: :class:`repro.perf.cache.CacheStats`); None disables the memo
        #: and keeps the historical evaluation path bit-for-bit.
        self.eval_stats = None
        #: Column-at-a-time evaluation toggle (see
        #: :func:`repro.minidb.evaluator.evaluate_vector`).  Off by
        #: default so a bare Engine keeps the historical scalar path;
        #: campaigns turn it on and the perf-smoke gate holds the two
        #: paths bit-identical.
        self.vector_eval = False
        self._feature_cache: dict[int, dict] = {}
        self._subplan_cache: dict[int, object] = {}
        self._subquery_result_cache: dict[int, Materialized] = {}
        self._correlated_cache: dict[int, bool] = {}
        #: Per-statement memo of row-independent subtree values (keyed by
        #: (node id, clause, in_subquery) -- clause-conditioned fault
        #: triggers make the same node context-sensitive) and the
        #: row-independence / vector-safety classifications
        #: (see repro.minidb.evaluator).
        self._const_value_cache: dict[tuple[int, str, bool], SqlValue] = {}
        self._const_class_cache: dict[int, bool] = {}
        self._vector_class_cache: dict[int, bool] = {}
        self._extra_fingerprints: set[str] = set()
        #: Cross-statement plan-skeleton memo for FROM-clause planning,
        #: shared across the O/F oracle pair (the folding oracle never
        #: rewrites the FROM clause, so the folded query replays the
        #: original's source planning).  Keyed by (state_version,
        #: skeleton, cte schemas); see repro.minidb.planner.
        self._plan_memo: "OrderedDict[tuple, tuple]" = OrderedDict()

    # -- hooks used by evaluator/executor/planner ---------------------------

    def cov(self, tag: str) -> None:
        self.coverage.hit(tag)

    def node_features(self, expr: A.Expr) -> dict:
        cached = self._feature_cache.get(id(expr))
        if cached is None:
            cached = expr_features(expr, self.database)
            self._feature_cache[id(expr)] = cached
        return cached

    # -- public API ----------------------------------------------------------

    def execute(self, sql: str) -> QueryResult:
        """Parse and execute one SQL statement.

        Raises :class:`~repro.errors.SqlError` subclasses for expected
        errors and Internal/Crash/Hang errors for injected bugs.
        """
        stmt = parse_statement(sql)
        return self.execute_ast(stmt)

    def execute_ast(self, stmt: A.Statement) -> QueryResult:
        """Execute an already-parsed statement."""
        self.statements_executed += 1
        self.faults.reset_fired()
        self._feature_cache.clear()
        self._subplan_cache.clear()
        self._subquery_result_cache.clear()
        self._correlated_cache.clear()
        self._const_value_cache.clear()
        self._const_class_cache.clear()
        self._vector_class_cache.clear()
        self._extra_fingerprints.clear()
        if not isinstance(stmt, A.Select):
            # Conservative: even a statement that then fails bumps the
            # version (failed writes are atomic no-ops, so this only
            # costs cache hits, never correctness).
            self.state_version += 1

        if isinstance(stmt, A.Select):
            return self._execute_select_stmt(stmt)
        if isinstance(stmt, A.Insert):
            return self._execute_insert(stmt)
        if isinstance(stmt, A.Update):
            return self._execute_update(stmt)
        if isinstance(stmt, A.Delete):
            return self._execute_delete(stmt)
        if isinstance(stmt, A.CreateTable):
            return self._execute_create_table(stmt)
        if isinstance(stmt, A.CreateIndex):
            return self._execute_create_index(stmt)
        if isinstance(stmt, A.CreateView):
            return self._execute_create_view(stmt)
        if isinstance(stmt, A.Drop):
            self.cov("stmt.drop")
            self.database.drop(stmt.kind, stmt.name, stmt.if_exists)
            return QueryResult()
        raise SqlError(f"unsupported statement {type(stmt).__name__}")

    # -- SELECT ----------------------------------------------------------------

    def _execute_select_stmt(self, stmt: A.Select) -> QueryResult:
        self.cov("stmt.select")
        plan = plan_select(stmt, self)
        ctx = EvalCtx(
            engine=self,
            statement="SELECT",
            flags={"stmt_has_cte": bool(stmt.ctes)},
        )
        mat = execute_select(plan, ctx)
        fingerprint = plan.fingerprint()
        if self._extra_fingerprints:
            fingerprint += "|" + ",".join(sorted(self._extra_fingerprints))
        return QueryResult(mat.columns, mat.rows, fingerprint)

    def execute_subquery(self, query: A.Select, ctx: EvalCtx) -> Materialized:
        """Execute a nested SELECT in the scope of *ctx* (evaluator hook).

        Uncorrelated subqueries are planned and executed once per
        statement -- the "uncorrelated subquery caching" optimization in
        which bugs like the TiDB mis-correlation of paper Section 4.2 can
        live.
        """
        key = id(query)
        correlated = self.select_is_correlated(query)
        if not correlated:
            cached = self._subquery_result_cache.get(key)
            if cached is not None:
                self.cov("eval.subquery.cached")
                return cached
        plan = self._subplan_cache.get(key)
        if plan is None:
            cte_env = {
                name: tuple(mat.columns) for name, mat in ctx.relations.items()
            }
            plan = plan_select(query, self, cte_env)
            self._subplan_cache[key] = plan
            self._extra_fingerprints.add(plan.fingerprint())
        sub_ctx = EvalCtx(
            ctx.engine,
            ctx.frame,
            ctx.clause,
            ctx.statement,
            ctx.relations,
            True,
            ctx.depth + 1,
            ctx.flags,
        )
        if ctx.depth > 40:
            raise ValueError_("subquery nesting too deep")
        mat = execute_select(plan, sub_ctx)  # type: ignore[arg-type]
        result = Materialized(mat.columns, mat.rows)
        if not correlated:
            self._subquery_result_cache[key] = result
        return result

    def select_is_correlated(self, query: A.Select) -> bool:
        """Whether *query* references columns from an outer scope."""
        key = id(query)
        cached = self._correlated_cache.get(key)
        if cached is None:
            cached = _select_escapes(query, [], self.database)
            self._correlated_cache[key] = cached
        return cached

    # -- DML --------------------------------------------------------------------

    def _execute_insert(self, stmt: A.Insert) -> QueryResult:
        table = self.database.get_table(stmt.table)
        if stmt.columns:
            target_idx = [table.column_index(c) for c in stmt.columns]
        else:
            target_idx = list(range(len(table.columns)))

        if isinstance(stmt.source, A.ValuesSource):
            self.cov("stmt.insert.values")
            ctx = EvalCtx(engine=self, statement="INSERT", clause="values")
            source_rows = [
                tuple(evaluate(e, ctx) for e in row) for row in stmt.source.rows
            ]
            source_rows = self.faults.fire(
                "values_rows",
                {"statement": "INSERT", "clause": "values"},
                source_rows,
            )
        else:
            self.cov("stmt.insert.select")
            plan = plan_select(stmt.source, self)
            ctx = EvalCtx(engine=self, statement="INSERT_SELECT")
            mat = execute_select(plan, ctx)
            features = dict(plan.where_features)
            features["statement"] = "INSERT_SELECT"
            features["clause"] = "insert_source"
            source_rows = self.faults.fire("insert_select_rows", features, mat.rows)

        # Statement-level atomicity (SQLite semantics): coerce and
        # validate every row before storing any, so a constraint
        # violation on row N leaves rows 1..N-1 uninserted too.  The
        # differential layer relies on this: a rejected INSERT must have
        # no side effects on either backend.
        coerced: list[tuple[SqlValue, ...]] = []
        for row in source_rows:
            if len(row) != len(target_idx):
                raise ValueError_(
                    f"{len(target_idx)} columns expected but "
                    f"{len(row)} values were supplied"
                )
            full: list[SqlValue] = [None] * len(table.columns)
            for idx, value in zip(target_idx, row):
                full[idx] = _coerce_for_column(
                    value, table.columns[idx].declared_type, self.mode
                )
            for col, value in zip(table.columns, full):
                if col.not_null and value is None:
                    raise ValueError_(f"NOT NULL constraint failed: {col.name}")
            coerced.append(tuple(full))
        for full_row in coerced:
            table.insert_row(full_row)
        return QueryResult(rows_affected=len(coerced))

    def _execute_update(self, stmt: A.Update) -> QueryResult:
        self.cov("stmt.update")
        table = self.database.get_table(stmt.table)
        plan_schema = _table_schema(table)
        features = expr_features(stmt.where) if stmt.where is not None else {}
        features.update(
            {"statement": "UPDATE", "clause": "where", "access_path": "full_scan"}
        )
        ctx = EvalCtx(engine=self, statement="UPDATE")
        assign_idx = [(table.column_index(c), e) for c, e in stmt.assignments]

        from repro.minidb.evaluator import Frame

        # One frame/ctx pair per clause, reused across rows: nothing
        # retains the frame past each evaluate() call, so mutating
        # ``frame.row`` is safe and avoids per-row dataclass allocation.
        frame = Frame(plan_schema, ())
        where_ctx = ctx.with_frame(frame).with_clause("where")
        set_ctx = ctx.with_frame(frame).with_clause("set")
        fire_where = self.faults.has_site("update_where_result")
        new_rows: list[tuple[SqlValue, ...]] = []
        affected = 0
        for row in table.rows:
            frame.row = row
            if stmt.where is not None:
                verdict = truth(evaluate(stmt.where, where_ctx), self.mode)
                if fire_where:
                    verdict = self.faults.fire(
                        "update_where_result", features, verdict
                    )
            else:
                verdict = True
            if verdict is not True:
                new_rows.append(row)
                continue
            affected += 1
            updated = list(row)
            for idx, expr in assign_idx:
                value = evaluate(expr, set_ctx)
                column = table.columns[idx]
                value = _coerce_for_column(value, column.declared_type, self.mode)
                if column.not_null and value is None:
                    raise ValueError_(f"NOT NULL constraint failed: {column.name}")
                updated[idx] = value
            new_rows.append(tuple(updated))
        table.rows = new_rows
        return QueryResult(rows_affected=affected)

    def _execute_delete(self, stmt: A.Delete) -> QueryResult:
        self.cov("stmt.delete")
        table = self.database.get_table(stmt.table)
        plan_schema = _table_schema(table)
        features = expr_features(stmt.where) if stmt.where is not None else {}
        features.update(
            {"statement": "DELETE", "clause": "where", "access_path": "full_scan"}
        )
        ctx = EvalCtx(engine=self, statement="DELETE")

        from repro.minidb.evaluator import Frame

        frame = Frame(plan_schema, ())
        where_ctx = ctx.with_frame(frame).with_clause("where")
        fire_where = self.faults.has_site("delete_where_result")
        kept: list[tuple[SqlValue, ...]] = []
        deleted = 0
        for row in table.rows:
            if stmt.where is None:
                deleted += 1
                continue
            frame.row = row
            verdict = truth(evaluate(stmt.where, where_ctx), self.mode)
            if fire_where:
                verdict = self.faults.fire("delete_where_result", features, verdict)
            if verdict is True:
                deleted += 1
            else:
                kept.append(row)
        table.rows = kept
        return QueryResult(rows_affected=deleted)

    # -- DDL ---------------------------------------------------------------------

    def _execute_create_table(self, stmt: A.CreateTable) -> QueryResult:
        self.cov("stmt.create_table")
        seen: set[str] = set()
        columns: list[Column] = []
        for cdef in stmt.columns:
            key = cdef.name.lower()
            if key in seen:
                raise SqlError(f"duplicate column name: {cdef.name}")
            seen.add(key)
            columns.append(
                Column(
                    cdef.name,
                    resolve_type_name(cdef.type_name),
                    cdef.not_null or cdef.primary_key,
                )
            )
        self.database.create_table(
            Table(stmt.name, columns), if_not_exists=stmt.if_not_exists
        )
        return QueryResult()

    def _execute_create_index(self, stmt: A.CreateIndex) -> QueryResult:
        self.cov("stmt.create_index")
        table = self.database.get_table(stmt.table)
        valid = {c.name.lower() for c in table.columns}
        for expr in stmt.exprs:
            for ref in A.column_refs(expr):
                if ref.column.lower() not in valid:
                    raise SqlError(
                        f"index expression references unknown column {ref.column}"
                    )
        self.database.create_index(
            Index(stmt.name, stmt.table, stmt.exprs, stmt.where, stmt.unique)
        )
        return QueryResult()

    def _execute_create_view(self, stmt: A.CreateView) -> QueryResult:
        self.cov("stmt.create_view")
        plan = plan_select(stmt.query, self)  # validates the query
        if stmt.columns and len(stmt.columns) != len(plan.items):
            raise SqlError("view column list does not match SELECT width")
        self.database.create_view(View(stmt.name, stmt.columns, stmt.query))
        return QueryResult()


# ---------------------------------------------------------------------------
# Helpers
# ---------------------------------------------------------------------------


def _table_schema(table: Table):
    from repro.minidb.plan import Schema

    return Schema(tuple((table.name, c.name) for c in table.columns))


def _coerce_for_column(
    value: SqlValue, declared: SqlType | None, mode: TypingMode
) -> SqlValue:
    """Apply column type affinity on INSERT/UPDATE (SQLite-flavoured in
    relaxed mode; strict mode raises on lossy mixes)."""
    if value is None or declared is None:
        return value
    if declared is SqlType.INTEGER:
        if isinstance(value, bool):
            return int(value)
        if isinstance(value, int):
            return value
        if isinstance(value, float):
            return int(value) if value.is_integer() else value
        return cast(value, SqlType.INTEGER, mode) if mode is TypingMode.STRICT else value
    if declared is SqlType.REAL:
        if isinstance(value, bool):
            return float(value)
        if isinstance(value, (int, float)):
            return float(value)
        return cast(value, SqlType.REAL, mode) if mode is TypingMode.STRICT else value
    if declared is SqlType.TEXT:
        if isinstance(value, str):
            return value
        return cast(value, SqlType.TEXT, mode)
    if declared is SqlType.BOOLEAN:
        if isinstance(value, bool):
            return value
        if mode is TypingMode.STRICT:
            raise ValueError_("BOOLEAN column requires a boolean value")
        return truth(value, mode)
    return value


def _select_escapes(
    query: A.Select,
    outer_scopes: list[tuple[set[str], set[str], bool]],
    database: Database,
) -> bool:
    """True if *query* references names not resolvable within itself or
    the given enclosing scopes -- i.e. the select is correlated (relative
    to whatever surrounds the outermost scope in *outer_scopes*)."""
    bindings, columns, any_columns = _own_scope(query, database)
    scopes = [(bindings, columns, any_columns)] + outer_scopes

    def resolvable(ref: A.ColumnRef) -> bool:
        for b, cols, any_cols in scopes:
            if ref.table is not None:
                if ref.table.lower() in b:
                    return True
            else:
                if any_cols or ref.column.lower() in cols:
                    return True
        return False

    def check_expr(expr: A.Expr) -> bool:
        """True if some reference escapes all scopes."""
        for node in A.walk(expr):
            if isinstance(node, A.ColumnRef) and not resolvable(node):
                return True
        for node in A.walk(expr):
            if isinstance(node, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)):
                if _select_escapes(node.query, scopes, database):
                    return True
        return False

    for item in query.items:
        if item.expr is not None and check_expr(item.expr):
            return True
    if query.where is not None and check_expr(query.where):
        return True
    for e in query.group_by:
        if check_expr(e):
            return True
    if query.having is not None and check_expr(query.having):
        return True
    for o in query.order_by:
        if check_expr(o.expr):
            return True
    if query.set_op is not None and _select_escapes(query.set_op[2], outer_scopes, database):
        return True
    on_exprs: list[A.Expr] = []
    _collect_on_exprs(query.from_clause, on_exprs)
    for e in on_exprs:
        if check_expr(e):
            return True
    return False


def _collect_on_exprs(ref: A.TableRef | None, out: list[A.Expr]) -> None:
    if isinstance(ref, A.Join):
        if ref.on is not None:
            out.append(ref.on)
        _collect_on_exprs(ref.left, out)
        _collect_on_exprs(ref.right, out)


def _own_scope(
    query: A.Select, database: Database
) -> tuple[set[str], set[str], bool]:
    """Binding names, column names, and an "unknown columns" flag for the
    FROM clause (plus CTEs) of *query*."""
    bindings: set[str] = set()
    columns: set[str] = set()
    any_columns = False

    def visit(ref: A.TableRef | None) -> None:
        nonlocal any_columns
        if ref is None:
            return
        if isinstance(ref, A.NamedTable):
            bindings.add(ref.binding.lower())
            key = ref.name.lower()
            if key in database.tables:
                columns.update(c.name.lower() for c in database.tables[key].columns)
            elif key in database.views:
                view = database.views[key]
                if view.columns:
                    columns.update(c.lower() for c in view.columns)
                else:
                    for item in view.query.items:
                        _item_columns(item)
            else:
                any_columns = True  # unknown relation (e.g. CTE): be permissive
        elif isinstance(ref, A.DerivedTable):
            bindings.add(ref.alias.lower())
            if ref.column_aliases:
                columns.update(c.lower() for c in ref.column_aliases)
            else:
                for item in ref.query.items:
                    _item_columns(item)
        elif isinstance(ref, A.ValuesTable):
            bindings.add(ref.alias.lower())
            columns.update(c.lower() for c in ref.column_aliases)
        elif isinstance(ref, A.Join):
            visit(ref.left)
            visit(ref.right)

    def _item_columns(item: A.SelectItem) -> None:
        nonlocal any_columns
        if item.expr is None:
            any_columns = True
        elif item.alias:
            columns.add(item.alias.lower())
        elif isinstance(item.expr, A.ColumnRef):
            columns.add(item.expr.column.lower())

    visit(query.from_clause)
    for cte in query.ctes:
        bindings.add(cte.name.lower())
        columns.update(c.lower() for c in cte.columns)
    return bindings, columns, any_columns
