"""Expression evaluation for MiniDB.

Evaluation is deterministic for a fixed database state -- the property
CODDTest's metamorphic relation depends on (paper Section 3).  The
evaluator resolves column references against a chain of :class:`Frame`
objects, which is how correlated subqueries see outer-query rows
(paper Listing 2): each nested SELECT execution pushes a frame whose
parent is the outer row's frame.

Fault hooks fire at the expression sites documented in
:mod:`repro.minidb.faults`; coverage probes mark each evaluated construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError, UnsupportedError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb import values as V
from repro.minidb.coverage import register_tags
from repro.minidb.functions import AGGREGATE_NAMES, VARIADIC_MINMAX, call_scalar
from repro.minidb.plan import Schema
from repro.minidb.values import SqlType, SqlValue, TypingMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.minidb.engine import Engine

register_tags(
    "eval.literal",
    "eval.column",
    "eval.column.outer",
    "eval.unary.not",
    "eval.unary.neg",
    "eval.binary.logic",
    "eval.binary.cmp",
    "eval.binary.arith",
    "eval.binary.concat",
    "eval.binary.like",
    "eval.binary.is",
    "eval.is_null",
    "eval.between",
    "eval.in_list",
    "eval.in_subquery",
    "eval.case.simple",
    "eval.case.searched",
    "eval.case.else",
    "eval.cast",
    "eval.func.scalar",
    "eval.func.aggregate",
    "eval.func.aggregate.distinct",
    "eval.exists",
    "eval.scalar_subquery",
    "eval.scalar_subquery.empty",
    "eval.quantified.any",
    "eval.quantified.all",
    "eval.subquery.cached",
    "eval.subquery.correlated",
)


@dataclass
class Frame:
    """One level of the row-scope chain."""

    schema: Schema
    row: tuple[SqlValue, ...]
    parent: "Frame | None" = None
    #: When set, aggregate functions range over these rows (one group).
    group_rows: list[tuple[SqlValue, ...]] | None = None


@dataclass
class EvalCtx:
    """Ambient evaluation context.

    ``clause`` and ``statement`` describe *where* the expression sits --
    the context-sensitivity lever for fault triggers (and the reason the
    same predicate can behave differently across clauses, which is what
    NoREC/DQE exploit and what the paper Section 4.2 discusses).
    """

    engine: "Engine"
    frame: Frame | None = None
    clause: str = "where"
    statement: str = "SELECT"
    relations: dict[str, Any] = field(default_factory=dict)
    in_subquery: bool = False
    depth: int = 0
    #: Statement-level facts (e.g. ``stmt_has_cte``) merged into every
    #: fault-site feature dict.
    flags: dict[str, Any] = field(default_factory=dict)

    def with_frame(self, frame: Frame | None) -> "EvalCtx":
        return replace(self, frame=frame)

    def with_clause(self, clause: str) -> "EvalCtx":
        return replace(self, clause=clause)


def _site_features(ctx: EvalCtx, expr: A.Expr, extra: dict | None = None) -> dict:
    features = dict(ctx.engine.node_features(expr))
    features.update(ctx.flags)
    features["clause"] = ctx.clause
    features["statement"] = ctx.statement
    features["in_subquery"] = ctx.in_subquery
    if extra:
        features.update(extra)
    return features


def evaluate(expr: A.Expr, ctx: EvalCtx) -> SqlValue:
    """Evaluate *expr* to a SQL value under *ctx*.

    With an evaluation cache attached to the engine
    (``engine.eval_stats`` non-None), **row-independent** subtrees --
    no column references, no subqueries, no aggregates -- are evaluated
    once per statement and memoized by node identity (the memo is
    cleared per statement, so ``id()`` reuse across statements is
    harmless).  Replays are observationally identical to re-evaluation:
    values are deterministic, coverage tags are a set (idempotent), and
    fault triggers are pure functions of per-node features, so the
    first evaluation already fired and recorded everything later rows
    would.
    """
    engine = ctx.engine
    if engine.eval_stats is not None:
        key = id(expr)
        memo = engine._const_value_cache
        if key in memo:
            engine.eval_stats.eval_hits += 1
            return memo[key]
        if _row_independent(expr, engine):
            engine.eval_stats.eval_misses += 1
            value = _evaluate(expr, ctx)
            memo[key] = value
            return value
    return _evaluate(expr, ctx)


def _row_independent(expr: A.Expr, engine: "Engine") -> bool:
    """Whether *expr*'s value is the same for every row and group of the
    current statement.  Purely syntactic and conservative: subqueries
    are opaque (the engine's own per-statement subquery result cache
    already covers the uncorrelated ones) and aggregate-named functions
    are excluded because their dispatch depends on grouping context.

    Classified post-order with the whole subtree memoized in one pass,
    so the per-statement cost is linear in the expression size rather
    than quadratic in walk-per-node.
    """
    cache = engine._const_class_cache
    key = id(expr)
    cached = cache.get(key)
    if cached is None:
        cached = _classify_row_independent(expr, cache)
        cache[key] = cached
    return cached


def _classify_row_independent(expr: A.Expr, cache: dict[int, bool]) -> bool:
    if isinstance(expr, A.ColumnRef):
        return False
    if isinstance(
        expr, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)
    ):
        return False
    if isinstance(expr, A.FuncCall) and expr.name.upper() in AGGREGATE_NAMES:
        return False
    result = True
    for child in expr.children():
        child_key = id(child)
        child_ok = cache.get(child_key)
        if child_ok is None:
            child_ok = _classify_row_independent(child, cache)
            cache[child_key] = child_ok
        result = result and child_ok
    return result


def _evaluate(expr: A.Expr, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if ctx.depth > 200:
        raise ValueError_("expression nesting too deep")

    if isinstance(expr, A.Literal):
        engine.cov("eval.literal")
        return expr.value

    if isinstance(expr, A.ColumnRef):
        return _resolve_column(expr, ctx)

    if isinstance(expr, A.Unary):
        if expr.op.upper() == "NOT":
            engine.cov("eval.unary.not")
            inner = V.truth(evaluate(expr.operand, ctx), mode)
            return V.not3(inner)
        engine.cov("eval.unary.neg")
        return V.negate(evaluate(expr.operand, ctx), mode)

    if isinstance(expr, A.Binary):
        return _eval_binary(expr, ctx)

    if isinstance(expr, A.IsNull):
        engine.cov("eval.is_null")
        value = evaluate(expr.operand, ctx)
        result: SqlValue = (value is not None) if expr.negated else (value is None)
        return result

    if isinstance(expr, A.Between):
        engine.cov("eval.between")
        operand = evaluate(expr.operand, ctx)
        low = evaluate(expr.low, ctx)
        high = evaluate(expr.high, ctx)
        lo_cmp = V.compare(operand, low, mode)
        hi_cmp = V.compare(operand, high, mode)
        ge_low: V.Ternary = None if lo_cmp is None else lo_cmp >= 0
        le_high: V.Ternary = None if hi_cmp is None else hi_cmp <= 0
        result = V.and3(ge_low, le_high)
        if expr.negated:
            result = V.not3(result)
        return engine.faults.fire(
            "between_result", _site_features(ctx, expr, {"negated": expr.negated}), result
        )

    if isinstance(expr, A.InList):
        engine.cov("eval.in_list")
        operand = evaluate(expr.operand, ctx)
        items = [evaluate(item, ctx) for item in expr.items]
        result = _in_semantics(operand, items, mode)
        if expr.negated:
            result = V.not3(result)
        return engine.faults.fire(
            "in_list_result",
            _site_features(ctx, expr, {"negated": expr.negated, "rhs": "list"}),
            result,
        )

    if isinstance(expr, A.InSubquery):
        engine.cov("eval.in_subquery")
        operand = evaluate(expr.operand, ctx)
        rows = _subquery_rows(expr.query, ctx, require_columns=1)
        items = [row[0] for row in rows]
        result = _in_semantics(operand, items, mode)
        if expr.negated:
            result = V.not3(result)
        return engine.faults.fire(
            "in_subquery_result",
            _site_features(ctx, expr, {"negated": expr.negated, "rhs": "subquery"}),
            result,
        )

    if isinstance(expr, A.Case):
        return _eval_case(expr, ctx)

    if isinstance(expr, A.Cast):
        engine.cov("eval.cast")
        target = _cast_target(expr.type_name)
        return V.cast(evaluate(expr.operand, ctx), target, mode)

    if isinstance(expr, A.FuncCall):
        return _eval_func(expr, ctx)

    if isinstance(expr, A.Exists):
        engine.cov("eval.exists")
        rows = _subquery_rows(expr.query, ctx, require_columns=None)
        result = len(rows) > 0
        if expr.negated:
            result = not result
        return engine.faults.fire(
            "exists_result",
            _site_features(ctx, expr, {"negated": expr.negated}),
            result,
        )

    if isinstance(expr, A.ScalarSubquery):
        engine.cov("eval.scalar_subquery")
        rows = _subquery_rows(expr.query, ctx, require_columns=None)
        if rows and len(rows[0]) != 1:
            raise ValueError_("operand should contain 1 column")
        if not rows:
            engine.cov("eval.scalar_subquery.empty")
            value: SqlValue = None
        else:
            if len(rows) > 1:
                if engine.profile.scalar_subquery_multi_row == "error":
                    raise ValueError_("subquery returns more than 1 row")
            value = rows[0][0]
        correlated = engine.select_is_correlated(expr.query)
        return engine.faults.fire(
            "scalar_subquery",
            _site_features(ctx, expr, {"correlated": correlated}),
            value,
        )

    if isinstance(expr, A.Quantified):
        return _eval_quantified(expr, ctx)

    raise ValueError_(f"cannot evaluate expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Node-specific helpers
# ---------------------------------------------------------------------------


def _resolve_column(ref: A.ColumnRef, ctx: EvalCtx) -> SqlValue:
    frame = ctx.frame
    outer = False
    while frame is not None:
        matches = frame.schema.matches(ref.table, ref.column)
        if len(matches) == 1:
            ctx.engine.cov("eval.column.outer" if outer else "eval.column")
            return frame.row[matches[0]]
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column name: {ref.to_sql()}")
        frame = frame.parent
        outer = True
    raise CatalogError(f"no such column: {ref.to_sql()}")


_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%"}


def _eval_binary(expr: A.Binary, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    op = expr.op

    if op == "AND":
        engine.cov("eval.binary.logic")
        left = V.truth(evaluate(expr.left, ctx), mode)
        if left is False:
            return False
        right = V.truth(evaluate(expr.right, ctx), mode)
        return V.and3(left, right)
    if op == "OR":
        engine.cov("eval.binary.logic")
        left = V.truth(evaluate(expr.left, ctx), mode)
        if left is True:
            return True
        right = V.truth(evaluate(expr.right, ctx), mode)
        return V.or3(left, right)

    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)

    if op in _CMP_OPS:
        engine.cov("eval.binary.cmp")
        c = V.compare(left, right, mode)
        if c is None:
            return None
        if op == "=":
            return c == 0
        if op == "!=":
            return c != 0
        if op == "<":
            return c < 0
        if op == "<=":
            return c <= 0
        if op == ">":
            return c > 0
        return c >= 0
    if op in _ARITH_OPS:
        engine.cov("eval.binary.arith")
        return V.arith(op, left, right, mode)
    if op == "||":
        engine.cov("eval.binary.concat")
        return V.concat(left, right)
    if op in ("LIKE", "NOT LIKE"):
        engine.cov("eval.binary.like")
        result = V.like(left, right, mode)
        if op == "NOT LIKE":
            result = V.not3(result)
        return engine.faults.fire(
            "like_result", _site_features(ctx, expr, {"negated": op != "LIKE"}), result
        )
    if op in ("IS", "IS NOT"):
        engine.cov("eval.binary.is")
        same = V.distinct_eq(left, right)
        return same if op == "IS" else not same
    raise ValueError_(f"unknown binary operator {op!r}")


def _in_semantics(
    operand: SqlValue, items: list[SqlValue], mode: TypingMode
) -> V.Ternary:
    """Three-valued IN: TRUE if any match, NULL if no match but NULLs
    present (either side), FALSE otherwise.  Over the *empty* set the
    result is FALSE even for a NULL operand (there is nothing to
    compare) -- the semantics the folded ``IN ()`` replacement relies on.
    """
    if not items:
        return False
    saw_null = operand is None
    for item in items:
        eq = V.eq3(operand, item, mode)
        if eq is True:
            return True
        if eq is None:
            saw_null = True
    return None if saw_null else False


def _eval_case(expr: A.Case, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if expr.operand is not None:
        engine.cov("eval.case.simple")
        subject = evaluate(expr.operand, ctx)
        for arm in expr.whens:
            if V.eq3(subject, evaluate(arm.condition, ctx), mode) is True:
                value = evaluate(arm.result, ctx)
                return engine.faults.fire(
                    "case_result", _site_features(ctx, expr, {"form": "simple"}), value
                )
    else:
        engine.cov("eval.case.searched")
        for arm in expr.whens:
            if V.truth(evaluate(arm.condition, ctx), mode) is True:
                value = evaluate(arm.result, ctx)
                return engine.faults.fire(
                    "case_result",
                    _site_features(ctx, expr, {"form": "searched"}),
                    value,
                )
    engine.cov("eval.case.else")
    value = evaluate(expr.else_, ctx) if expr.else_ is not None else None
    return engine.faults.fire(
        "case_result", _site_features(ctx, expr, {"form": "else"}), value
    )


_CAST_TARGETS = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "INT4": SqlType.INTEGER,
    "INT8": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "TEXT": SqlType.TEXT,
    "VARCHAR": SqlType.TEXT,
    "STRING": SqlType.TEXT,
    "BOOL": SqlType.BOOLEAN,
    "BOOLEAN": SqlType.BOOLEAN,
}


def _cast_target(name: str) -> SqlType:
    target = _CAST_TARGETS.get(name.upper())
    if target is None:
        raise ValueError_(f"unknown CAST target type {name!r}")
    return target


def _eval_func(expr: A.FuncCall, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    name = expr.name.upper()
    frame = ctx.frame

    if name in AGGREGATE_NAMES:
        group_rows = frame.group_rows if frame is not None else None
        if group_rows is not None:
            return _eval_aggregate(expr, ctx, group_rows)
        if name in VARIADIC_MINMAX and (len(expr.args) >= 2):
            engine.cov("eval.func.scalar")
            args = [evaluate(a, ctx) for a in expr.args]
            return VARIADIC_MINMAX[name](args, engine.mode)
        raise ValueError_(f"misuse of aggregate function {name}()")

    engine.cov("eval.func.scalar")
    args = [evaluate(a, ctx) for a in expr.args]
    return call_scalar(name, args, engine.mode)


def _eval_aggregate(
    expr: A.FuncCall, ctx: EvalCtx, group_rows: list[tuple[SqlValue, ...]]
) -> SqlValue:
    engine = ctx.engine
    name = expr.name.upper()
    engine.cov("eval.func.aggregate")
    assert ctx.frame is not None

    if expr.star:
        if name != "COUNT":
            raise ValueError_(f"{name}(*) is not valid")
        value: SqlValue = len(group_rows)
        return _agg_finish(expr, ctx, value, sorted_input=True)

    if len(expr.args) != 1:
        raise ValueError_(f"aggregate {name}() takes exactly one argument")
    arg = expr.args[0]

    collected: list[SqlValue] = []
    for row in group_rows:
        inner = Frame(ctx.frame.schema, row, ctx.frame.parent, group_rows=None)
        collected.append(evaluate(arg, ctx.with_frame(inner)))

    non_null = [v for v in collected if v is not None]
    if expr.distinct:
        engine.cov("eval.func.aggregate.distinct")
        seen: set = set()
        uniq: list[SqlValue] = []
        for v in non_null:
            key = V.sort_key(v)
            if key not in seen:
                seen.add(key)
                uniq.append(v)
        non_null = uniq

    sorted_input = all(
        V.sort_key(a) <= V.sort_key(b) for a, b in zip(non_null, non_null[1:])
    )

    if name == "COUNT":
        return _agg_finish(expr, ctx, len(non_null), sorted_input)
    if name == "SUM" or name == "TOTAL":
        if not non_null:
            return _agg_finish(expr, ctx, 0.0 if name == "TOTAL" else None, True)
        total: int | float = 0
        for v in non_null:
            total = V.arith("+", total, v, engine.mode)  # type: ignore[assignment]
        if name == "TOTAL":
            total = float(total)
        return _agg_finish(expr, ctx, total, sorted_input)
    if name == "AVG":
        if not non_null:
            return _agg_finish(expr, ctx, None, True)
        total = 0.0
        for v in non_null:
            total = V.arith("+", total, v, engine.mode)  # type: ignore[assignment]
        return _agg_finish(expr, ctx, float(total) / len(non_null), sorted_input)
    if name in ("MIN", "MAX"):
        if not non_null:
            return _agg_finish(expr, ctx, None, True)
        best = non_null[0]
        for v in non_null[1:]:
            c = V.compare(v, best, engine.mode)
            assert c is not None
            if (c < 0) if name == "MIN" else (c > 0):
                best = v
        return _agg_finish(expr, ctx, best, sorted_input)
    raise ValueError_(f"unknown aggregate {name}()")


def _agg_finish(
    expr: A.FuncCall, ctx: EvalCtx, value: SqlValue, sorted_input: bool
) -> SqlValue:
    arg_is_compound = bool(expr.args) and not isinstance(expr.args[0], A.ColumnRef)
    return ctx.engine.faults.fire(
        "agg_finish",
        _site_features(
            ctx,
            expr,
            {
                "func": expr.name.upper(),
                "distinct": expr.distinct,
                "arg_is_compound": arg_is_compound,
                "input_sorted": sorted_input,
            },
        ),
        value,
    )


def _eval_quantified(expr: A.Quantified, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if not engine.profile.supports_any_all:
        raise UnsupportedError("ANY/ALL operators are not supported")
    quant = expr.quantifier.upper()
    engine.cov("eval.quantified.any" if quant in ("ANY", "SOME") else "eval.quantified.all")
    operand = evaluate(expr.operand, ctx)
    rows = _subquery_rows(expr.query, ctx, require_columns=1)
    results: list[V.Ternary] = []
    for row in rows:
        c = V.compare(operand, row[0], mode)
        if c is None:
            results.append(None)
            continue
        op = expr.op
        if op == "=":
            results.append(c == 0)
        elif op == "!=":
            results.append(c != 0)
        elif op == "<":
            results.append(c < 0)
        elif op == "<=":
            results.append(c <= 0)
        elif op == ">":
            results.append(c > 0)
        elif op == ">=":
            results.append(c >= 0)
        else:
            raise ValueError_(f"unsupported quantified operator {op!r}")
    if quant in ("ANY", "SOME"):
        if any(r is True for r in results):
            value: V.Ternary = True
        elif any(r is None for r in results):
            value = None
        else:
            value = False
    else:  # ALL
        if any(r is False for r in results):
            value = False
        elif any(r is None for r in results):
            value = None
        else:
            value = True
    return engine.faults.fire(
        "quantified_result",
        _site_features(ctx, expr, {"quantifier": quant}),
        value,
    )


def _subquery_rows(
    query: A.Select, ctx: EvalCtx, require_columns: int | None
) -> list[tuple[SqlValue, ...]]:
    """Execute a subquery in the current scope and return its rows."""
    engine = ctx.engine
    correlated = engine.select_is_correlated(query)
    if correlated:
        engine.cov("eval.subquery.correlated")
    result = engine.execute_subquery(query, ctx)
    if require_columns is not None and result.rows and len(result.rows[0]) != require_columns:
        raise ValueError_(f"operand should contain {require_columns} column(s)")
    return result.rows
