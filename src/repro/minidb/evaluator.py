"""Expression evaluation for MiniDB.

Evaluation is deterministic for a fixed database state -- the property
CODDTest's metamorphic relation depends on (paper Section 3).  The
evaluator resolves column references against a chain of :class:`Frame`
objects, which is how correlated subqueries see outer-query rows
(paper Listing 2): each nested SELECT execution pushes a frame whose
parent is the outer row's frame.

Fault hooks fire at the expression sites documented in
:mod:`repro.minidb.faults`; coverage probes mark each evaluated construct.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Any

from repro.errors import CatalogError, ReproError, TypeError_, UnsupportedError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb import values as V
from repro.minidb.coverage import register_tags
from repro.minidb.functions import AGGREGATE_NAMES, VARIADIC_MINMAX, call_scalar
from repro.minidb.plan import Schema
from repro.minidb.values import SqlType, SqlValue, TypingMode

if TYPE_CHECKING:  # pragma: no cover - typing only
    from repro.minidb.engine import Engine

register_tags(
    "eval.literal",
    "eval.column",
    "eval.column.outer",
    "eval.unary.not",
    "eval.unary.neg",
    "eval.binary.logic",
    "eval.binary.cmp",
    "eval.binary.arith",
    "eval.binary.concat",
    "eval.binary.like",
    "eval.binary.is",
    "eval.is_null",
    "eval.between",
    "eval.in_list",
    "eval.in_subquery",
    "eval.case.simple",
    "eval.case.searched",
    "eval.case.else",
    "eval.cast",
    "eval.func.scalar",
    "eval.func.aggregate",
    "eval.func.aggregate.distinct",
    "eval.exists",
    "eval.scalar_subquery",
    "eval.scalar_subquery.empty",
    "eval.quantified.any",
    "eval.quantified.all",
    "eval.subquery.cached",
    "eval.subquery.correlated",
)


@dataclass
class Frame:
    """One level of the row-scope chain."""

    schema: Schema
    row: tuple[SqlValue, ...]
    parent: "Frame | None" = None
    #: When set, aggregate functions range over these rows (one group).
    group_rows: list[tuple[SqlValue, ...]] | None = None


@dataclass
class EvalCtx:
    """Ambient evaluation context.

    ``clause`` and ``statement`` describe *where* the expression sits --
    the context-sensitivity lever for fault triggers (and the reason the
    same predicate can behave differently across clauses, which is what
    NoREC/DQE exploit and what the paper Section 4.2 discusses).
    """

    engine: "Engine"
    frame: Frame | None = None
    clause: str = "where"
    statement: str = "SELECT"
    relations: dict[str, Any] = field(default_factory=dict)
    in_subquery: bool = False
    depth: int = 0
    #: Statement-level facts (e.g. ``stmt_has_cte``) merged into every
    #: fault-site feature dict.
    flags: dict[str, Any] = field(default_factory=dict)

    # Direct positional construction: dataclasses.replace() pays for a
    # fields() walk plus a kwargs dict on every call, and these two run
    # on the executor's per-batch paths.

    def with_frame(self, frame: Frame | None) -> "EvalCtx":
        return EvalCtx(
            self.engine,
            frame,
            self.clause,
            self.statement,
            self.relations,
            self.in_subquery,
            self.depth,
            self.flags,
        )

    def with_clause(self, clause: str) -> "EvalCtx":
        return EvalCtx(
            self.engine,
            self.frame,
            clause,
            self.statement,
            self.relations,
            self.in_subquery,
            self.depth,
            self.flags,
        )


def _site_features(ctx: EvalCtx, expr: A.Expr, extra: dict | None = None) -> dict:
    features = dict(ctx.engine.node_features(expr))
    features.update(ctx.flags)
    features["clause"] = ctx.clause
    features["statement"] = ctx.statement
    features["in_subquery"] = ctx.in_subquery
    if extra:
        features.update(extra)
    return features


def evaluate(expr: A.Expr, ctx: EvalCtx) -> SqlValue:
    """Evaluate *expr* to a SQL value under *ctx*.

    With an evaluation cache attached to the engine
    (``engine.eval_stats`` non-None), **row-independent** subtrees --
    no column references, no subqueries, no aggregates -- are evaluated
    once per statement and memoized by node identity (the memo is
    cleared per statement, so ``id()`` reuse across statements is
    harmless).  Replays are observationally identical to re-evaluation:
    values are deterministic, coverage tags are a set (idempotent), and
    fault triggers are pure functions of per-node features, so the
    first evaluation already fired and recorded everything later rows
    would.

    The memo key includes the clause and subquery contexts, not just the
    node identity: fault triggers consume ``clause``/``in_subquery``
    site features, so the same AST node reused across clauses (the
    folding oracle does exactly this) may legitimately evaluate to
    different values under clause-conditioned faults.
    """
    engine = ctx.engine
    if engine.eval_stats is not None:
        key = (id(expr), ctx.clause, ctx.in_subquery)
        memo = engine._const_value_cache
        if key in memo:
            engine.eval_stats.eval_hits += 1
            return memo[key]
        if _row_independent(expr, engine):
            engine.eval_stats.eval_misses += 1
            value = _evaluate(expr, ctx)
            memo[key] = value
            return value
    return _evaluate(expr, ctx)


def _row_independent(expr: A.Expr, engine: "Engine") -> bool:
    """Whether *expr*'s value is the same for every row and group of the
    current statement.  Purely syntactic and conservative: subqueries
    are opaque (the engine's own per-statement subquery result cache
    already covers the uncorrelated ones) and aggregate-named functions
    are excluded because their dispatch depends on grouping context.

    Classified post-order with the whole subtree memoized in one pass,
    so the per-statement cost is linear in the expression size rather
    than quadratic in walk-per-node.
    """
    cache = engine._const_class_cache
    key = id(expr)
    cached = cache.get(key)
    if cached is None:
        cached = _classify_row_independent(expr, cache)
        cache[key] = cached
    return cached


def _classify_row_independent(expr: A.Expr, cache: dict[int, bool]) -> bool:
    if isinstance(expr, A.ColumnRef):
        return False
    if isinstance(
        expr, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)
    ):
        return False
    if isinstance(expr, A.FuncCall) and expr.name.upper() in AGGREGATE_NAMES:
        return False
    result = True
    for child in expr.children():
        child_key = id(child)
        child_ok = cache.get(child_key)
        if child_ok is None:
            child_ok = _classify_row_independent(child, cache)
            cache[child_key] = child_ok
        result = result and child_ok
    return result


def _evaluate(expr: A.Expr, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if ctx.depth > 200:
        raise ValueError_("expression nesting too deep")

    if isinstance(expr, A.Literal):
        engine.cov("eval.literal")
        return expr.value

    if isinstance(expr, A.ColumnRef):
        return _resolve_column(expr, ctx)

    if isinstance(expr, A.Unary):
        if expr.op.upper() == "NOT":
            engine.cov("eval.unary.not")
            inner = V.truth(evaluate(expr.operand, ctx), mode)
            return V.not3(inner)
        engine.cov("eval.unary.neg")
        return V.negate(evaluate(expr.operand, ctx), mode)

    if isinstance(expr, A.Binary):
        return _eval_binary(expr, ctx)

    if isinstance(expr, A.IsNull):
        engine.cov("eval.is_null")
        value = evaluate(expr.operand, ctx)
        result: SqlValue = (value is not None) if expr.negated else (value is None)
        return result

    if isinstance(expr, A.Between):
        engine.cov("eval.between")
        operand = evaluate(expr.operand, ctx)
        low = evaluate(expr.low, ctx)
        high = evaluate(expr.high, ctx)
        lo_cmp = V.compare(operand, low, mode)
        hi_cmp = V.compare(operand, high, mode)
        ge_low: V.Ternary = None if lo_cmp is None else lo_cmp >= 0
        le_high: V.Ternary = None if hi_cmp is None else hi_cmp <= 0
        result = V.and3(ge_low, le_high)
        if expr.negated:
            result = V.not3(result)
        if engine.faults.has_site("between_result"):
            result = engine.faults.fire(
                "between_result",
                _site_features(ctx, expr, {"negated": expr.negated}),
                result,
            )
        return result

    if isinstance(expr, A.InList):
        engine.cov("eval.in_list")
        operand = evaluate(expr.operand, ctx)
        items = [evaluate(item, ctx) for item in expr.items]
        result = _in_semantics(operand, items, mode)
        if expr.negated:
            result = V.not3(result)
        if engine.faults.has_site("in_list_result"):
            result = engine.faults.fire(
                "in_list_result",
                _site_features(ctx, expr, {"negated": expr.negated, "rhs": "list"}),
                result,
            )
        return result

    if isinstance(expr, A.InSubquery):
        engine.cov("eval.in_subquery")
        operand = evaluate(expr.operand, ctx)
        rows = _subquery_rows(expr.query, ctx, require_columns=1)
        items = [row[0] for row in rows]
        result = _in_semantics(operand, items, mode)
        if expr.negated:
            result = V.not3(result)
        if engine.faults.has_site("in_subquery_result"):
            result = engine.faults.fire(
                "in_subquery_result",
                _site_features(
                    ctx, expr, {"negated": expr.negated, "rhs": "subquery"}
                ),
                result,
            )
        return result

    if isinstance(expr, A.Case):
        return _eval_case(expr, ctx)

    if isinstance(expr, A.Cast):
        engine.cov("eval.cast")
        target = _cast_target(expr.type_name)
        return V.cast(evaluate(expr.operand, ctx), target, mode)

    if isinstance(expr, A.FuncCall):
        return _eval_func(expr, ctx)

    if isinstance(expr, A.Exists):
        engine.cov("eval.exists")
        rows = _subquery_rows(expr.query, ctx, require_columns=None)
        result = len(rows) > 0
        if expr.negated:
            result = not result
        if engine.faults.has_site("exists_result"):
            result = engine.faults.fire(
                "exists_result",
                _site_features(ctx, expr, {"negated": expr.negated}),
                result,
            )
        return result

    if isinstance(expr, A.ScalarSubquery):
        engine.cov("eval.scalar_subquery")
        # Column count is validated from the result *schema*, not the
        # first row: a zero-row two-column subquery is still an error
        # (SQLite: "sub-select returns N columns - expected 1").
        rows = _subquery_rows(expr.query, ctx, require_columns=1)
        if not rows:
            engine.cov("eval.scalar_subquery.empty")
            value: SqlValue = None
        else:
            if len(rows) > 1:
                if engine.profile.scalar_subquery_multi_row == "error":
                    raise ValueError_("subquery returns more than 1 row")
            value = rows[0][0]
        if engine.faults.has_site("scalar_subquery"):
            correlated = engine.select_is_correlated(expr.query)
            value = engine.faults.fire(
                "scalar_subquery",
                _site_features(ctx, expr, {"correlated": correlated}),
                value,
            )
        return value

    if isinstance(expr, A.Quantified):
        return _eval_quantified(expr, ctx)

    raise ValueError_(f"cannot evaluate expression node {type(expr).__name__}")


# ---------------------------------------------------------------------------
# Node-specific helpers
# ---------------------------------------------------------------------------


def _resolve_column(ref: A.ColumnRef, ctx: EvalCtx) -> SqlValue:
    frame = ctx.frame
    outer = False
    while frame is not None:
        matches = frame.schema.matches(ref.table, ref.column)
        if len(matches) == 1:
            ctx.engine.cov("eval.column.outer" if outer else "eval.column")
            return frame.row[matches[0]]
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column name: {ref.to_sql()}")
        frame = frame.parent
        outer = True
    raise CatalogError(f"no such column: {ref.to_sql()}")


_CMP_OPS = {"=", "!=", "<", "<=", ">", ">="}
_ARITH_OPS = {"+", "-", "*", "/", "%"}


def _cmp_result(op: str, c: int) -> bool:
    if op == "=":
        return c == 0
    if op == "!=":
        return c != 0
    if op == "<":
        return c < 0
    if op == "<=":
        return c <= 0
    if op == ">":
        return c > 0
    return c >= 0


def _eval_binary(expr: A.Binary, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    op = expr.op

    if op == "AND":
        engine.cov("eval.binary.logic")
        left = V.truth(evaluate(expr.left, ctx), mode)
        if left is False:
            return False
        right = V.truth(evaluate(expr.right, ctx), mode)
        return V.and3(left, right)
    if op == "OR":
        engine.cov("eval.binary.logic")
        left = V.truth(evaluate(expr.left, ctx), mode)
        if left is True:
            return True
        right = V.truth(evaluate(expr.right, ctx), mode)
        return V.or3(left, right)

    left = evaluate(expr.left, ctx)
    right = evaluate(expr.right, ctx)

    if op in _CMP_OPS:
        engine.cov("eval.binary.cmp")
        c = V.compare(left, right, mode)
        if c is None:
            return None
        return _cmp_result(op, c)
    if op in _ARITH_OPS:
        engine.cov("eval.binary.arith")
        return V.arith(op, left, right, mode)
    if op == "||":
        engine.cov("eval.binary.concat")
        return V.concat(left, right)
    if op in ("LIKE", "NOT LIKE"):
        engine.cov("eval.binary.like")
        result = V.like(left, right, mode)
        if op == "NOT LIKE":
            result = V.not3(result)
        if engine.faults.has_site("like_result"):
            result = engine.faults.fire(
                "like_result",
                _site_features(ctx, expr, {"negated": op != "LIKE"}),
                result,
            )
        return result
    if op in ("IS", "IS NOT"):
        engine.cov("eval.binary.is")
        same = V.distinct_eq(left, right)
        return same if op == "IS" else not same
    raise ValueError_(f"unknown binary operator {op!r}")


def _in_semantics(
    operand: SqlValue, items: list[SqlValue], mode: TypingMode
) -> V.Ternary:
    """Three-valued IN: TRUE if any match, NULL if no match but NULLs
    present (either side), FALSE otherwise.  Over the *empty* set the
    result is FALSE even for a NULL operand (there is nothing to
    compare) -- the semantics the folded ``IN ()`` replacement relies on.
    """
    if not items:
        return False
    saw_null = operand is None
    for item in items:
        eq = V.eq3(operand, item, mode)
        if eq is True:
            return True
        if eq is None:
            saw_null = True
    return None if saw_null else False


def _eval_case(expr: A.Case, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if expr.operand is not None:
        engine.cov("eval.case.simple")
        subject = evaluate(expr.operand, ctx)
        for arm in expr.whens:
            if V.eq3(subject, evaluate(arm.condition, ctx), mode) is True:
                value = evaluate(arm.result, ctx)
                return _fire_case(engine, ctx, expr, "simple", value)
    else:
        engine.cov("eval.case.searched")
        for arm in expr.whens:
            if V.truth(evaluate(arm.condition, ctx), mode) is True:
                value = evaluate(arm.result, ctx)
                return _fire_case(engine, ctx, expr, "searched", value)
    engine.cov("eval.case.else")
    value = evaluate(expr.else_, ctx) if expr.else_ is not None else None
    return _fire_case(engine, ctx, expr, "else", value)


def _fire_case(
    engine: "Engine", ctx: EvalCtx, expr: A.Case, form: str, value: SqlValue
) -> SqlValue:
    if engine.faults.has_site("case_result"):
        value = engine.faults.fire(
            "case_result", _site_features(ctx, expr, {"form": form}), value
        )
    return value


_CAST_TARGETS = {
    "INT": SqlType.INTEGER,
    "INTEGER": SqlType.INTEGER,
    "BIGINT": SqlType.INTEGER,
    "INT4": SqlType.INTEGER,
    "INT8": SqlType.INTEGER,
    "REAL": SqlType.REAL,
    "FLOAT": SqlType.REAL,
    "DOUBLE": SqlType.REAL,
    "TEXT": SqlType.TEXT,
    "VARCHAR": SqlType.TEXT,
    "STRING": SqlType.TEXT,
    "BOOL": SqlType.BOOLEAN,
    "BOOLEAN": SqlType.BOOLEAN,
}


def _cast_target(name: str) -> SqlType:
    target = _CAST_TARGETS.get(name.upper())
    if target is None:
        raise ValueError_(f"unknown CAST target type {name!r}")
    return target


def _eval_func(expr: A.FuncCall, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    name = expr.name.upper()
    frame = ctx.frame

    if name in AGGREGATE_NAMES:
        group_rows = frame.group_rows if frame is not None else None
        if group_rows is not None:
            return _eval_aggregate(expr, ctx, group_rows)
        if name in VARIADIC_MINMAX and (len(expr.args) >= 2):
            engine.cov("eval.func.scalar")
            args = [evaluate(a, ctx) for a in expr.args]
            return VARIADIC_MINMAX[name](args, engine.mode)
        raise ValueError_(f"misuse of aggregate function {name}()")

    engine.cov("eval.func.scalar")
    args = [evaluate(a, ctx) for a in expr.args]
    return call_scalar(name, args, engine.mode)


def _eval_aggregate(
    expr: A.FuncCall, ctx: EvalCtx, group_rows: list[tuple[SqlValue, ...]]
) -> SqlValue:
    engine = ctx.engine
    name = expr.name.upper()
    engine.cov("eval.func.aggregate")
    assert ctx.frame is not None

    if expr.star:
        if name != "COUNT":
            raise ValueError_(f"{name}(*) is not valid")
        value: SqlValue = len(group_rows)
        return _agg_finish(expr, ctx, value, sorted_input=True)

    if len(expr.args) != 1:
        raise ValueError_(f"aggregate {name}() takes exactly one argument")
    arg = expr.args[0]

    collected: list[SqlValue] = []
    # One frame/ctx pair reused across the group's rows: nothing retains
    # the frame past each evaluate() call, so mutating ``inner.row`` is
    # safe and avoids two dataclass allocations per row.
    inner = Frame(ctx.frame.schema, ctx.frame.row, ctx.frame.parent, group_rows=None)
    inner_ctx = ctx.with_frame(inner)
    for row in group_rows:
        inner.row = row
        collected.append(evaluate(arg, inner_ctx))

    non_null = [v for v in collected if v is not None]
    if expr.distinct:
        engine.cov("eval.func.aggregate.distinct")
        seen: set = set()
        uniq: list[SqlValue] = []
        for v in non_null:
            key = V.sort_key(v)
            if key not in seen:
                seen.add(key)
                uniq.append(v)
        non_null = uniq

    sorted_input = all(
        V.sort_key(a) <= V.sort_key(b) for a, b in zip(non_null, non_null[1:])
    )

    if name == "COUNT":
        return _agg_finish(expr, ctx, len(non_null), sorted_input)
    if name == "SUM" or name == "TOTAL":
        if not non_null:
            return _agg_finish(expr, ctx, 0.0 if name == "TOTAL" else None, True)
        total: int | float = 0
        for v in non_null:
            total = V.arith("+", total, v, engine.mode)  # type: ignore[assignment]
        if name == "TOTAL":
            total = float(total)
        return _agg_finish(expr, ctx, total, sorted_input)
    if name == "AVG":
        if not non_null:
            return _agg_finish(expr, ctx, None, True)
        total = 0.0
        for v in non_null:
            total = V.arith("+", total, v, engine.mode)  # type: ignore[assignment]
        return _agg_finish(expr, ctx, float(total) / len(non_null), sorted_input)
    if name in ("MIN", "MAX"):
        if not non_null:
            return _agg_finish(expr, ctx, None, True)
        best = non_null[0]
        for v in non_null[1:]:
            c = V.compare(v, best, engine.mode)
            if c is None:
                # Incomparable non-NULL values are a typed (expected)
                # error, never an assertion: campaigns must count this
                # as an unsuccessful query, not an engine bug.
                raise TypeError_(
                    f"cannot order {V.type_of(v)} against "
                    f"{V.type_of(best)} in {name}()"
                )
            if (c < 0) if name == "MIN" else (c > 0):
                best = v
        return _agg_finish(expr, ctx, best, sorted_input)
    raise ValueError_(f"unknown aggregate {name}()")


def _agg_finish(
    expr: A.FuncCall, ctx: EvalCtx, value: SqlValue, sorted_input: bool
) -> SqlValue:
    if not ctx.engine.faults.has_site("agg_finish"):
        return value
    arg_is_compound = bool(expr.args) and not isinstance(expr.args[0], A.ColumnRef)
    return ctx.engine.faults.fire(
        "agg_finish",
        _site_features(
            ctx,
            expr,
            {
                "func": expr.name.upper(),
                "distinct": expr.distinct,
                "arg_is_compound": arg_is_compound,
                "input_sorted": sorted_input,
            },
        ),
        value,
    )


def _eval_quantified(expr: A.Quantified, ctx: EvalCtx) -> SqlValue:
    engine = ctx.engine
    mode = engine.mode
    if not engine.profile.supports_any_all:
        raise UnsupportedError("ANY/ALL operators are not supported")
    quant = expr.quantifier.upper()
    engine.cov("eval.quantified.any" if quant in ("ANY", "SOME") else "eval.quantified.all")
    operand = evaluate(expr.operand, ctx)
    rows = _subquery_rows(expr.query, ctx, require_columns=1)
    value = _quantified_value(expr, operand, rows, mode)
    if engine.faults.has_site("quantified_result"):
        value = engine.faults.fire(
            "quantified_result",
            _site_features(ctx, expr, {"quantifier": quant}),
            value,
        )
    return value


def _quantified_value(
    expr: A.Quantified,
    operand: SqlValue,
    rows: list[tuple[SqlValue, ...]],
    mode: TypingMode,
) -> V.Ternary:
    """ANY/ALL fold over the subquery rows (shared by the scalar and
    vector paths so their semantics cannot drift)."""
    quant = expr.quantifier.upper()
    op = expr.op
    results: list[V.Ternary] = []
    for row in rows:
        c = V.compare(operand, row[0], mode)
        if c is None:
            results.append(None)
            continue
        if op not in _CMP_OPS:
            raise ValueError_(f"unsupported quantified operator {op!r}")
        results.append(_cmp_result(op, c))
    if quant in ("ANY", "SOME"):
        if any(r is True for r in results):
            return True
        if any(r is None for r in results):
            return None
        return False
    if any(r is False for r in results):
        return False
    if any(r is None for r in results):
        return None
    return True


def _subquery_rows(
    query: A.Select, ctx: EvalCtx, require_columns: int | None
) -> list[tuple[SqlValue, ...]]:
    """Execute a subquery in the current scope and return its rows."""
    engine = ctx.engine
    correlated = engine.select_is_correlated(query)
    if correlated:
        engine.cov("eval.subquery.correlated")
    result = engine.execute_subquery(query, ctx)
    # Validated from the result schema, not the first row: the column
    # count of a zero-row result is still observable (SQLite raises
    # "sub-select returns N columns" regardless of cardinality).
    if require_columns is not None and len(result.columns) != require_columns:
        raise ValueError_(f"operand should contain {require_columns} column(s)")
    return result.rows


# ---------------------------------------------------------------------------
# Column-at-a-time (vector) evaluation
# ---------------------------------------------------------------------------
#
# The executor's filter/projection/group paths evaluate one expression
# over many rows.  The scalar path above walks the tree once per row;
# the vector path walks it once per *batch*, computing a whole column at
# each node.  The contract is bit-identity: when `evaluate_vector`
# returns, the produced values AND every observable side effect
# (coverage tags, fired fault ids, the engine's subquery caches) are
# exactly what the per-row scalar loop would have left behind.  That
# holds because every side-effect store is an idempotent set and every
# fault trigger is a pure function of row-independent site features.
#
# Errors are the one observable that is *not* order-insensitive: the
# scalar path aborts row-major, the vector path node-major, so their
# partial side effects differ.  Vector evaluation is therefore
# speculative -- callers take a `SideEffectSnapshot` first, and on any
# `ReproError` roll back and re-run the authoritative scalar loop.

_VECTOR_NODE_TYPES = (
    A.Literal,
    A.ColumnRef,
    A.Unary,
    A.Binary,
    A.IsNull,
    A.Between,
    A.InList,
    A.InSubquery,
    A.Case,
    A.Cast,
    A.FuncCall,
    A.Exists,
    A.ScalarSubquery,
    A.Quantified,
)


def vector_safe(expr: A.Expr, engine: "Engine") -> bool:
    """Whether *expr* may take the vector path.

    Excluded: aggregate-named function calls (their dispatch depends on
    grouping context the batch does not model) and correlated subqueries
    (their value genuinely varies per row).  Uncorrelated subqueries are
    fine -- they are computed once and broadcast, exactly like the
    engine's per-statement subquery result cache already does for the
    scalar path.  Classified post-order and memoized per statement in
    ``engine._vector_class_cache``.
    """
    cache = engine._vector_class_cache
    key = id(expr)
    cached = cache.get(key)
    if cached is None:
        cached = _classify_vector_safe(expr, engine, cache)
        cache[key] = cached
    return cached


def _classify_vector_safe(
    expr: A.Expr, engine: "Engine", cache: dict[int, bool]
) -> bool:
    if not isinstance(expr, _VECTOR_NODE_TYPES):
        return False
    if isinstance(expr, A.FuncCall) and expr.name.upper() in AGGREGATE_NAMES:
        return False
    if isinstance(expr, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)):
        if engine.select_is_correlated(expr.query):
            return False
    result = True
    for child in expr.children():
        child_key = id(child)
        ok = cache.get(child_key)
        if ok is None:
            ok = _classify_vector_safe(child, engine, cache)
            cache[child_key] = ok
        if not ok:
            result = False
    return result


class SideEffectSnapshot:
    """Captured engine side-effect state for speculative evaluation.

    All captured stores only grow within a statement, so rollback is
    pruning: drop whatever was added since the snapshot, **in place**
    (coverage capture scopes and the fault injector hold references to
    the live sets, so they must never be replaced wholesale).

    The subquery/subplan caches and the row-independent value memo must
    roll back too: a speculatively warmed cache would otherwise let the
    scalar re-run skip work whose side effects (the ``eval.subquery.cached``
    tag, re-fired memoized faults, subplan fingerprints) are part of the
    bit-identity contract.
    """

    __slots__ = ("engine", "cov", "fired", "subq", "subplan", "prints", "memo")

    def __init__(self, engine: "Engine") -> None:
        self.engine = engine
        self.cov = engine.coverage.snapshot()
        self.fired = set(engine.faults.fired)
        self.subq = set(engine._subquery_result_cache)
        self.subplan = set(engine._subplan_cache)
        self.prints = set(engine._extra_fingerprints)
        self.memo = set(engine._const_value_cache)

    def rollback(self) -> None:
        engine = self.engine
        engine.coverage.rollback(self.cov)
        engine.faults.fired.intersection_update(self.fired)
        engine._extra_fingerprints.intersection_update(self.prints)
        for cache, keys in (
            (engine._subquery_result_cache, self.subq),
            (engine._subplan_cache, self.subplan),
            (engine._const_value_cache, self.memo),
        ):
            stale = [k for k in cache if k not in keys]
            for k in stale:
                del cache[k]


def evaluate_vector(
    expr: A.Expr, rows: list[tuple[SqlValue, ...]], ctx: EvalCtx
) -> list[SqlValue]:
    """Evaluate *expr* once per row of *rows*, column-at-a-time.

    ``ctx.frame`` must be a template :class:`Frame` whose schema
    describes the batch rows and whose parent chain is the (fixed) outer
    scope shared by the whole batch; the template's own ``row`` is never
    read.  *expr* must be :func:`vector_safe`.

    Callers must wrap the call (and any per-row consumption loop that
    can raise) in a :class:`SideEffectSnapshot` scope and fall back to
    the scalar loop on :class:`~repro.errors.ReproError` -- see the
    module comment on error ordering.
    """
    if ctx.depth > 200:
        raise ValueError_("expression nesting too deep")
    return _VecState(ctx, rows).eval(expr, list(range(len(rows))))


class _VecState:
    """One batch evaluation: the rows plus the shared evaluation scope."""

    __slots__ = ("ctx", "engine", "mode", "rows", "schema", "parent")

    def __init__(self, ctx: EvalCtx, rows: list[tuple[SqlValue, ...]]) -> None:
        assert ctx.frame is not None, "evaluate_vector needs a template frame"
        self.ctx = ctx
        self.engine = ctx.engine
        self.mode = ctx.engine.mode
        self.rows = rows
        self.schema = ctx.frame.schema
        self.parent = ctx.frame.parent

    def eval(self, expr: A.Expr, active: list[int]) -> list[SqlValue]:
        """Column of values for the rows in *active* (row indexes into
        the batch), in *active* order.  Callers never pass an empty
        *active* list: a subtree no row reaches is not evaluated at all,
        mirroring scalar short-circuiting."""
        engine = self.engine
        if _row_independent(expr, engine):
            # One scalar evaluation, broadcast.  Observationally equal
            # to the per-row scalar loop: values are deterministic and
            # side effects idempotent (this is the same argument the
            # row-independent memo in `evaluate` rests on).
            value = evaluate(expr, self.ctx)
            return [value] * len(active)
        if isinstance(expr, A.ColumnRef):
            return self._column(expr, active)
        if isinstance(expr, A.Unary):
            mode = self.mode
            if expr.op.upper() == "NOT":
                engine.cov("eval.unary.not")
                return [
                    V.not3(V.truth(v, mode))
                    for v in self.eval(expr.operand, active)
                ]
            engine.cov("eval.unary.neg")
            return [V.negate(v, mode) for v in self.eval(expr.operand, active)]
        if isinstance(expr, A.Binary):
            return self._binary(expr, active)
        if isinstance(expr, A.IsNull):
            engine.cov("eval.is_null")
            negated = expr.negated
            return [
                (v is not None) if negated else (v is None)
                for v in self.eval(expr.operand, active)
            ]
        if isinstance(expr, A.Between):
            return self._between(expr, active)
        if isinstance(expr, A.InList):
            return self._in_list(expr, active)
        if isinstance(expr, A.InSubquery):
            return self._in_subquery(expr, active)
        if isinstance(expr, A.Case):
            return self._case(expr, active)
        if isinstance(expr, A.Cast):
            engine.cov("eval.cast")
            target = _cast_target(expr.type_name)
            mode = self.mode
            return [
                V.cast(v, target, mode) for v in self.eval(expr.operand, active)
            ]
        if isinstance(expr, A.FuncCall):
            return self._func(expr, active)
        if isinstance(expr, A.Exists):
            return self._exists(expr, active)
        if isinstance(expr, A.ScalarSubquery):
            return self._scalar_subquery(expr, active)
        if isinstance(expr, A.Quantified):
            return self._quantified(expr, active)
        raise ValueError_(
            f"cannot vector-evaluate expression node {type(expr).__name__}"
        )

    # -- leaves -------------------------------------------------------------

    def _column(self, ref: A.ColumnRef, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        matches = self.schema.matches(ref.table, ref.column)
        if len(matches) == 1:
            engine.cov("eval.column")
            idx = matches[0]
            rows = self.rows
            return [rows[i][idx] for i in active]
        if len(matches) > 1:
            raise CatalogError(f"ambiguous column name: {ref.to_sql()}")
        frame = self.parent
        while frame is not None:
            matches = frame.schema.matches(ref.table, ref.column)
            if len(matches) == 1:
                # Outer frames are fixed for the batch: one value.
                engine.cov("eval.column.outer")
                return [frame.row[matches[0]]] * len(active)
            if len(matches) > 1:
                raise CatalogError(f"ambiguous column name: {ref.to_sql()}")
            frame = frame.parent
        raise CatalogError(f"no such column: {ref.to_sql()}")

    # -- operators ----------------------------------------------------------

    def _binary(self, expr: A.Binary, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        op = expr.op

        if op == "AND" or op == "OR":
            engine.cov("eval.binary.logic")
            short = False if op == "AND" else True
            lefts = [V.truth(v, mode) for v in self.eval(expr.left, active)]
            taken = [i for i, lt in zip(active, lefts) if lt is not short]
            rights_by_row: dict[int, SqlValue] = {}
            if taken:
                # The right subtree is evaluated only for rows the left
                # side did not short-circuit -- and not at all when every
                # row short-circuits, like the scalar path.
                for i, rv in zip(taken, self.eval(expr.right, taken)):
                    rights_by_row[i] = rv
            out: list[SqlValue] = []
            combine = V.and3 if op == "AND" else V.or3
            for i, lt in zip(active, lefts):
                if lt is short:
                    out.append(short)
                else:
                    out.append(combine(lt, V.truth(rights_by_row[i], mode)))
            return out

        lefts = self.eval(expr.left, active)
        rights = self.eval(expr.right, active)

        if op in _CMP_OPS:
            engine.cov("eval.binary.cmp")
            out = []
            for lv, rv in zip(lefts, rights):
                c = V.compare(lv, rv, mode)
                out.append(None if c is None else _cmp_result(op, c))
            return out
        if op in _ARITH_OPS:
            engine.cov("eval.binary.arith")
            return [V.arith(op, lv, rv, mode) for lv, rv in zip(lefts, rights)]
        if op == "||":
            engine.cov("eval.binary.concat")
            return [V.concat(lv, rv) for lv, rv in zip(lefts, rights)]
        if op in ("LIKE", "NOT LIKE"):
            engine.cov("eval.binary.like")
            negated = op != "LIKE"
            fire = engine.faults.has_site("like_result")
            features = (
                _site_features(self.ctx, expr, {"negated": negated})
                if fire
                else None
            )
            out = []
            for lv, rv in zip(lefts, rights):
                result = V.like(lv, rv, mode)
                if negated:
                    result = V.not3(result)
                if fire:
                    result = engine.faults.fire("like_result", features, result)
                out.append(result)
            return out
        if op in ("IS", "IS NOT"):
            engine.cov("eval.binary.is")
            if op == "IS":
                return [V.distinct_eq(lv, rv) for lv, rv in zip(lefts, rights)]
            return [not V.distinct_eq(lv, rv) for lv, rv in zip(lefts, rights)]
        raise ValueError_(f"unknown binary operator {op!r}")

    def _between(self, expr: A.Between, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        engine.cov("eval.between")
        operands = self.eval(expr.operand, active)
        lows = self.eval(expr.low, active)
        highs = self.eval(expr.high, active)
        negated = expr.negated
        fire = engine.faults.has_site("between_result")
        features = (
            _site_features(self.ctx, expr, {"negated": negated}) if fire else None
        )
        out = []
        for ov, lo, hi in zip(operands, lows, highs):
            lo_cmp = V.compare(ov, lo, mode)
            hi_cmp = V.compare(ov, hi, mode)
            ge_low: V.Ternary = None if lo_cmp is None else lo_cmp >= 0
            le_high: V.Ternary = None if hi_cmp is None else hi_cmp <= 0
            result = V.and3(ge_low, le_high)
            if negated:
                result = V.not3(result)
            if fire:
                result = engine.faults.fire("between_result", features, result)
            out.append(result)
        return out

    def _in_list(self, expr: A.InList, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        engine.cov("eval.in_list")
        operands = self.eval(expr.operand, active)
        item_cols = [self.eval(item, active) for item in expr.items]
        negated = expr.negated
        fire = engine.faults.has_site("in_list_result")
        features = (
            _site_features(self.ctx, expr, {"negated": negated, "rhs": "list"})
            if fire
            else None
        )
        out = []
        for k, ov in enumerate(operands):
            result = _in_semantics(ov, [col[k] for col in item_cols], mode)
            if negated:
                result = V.not3(result)
            if fire:
                result = engine.faults.fire("in_list_result", features, result)
            out.append(result)
        return out

    # -- subqueries (uncorrelated by the vector_safe contract) ---------------

    def _subquery(
        self, query: A.Select, active: list[int], require_columns: int | None
    ) -> list[tuple[SqlValue, ...]]:
        """Execute the (uncorrelated) subquery once for the batch.

        The scalar loop executes it per row; rows 2..n hit the engine's
        per-statement result cache, which tags ``eval.subquery.cached``.
        Replicate that tag whenever more than one row would have asked.
        """
        rows_sq = _subquery_rows(query, self.ctx, require_columns)
        if len(active) > 1:
            self.engine.cov("eval.subquery.cached")
        return rows_sq

    def _in_subquery(self, expr: A.InSubquery, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        engine.cov("eval.in_subquery")
        operands = self.eval(expr.operand, active)
        rows_sq = self._subquery(expr.query, active, 1)
        items = [row[0] for row in rows_sq]
        negated = expr.negated
        fire = engine.faults.has_site("in_subquery_result")
        features = (
            _site_features(self.ctx, expr, {"negated": negated, "rhs": "subquery"})
            if fire
            else None
        )
        out = []
        for ov in operands:
            result = _in_semantics(ov, items, mode)
            if negated:
                result = V.not3(result)
            if fire:
                result = engine.faults.fire("in_subquery_result", features, result)
            out.append(result)
        return out

    def _exists(self, expr: A.Exists, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        engine.cov("eval.exists")
        rows_sq = self._subquery(expr.query, active, None)
        result: SqlValue = len(rows_sq) > 0
        if expr.negated:
            result = not result
        if engine.faults.has_site("exists_result"):
            # Same features and value for every row: firing once leaves
            # the identical fired set and (deterministic) value.
            result = engine.faults.fire(
                "exists_result",
                _site_features(self.ctx, expr, {"negated": expr.negated}),
                result,
            )
        return [result] * len(active)

    def _scalar_subquery(
        self, expr: A.ScalarSubquery, active: list[int]
    ) -> list[SqlValue]:
        engine = self.engine
        engine.cov("eval.scalar_subquery")
        rows_sq = self._subquery(expr.query, active, 1)
        if not rows_sq:
            engine.cov("eval.scalar_subquery.empty")
            value: SqlValue = None
        else:
            if len(rows_sq) > 1:
                if engine.profile.scalar_subquery_multi_row == "error":
                    raise ValueError_("subquery returns more than 1 row")
            value = rows_sq[0][0]
        if engine.faults.has_site("scalar_subquery"):
            correlated = engine.select_is_correlated(expr.query)
            value = engine.faults.fire(
                "scalar_subquery",
                _site_features(self.ctx, expr, {"correlated": correlated}),
                value,
            )
        return [value] * len(active)

    def _quantified(self, expr: A.Quantified, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        if not engine.profile.supports_any_all:
            raise UnsupportedError("ANY/ALL operators are not supported")
        quant = expr.quantifier.upper()
        engine.cov(
            "eval.quantified.any" if quant in ("ANY", "SOME") else "eval.quantified.all"
        )
        operands = self.eval(expr.operand, active)
        rows_sq = self._subquery(expr.query, active, 1)
        fire = engine.faults.has_site("quantified_result")
        features = (
            _site_features(self.ctx, expr, {"quantifier": quant}) if fire else None
        )
        out = []
        for ov in operands:
            value = _quantified_value(expr, ov, rows_sq, mode)
            if fire:
                value = engine.faults.fire("quantified_result", features, value)
            out.append(value)
        return out

    # -- control flow -------------------------------------------------------

    def _case(self, expr: A.Case, active: list[int]) -> list[SqlValue]:
        engine = self.engine
        mode = self.mode
        fire = engine.faults.has_site("case_result")
        out: dict[int, SqlValue] = {}
        if expr.operand is not None:
            engine.cov("eval.case.simple")
            form = "simple"
            subjects: dict[int, SqlValue] | None = dict(
                zip(active, self.eval(expr.operand, active))
            )
        else:
            engine.cov("eval.case.searched")
            form = "searched"
            subjects = None
        remaining = active
        for arm in expr.whens:
            if not remaining:
                break
            conds = self.eval(arm.condition, remaining)
            matched: list[int] = []
            still: list[int] = []
            for i, cv in zip(remaining, conds):
                if subjects is not None:
                    hit = V.eq3(subjects[i], cv, mode) is True
                else:
                    hit = V.truth(cv, mode) is True
                (matched if hit else still).append(i)
            if matched:
                values = self.eval(arm.result, matched)
                if fire:
                    features = _site_features(self.ctx, expr, {"form": form})
                    values = [
                        engine.faults.fire("case_result", features, v)
                        for v in values
                    ]
                for i, v in zip(matched, values):
                    out[i] = v
            remaining = still
        if remaining:
            # Only rows that fall through every arm take the ELSE branch
            # (and only then does its subtree evaluate or its tag fire).
            engine.cov("eval.case.else")
            if expr.else_ is not None:
                values = self.eval(expr.else_, remaining)
            else:
                values = [None] * len(remaining)
            if fire:
                features = _site_features(self.ctx, expr, {"form": "else"})
                values = [
                    engine.faults.fire("case_result", features, v) for v in values
                ]
            for i, v in zip(remaining, values):
                out[i] = v
        return [out[i] for i in active]

    def _func(self, expr: A.FuncCall, active: list[int]) -> list[SqlValue]:
        # Aggregate-named calls never reach here (vector_safe rejects
        # them), so this is always the scalar-function path.
        engine = self.engine
        engine.cov("eval.func.scalar")
        name = expr.name.upper()
        mode = engine.mode
        arg_cols = [self.eval(a, active) for a in expr.args]
        return [
            call_scalar(name, [col[k] for col in arg_cols], mode)
            for k in range(len(active))
        ]
