"""Plan execution for MiniDB.

Row-at-a-time interpreter over :class:`~repro.minidb.plan.SelectPlan`.
All joins are nested loops (tables are small in testing workloads); outer
joins null-extend the non-preserved side.  Fault hooks fire at the sites
documented in :mod:`repro.minidb.faults`; coverage probes tag each
executed operator so campaigns can report branch coverage (Table 3).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError, SqlError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb.coverage import register_tags
from repro.minidb.evaluator import (
    EvalCtx,
    Frame,
    SideEffectSnapshot,
    evaluate,
    evaluate_vector,
    vector_safe,
)
from repro.minidb.plan import (
    CteScan,
    JoinPlan,
    ScanPlan,
    Schema,
    SelectPlan,
    SourcePlan,
    SubplanScan,
    ValuesScanPlan,
)
from repro.minidb.planner import validate_limit
from repro.minidb.values import SqlValue, row_sort_key, truth

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Engine

register_tags(
    "exec.scan",
    "exec.scan.index",
    "exec.subplan",
    "exec.cte",
    "exec.values",
    "exec.join.inner",
    "exec.join.cross",
    "exec.join.left",
    "exec.join.left.null_extend",
    "exec.join.right",
    "exec.join.right.null_extend",
    "exec.join.full",
    "exec.join.full.null_extend",
    "exec.filter.keep",
    "exec.filter.drop",
    "exec.filter.const_false",
    "exec.group",
    "exec.group.empty_input",
    "exec.group.implicit",
    "exec.having.keep",
    "exec.having.drop",
    "exec.project",
    "exec.distinct",
    "exec.union",
    "exec.union_all",
    "exec.intersect",
    "exec.except",
    "exec.order",
    "exec.order.positional",
    "exec.order.alias",
    "exec.limit",
    "exec.offset",
    "exec.no_from",
)

Row = tuple[SqlValue, ...]

#: Smallest batch worth vectorizing.  Below this the _VecState setup and
#: side-effect snapshot cost more than the per-row dispatch they avoid
#: (fig2 batches are frequently 1-2 rows); the scalar loop is used
#: instead.  Purely a throughput knob: both paths are observationally
#: identical, so the threshold never changes campaign signatures.
_VECTOR_MIN_ROWS = 3


@dataclass
class Materialized:
    """A fully computed relation."""

    columns: list[str]
    rows: list[Row]

    @property
    def schema(self) -> Schema:
        return Schema(tuple((None, c) for c in self.columns))


def execute_select(plan: SelectPlan, ctx: EvalCtx) -> Materialized:
    """Execute a planned SELECT, returning its materialized result."""
    engine = ctx.engine

    if plan.ctes:
        relations = dict(ctx.relations)
        for name, columns, body in plan.ctes:
            if isinstance(body, SelectPlan):
                mat = execute_select(body, ctx_with_relations(ctx, relations))
                if len(columns) != len(mat.columns):
                    raise SqlError(f"CTE {name} column list mismatch")
                relations[name.lower()] = Materialized(list(columns), mat.rows)
            else:  # tuple of VALUES rows
                rows = _eval_values_rows(body, ctx, len(columns))
                relations[name.lower()] = Materialized(list(columns), rows)
        ctx = ctx_with_relations(ctx, relations)

    core = _execute_core(plan, ctx)

    if plan.set_op is not None:
        op, all_, rhs_plan = plan.set_op
        rhs = execute_select(rhs_plan, ctx)
        core = _apply_set_op(op, all_, core, rhs, ctx)

    rows = core.rows
    if plan.order_by:
        rows = _apply_order(plan, core, ctx)
    rows = _apply_limit_offset(plan, rows, ctx)
    return Materialized(core.columns, rows)


def ctx_with_relations(ctx: EvalCtx, relations: dict) -> EvalCtx:
    return EvalCtx(
        ctx.engine,
        ctx.frame,
        ctx.clause,
        ctx.statement,
        relations,
        ctx.in_subquery,
        ctx.depth,
        ctx.flags,
    )


# ---------------------------------------------------------------------------
# Core (source -> filter -> group -> project -> distinct)
# ---------------------------------------------------------------------------


@dataclass
class _Core:
    columns: list[str]
    rows: list[Row]
    #: Per-row frames used for non-positional ORDER BY (None for set-ops).
    order_frames: list[Frame] | None = None


def _execute_core(plan: SelectPlan, ctx: EvalCtx) -> Materialized:
    engine = ctx.engine
    columns = plan.out_columns

    if plan.source is None:
        engine.cov("exec.no_from")
        source_schema = Schema(())
        source_rows: list[Row] = [()]
    else:
        source_schema, source_rows = _execute_source(plan.source, ctx)

    # WHERE
    if plan.where_const_false:
        engine.cov("exec.filter.const_false")
        source_rows = []
    elif plan.where is not None:
        source_rows = _filter_rows(
            plan.where, plan.where_features, source_schema, source_rows, ctx
        )

    if plan.has_aggregates:
        out_rows, frames = _execute_grouped(plan, source_schema, source_rows, ctx)
    else:
        out_rows, frames = _execute_projection(plan, source_schema, source_rows, ctx)

    if plan.distinct:
        engine.cov("exec.distinct")
        out_rows, frames = _distinct(out_rows, frames)
        out_rows = engine.faults.fire(
            "distinct_rows",
            {"statement": ctx.statement, "clause": "distinct"},
            out_rows,
        )

    mat = Materialized(columns, out_rows)
    mat_frames = frames if len(frames) == len(out_rows) else None
    return _CoreResult(mat, mat_frames)


class _CoreResult(Materialized):
    """Materialized rows plus the per-row frames ORDER BY may need."""

    def __init__(self, mat: Materialized, frames: list[Frame] | None) -> None:
        super().__init__(mat.columns, mat.rows)
        self.frames = frames


def _filter_rows(
    where: A.Expr,
    features: dict,
    schema: Schema,
    rows: list[Row],
    ctx: EvalCtx,
) -> list[Row]:
    engine = ctx.engine
    site = {
        "SELECT": "where_result",
        "UPDATE": "update_where_result",
        "DELETE": "delete_where_result",
        "INSERT_SELECT": "where_result",
    }.get(ctx.statement, "where_result")
    fire = engine.faults.has_site(site)
    fire_features: dict | None = None
    if fire:
        fire_features = dict(features)
        fire_features.update(ctx.flags)
        fire_features["statement"] = ctx.statement
        fire_features["clause"] = "where"
        fire_features["in_subquery"] = ctx.in_subquery
    mode = engine.mode

    if (
        engine.vector_eval
        and len(rows) >= _VECTOR_MIN_ROWS
        and vector_safe(where, engine)
    ):
        # Speculative: any engine error during the batch (row-dependent
        # type errors, injected crash faults) aborts with different
        # partial side effects than the row-major scalar loop, so roll
        # back and let the scalar loop below be the authority.
        snap = SideEffectSnapshot(engine)
        try:
            template = Frame(schema, (), ctx.frame)
            verdicts = evaluate_vector(
                where, rows, ctx.with_clause("where").with_frame(template)
            )
            kept: list[Row] = []
            for row, value in zip(rows, verdicts):
                verdict = truth(value, mode)
                if fire:
                    verdict = engine.faults.fire(site, fire_features, verdict)
                if verdict is True:
                    engine.cov("exec.filter.keep")
                    kept.append(row)
                else:
                    engine.cov("exec.filter.drop")
            return kept
        except ReproError:
            snap.rollback()

    kept = []
    # One frame/ctx pair reused across rows: nothing retains the frame
    # past each evaluate() call, so mutating ``frame.row`` is safe and
    # avoids two dataclass allocations per row.
    frame = Frame(schema, (), ctx.frame)
    where_ctx = ctx.with_clause("where").with_frame(frame)
    for row in rows:
        frame.row = row
        verdict = truth(evaluate(where, where_ctx), mode)
        if fire:
            verdict = engine.faults.fire(site, fire_features, verdict)
        if verdict is True:
            engine.cov("exec.filter.keep")
            kept.append(row)
        else:
            engine.cov("exec.filter.drop")
    return kept


def _execute_projection(
    plan: SelectPlan, schema: Schema, rows: list[Row], ctx: EvalCtx
) -> tuple[list[Row], list[Frame]]:
    engine = ctx.engine
    engine.cov("exec.project")
    # Per-row frames are only ever consumed by non-positional ORDER BY
    # (via _CoreResult.frames); skip building them otherwise.
    need_frames = bool(plan.order_by)
    fire = engine.faults.has_site("fetch_value")
    if fire:
        item_features: list[dict | None] = [
            {
                **item.features,
                "statement": ctx.statement,
                "clause": "fetch",
                "in_subquery": ctx.in_subquery,
            }
            for item in plan.items
        ]
    else:
        item_features = [None] * len(plan.items)

    if (
        engine.vector_eval
        and len(rows) >= _VECTOR_MIN_ROWS
        and any(vector_safe(item.expr, engine) for item in plan.items)
    ):
        result = _vector_projection(
            plan, schema, rows, ctx, fire, item_features, need_frames
        )
        if result is not None:
            return result

    fetch_ctx = ctx.with_clause("fetch")
    out: list[Row] = []
    frames: list[Frame] = []
    if need_frames:
        for row in rows:
            frame = Frame(schema, row, ctx.frame)
            item_ctx = fetch_ctx.with_frame(frame)
            values = []
            for item, feats in zip(plan.items, item_features):
                value = evaluate(item.expr, item_ctx)
                if fire:
                    value = engine.faults.fire("fetch_value", feats, value)
                values.append(value)
            out.append(tuple(values))
            frames.append(frame)
        return out, frames
    frame = Frame(schema, (), ctx.frame)
    item_ctx = fetch_ctx.with_frame(frame)
    for row in rows:
        frame.row = row
        values = []
        for item, feats in zip(plan.items, item_features):
            value = evaluate(item.expr, item_ctx)
            if fire:
                value = engine.faults.fire("fetch_value", feats, value)
            values.append(value)
        out.append(tuple(values))
    return out, frames


def _vector_projection(
    plan: SelectPlan,
    schema: Schema,
    rows: list[Row],
    ctx: EvalCtx,
    fire: bool,
    item_features: list[dict | None],
    need_frames: bool,
) -> tuple[list[Row], list[Frame]] | None:
    """Column-at-a-time projection; None on rollback (caller re-runs
    the scalar loop).  Vector-safe items evaluate as whole columns;
    the rest (correlated subqueries, variadic MIN/MAX) evaluate per
    row against the same frames."""
    engine = ctx.engine
    snap = SideEffectSnapshot(engine)
    try:
        fetch_ctx = ctx.with_clause("fetch")
        template = Frame(schema, (), ctx.frame)
        vec_ctx = fetch_ctx.with_frame(template)
        frames: list[Frame] = []
        if need_frames:
            frames = [Frame(schema, row, ctx.frame) for row in rows]
        scalar_ctx = None
        columns: list[list[SqlValue]] = []
        for item in plan.items:
            if vector_safe(item.expr, engine):
                columns.append(evaluate_vector(item.expr, rows, vec_ctx))
                continue
            col: list[SqlValue] = []
            if need_frames:
                for frame in frames:
                    col.append(evaluate(item.expr, fetch_ctx.with_frame(frame)))
            else:
                if scalar_ctx is None:
                    scalar_frame = Frame(schema, (), ctx.frame)
                    scalar_ctx = fetch_ctx.with_frame(scalar_frame)
                for row in rows:
                    scalar_ctx.frame.row = row
                    col.append(evaluate(item.expr, scalar_ctx))
            columns.append(col)
        out: list[Row] = []
        for k in range(len(rows)):
            values = []
            for col, feats in zip(columns, item_features):
                value = col[k]
                if fire:
                    value = engine.faults.fire("fetch_value", feats, value)
                values.append(value)
            out.append(tuple(values))
        return out, frames
    except ReproError:
        snap.rollback()
        return None


def _execute_grouped(
    plan: SelectPlan, schema: Schema, rows: list[Row], ctx: EvalCtx
) -> tuple[list[Row], list[Frame]]:
    engine = ctx.engine
    engine.cov("exec.group")

    groups: list[list[Row]]
    if plan.group_by:
        key_ctx = ctx.with_clause("group_by")
        keys: list[tuple] | None = None
        if (
            engine.vector_eval
            and len(rows) >= _VECTOR_MIN_ROWS
            and all(vector_safe(e, engine) for e in plan.group_by)
        ):
            keys = _vector_group_keys(plan.group_by, schema, rows, key_ctx)
        if keys is None:
            frame = Frame(schema, (), ctx.frame)
            row_ctx = key_ctx.with_frame(frame)
            keys = []
            for row in rows:
                frame.row = row
                keys.append(
                    tuple(
                        row_sort_key((evaluate(e, row_ctx),))
                        for e in plan.group_by
                    )
                )
        keyed: dict[tuple, list[Row]] = {}
        for row, key in zip(rows, keys):
            keyed.setdefault(key, []).append(row)
        groups = list(keyed.values())
        if not rows:
            engine.cov("exec.group.empty_input")
    else:
        engine.cov("exec.group.implicit")
        groups = [rows]  # single (possibly empty) group

    groups = engine.faults.fire(
        "group_rows",
        {
            "statement": ctx.statement,
            "clause": "group_by",
            "explicit": bool(plan.group_by),
            "group_count": len(groups),
        },
        groups,
    )

    out: list[Row] = []
    frames: list[Frame] = []
    width = len(schema)
    fire_having = engine.faults.has_site("having_result")
    having_features: dict | None = None
    if fire_having and plan.having is not None:
        having_features = {
            **plan.having_features,
            **ctx.flags,
            "statement": ctx.statement,
            "clause": "having",
            "in_subquery": ctx.in_subquery,
        }
    fire_fetch = engine.faults.has_site("fetch_value")
    if fire_fetch:
        item_features: list[dict | None] = [
            {
                **item.features,
                "statement": ctx.statement,
                "clause": "fetch",
                "in_subquery": ctx.in_subquery,
            }
            for item in plan.items
        ]
    else:
        item_features = [None] * len(plan.items)
    having_ctx = ctx.with_clause("having")
    fetch_ctx = ctx.with_clause("fetch")
    for group in groups:
        rep = group[0] if group else tuple([None] * width)
        # One fresh frame per *group* (retained in ``frames``), not per
        # row -- the group's rows are carried via ``group_rows``.
        frame = Frame(schema, rep, ctx.frame, group_rows=group)
        if plan.having is not None:
            verdict = truth(
                evaluate(plan.having, having_ctx.with_frame(frame)),
                engine.mode,
            )
            if fire_having:
                verdict = engine.faults.fire(
                    "having_result", having_features, verdict
                )
            if verdict is not True:
                engine.cov("exec.having.drop")
                continue
            engine.cov("exec.having.keep")
        item_ctx = fetch_ctx.with_frame(frame)
        values = []
        for item, feats in zip(plan.items, item_features):
            value = evaluate(item.expr, item_ctx)
            if fire_fetch:
                value = engine.faults.fire("fetch_value", feats, value)
            values.append(value)
        out.append(tuple(values))
        frames.append(frame)
    return out, frames


def _vector_group_keys(
    exprs: tuple[A.Expr, ...], schema: Schema, rows: list[Row], key_ctx: EvalCtx
) -> list[tuple] | None:
    """Grouping keys column-at-a-time; None on rollback (caller re-runs
    the scalar key loop)."""
    engine = key_ctx.engine
    snap = SideEffectSnapshot(engine)
    try:
        template = Frame(schema, (), key_ctx.frame)
        vec_ctx = key_ctx.with_frame(template)
        cols = [evaluate_vector(e, rows, vec_ctx) for e in exprs]
        return [
            tuple(row_sort_key((col[k],)) for col in cols)
            for k in range(len(rows))
        ]
    except ReproError:
        snap.rollback()
        return None


def _distinct(
    rows: list[Row], frames: list[Frame]
) -> tuple[list[Row], list[Frame]]:
    seen: set = set()
    out_rows: list[Row] = []
    out_frames: list[Frame] = []
    paired = len(frames) == len(rows)
    for i, row in enumerate(rows):
        key = row_sort_key(row)
        if key in seen:
            continue
        seen.add(key)
        out_rows.append(row)
        if paired:
            out_frames.append(frames[i])
    return out_rows, out_frames


# ---------------------------------------------------------------------------
# Sources
# ---------------------------------------------------------------------------


def _execute_source(source: SourcePlan, ctx: EvalCtx) -> tuple[Schema, list[Row]]:
    engine = ctx.engine
    if isinstance(source, ScanPlan):
        engine.cov("exec.scan")
        if source.access_path == "index_scan":
            engine.cov("exec.scan.index")
        table = engine.database.get_table(source.table_name)
        if len(table.columns) != len(source.schema):
            raise SqlError(f"table {table.name} changed shape since planning")
        return source.schema, list(table.rows)
    if isinstance(source, SubplanScan):
        engine.cov("exec.subplan")
        inner_ctx = ctx.with_frame(None)
        mat = execute_select(source.plan, inner_ctx)
        if len(mat.columns) != len(source.schema):
            raise SqlError("derived table width mismatch")
        return source.schema, mat.rows
    if isinstance(source, CteScan):
        engine.cov("exec.cte")
        mat = ctx.relations.get(source.name.lower())
        if mat is None:
            raise SqlError(f"unknown CTE {source.name}")
        return source.schema, list(mat.rows)
    if isinstance(source, ValuesScanPlan):
        engine.cov("exec.values")
        rows = _eval_values_rows(source.rows, ctx, len(source.schema))
        return source.schema, rows
    if isinstance(source, JoinPlan):
        return _execute_join(source, ctx)
    raise SqlError(f"unknown source plan {type(source).__name__}")


def _eval_values_rows(
    rows_exprs: tuple[tuple[A.Expr, ...], ...], ctx: EvalCtx, width: int
) -> list[Row]:
    values_ctx = ctx.with_clause("values").with_frame(None)
    rows: list[Row] = []
    for row_exprs in rows_exprs:
        if len(row_exprs) != width:
            raise SqlError("VALUES row width mismatch")
        rows.append(tuple(evaluate(e, values_ctx) for e in row_exprs))
    return ctx.engine.faults.fire(
        "values_rows", {"statement": ctx.statement, "clause": "values"}, rows
    )


def _execute_join(join: JoinPlan, ctx: EvalCtx) -> tuple[Schema, list[Row]]:
    engine = ctx.engine
    left_schema, left_rows = _execute_source(join.left, ctx)
    right_schema, right_rows = _execute_source(join.right, ctx)
    schema = join.schema
    left_width = len(left_schema)
    right_width = len(right_schema)

    # Frame/ctx/features hoisted out of the nested loops; the frame is
    # reused by mutating ``row`` (nothing retains it past evaluate()).
    fire_on = join.on is not None and engine.faults.has_site("join_on_result")
    on_features: dict | None = None
    if fire_on:
        on_features = {
            **join.on_features,
            **ctx.flags,
            "statement": ctx.statement,
            "clause": "join_on",
            "in_subquery": ctx.in_subquery,
        }
    on_frame = Frame(schema, (), ctx.frame)
    on_ctx = ctx.with_frame(on_frame).with_clause("join_on")
    mode = engine.mode

    def on_matches(combined: Row) -> bool:
        if join.on is None:
            return True
        on_frame.row = combined
        verdict = truth(evaluate(join.on, on_ctx), mode)
        if fire_on:
            verdict = engine.faults.fire("join_on_result", on_features, verdict)
        return verdict is True

    rows: list[Row] = []
    kind = join.kind

    if kind in ("INNER", "CROSS"):
        engine.cov("exec.join.cross" if kind == "CROSS" else "exec.join.inner")
        for lrow in left_rows:
            for rrow in right_rows:
                combined = lrow + rrow
                if on_matches(combined):
                    rows.append(combined)
        return schema, rows

    if kind == "LEFT":
        engine.cov("exec.join.left")
        null_right = tuple([None] * right_width)
        for lrow in left_rows:
            matched = False
            for rrow in right_rows:
                combined = lrow + rrow
                if on_matches(combined):
                    rows.append(combined)
                    matched = True
            if not matched:
                engine.cov("exec.join.left.null_extend")
                rows.append(lrow + null_right)
        return schema, rows

    if kind == "RIGHT":
        engine.cov("exec.join.right")
        null_left = tuple([None] * left_width)
        for rrow in right_rows:
            matched = False
            for lrow in left_rows:
                combined = lrow + rrow
                if on_matches(combined):
                    rows.append(combined)
                    matched = True
            if not matched:
                engine.cov("exec.join.right.null_extend")
                rows.append(null_left + rrow)
        return schema, rows

    if kind == "FULL":
        engine.cov("exec.join.full")
        null_right = tuple([None] * right_width)
        null_left = tuple([None] * left_width)
        matched_right: set[int] = set()
        for lrow in left_rows:
            matched = False
            for ri, rrow in enumerate(right_rows):
                combined = lrow + rrow
                if on_matches(combined):
                    rows.append(combined)
                    matched = True
                    matched_right.add(ri)
            if not matched:
                engine.cov("exec.join.full.null_extend")
                rows.append(lrow + null_right)
        for ri, rrow in enumerate(right_rows):
            if ri not in matched_right:
                engine.cov("exec.join.full.null_extend")
                rows.append(null_left + rrow)
        return schema, rows

    raise SqlError(f"unknown join kind {kind!r}")


# ---------------------------------------------------------------------------
# Set operations, ORDER BY, LIMIT
# ---------------------------------------------------------------------------


def _apply_set_op(
    op: str, all_: bool, left: Materialized, right: Materialized, ctx: EvalCtx
) -> Materialized:
    engine = ctx.engine
    if len(left.columns) != len(right.columns):
        raise SqlError("set operation column count mismatch")
    if op == "UNION":
        if all_:
            engine.cov("exec.union_all")
            rows = left.rows + right.rows
        else:
            engine.cov("exec.union")
            rows, _ = _distinct(left.rows + right.rows, [])
    elif op == "INTERSECT":
        engine.cov("exec.intersect")
        right_keys = {row_sort_key(r) for r in right.rows}
        rows, _ = _distinct(
            [r for r in left.rows if row_sort_key(r) in right_keys], []
        )
    elif op == "EXCEPT":
        engine.cov("exec.except")
        right_keys = {row_sort_key(r) for r in right.rows}
        rows, _ = _distinct(
            [r for r in left.rows if row_sort_key(r) not in right_keys], []
        )
    else:
        raise SqlError(f"unknown set operation {op!r}")
    return Materialized(left.columns, rows)


def _apply_order(plan: SelectPlan, core: Materialized, ctx: EvalCtx) -> list[Row]:
    engine = ctx.engine
    engine.cov("exec.order")
    frames = getattr(core, "frames", None)
    rows = core.rows
    columns_lower = [c.lower() for c in core.columns]

    def key_for(i: int, row: Row) -> tuple:
        keys: list[tuple] = []
        for item in plan.order_by:
            expr = item.expr
            value: SqlValue
            if isinstance(expr, A.Literal) and isinstance(expr.value, int) and not isinstance(expr.value, bool):
                engine.cov("exec.order.positional")
                pos = expr.value
                if not (1 <= pos <= len(row)):
                    raise ValueError_(f"ORDER BY position {pos} out of range")
                value = row[pos - 1]
            elif (
                isinstance(expr, A.ColumnRef)
                and expr.table is None
                and expr.column.lower() in columns_lower
            ):
                engine.cov("exec.order.alias")
                value = row[columns_lower.index(expr.column.lower())]
            elif frames is not None:
                frame = frames[i]
                value = evaluate(
                    expr, ctx.with_frame(frame).with_clause("order_by")
                )
            else:
                raise SqlError(
                    "ORDER BY term must be an output column or position here"
                )
            k = row_sort_key((value,))
            keys.append(k if item.ascending else _Reversed(k))
        return tuple(keys)

    order_rows = sorted(
        range(len(rows)), key=lambda i: key_for(i, rows[i])
    )
    result = [rows[i] for i in order_rows]
    return engine.faults.fire(
        "order_rows", {"statement": ctx.statement, "clause": "order_by"}, result
    )


class _Reversed:
    """Inverts comparison for DESC sort keys."""

    __slots__ = ("key",)

    def __init__(self, key: tuple) -> None:
        self.key = key

    def __lt__(self, other: "_Reversed") -> bool:
        return other.key < self.key

    def __eq__(self, other: object) -> bool:
        return isinstance(other, _Reversed) and other.key == self.key


def _apply_limit_offset(plan: SelectPlan, rows: list[Row], ctx: EvalCtx) -> list[Row]:
    engine = ctx.engine
    if plan.limit is None and plan.offset is None:
        return rows
    limit_ctx = ctx.with_frame(None).with_clause("limit")
    offset = 0
    if plan.offset is not None:
        engine.cov("exec.offset")
        off_val = validate_limit(evaluate(plan.offset, limit_ctx))
        offset = max(0, off_val if off_val is not None else 0)
    out = rows[offset:]
    if plan.limit is not None:
        engine.cov("exec.limit")
        lim = validate_limit(evaluate(plan.limit, limit_ctx))
        if lim is not None and lim >= 0:
            out = out[:lim]
    return engine.faults.fire(
        "limit_rows", {"statement": ctx.statement, "clause": "limit"}, out
    )
