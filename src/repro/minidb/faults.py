"""Fault injection for MiniDB.

The paper evaluates CODDTest on five real DBMSs whose development
versions contained (unknown) bugs.  We reproduce that setting with
*injected faults*: each :class:`Fault` describes a bug modelled on one of
the paper's reported bug classes.  Faults are **context-sensitive**: a
trigger predicate inspects structured features of the evaluation site
(which clause, which statement, access path, expression shape, ...), just
as the real bugs required specific query shapes (e.g. the SQLite bug of
Listing 1 needs an aggregate subquery with GROUP BY under an indexed
outer query).

Because triggers depend on query *context*, a fault generally fires in
the original query but not in the auxiliary/folded queries (or vice
versa), which is exactly the asymmetry CODDTest exploits.  Whether each
baseline oracle can detect a fault is *measured* by the benchmark
harness, not hard-coded.

Fault sites instrumented in the engine:

========================  ====================================================
site                      fired when
========================  ====================================================
``where_result``          truth of a WHERE predicate for one row (SELECT)
``update_where_result``   truth of a WHERE predicate for one row (UPDATE)
``delete_where_result``   truth of a WHERE predicate for one row (DELETE)
``join_on_result``        truth of a JOIN ... ON predicate for one row pair
``having_result``         truth of a HAVING predicate for one group
``fetch_value``           value of a projection (fetch-clause) expression
``in_list_result``        result of ``expr IN (value, ...)``
``in_subquery_result``    result of ``expr IN (subquery)``
``case_result``           result of a CASE expression
``quantified_result``     result of ``expr op ANY/ALL (subquery)``
``exists_result``         result of ``EXISTS (subquery)``
``scalar_subquery``       result of a scalar subquery
``between_result``        result of ``[NOT] BETWEEN``
``like_result``           result of ``[NOT] LIKE``
``agg_finish``            final value of an aggregate (feature: ``func``)
``insert_select_rows``    row list produced by an INSERT ... SELECT source
``distinct_rows``         row list after DISTINCT elimination
``order_rows``            row list after ORDER BY
``group_rows``            group list after GROUP BY
``limit_rows``            row list after LIMIT/OFFSET
``values_rows``           row list produced by a VALUES table constructor
``parse``                 a statement was parsed (features: statement kind)
========================  ====================================================
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Any, Callable, Mapping

from repro.errors import EngineCrash, EngineHang, InternalError
from repro.minidb import ast_nodes as A

Features = Mapping[str, Any]
Trigger = Callable[[Features], bool]


class BugType(enum.Enum):
    """Bug categories of paper Table 1."""

    LOGIC = "logic"
    INTERNAL_ERROR = "internal error"
    CRASH = "crash"
    HANG = "hang"


class BugStatus(enum.Enum):
    """Report status categories of paper Table 1."""

    FIXED = "fixed"
    VERIFIED = "verified"


#: Effects a logic fault can apply to a predicate/value/row-list.
_VALUE_EFFECTS = {
    "force_true": lambda v: True,
    "force_false": lambda v: False,
    "force_null": lambda v: None,
    "invert": lambda v: (None if v is None else not v),
    "null_as_true": lambda v: (True if v is None else v),
    "null_as_false": lambda v: (False if v is None else v),
    "zero": lambda v: 0,
    "one": lambda v: 1,
    "negate_number": lambda v: (-v if isinstance(v, (int, float)) else v),
    "off_by_one": lambda v: (v + 1 if isinstance(v, (int, float)) else v),
    "stringify": lambda v: (str(v) if v is not None and not isinstance(v, str) else v),
    "empty_rows": lambda v: [],
    "drop_first_row": lambda v: v[1:],
    "dup_first_row": lambda v: (v + [v[0]] if v else v),
    "identity": lambda v: v,
}


@dataclass(frozen=True)
class Fault:
    """One injectable bug.

    ``paper_ref`` ties the fault back to the paper's bug description
    (listing number or Section 4 prose) so EXPERIMENTS.md can audit the
    catalog against the paper.
    """

    fault_id: str
    profile: str
    bug_type: BugType
    status: BugStatus
    description: str
    sites: frozenset[str]
    trigger: Trigger
    effect: str = "identity"
    paper_ref: str = ""
    #: Earliest "introduction year" used by the bug-latency analysis
    #: (paper Section 4.2, "Results on bugs introduction times").
    introduced_year: int = 2023

    def applies(self, site: str, features: Features) -> bool:
        if site not in self.sites:
            return False
        try:
            return bool(self.trigger(features))
        except Exception:  # trigger bugs must never mask engine behaviour
            return False

    def apply_effect(self, value: Any) -> Any:
        if self.bug_type is BugType.INTERNAL_ERROR:
            raise InternalError(f"injected internal error: {self.fault_id}")
        if self.bug_type is BugType.CRASH:
            raise EngineCrash(f"injected crash: {self.fault_id}")
        if self.bug_type is BugType.HANG:
            raise EngineHang(f"injected hang: {self.fault_id}")
        fn = _VALUE_EFFECTS.get(self.effect)
        if fn is None:
            raise ValueError(f"unknown fault effect {self.effect!r}")
        return fn(value)


class FaultInjector:
    """Holds the active fault set for one engine instance.

    ``fired`` accumulates the ids of faults that actually changed engine
    behaviour since the last :meth:`reset_fired`; the campaign runner uses
    this for ground-truth bug attribution and deduplication (the paper
    deduplicates reports before counting "unique bugs").
    """

    def __init__(self, faults: list[Fault] | None = None) -> None:
        self.faults: list[Fault] = list(faults or [])
        self.fired: set[str] = set()
        self._by_site: dict[str, list[Fault]] = {}
        self._rebuild()

    def _rebuild(self) -> None:
        self._by_site.clear()
        for fault in self.faults:
            for site in fault.sites:
                self._by_site.setdefault(site, []).append(fault)

    def set_faults(self, faults: list[Fault]) -> None:
        self.faults = list(faults)
        self._rebuild()

    def reset_fired(self) -> None:
        self.fired.clear()

    def fire(self, site: str, features: Features, value: Any) -> Any:
        """Apply every matching fault at *site* to *value* (in order)."""
        candidates = self._by_site.get(site)
        if not candidates:
            return value
        for fault in candidates:
            if fault.applies(site, features):
                self.fired.add(fault.fault_id)
                value = fault.apply_effect(value)
        return value

    def has_site(self, site: str) -> bool:
        """Whether any fault listens at *site*.  Hot paths check this
        before building the site-feature dict: with an empty catalog (the
        common faults-off campaign) the dict would be constructed per row
        only for :meth:`fire` to discard it."""
        return bool(self._by_site.get(site))

    @property
    def empty(self) -> bool:
        return not self.faults


# ---------------------------------------------------------------------------
# Expression feature extraction (for triggers)
# ---------------------------------------------------------------------------


def expr_features(expr: A.Expr, catalog: Any = None) -> dict[str, Any]:
    """Structural flags of an expression, consumed by fault triggers.

    Computed once per expression (the engine caches by node identity) so
    per-row fault hooks stay cheap.  When *catalog* (a
    :class:`~repro.minidb.catalog.Database`) is provided, subqueries over
    views inherit the view body's aggregate/GROUP BY flags -- the paper's
    Listing 1 routes its GROUP BY through a view.
    """
    flags = {
        "has_subquery": False,
        "has_agg_subquery": False,
        "has_group_by_subquery": False,
        "has_correlated_subquery": False,
        "has_exists": False,
        "has_in_list": False,
        "in_list_size": 0,
        "has_large_int": False,
        "has_in_subquery": False,
        "has_case": False,
        "has_quantified": False,
        "has_between": False,
        "has_not_between": False,
        "has_like": False,
        "has_avg": False,
        "has_version_fn": False,
        "has_cast": False,
        "has_is_null": False,
        "has_not": False,
        "has_concat": False,
        "subquery_no_from": False,
        "is_constant": True,
        "depth": 0,
        "node_count": 0,
    }
    _scan(expr, flags, 1, catalog)
    return flags


def _scan(expr: A.Expr, flags: dict[str, Any], depth: int, catalog: Any = None) -> None:
    flags["depth"] = max(flags["depth"], depth)
    flags["node_count"] += 1
    if isinstance(expr, A.ColumnRef):
        flags["is_constant"] = False
    elif isinstance(expr, A.Literal):
        if isinstance(expr.value, int) and abs(expr.value) > 2**31:
            flags["has_large_int"] = True
    elif isinstance(expr, A.InList):
        flags["has_in_list"] = True
        flags["in_list_size"] = max(flags["in_list_size"], len(expr.items))
    elif isinstance(expr, A.InSubquery):
        flags["has_in_subquery"] = True
    elif isinstance(expr, A.Case):
        flags["has_case"] = True
    elif isinstance(expr, A.Quantified):
        flags["has_quantified"] = True
    elif isinstance(expr, A.Between):
        flags["has_between"] = True
        if expr.negated:
            flags["has_not_between"] = True
    elif isinstance(expr, A.Exists):
        flags["has_exists"] = True
    elif isinstance(expr, A.IsNull):
        flags["has_is_null"] = True
    elif isinstance(expr, A.Cast):
        flags["has_cast"] = True
    elif isinstance(expr, A.Binary) and expr.op in ("LIKE", "NOT LIKE"):
        flags["has_like"] = True
    elif isinstance(expr, A.Binary) and expr.op == "||":
        flags["has_concat"] = True
    elif isinstance(expr, A.Unary) and expr.op.upper() == "NOT":
        flags["has_not"] = True
    elif isinstance(expr, A.FuncCall):
        name = expr.name.upper()
        if name == "AVG":
            flags["has_avg"] = True
        if name == "VERSION":
            flags["has_version_fn"] = True
    if isinstance(expr, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)):
        flags["has_subquery"] = True
        flags["is_constant"] = False  # conservatively treat as non-constant
        if _select_chain_has_no_from(expr.query):
            flags["subquery_no_from"] = True
        _scan_select(expr.query, flags, catalog)
    for child in expr.children():
        _scan(child, flags, depth + 1, catalog)


def _scan_select(select: A.Select, flags: dict[str, Any], catalog: Any = None) -> None:
    from repro.minidb.ast_nodes import column_refs

    own_tables = _select_binding_names(select)
    if catalog is not None:
        _absorb_view_flags(select.from_clause, flags, catalog, set())
    for item in select.items:
        if item.expr is None:
            continue
        for node in A.walk(item.expr):
            if isinstance(node, A.FuncCall) and node.name.upper() in (
                "COUNT",
                "SUM",
                "AVG",
                "MIN",
                "MAX",
            ):
                flags["has_agg_subquery"] = True
        for ref in column_refs(item.expr):
            if ref.table is not None and ref.table not in own_tables:
                flags["has_correlated_subquery"] = True
    if select.group_by:
        flags["has_group_by_subquery"] = True
    if select.where is not None:
        for ref in column_refs(select.where):
            if ref.table is not None and ref.table not in own_tables:
                flags["has_correlated_subquery"] = True


def _absorb_view_flags(
    ref: A.TableRef | None, flags: dict[str, Any], catalog: Any, seen: set[str]
) -> None:
    """Fold a referenced view's aggregate/GROUP BY structure into the
    subquery flags (Listing 1 reaches its GROUP BY through a view)."""
    if ref is None:
        return
    if isinstance(ref, A.NamedTable):
        key = ref.name.lower()
        if key in seen:
            return
        seen.add(key)
        view = catalog.views.get(key) if hasattr(catalog, "views") else None
        if view is not None:
            body = view.query
            if body.group_by:
                flags["has_group_by_subquery"] = True
            for item in body.items:
                if item.expr is None:
                    continue
                for node in A.walk(item.expr):
                    if isinstance(node, A.FuncCall) and node.name.upper() in (
                        "COUNT", "SUM", "AVG", "MIN", "MAX",
                    ):
                        flags["has_agg_subquery"] = True
            _absorb_view_flags(body.from_clause, flags, catalog, seen)
    elif isinstance(ref, A.Join):
        _absorb_view_flags(ref.left, flags, catalog, seen)
        _absorb_view_flags(ref.right, flags, catalog, seen)
    elif isinstance(ref, A.DerivedTable):
        _absorb_view_flags(ref.query.from_clause, flags, catalog, seen)


def _select_chain_has_no_from(select: A.Select) -> bool:
    """True when every arm of a (possibly compound) SELECT lacks a FROM
    clause -- the shape of the ``UNION`` chains CODDTest substitutes for
    folded value lists (paper Section 3.3)."""
    if select.from_clause is not None:
        return False
    if select.set_op is not None:
        return _select_chain_has_no_from(select.set_op[2])
    return True


def _select_binding_names(select: A.Select) -> set[str]:
    names: set[str] = set()

    def visit(ref: A.TableRef | None) -> None:
        if ref is None:
            return
        if isinstance(ref, A.NamedTable):
            names.add(ref.binding)
        elif isinstance(ref, (A.DerivedTable, A.ValuesTable)):
            names.add(ref.alias)
        elif isinstance(ref, A.Join):
            visit(ref.left)
            visit(ref.right)

    visit(select.from_clause)
    for cte in select.ctes:
        names.add(cte.name)
    return names


def always(_features: Features) -> bool:
    """Trigger that always fires at its sites."""
    return True


def feature_is(**conditions: Any) -> Trigger:
    """Trigger matching exact feature values, e.g.
    ``feature_is(statement="SELECT", access_path="index_scan")``."""

    def trig(features: Features) -> bool:
        return all(features.get(k) == v for k, v in conditions.items())

    return trig


def feature_true(*names: str) -> Trigger:
    """Trigger requiring all the named features to be truthy."""

    def trig(features: Features) -> bool:
        return all(features.get(n) for n in names)

    return trig


def all_of(*triggers: Trigger) -> Trigger:
    def trig(features: Features) -> bool:
        return all(t(features) for t in triggers)

    return trig


def any_of(*triggers: Trigger) -> Trigger:
    def trig(features: Features) -> bool:
        return any(t(features) for t in triggers)

    return trig
