"""Scalar SQL functions for MiniDB.

Only deterministic functions are registered: the paper notes that the
approach "lacks support for expressions with non-deterministic functions"
(Section 5), so even ``VERSION()`` is deterministic here (the TiDB bug of
Listing 6 is reproduced by a fault keyed on the *presence* of VERSION in
an INSERT ... SELECT predicate, not on nondeterminism).
"""

from __future__ import annotations

from typing import Callable

from repro.errors import ValueError_
from repro.minidb.values import (
    SqlType,
    SqlValue,
    TypingMode,
    cast,
    compare,
    to_text,
    type_of,
)

#: Shaped like MySQL/TiDB version strings ("5.7.25-TiDB-..."): relaxed
#: text-to-number coercion yields a numeric prefix, so predicates like
#: ``VERSION() >= t0.c0`` (paper Listing 6) retrieve rows.
ENGINE_VERSION = "8.0.11-minidb"

ScalarFn = Callable[[list[SqlValue], TypingMode], SqlValue]


def _fn_length(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    (v,) = args
    if v is None:
        return None
    return len(to_text(v))


def _fn_upper(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    (v,) = args
    if v is None:
        return None
    return to_text(v).upper()


def _fn_lower(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    (v,) = args
    if v is None:
        return None
    return to_text(v).lower()


def _fn_abs(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    (v,) = args
    if v is None:
        return None
    casted = cast(v, SqlType.REAL, mode)
    assert isinstance(casted, float)
    result = abs(casted)
    if isinstance(v, int) and not isinstance(v, bool):
        return abs(v)
    return result


def _fn_coalesce(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    for v in args:
        if v is not None:
            return v
    return None


def _fn_nullif(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    a, b = args
    c = compare(a, b, mode)
    if c == 0:
        return None
    return a


def _fn_ifnull(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    a, b = args
    return a if a is not None else b


def _fn_substr(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    if len(args) == 2:
        text, start = args
        length: SqlValue = None
    else:
        text, start, length = args
    if text is None or start is None:
        return None
    s = to_text(text)
    start_i = int(cast(start, SqlType.INTEGER, mode))  # type: ignore[arg-type]
    # SQLite semantics: 1-based, 0 and negatives count from the end-ish.
    if start_i > 0:
        begin = start_i - 1
    elif start_i == 0:
        begin = 0
    else:
        begin = max(0, len(s) + start_i)
    if length is None:
        return s[begin:]
    length_i = int(cast(length, SqlType.INTEGER, mode))  # type: ignore[arg-type]
    if length_i < 0:
        return ""
    return s[begin : begin + length_i]


def _fn_round(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    v = args[0]
    digits = args[1] if len(args) > 1 else 0
    if v is None or digits is None:
        return None
    n = cast(v, SqlType.REAL, mode)
    d = int(cast(digits, SqlType.INTEGER, mode))  # type: ignore[arg-type]
    assert isinstance(n, float)
    return float(round(n, d))


def _fn_typeof(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    (v,) = args
    return str(type_of(v))


def _fn_version(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    return ENGINE_VERSION


def _fn_min_scalar(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    return _minmax(args, mode, smallest=True)


def _fn_max_scalar(args: list[SqlValue], mode: TypingMode) -> SqlValue:
    return _minmax(args, mode, smallest=False)


def _minmax(args: list[SqlValue], mode: TypingMode, smallest: bool) -> SqlValue:
    best: SqlValue = None
    for v in args:
        if v is None:
            return None  # SQLite scalar min/max: NULL if any arg NULL
        if best is None:
            best = v
            continue
        c = compare(v, best, mode)
        assert c is not None
        if (c < 0) == smallest and c != 0:
            best = v
    return best


#: name -> (min_args, max_args, implementation)
SCALAR_FUNCTIONS: dict[str, tuple[int, int, ScalarFn]] = {
    "LENGTH": (1, 1, _fn_length),
    "UPPER": (1, 1, _fn_upper),
    "LOWER": (1, 1, _fn_lower),
    "ABS": (1, 1, _fn_abs),
    "COALESCE": (1, 8, _fn_coalesce),
    "NULLIF": (2, 2, _fn_nullif),
    "IFNULL": (2, 2, _fn_ifnull),
    "SUBSTR": (2, 3, _fn_substr),
    "ROUND": (1, 2, _fn_round),
    "TYPEOF": (1, 1, _fn_typeof),
    "VERSION": (0, 0, _fn_version),
}

#: Scalar MIN/MAX (two or more args) share names with the aggregates;
#: the evaluator dispatches on argument count and aggregation context.
VARIADIC_MINMAX: dict[str, ScalarFn] = {
    "MIN": _fn_min_scalar,
    "MAX": _fn_max_scalar,
}

AGGREGATE_NAMES = frozenset({"COUNT", "SUM", "AVG", "MIN", "MAX", "TOTAL"})


def call_scalar(name: str, args: list[SqlValue], mode: TypingMode) -> SqlValue:
    """Invoke a scalar function by (upper-case) name."""
    spec = SCALAR_FUNCTIONS.get(name)
    if spec is None:
        raise ValueError_(f"no such function: {name}")
    lo, hi, fn = spec
    if not (lo <= len(args) <= hi):
        raise ValueError_(f"wrong number of arguments to {name}()")
    return fn(args, mode)
