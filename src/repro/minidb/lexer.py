"""SQL tokenizer for MiniDB."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import ParseError

KEYWORDS = {
    "ALL", "AND", "ANY", "AS", "ASC", "BETWEEN", "BY", "CASE", "CAST",
    "CREATE", "CROSS", "DELETE", "DESC", "DISTINCT", "DROP", "ELSE", "END",
    "EXCEPT", "EXISTS", "FALSE", "FROM", "FULL", "GROUP", "HAVING", "IF",
    "IN", "INDEX", "INDEXED", "INNER", "INSERT", "INTERSECT", "INTO", "IS",
    "JOIN", "KEY", "LEFT", "LIKE", "LIMIT", "NOT", "NULL", "OFFSET", "ON",
    "OR", "ORDER", "OUTER", "PRIMARY", "RIGHT", "SELECT", "SET", "SOME",
    "TABLE", "THEN", "TRUE", "UNION", "UNIQUE", "UPDATE", "VALUES", "VIEW",
    "WHEN", "WHERE", "WITH",
}

OPERATORS = [
    "||", "<=", ">=", "<>", "!=", "=", "<", ">", "+", "-", "*", "/", "%",
    "(", ")", ",", ".", ";",
]


@dataclass(frozen=True)
class Token:
    """A single lexical token."""

    kind: str  # KEYWORD, IDENT, INT, FLOAT, STRING, OP, EOF
    text: str
    value: object = None
    pos: int = 0


def tokenize(sql: str) -> list[Token]:
    """Tokenize *sql*, raising :class:`ParseError` on invalid input."""
    tokens: list[Token] = []
    i = 0
    n = len(sql)
    while i < n:
        ch = sql[i]
        if ch.isspace():
            i += 1
            continue
        if sql.startswith("--", i):
            end = sql.find("\n", i)
            i = n if end == -1 else end + 1
            continue
        if ch == "'":
            text, value, i = _read_string(sql, i)
            tokens.append(Token("STRING", text, value, i))
            continue
        if ch == '"':
            # Double-quoted identifier.
            end = sql.find('"', i + 1)
            if end == -1:
                raise ParseError("unterminated quoted identifier", i)
            name = sql[i + 1 : end]
            tokens.append(Token("IDENT", name, name, i))
            i = end + 1
            continue
        if ch.isdigit() or (ch == "." and i + 1 < n and sql[i + 1].isdigit()):
            text, value, i = _read_number(sql, i)
            kind = "FLOAT" if isinstance(value, float) else "INT"
            tokens.append(Token(kind, text, value, i))
            continue
        if ch.isalpha() or ch == "_":
            start = i
            while i < n and (sql[i].isalnum() or sql[i] == "_"):
                i += 1
            word = sql[start:i]
            upper = word.upper()
            if upper in KEYWORDS:
                tokens.append(Token("KEYWORD", upper, upper, start))
            else:
                tokens.append(Token("IDENT", word, word, start))
            continue
        matched = False
        for op in OPERATORS:
            if sql.startswith(op, i):
                tokens.append(Token("OP", op, op, i))
                i += len(op)
                matched = True
                break
        if not matched:
            raise ParseError(f"unexpected character {ch!r}", i)
    tokens.append(Token("EOF", "", None, n))
    return tokens


def _read_string(sql: str, i: int) -> tuple[str, str, int]:
    """Read a single-quoted string with ``''`` escaping."""
    start = i
    i += 1
    chunks: list[str] = []
    while i < len(sql):
        ch = sql[i]
        if ch == "'":
            if i + 1 < len(sql) and sql[i + 1] == "'":
                chunks.append("'")
                i += 2
                continue
            return sql[start : i + 1], "".join(chunks), i + 1
        chunks.append(ch)
        i += 1
    raise ParseError("unterminated string literal", start)


def _read_number(sql: str, i: int) -> tuple[str, int | float, int]:
    start = i
    n = len(sql)
    seen_dot = False
    seen_exp = False
    while i < n:
        ch = sql[i]
        if ch.isdigit():
            i += 1
        elif ch == "." and not seen_dot and not seen_exp:
            seen_dot = True
            i += 1
        elif ch in "eE" and not seen_exp and i > start:
            nxt = sql[i + 1] if i + 1 < n else ""
            if nxt.isdigit() or (
                nxt in "+-" and i + 2 < n and sql[i + 2].isdigit()
            ):
                seen_exp = True
                i += 2 if nxt in "+-" else 1
            else:
                break
        else:
            break
    text = sql[start:i]
    if seen_dot or seen_exp:
        return text, float(text), i
    return text, int(text), i
