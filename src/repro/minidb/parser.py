"""Recursive-descent SQL parser for MiniDB.

Produces the AST of :mod:`repro.minidb.ast_nodes`.  The grammar covers the
dialect the paper's generators exercise: SELECT with joins / grouping /
set operations / CTEs, subqueries in expressions (EXISTS, IN, quantified
comparisons, scalar), CASE, CAST, INSERT/UPDATE/DELETE, and the DDL the
state generator emits (tables, expression/partial indexes, views).
"""

from __future__ import annotations

from repro.errors import ParseError
from repro.minidb import ast_nodes as A
from repro.minidb.lexer import Token, tokenize


def parse_statement(sql: str) -> A.Statement:
    """Parse a single SQL statement (trailing ``;`` allowed)."""
    parser = _Parser(tokenize(sql))
    stmt = parser.statement()
    parser.skip_op(";")
    parser.expect_eof()
    return stmt


def parse_expression(sql: str) -> A.Expr:
    """Parse a standalone SQL expression (used in tests and by tools)."""
    parser = _Parser(tokenize(sql))
    expr = parser.expr()
    parser.expect_eof()
    return expr


class _Parser:
    def __init__(self, tokens: list[Token]) -> None:
        self._tokens = tokens
        self._pos = 0

    # -- token helpers ----------------------------------------------------

    def peek(self, offset: int = 0) -> Token:
        idx = min(self._pos + offset, len(self._tokens) - 1)
        return self._tokens[idx]

    def advance(self) -> Token:
        tok = self._tokens[self._pos]
        if tok.kind != "EOF":
            self._pos += 1
        return tok

    def at_keyword(self, *words: str) -> bool:
        tok = self.peek()
        return tok.kind == "KEYWORD" and tok.text in words

    def accept_keyword(self, *words: str) -> Token | None:
        if self.at_keyword(*words):
            return self.advance()
        return None

    def expect_keyword(self, word: str) -> Token:
        tok = self.accept_keyword(word)
        if tok is None:
            got = self.peek()
            raise ParseError(f"expected {word}, got {got.text!r}", got.pos)
        return tok

    def at_op(self, *ops: str) -> bool:
        tok = self.peek()
        return tok.kind == "OP" and tok.text in ops

    def accept_op(self, *ops: str) -> Token | None:
        if self.at_op(*ops):
            return self.advance()
        return None

    def expect_op(self, op: str) -> Token:
        tok = self.accept_op(op)
        if tok is None:
            got = self.peek()
            raise ParseError(f"expected {op!r}, got {got.text!r}", got.pos)
        return tok

    def skip_op(self, op: str) -> None:
        while self.at_op(op):
            self.advance()

    def ident(self) -> str:
        tok = self.peek()
        if tok.kind == "IDENT":
            self.advance()
            return tok.text
        raise ParseError(f"expected identifier, got {tok.text!r}", tok.pos)

    def expect_eof(self) -> None:
        tok = self.peek()
        if tok.kind != "EOF":
            raise ParseError(f"unexpected trailing input {tok.text!r}", tok.pos)

    # -- statements -------------------------------------------------------

    def statement(self) -> A.Statement:
        if self.at_keyword("SELECT", "WITH", "VALUES"):
            return self.select()
        if self.at_keyword("INSERT"):
            return self.insert()
        if self.at_keyword("UPDATE"):
            return self.update()
        if self.at_keyword("DELETE"):
            return self.delete()
        if self.at_keyword("CREATE"):
            return self.create()
        if self.at_keyword("DROP"):
            return self.drop()
        tok = self.peek()
        raise ParseError(f"unexpected statement start {tok.text!r}", tok.pos)

    def create(self) -> A.Statement:
        self.expect_keyword("CREATE")
        if self.accept_keyword("TABLE"):
            return self._create_table()
        unique = self.accept_keyword("UNIQUE") is not None
        if self.accept_keyword("INDEX"):
            return self._create_index(unique)
        if unique:
            tok = self.peek()
            raise ParseError("expected INDEX after UNIQUE", tok.pos)
        if self.accept_keyword("VIEW"):
            return self._create_view()
        tok = self.peek()
        raise ParseError(f"cannot CREATE {tok.text!r}", tok.pos)

    def _create_table(self) -> A.CreateTable:
        if_not_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("NOT")
            self.expect_keyword("EXISTS")
            if_not_exists = True
        name = self.ident()
        self.expect_op("(")
        columns: list[A.ColumnDef] = []
        while True:
            col_name = self.ident()
            type_name: str | None = None
            tok = self.peek()
            if tok.kind == "IDENT":
                self.advance()
                type_name = tok.text.upper()
                # Accept e.g. VARCHAR(10)
                if self.at_op("("):
                    self.advance()
                    while not self.at_op(")"):
                        self.advance()
                    self.expect_op(")")
            not_null = False
            primary_key = False
            while True:
                if self.accept_keyword("NOT"):
                    self.expect_keyword("NULL")
                    not_null = True
                elif self.accept_keyword("PRIMARY"):
                    self.expect_keyword("KEY")
                    primary_key = True
                else:
                    break
            columns.append(A.ColumnDef(col_name, type_name, not_null, primary_key))
            if not self.accept_op(","):
                break
        self.expect_op(")")
        return A.CreateTable(name, tuple(columns), if_not_exists)

    def _create_index(self, unique: bool) -> A.CreateIndex:
        name = self.ident()
        self.expect_keyword("ON")
        table = self.ident()
        self.expect_op("(")
        exprs: list[A.Expr] = [self.expr()]
        while self.accept_op(","):
            exprs.append(self.expr())
        self.expect_op(")")
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expr()
        return A.CreateIndex(name, table, tuple(exprs), where, unique)

    def _create_view(self) -> A.CreateView:
        name = self.ident()
        columns: tuple[str, ...] = ()
        if self.accept_op("("):
            cols = [self.ident()]
            while self.accept_op(","):
                cols.append(self.ident())
            self.expect_op(")")
            columns = tuple(cols)
        self.expect_keyword("AS")
        query = self.select()
        return A.CreateView(name, columns, query)

    def drop(self) -> A.Drop:
        self.expect_keyword("DROP")
        tok = self.peek()
        if not self.at_keyword("TABLE", "VIEW", "INDEX"):
            raise ParseError(f"cannot DROP {tok.text!r}", tok.pos)
        kind = self.advance().text
        if_exists = False
        if self.accept_keyword("IF"):
            self.expect_keyword("EXISTS")
            if_exists = True
        name = self.ident()
        return A.Drop(kind, name, if_exists)

    def insert(self) -> A.Insert:
        self.expect_keyword("INSERT")
        self.expect_keyword("INTO")
        table = self.ident()
        columns: tuple[str, ...] = ()
        if self.at_op("(") :
            self.advance()
            cols = [self.ident()]
            while self.accept_op(","):
                cols.append(self.ident())
            self.expect_op(")")
            columns = tuple(cols)
        if self.at_keyword("VALUES"):
            source: A.ValuesSource | A.Select = self.values_source()
        else:
            source = self.select()
        return A.Insert(table, columns, source)

    def values_source(self) -> A.ValuesSource:
        self.expect_keyword("VALUES")
        rows: list[tuple[A.Expr, ...]] = []
        while True:
            self.expect_op("(")
            row: list[A.Expr] = [self.expr()]
            while self.accept_op(","):
                row.append(self.expr())
            self.expect_op(")")
            rows.append(tuple(row))
            if not self.accept_op(","):
                break
        return A.ValuesSource(tuple(rows))

    def update(self) -> A.Update:
        self.expect_keyword("UPDATE")
        table = self.ident()
        self.expect_keyword("SET")
        assignments: list[tuple[str, A.Expr]] = []
        while True:
            col = self.ident()
            self.expect_op("=")
            assignments.append((col, self.expr()))
            if not self.accept_op(","):
                break
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expr()
        return A.Update(table, tuple(assignments), where)

    def delete(self) -> A.Delete:
        self.expect_keyword("DELETE")
        self.expect_keyword("FROM")
        table = self.ident()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expr()
        return A.Delete(table, where)

    # -- SELECT -----------------------------------------------------------

    def select(self) -> A.Select:
        ctes: tuple[A.Cte, ...] = ()
        if self.accept_keyword("WITH"):
            cte_list: list[A.Cte] = [self._cte()]
            while self.accept_op(","):
                cte_list.append(self._cte())
            ctes = tuple(cte_list)
        core = self._select_core()
        core = A.Select(**{**_fields(core), "ctes": ctes})
        # set operations (left-associative chain encoded right-nested)
        while self.at_keyword("UNION", "INTERSECT", "EXCEPT"):
            op = self.advance().text
            all_ = self.accept_keyword("ALL") is not None
            rhs = self._select_core()
            core = _attach_set_op(core, op, all_, rhs)
        order_by: list[A.OrderItem] = []
        if self.accept_keyword("ORDER"):
            self.expect_keyword("BY")
            order_by.append(self._order_item())
            while self.accept_op(","):
                order_by.append(self._order_item())
        limit = offset = None
        if self.accept_keyword("LIMIT"):
            limit = self.expr()
        if self.accept_keyword("OFFSET"):
            offset = self.expr()
        if order_by or limit is not None or offset is not None:
            core = A.Select(
                **{
                    **_fields(core),
                    "order_by": tuple(order_by),
                    "limit": limit,
                    "offset": offset,
                }
            )
        return core

    def _cte(self) -> A.Cte:
        name = self.ident()
        columns: tuple[str, ...] = ()
        if self.accept_op("("):
            cols = [self.ident()]
            while self.accept_op(","):
                cols.append(self.ident())
            self.expect_op(")")
            columns = tuple(cols)
        self.expect_keyword("AS")
        self.expect_op("(")
        if self.at_keyword("VALUES"):
            body: A.Select | A.ValuesSource = self.values_source()
        else:
            body = self.select()
        self.expect_op(")")
        return A.Cte(name, columns, body)

    def _select_core(self) -> A.Select:
        if self.at_keyword("VALUES"):
            # Top-level VALUES: model as SELECT * FROM (VALUES ...) vt
            values = self.values_source()
            width = len(values.rows[0]) if values.rows else 0
            aliases = tuple(f"column{i + 1}" for i in range(width))
            return A.Select(
                items=(A.SelectItem(None),),
                from_clause=A.ValuesTable(values.rows, "_values", aliases),
            )
        self.expect_keyword("SELECT")
        distinct = self.accept_keyword("DISTINCT") is not None
        self.accept_keyword("ALL")
        items: list[A.SelectItem] = [self._select_item()]
        while self.accept_op(","):
            items.append(self._select_item())
        from_clause = None
        if self.accept_keyword("FROM"):
            from_clause = self._table_ref()
        where = None
        if self.accept_keyword("WHERE"):
            where = self.expr()
        group_by: tuple[A.Expr, ...] = ()
        if self.accept_keyword("GROUP"):
            self.expect_keyword("BY")
            groups = [self.expr()]
            while self.accept_op(","):
                groups.append(self.expr())
            group_by = tuple(groups)
        having = None
        if self.accept_keyword("HAVING"):
            having = self.expr()
        return A.Select(
            items=tuple(items),
            from_clause=from_clause,
            where=where,
            group_by=group_by,
            having=having,
            distinct=distinct,
        )

    def _select_item(self) -> A.SelectItem:
        if self.at_op("*"):
            self.advance()
            return A.SelectItem(None)
        # t.* pattern
        tok = self.peek()
        if (
            tok.kind == "IDENT"
            and self.peek(1).kind == "OP"
            and self.peek(1).text == "."
            and self.peek(2).kind == "OP"
            and self.peek(2).text == "*"
        ):
            self.advance()
            self.advance()
            self.advance()
            return A.SelectItem(None, table_star=tok.text)
        expr = self.expr()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.ident()
        elif self.peek().kind == "IDENT":
            alias = self.ident()
        return A.SelectItem(expr, alias)

    def _order_item(self) -> A.OrderItem:
        expr = self.expr()
        ascending = True
        if self.accept_keyword("DESC"):
            ascending = False
        else:
            self.accept_keyword("ASC")
        return A.OrderItem(expr, ascending)

    # -- FROM clause ------------------------------------------------------

    def _table_ref(self) -> A.TableRef:
        left = self._join_chain()
        while self.accept_op(","):
            right = self._join_chain()
            left = A.Join("CROSS", left, right, None)
        return left

    def _join_chain(self) -> A.TableRef:
        left = self._table_primary()
        while True:
            kind: str | None = None
            if self.accept_keyword("CROSS"):
                self.expect_keyword("JOIN")
                kind = "CROSS"
            elif self.accept_keyword("INNER"):
                self.expect_keyword("JOIN")
                kind = "INNER"
            elif self.accept_keyword("LEFT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "LEFT"
            elif self.accept_keyword("RIGHT"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "RIGHT"
            elif self.accept_keyword("FULL"):
                self.accept_keyword("OUTER")
                self.expect_keyword("JOIN")
                kind = "FULL"
            elif self.accept_keyword("JOIN"):
                kind = "INNER"
            else:
                return left
            right = self._table_primary()
            on = None
            if self.accept_keyword("ON"):
                on = self.expr()
            left = A.Join(kind, left, right, on)

    def _table_primary(self) -> A.TableRef:
        if self.accept_op("("):
            if self.at_keyword("VALUES"):
                values = self.values_source()
                self.expect_op(")")
                alias, col_aliases = self._alias_with_columns(required=True)
                return A.ValuesTable(values.rows, alias, col_aliases)
            if self.at_keyword("SELECT", "WITH"):
                query = self.select()
                self.expect_op(")")
                alias, col_aliases = self._alias_with_columns(required=True)
                return A.DerivedTable(query, alias, col_aliases)
            # Parenthesized table reference.
            inner = self._table_ref()
            self.expect_op(")")
            return inner
        name = self.ident()
        alias = None
        if self.accept_keyword("AS"):
            alias = self.ident()
        elif self.peek().kind == "IDENT":
            alias = self.ident()
        indexed_by = None
        if self.accept_keyword("INDEXED"):
            self.expect_keyword("BY")
            indexed_by = self.ident()
        return A.NamedTable(name, alias, indexed_by)

    def _alias_with_columns(self, required: bool) -> tuple[str, tuple[str, ...]]:
        self.accept_keyword("AS")
        tok = self.peek()
        if tok.kind != "IDENT":
            if required:
                raise ParseError("derived table requires an alias", tok.pos)
            return "", ()
        alias = self.ident()
        col_aliases: tuple[str, ...] = ()
        if self.accept_op("("):
            cols = [self.ident()]
            while self.accept_op(","):
                cols.append(self.ident())
            self.expect_op(")")
            col_aliases = tuple(cols)
        return alias, col_aliases

    # -- expressions --------------------------------------------------------

    def expr(self) -> A.Expr:
        return self._or_expr()

    def _or_expr(self) -> A.Expr:
        left = self._and_expr()
        while self.accept_keyword("OR"):
            left = A.Binary("OR", left, self._and_expr())
        return left

    def _and_expr(self) -> A.Expr:
        left = self._not_expr()
        while self.accept_keyword("AND"):
            left = A.Binary("AND", left, self._not_expr())
        return left

    def _not_expr(self) -> A.Expr:
        if self.accept_keyword("NOT"):
            # NOT EXISTS is its own construct (engines treat it as an
            # anti-join, distinct from negating an EXISTS result).
            if self.at_keyword("EXISTS"):
                self.advance()
                self.expect_op("(")
                query = self.select()
                self.expect_op(")")
                return A.Exists(query, negated=True)
            return A.Unary("NOT", self._not_expr())
        return self._comparison()

    def _comparison(self) -> A.Expr:
        left = self._additive()
        while True:
            if self.at_op("=", "!=", "<>", "<", "<=", ">", ">="):
                op = self.advance().text
                if op == "<>":
                    op = "!="
                if self.at_keyword("ANY", "ALL", "SOME"):
                    quant = self.advance().text
                    self.expect_op("(")
                    query = self.select()
                    self.expect_op(")")
                    left = A.Quantified(left, op, quant, query)
                else:
                    left = A.Binary(op, left, self._additive())
                continue
            negated = False
            save = self._pos
            if self.accept_keyword("NOT"):
                if self.at_keyword("BETWEEN", "IN", "LIKE"):
                    negated = True
                else:
                    self._pos = save
                    break
            if self.accept_keyword("BETWEEN"):
                low = self._additive()
                self.expect_keyword("AND")
                high = self._additive()
                left = A.Between(left, low, high, negated)
                continue
            if self.accept_keyword("IN"):
                self.expect_op("(")
                if self.at_keyword("SELECT", "WITH"):
                    query = self.select()
                    self.expect_op(")")
                    left = A.InSubquery(left, query, negated)
                else:
                    items = [self.expr()]
                    while self.accept_op(","):
                        items.append(self.expr())
                    self.expect_op(")")
                    left = A.InList(left, tuple(items), negated)
                continue
            if self.accept_keyword("LIKE"):
                pattern = self._additive()
                op_name = "NOT LIKE" if negated else "LIKE"
                left = A.Binary(op_name, left, pattern)
                continue
            if self.accept_keyword("IS"):
                is_not = self.accept_keyword("NOT") is not None
                if self.accept_keyword("NULL"):
                    left = A.IsNull(left, is_not)
                else:
                    right = self._additive()
                    left = A.Binary("IS NOT" if is_not else "IS", left, right)
                continue
            break
        return left

    def _additive(self) -> A.Expr:
        left = self._multiplicative()
        while self.at_op("+", "-", "||"):
            op = self.advance().text
            left = A.Binary(op, left, self._multiplicative())
        return left

    def _multiplicative(self) -> A.Expr:
        left = self._unary()
        while self.at_op("*", "/", "%"):
            op = self.advance().text
            left = A.Binary(op, left, self._unary())
        return left

    def _unary(self) -> A.Expr:
        if self.at_op("-"):
            self.advance()
            return A.Unary("-", self._unary())
        if self.at_op("+"):
            self.advance()
            return self._unary()
        return self._primary()

    def _primary(self) -> A.Expr:
        tok = self.peek()
        if tok.kind in ("INT", "FLOAT", "STRING"):
            self.advance()
            return A.Literal(tok.value)  # type: ignore[arg-type]
        if self.accept_keyword("NULL"):
            return A.Literal(None)
        if self.accept_keyword("TRUE"):
            return A.Literal(True)
        if self.accept_keyword("FALSE"):
            return A.Literal(False)
        if self.accept_keyword("CAST"):
            self.expect_op("(")
            inner = self.expr()
            self.expect_keyword("AS")
            type_tok = self.peek()
            if type_tok.kind != "IDENT" and type_tok.kind != "KEYWORD":
                raise ParseError("expected type name in CAST", type_tok.pos)
            self.advance()
            self.expect_op(")")
            return A.Cast(inner, type_tok.text.upper())
        if self.accept_keyword("CASE"):
            return self._case()
        if self.accept_keyword("EXISTS"):
            self.expect_op("(")
            query = self.select()
            self.expect_op(")")
            return A.Exists(query)
        if self.at_keyword("NOT"):
            # NOT EXISTS handled in _not_expr; bare NOT here is an error.
            raise ParseError("misplaced NOT", tok.pos)
        if self.accept_op("("):
            if self.at_keyword("SELECT", "WITH"):
                query = self.select()
                self.expect_op(")")
                return A.ScalarSubquery(query)
            inner = self.expr()
            self.expect_op(")")
            return inner
        if tok.kind == "IDENT":
            # function call?
            if self.peek(1).kind == "OP" and self.peek(1).text == "(":
                return self._func_call()
            self.advance()
            if self.at_op(".") and self.peek(1).kind == "IDENT":
                self.advance()
                column = self.ident()
                return A.ColumnRef(tok.text, column)
            return A.ColumnRef(None, tok.text)
        raise ParseError(f"unexpected token {tok.text!r} in expression", tok.pos)

    def _func_call(self) -> A.Expr:
        name = self.ident().upper()
        self.expect_op("(")
        if self.at_op("*"):
            self.advance()
            self.expect_op(")")
            return A.FuncCall(name, (), star=True)
        distinct = self.accept_keyword("DISTINCT") is not None
        args: list[A.Expr] = []
        if not self.at_op(")"):
            args.append(self.expr())
            while self.accept_op(","):
                args.append(self.expr())
        self.expect_op(")")
        return A.FuncCall(name, tuple(args), distinct=distinct)

    def _case(self) -> A.Expr:
        operand = None
        if not self.at_keyword("WHEN"):
            operand = self.expr()
        whens: list[A.CaseWhen] = []
        while self.accept_keyword("WHEN"):
            cond = self.expr()
            self.expect_keyword("THEN")
            result = self.expr()
            whens.append(A.CaseWhen(cond, result))
        else_ = None
        if self.accept_keyword("ELSE"):
            else_ = self.expr()
        self.expect_keyword("END")
        if not whens:
            tok = self.peek()
            raise ParseError("CASE requires at least one WHEN", tok.pos)
        return A.Case(operand, tuple(whens), else_)


def _fields(select: A.Select) -> dict:
    """Dataclass fields of a Select as a dict (for functional updates)."""
    import dataclasses

    return {f.name: getattr(select, f.name) for f in dataclasses.fields(select)}


def _attach_set_op(left: A.Select, op: str, all_: bool, right: A.Select) -> A.Select:
    """Attach a set operation at the end of the existing chain."""
    if left.set_op is None:
        return A.Select(**{**_fields(left), "set_op": (op, all_, right)})
    inner_op, inner_all, inner_rhs = left.set_op
    new_rhs = _attach_set_op(inner_rhs, op, all_, right)
    return A.Select(**{**_fields(left), "set_op": (inner_op, inner_all, new_rhs)})
