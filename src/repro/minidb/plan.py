"""Logical plans for MiniDB SELECT execution.

A :class:`SelectPlan` is the planned form of one SELECT core (plus its
compound/ORDER/LIMIT tail).  Plans carry:

* the resolved source tree (scans with chosen access paths, joins),
* the projection with ``*`` already expanded,
* precomputed fault-trigger features for each predicate, and
* a **fingerprint**: a literal-free structural digest standing in for the
  paper's "unique query plan" metric (Table 3, Figure 3).  Access-path
  choices and subquery structure are part of the fingerprint, so
  workloads that exercise more planner behaviour produce more unique
  fingerprints -- the property the paper's metric is designed to capture.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Any

from repro.minidb import ast_nodes as A

# ---------------------------------------------------------------------------
# Schemas
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class Schema:
    """Ordered list of (binding, column-name) pairs describing a row."""

    entries: tuple[tuple[str | None, str], ...]

    def __len__(self) -> int:
        return len(self.entries)

    def matches(self, table: str | None, column: str) -> list[int]:
        """Indexes of entries matching a (possibly unqualified) reference."""
        col = column.lower()
        out: list[int] = []
        for i, (binding, name) in enumerate(self.entries):
            if name.lower() != col:
                continue
            if table is not None and (
                binding is None or binding.lower() != table.lower()
            ):
                continue
            out.append(i)
        return out

    def column_names(self) -> list[str]:
        return [name for _, name in self.entries]

    def rebind(self, binding: str) -> "Schema":
        """All columns exposed under a single new binding (derived tables)."""
        return Schema(tuple((binding, name) for _, name in self.entries))

    @staticmethod
    def concat(left: "Schema", right: "Schema") -> "Schema":
        return Schema(left.entries + right.entries)


# ---------------------------------------------------------------------------
# Source plans (FROM-clause trees)
# ---------------------------------------------------------------------------


class SourcePlan:
    """Base class of FROM-tree plan nodes."""

    schema: Schema

    def fingerprint(self) -> str:
        raise NotImplementedError


@dataclass
class ScanPlan(SourcePlan):
    """Scan of a base table, with a chosen access path.

    MiniDB has no physical indexes; ``access_path`` is planner metadata
    that (a) feeds fault triggers -- bugs like paper Listing 1 require an
    indexed path -- and (b) differentiates plan fingerprints.
    """

    table_name: str
    binding: str
    schema: Schema
    access_path: str = "full_scan"  # or "index_scan"
    index_name: str | None = None

    def fingerprint(self) -> str:
        # The index *name* is random per state; only the access-path
        # choice is plan structure (unique-plan counts would otherwise
        # be dominated by name churn).
        if self.access_path == "index_scan":
            return f"SCAN({self.table_name}:ix)"
        return f"SCAN({self.table_name})"


@dataclass
class SubplanScan(SourcePlan):
    """A view or derived table: a nested SELECT plan bound to an alias."""

    plan: "SelectPlan"
    binding: str
    schema: Schema
    origin: str = "derived"  # "view" | "derived" | "cte"

    def fingerprint(self) -> str:
        return f"{self.origin.upper()}({self.plan.fingerprint()})"


@dataclass
class CteScan(SourcePlan):
    """Reference to a CTE materialized at statement start."""

    name: str
    binding: str
    schema: Schema

    def fingerprint(self) -> str:
        return f"CTE({self.name})"


@dataclass
class ValuesScanPlan(SourcePlan):
    """A ``VALUES (...)`` table constructor used as a relation."""

    rows: tuple[tuple[A.Expr, ...], ...]
    binding: str
    schema: Schema

    def fingerprint(self) -> str:
        return f"VALUES[{len(self.rows)}x{len(self.schema)}]"


@dataclass
class JoinPlan(SourcePlan):
    """Nested-loop join of two source plans."""

    kind: str
    left: SourcePlan
    right: SourcePlan
    on: A.Expr | None
    schema: Schema
    on_features: dict[str, Any] = field(default_factory=dict)

    def fingerprint(self) -> str:
        on_mark = ":on" if self.on is not None else ""
        return (
            f"JOIN[{self.kind}{on_mark}]"
            f"({self.left.fingerprint()},{self.right.fingerprint()})"
        )


# ---------------------------------------------------------------------------
# Select plans
# ---------------------------------------------------------------------------


@dataclass
class PlannedItem:
    """One resolved projection item (``*`` already expanded)."""

    expr: A.Expr
    name: str
    features: dict[str, Any] = field(default_factory=dict)


@dataclass
class SelectPlan:
    """Planned SELECT (core + compound tail)."""

    source: SourcePlan | None
    where: A.Expr | None
    where_features: dict[str, Any]
    group_by: tuple[A.Expr, ...]
    having: A.Expr | None
    having_features: dict[str, Any]
    items: list[PlannedItem]
    distinct: bool
    order_by: tuple[A.OrderItem, ...]
    limit: A.Expr | None
    offset: A.Expr | None
    set_op: tuple[str, bool, "SelectPlan"] | None
    ctes: tuple[tuple[str, tuple[str, ...], "SelectPlan | tuple"], ...]
    has_aggregates: bool
    #: True when the optimizer proved the WHERE clause constant-false and
    #: the executor may skip the scan entirely -- the "different code
    #: path" a folded query takes (paper Listing 1 discussion).
    where_const_false: bool = False
    #: Constant-true WHERE removed by the optimizer.
    where_const_true: bool = False

    @property
    def out_columns(self) -> list[str]:
        return [item.name for item in self.items]

    def fingerprint(self) -> str:
        parts: list[str] = []
        if self.ctes:
            parts.append(f"WITH[{len(self.ctes)}]")
        src = self.source.fingerprint() if self.source else "NOSRC"
        parts.append(src)
        if self.where is not None or self.where_const_false or self.where_const_true:
            if self.where_const_false:
                parts.append("W=FALSE")
            elif self.where_const_true:
                parts.append("W=TRUE")
            else:
                parts.append("W" + _expr_digest(self.where))
        if self.group_by:
            parts.append(f"G[{len(self.group_by)}]")
        if self.having is not None:
            parts.append("H" + _expr_digest(self.having))
        if self.has_aggregates:
            parts.append("AGG")
        if self.distinct:
            parts.append("D")
        fetch_subqs = [
            _expr_digest(item.expr)
            for item in self.items
            if item.features.get("has_subquery")
        ]
        if fetch_subqs:
            parts.append("F" + "".join(fetch_subqs))
        if self.order_by:
            parts.append("O")
        if self.limit is not None:
            parts.append("L")
        sql = "SEL(" + ";".join(parts) + ")"
        if self.set_op is not None:
            op, all_, rhs = self.set_op
            sql += f"+{op}{'ALL' if all_ else ''}({rhs.fingerprint()})"
        return sql


def _expr_digest(expr: A.Expr | None) -> str:
    """Literal-free structural digest of the subquery content of an
    expression; plain expressions digest to "" so that expression depth
    alone does not create new 'plans' (paper Section 4.3 finding)."""
    if expr is None:
        return ""
    marks: list[str] = []
    for node in A.walk(expr):
        if isinstance(node, (A.ScalarSubquery, A.Exists, A.InSubquery, A.Quantified)):
            marks.append(_select_digest(node.query))
    return "{" + ",".join(marks) + "}" if marks else ""


def _select_digest(select: A.Select) -> str:
    parts: list[str] = ["sq"]
    tables: list[str] = []
    _collect_tables(select.from_clause, tables)
    parts.append(",".join(tables))
    if select.where is not None:
        parts.append("w")
    if select.group_by:
        parts.append("g")
    if select.having is not None:
        parts.append("h")
    for item in select.items:
        if item.expr is not None and isinstance(item.expr, A.FuncCall):
            if item.expr.name.upper() in ("COUNT", "SUM", "AVG", "MIN", "MAX"):
                parts.append("agg:" + item.expr.name.upper())
    if select.limit is not None:
        parts.append("l")
    inner = _expr_digest(select.where)
    if inner:
        parts.append(inner)
    return "(" + ";".join(parts) + ")"


def _collect_tables(ref: A.TableRef | None, out: list[str]) -> None:
    if ref is None:
        return
    if isinstance(ref, A.NamedTable):
        out.append(ref.name)
    elif isinstance(ref, A.DerivedTable):
        out.append("drv")
        _collect_tables(ref.query.from_clause, out)
    elif isinstance(ref, A.ValuesTable):
        out.append("vals")
    elif isinstance(ref, A.Join):
        out.append(ref.kind[0].lower())
        _collect_tables(ref.left, out)
        _collect_tables(ref.right, out)
