"""AST -> logical plan translation (with optimizer passes) for MiniDB.

The planner performs the optimizations the paper's bug classes live in:

* **constant folding of WHERE clauses** -- a constant-false predicate
  short-circuits the scan entirely, which is why a CODDTest-folded query
  (``WHERE 0``) executes a genuinely different code path than the original
  (paper Listing 1 discussion);
* **access-path selection** -- an index whose leading expression appears
  in the predicate (or an explicit ``INDEXED BY`` hint) switches the scan
  to an index path, a precondition of several injected faults;
* **projection expansion** -- ``*`` and ``t.*`` resolved at plan time.

Plans are cached by the engine per statement AST; DDL invalidates them.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import CatalogError, SqlError, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb.coverage import register_tags
from repro.minidb.faults import expr_features
from repro.minidb.functions import AGGREGATE_NAMES
from repro.minidb.plan import (
    CteScan,
    JoinPlan,
    PlannedItem,
    ScanPlan,
    Schema,
    SelectPlan,
    SourcePlan,
    SubplanScan,
    ValuesScanPlan,
)

if TYPE_CHECKING:  # pragma: no cover
    from repro.minidb.engine import Engine

register_tags(
    "plan.scan.full",
    "plan.scan.index",
    "plan.scan.indexed_by",
    "plan.view",
    "plan.cte",
    "plan.derived",
    "plan.values",
    "plan.join",
    "plan.where.const_false",
    "plan.where.const_true",
    "plan.where.kept",
    "plan.group_by",
    "plan.having",
    "plan.distinct",
    "plan.set_op",
    "plan.order_by",
    "plan.limit",
    "plan.star",
    "plan.aggregate",
)


def plan_select(
    select: A.Select,
    engine: "Engine",
    cte_env: dict[str, tuple[str, ...]] | None = None,
) -> SelectPlan:
    """Plan a SELECT statement against the engine's catalog."""
    cte_env = dict(cte_env or {})

    planned_ctes: list[tuple[str, tuple[str, ...], SelectPlan | tuple]] = []
    for cte in select.ctes:
        if isinstance(cte.query, A.ValuesSource):
            rows = cte.query.rows
            width = len(rows[0]) if rows else 0
            columns = cte.columns or tuple(f"column{i + 1}" for i in range(width))
            planned_ctes.append((cte.name, columns, rows))
        else:
            body = plan_select(cte.query, engine, cte_env)
            columns = cte.columns or tuple(body.out_columns)
            planned_ctes.append((cte.name, columns, body))
        cte_env[cte.name.lower()] = planned_ctes[-1][1]

    source = None
    if select.from_clause is not None:
        source = _plan_source_cached(select.from_clause, engine, cte_env)

    where = select.where
    where_features = (
        dict(engine.node_features(where)) if where is not None else {}
    )
    where_const_false = where_const_true = False
    if where is not None and where_features.get("is_constant"):
        verdict = _try_fold_constant_predicate(where, engine)
        if verdict is True:
            engine.cov("plan.where.const_true")
            where_const_true = True
            where = None
        elif verdict is False:
            engine.cov("plan.where.const_false")
            where_const_false = True
            where = None
    if where is not None:
        engine.cov("plan.where.kept")

    if source is not None and where is not None:
        _choose_access_paths(source, where, engine)
    _annotate_source_features(source, where_features)

    has_aggregates = _items_have_aggregates(select) or bool(select.group_by)
    if has_aggregates:
        engine.cov("plan.aggregate")
    if select.group_by:
        engine.cov("plan.group_by")
    if select.having is not None:
        engine.cov("plan.having")
    if select.distinct:
        engine.cov("plan.distinct")
    if select.order_by:
        engine.cov("plan.order_by")
    if select.limit is not None:
        engine.cov("plan.limit")

    items = _plan_items(select.items, source, engine)

    set_op = None
    if select.set_op is not None:
        engine.cov("plan.set_op")
        op, all_, rhs = select.set_op
        rhs_plan = plan_select(rhs, engine, cte_env)
        if len(rhs_plan.items) != len(items):
            raise SqlError(
                "SELECTs to the left and right of a set operation "
                "do not have the same number of result columns"
            )
        set_op = (op, all_, rhs_plan)

    having_features = (
        dict(engine.node_features(select.having))
        if select.having is not None
        else {}
    )
    return SelectPlan(
        source=source,
        where=where,
        where_features=where_features,
        group_by=select.group_by,
        having=select.having,
        having_features=having_features,
        items=items,
        distinct=select.distinct,
        order_by=select.order_by,
        limit=select.limit,
        offset=select.offset,
        set_op=set_op,
        ctes=tuple(planned_ctes),
        has_aggregates=has_aggregates,
        where_const_false=where_const_false,
        where_const_true=where_const_true,
    )


# ---------------------------------------------------------------------------
# FROM clause
# ---------------------------------------------------------------------------

#: Entries kept in the engine's plan-skeleton memo (LRU).
_PLAN_MEMO_CAP = 256


def _plan_source_cached(
    ref: A.TableRef, engine: "Engine", cte_env: dict[str, tuple[str, ...]]
) -> SourcePlan:
    """FROM-clause planning memoized by statement skeleton.

    CODDTest's folding oracle rewrites only expression subtrees, never
    the FROM clause, so the folded query's source planning is byte-for-
    byte the original's -- this memo lets the O/F pair (and every other
    statement sharing the FROM shape) pay for it once.  It survives
    across statements, keyed by (state_version, skeleton, CTE schemas):
    DDL bumps ``state_version``, CTE references plan purely from the
    environment's column lists, and literal-bearing FROM clauses are
    never cached because literal values steer planning (VALUES rows,
    expression-index matching in nested queries).

    Replay is observationally identical to re-planning: the memo records
    the coverage tags and fired fault ids planning produced (constant
    folding inside nested derived tables/views can do both) and re-emits
    them on a hit; mutable scan nodes are cloned both into and out of
    the memo because ``_choose_access_paths`` mutates them per
    statement.  Planning errors propagate uncached.  Gated on the perf
    layer being attached (``engine.eval_stats``), so cache-off campaigns
    keep the historical planning path exactly.
    """
    stats = engine.eval_stats
    if stats is None:
        return _plan_source(ref, engine, cte_env)
    from repro.perf.cache import contains_literal, statement_skeleton

    if contains_literal(ref):
        stats.plan_misses += 1
        return _plan_source(ref, engine, cte_env)
    key = (
        engine.state_version,
        statement_skeleton(ref),
        tuple(sorted(cte_env.items())),
    )
    memo = engine._plan_memo
    entry = memo.get(key)
    if entry is not None:
        stats.plan_hits += 1
        memo.move_to_end(key)
        plan, cov_tags, fired = entry
        for tag in cov_tags:
            engine.cov(tag)
        engine.faults.fired.update(fired)
        return _clone_source(plan)
    stats.plan_misses += 1
    # Capture the *full* side-effect footprint of planning, not just
    # what is new to this statement: the entry replays onto statements
    # whose tracker/fired state differs.  The fired set is swapped (not
    # diffed) because CTE planning earlier in this statement may already
    # have fired the same ids.
    saved_cov = engine.coverage.begin_capture()
    saved_fired = engine.faults.fired
    engine.faults.fired = set()
    try:
        plan = _plan_source(ref, engine, cte_env)
    finally:
        cov_tags = engine.coverage.end_capture(saved_cov)
        fired = frozenset(engine.faults.fired)
        saved_fired.update(engine.faults.fired)
        engine.faults.fired = saved_fired
    memo[key] = (plan, cov_tags, fired)
    while len(memo) > _PLAN_MEMO_CAP:
        memo.popitem(last=False)
    return _clone_source(plan)


def _clone_source(source: SourcePlan) -> SourcePlan:
    """Copy the mutable spine of a source plan.

    ScanPlan is mutated per statement (access path selection), so every
    memo store/hit hands out a fresh one; JoinPlan is rebuilt to point
    at the fresh scans.  Subplan/CTE/VALUES scans are immutable after
    planning and shared.
    """
    if isinstance(source, ScanPlan):
        return ScanPlan(
            source.table_name,
            source.binding,
            source.schema,
            source.access_path,
            source.index_name,
        )
    if isinstance(source, JoinPlan):
        return JoinPlan(
            source.kind,
            _clone_source(source.left),
            _clone_source(source.right),
            source.on,
            source.schema,
            dict(source.on_features),
        )
    return source


def _plan_source(
    ref: A.TableRef, engine: "Engine", cte_env: dict[str, tuple[str, ...]]
) -> SourcePlan:
    if isinstance(ref, A.NamedTable):
        return _plan_named(ref, engine, cte_env)
    if isinstance(ref, A.DerivedTable):
        engine.cov("plan.derived")
        sub = plan_select(ref.query, engine, cte_env)
        columns = list(ref.column_aliases) or sub.out_columns
        if ref.column_aliases and len(ref.column_aliases) != len(sub.out_columns):
            raise SqlError("column alias list does not match derived table width")
        schema = Schema(tuple((ref.alias, c) for c in columns))
        return SubplanScan(sub, ref.alias, schema, origin="derived")
    if isinstance(ref, A.ValuesTable):
        engine.cov("plan.values")
        width = len(ref.rows[0]) if ref.rows else 0
        for row in ref.rows:
            if len(row) != width:
                raise SqlError("VALUES rows have differing widths")
        columns = list(ref.column_aliases) or [
            f"column{i + 1}" for i in range(width)
        ]
        if len(columns) != width:
            raise SqlError("VALUES column alias list does not match row width")
        schema = Schema(tuple((ref.alias, c) for c in columns))
        return ValuesScanPlan(ref.rows, ref.alias, schema)
    if isinstance(ref, A.Join):
        engine.cov("plan.join")
        left = _plan_source(ref.left, engine, cte_env)
        right = _plan_source(ref.right, engine, cte_env)
        schema = Schema.concat(left.schema, right.schema)
        on_features = (
            dict(engine.node_features(ref.on)) if ref.on is not None else {}
        )
        on_features["join_kind"] = ref.kind
        return JoinPlan(ref.kind, left, right, ref.on, schema, on_features)
    raise SqlError(f"unsupported FROM item {type(ref).__name__}")


def _plan_named(
    ref: A.NamedTable, engine: "Engine", cte_env: dict[str, tuple[str, ...]]
) -> SourcePlan:
    binding = ref.binding
    key = ref.name.lower()

    if key in cte_env:
        engine.cov("plan.cte")
        if ref.indexed_by:
            raise SqlError("INDEXED BY cannot be applied to a CTE")
        columns = cte_env[key]
        schema = Schema(tuple((binding, c) for c in columns))
        return CteScan(ref.name, binding, schema)

    view = engine.database.get_view(ref.name)
    if view is not None:
        engine.cov("plan.view")
        if ref.indexed_by:
            raise SqlError("INDEXED BY cannot be applied to a view")
        sub = plan_select(view.query, engine, {})
        columns = view.columns or tuple(sub.out_columns)
        if view.columns and len(view.columns) != len(sub.out_columns):
            raise SqlError(f"view {view.name} column list mismatch")
        schema = Schema(tuple((binding, c) for c in columns))
        return SubplanScan(sub, binding, schema, origin="view")

    table = engine.database.get_table(ref.name)
    schema = Schema(tuple((binding, c.name) for c in table.columns))
    plan = ScanPlan(table.name, binding, schema)
    if ref.indexed_by:
        index = engine.database.get_index(ref.indexed_by)
        if index.table.lower() != table.name.lower():
            raise CatalogError(
                f"index {ref.indexed_by} does not belong to table {table.name}"
            )
        engine.cov("plan.scan.indexed_by")
        plan.access_path = "index_scan"
        plan.index_name = index.name
    else:
        engine.cov("plan.scan.full")
    return plan


# ---------------------------------------------------------------------------
# Optimizer passes
# ---------------------------------------------------------------------------


def _try_fold_constant_predicate(where: A.Expr, engine: "Engine") -> bool | None:
    """Evaluate a constant WHERE at plan time.

    Returns True (always-true), False (always false-or-null), or None
    (leave unfolded, e.g. when evaluation raises an expected error which
    must then surface at run time).
    """
    from repro.minidb.evaluator import EvalCtx, evaluate
    from repro.minidb.values import truth

    try:
        value = evaluate(where, EvalCtx(engine=engine, clause="const_fold"))
        verdict = truth(value, engine.mode)
    except SqlError:
        return None
    if verdict is True:
        return True
    return False


def _choose_access_paths(source: SourcePlan, where: A.Expr, engine: "Engine") -> None:
    """Switch scans to index paths when the predicate mentions an index's
    leading expression (or column)."""
    refs = A.column_refs(where)
    where_nodes = list(A.walk(where))
    for scan in _iter_scans(source):
        if scan.access_path == "index_scan":
            continue  # INDEXED BY already decided
        for index in sorted(
            engine.database.indexes_on(scan.table_name), key=lambda ix: ix.name
        ):
            lead = index.exprs[0]
            if isinstance(lead, A.ColumnRef):
                hit = any(
                    r.column.lower() == lead.column.lower()
                    and (r.table is None or r.table.lower() == scan.binding.lower())
                    for r in refs
                )
            else:
                hit = any(node == lead for node in where_nodes)
            if hit:
                engine.cov("plan.scan.index")
                scan.access_path = "index_scan"
                scan.index_name = index.name
                break


def _iter_scans(source: SourcePlan):
    if isinstance(source, ScanPlan):
        yield source
    elif isinstance(source, JoinPlan):
        yield from _iter_scans(source.left)
        yield from _iter_scans(source.right)


def _annotate_source_features(source: SourcePlan | None, features: dict) -> None:
    """Record source-shape facts into the WHERE feature dict (fault
    triggers key on access path and join structure)."""
    access = "none"
    join_kinds: list[str] = []
    has_view = False
    if source is not None:
        scans = list(_iter_scans(source))
        if any(s.access_path == "index_scan" for s in scans):
            access = "index_scan"
        elif scans:
            access = "full_scan"
        join_kinds = sorted(_collect_join_kinds(source))
        has_view = _has_view(source)
    features["access_path"] = access
    features["join_kinds"] = tuple(join_kinds)
    features["has_view"] = has_view


def _collect_join_kinds(source: SourcePlan) -> set[str]:
    if isinstance(source, JoinPlan):
        return (
            {source.kind}
            | _collect_join_kinds(source.left)
            | _collect_join_kinds(source.right)
        )
    return set()


def _has_view(source: SourcePlan) -> bool:
    if isinstance(source, SubplanScan) and source.origin == "view":
        return True
    if isinstance(source, JoinPlan):
        return _has_view(source.left) or _has_view(source.right)
    return False


# ---------------------------------------------------------------------------
# Projection
# ---------------------------------------------------------------------------


def _plan_items(
    items: tuple[A.SelectItem, ...],
    source: SourcePlan | None,
    engine: "Engine",
) -> list[PlannedItem]:
    planned: list[PlannedItem] = []
    for item in items:
        if item.expr is None:
            engine.cov("plan.star")
            if source is None:
                raise SqlError("* requires a FROM clause")
            for binding, name in source.schema.entries:
                if item.table_star is not None and (
                    binding is None
                    or binding.lower() != item.table_star.lower()
                ):
                    continue
                planned.append(
                    PlannedItem(
                        A.ColumnRef(binding, name),
                        name,
                        {"star": True},
                    )
                )
            if item.table_star is not None and not any(
                p.features.get("star") for p in planned
            ):
                raise CatalogError(f"no such table: {item.table_star}")
            continue
        name = item.alias or _derive_name(item.expr)
        planned.append(
            PlannedItem(item.expr, name, dict(engine.node_features(item.expr)))
        )
    if not planned:
        raise SqlError("empty projection")
    return planned


def _derive_name(expr: A.Expr) -> str:
    if isinstance(expr, A.ColumnRef):
        return expr.column
    return expr.to_sql()


def _items_have_aggregates(select: A.Select) -> bool:
    exprs: list[A.Expr] = [i.expr for i in select.items if i.expr is not None]
    if select.having is not None:
        exprs.append(select.having)
    for o in select.order_by:
        exprs.append(o.expr)
    for expr in exprs:
        for node in A.walk(expr):
            if isinstance(node, A.FuncCall) and node.name.upper() in AGGREGATE_NAMES:
                if node.star or len(node.args) == 1:
                    return True
    return False


def validate_limit(value: object) -> int | None:
    """Interpret an evaluated LIMIT/OFFSET value (negative = unbounded,
    SQLite-style)."""
    if value is None:
        return None
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, int):
        return value
    if isinstance(value, float) and value.is_integer():
        return int(value)
    raise ValueError_("LIMIT/OFFSET must evaluate to an integer")
