"""SQL value model and three-valued logic for MiniDB.

SQL values are represented with plain Python objects:

* ``None``  -- SQL ``NULL``
* ``bool``  -- SQL ``BOOLEAN`` (``TRUE`` / ``FALSE``)
* ``int``   -- SQL ``INTEGER``
* ``float`` -- SQL ``REAL``
* ``str``   -- SQL ``TEXT``

All operator semantics live here so that the evaluator, the optimizer's
constant folder, and the executor agree on a single source of truth.  The
paper's oracles only work if expression evaluation is deterministic for a
fixed database state (Section 5, "CODDTest scope"), so nothing in this
module consults global state.

Two typing modes mirror the paper's Section 3.3 observation: SQLite and
MySQL freely coerce operand types, while DuckDB and CockroachDB follow
strict typing rules and raise errors instead.
"""

from __future__ import annotations

import enum
import math
from typing import Any

from repro.errors import TypeError_, ValueError_

SqlValue = None | bool | int | float | str

#: Maximum magnitude for 64-bit-style integer overflow checks.
INT64_MAX = 2**63 - 1
INT64_MIN = -(2**63)


class TypingMode(enum.Enum):
    """How an engine dialect treats cross-type operations."""

    #: SQLite/MySQL-like: coerce operands, never raise for type mixes.
    RELAXED = "relaxed"
    #: DuckDB/CockroachDB-like: raise :class:`TypeError_` on bad mixes.
    STRICT = "strict"


class SqlType(enum.Enum):
    """Runtime SQL types (paper engines' storage classes, simplified)."""

    NULL = "null"
    BOOLEAN = "boolean"
    INTEGER = "integer"
    REAL = "real"
    TEXT = "text"

    def __str__(self) -> str:  # pragma: no cover - cosmetic
        return self.value


def type_of(value: SqlValue) -> SqlType:
    """Return the runtime :class:`SqlType` of *value*."""
    if value is None:
        return SqlType.NULL
    if isinstance(value, bool):
        return SqlType.BOOLEAN
    if isinstance(value, int):
        return SqlType.INTEGER
    if isinstance(value, float):
        return SqlType.REAL
    if isinstance(value, str):
        return SqlType.TEXT
    raise TypeError_(f"unsupported Python value for SQL: {value!r}")


def sql_literal(value: SqlValue) -> str:
    """Render *value* as a SQL literal, suitable for constant propagation.

    This is the textual form CODDTest substitutes into folded queries, so
    it must round-trip through the parser to the identical value.
    """
    if value is None:
        return "NULL"
    if isinstance(value, bool):
        return "TRUE" if value else "FALSE"
    if isinstance(value, int):
        return str(value)
    if isinstance(value, float):
        if math.isnan(value):
            return "(0.0 / 0.0)"
        if math.isinf(value):
            return "(1.0 / 0.0)" if value > 0 else "(-1.0 / 0.0)"
        return repr(value)
    escaped = value.replace("'", "''")
    return f"'{escaped}'"


# ---------------------------------------------------------------------------
# Three-valued logic
# ---------------------------------------------------------------------------

Ternary = None | bool


def and3(a: Ternary, b: Ternary) -> Ternary:
    """SQL ``AND`` with NULL as UNKNOWN."""
    if a is False or b is False:
        return False
    if a is None or b is None:
        return None
    return True


def or3(a: Ternary, b: Ternary) -> Ternary:
    """SQL ``OR`` with NULL as UNKNOWN."""
    if a is True or b is True:
        return True
    if a is None or b is None:
        return None
    return False


def not3(a: Ternary) -> Ternary:
    """SQL ``NOT`` with NULL as UNKNOWN."""
    if a is None:
        return None
    return not a


def truth(value: SqlValue, mode: TypingMode) -> Ternary:
    """Interpret *value* as a predicate outcome (TRUE/FALSE/UNKNOWN).

    Relaxed engines (SQLite, MySQL) treat any non-zero number as true;
    strict engines require a boolean and raise otherwise (CockroachDB
    "lacks automatic implicit casts ... to boolean", paper Section 3.3).
    """
    if value is None:
        return None
    if isinstance(value, bool):
        return value
    if mode is TypingMode.STRICT:
        raise TypeError_(f"expected BOOLEAN predicate, got {type_of(value)}")
    if isinstance(value, (int, float)):
        return value != 0
    # SQLite semantics: text is cast to a number; non-numeric prefix -> 0.
    return _text_to_number(value) != 0


def _text_to_number(text: str) -> int | float:
    """SQLite-style lossy text-to-number coercion (longest numeric prefix)."""
    text = text.strip()
    best: int | float = 0
    for end in range(len(text), 0, -1):
        chunk = text[:end]
        try:
            return int(chunk)
        except ValueError:
            try:
                return float(chunk)
            except ValueError:
                continue
    return best


# ---------------------------------------------------------------------------
# Comparisons
# ---------------------------------------------------------------------------

_NUMERIC = (int, float)


def _as_number(value: SqlValue) -> int | float:
    if isinstance(value, bool):
        return int(value)
    if isinstance(value, _NUMERIC):
        return value
    if isinstance(value, str):
        return _text_to_number(value)
    raise TypeError_(f"cannot treat {type_of(value)} as a number")


def compare(a: SqlValue, b: SqlValue, mode: TypingMode) -> Ternary | int:
    """Compare two values, returning ``None`` if either is NULL, else
    a negative/zero/positive int like ``cmp``.

    Relaxed mode coerces mixed numeric/text pairs to numbers (SQLite
    affinity, simplified); strict mode raises :class:`TypeError_` for
    incomparable types.
    """
    if a is None or b is None:
        return None
    ta, tb = type_of(a), type_of(b)
    if ta == tb:
        if isinstance(a, str):
            return (a > b) - (a < b)  # type: ignore[operator]
        na, nb = _as_number(a), _as_number(b)
        return (na > nb) - (na < nb)
    numeric = {SqlType.BOOLEAN, SqlType.INTEGER, SqlType.REAL}
    if ta in numeric and tb in numeric:
        na, nb = _as_number(a), _as_number(b)
        return (na > nb) - (na < nb)
    if mode is TypingMode.STRICT:
        raise TypeError_(f"cannot compare {ta} with {tb}")
    # Relaxed: coerce both sides to numbers (SQLite-ish simplification).
    na, nb = _as_number(a), _as_number(b)
    return (na > nb) - (na < nb)


def eq3(a: SqlValue, b: SqlValue, mode: TypingMode) -> Ternary:
    """SQL ``=`` under three-valued logic."""
    c = compare(a, b, mode)
    if c is None:
        return None
    return c == 0


def distinct_eq(a: SqlValue, b: SqlValue) -> bool:
    """NULL-safe equality used for ``IS [NOT]``, DISTINCT, and GROUP BY keys."""
    if a is None and b is None:
        return True
    if a is None or b is None:
        return False
    c = compare(a, b, TypingMode.RELAXED)
    assert c is not None
    return c == 0


_SORT_RANK = {
    SqlType.NULL: 0,
    SqlType.BOOLEAN: 1,
    SqlType.INTEGER: 1,
    SqlType.REAL: 1,
    SqlType.TEXT: 2,
}


def sort_key(value: SqlValue) -> tuple[int, Any]:
    """Deterministic total order across all SQL values.

    NULLs sort first, then numerics (bool as 0/1), then text -- the
    SQLite storage-class ordering, which both the executor's ORDER BY and
    the test oracles' row-multiset comparison rely on.
    """
    rank = _SORT_RANK[type_of(value)]
    if value is None:
        return (rank, 0)
    if isinstance(value, bool):
        return (rank, int(value))
    return (rank, value)


def row_sort_key(row: tuple[SqlValue, ...]) -> tuple[tuple[int, Any], ...]:
    """Sort key for a whole row (used to canonicalize result multisets)."""
    return tuple(sort_key(v) for v in row)


# ---------------------------------------------------------------------------
# Arithmetic
# ---------------------------------------------------------------------------


def _numeric_operands(
    a: SqlValue, b: SqlValue, mode: TypingMode, op: str
) -> tuple[int | float, int | float] | None:
    if a is None or b is None:
        return None
    if mode is TypingMode.STRICT:
        for v in (a, b):
            if isinstance(v, str) or isinstance(v, bool):
                raise TypeError_(f"{op}: operand {type_of(v)} is not numeric")
    return _as_number(a), _as_number(b)


def _check_int_range(value: int | float) -> int | float:
    if isinstance(value, int) and not (INT64_MIN <= value <= INT64_MAX):
        raise ValueError_("integer overflow")
    return value


def arith(op: str, a: SqlValue, b: SqlValue, mode: TypingMode) -> SqlValue:
    """Evaluate a binary arithmetic operator (``+ - * / %``).

    NULL propagates.  Integer division truncates toward zero (SQLite).
    Division by zero yields NULL in relaxed mode and raises in strict mode
    (matching DuckDB/CockroachDB, whose errors the paper counts as
    "unsuccessful queries").  Overflow past 64 bits raises
    :class:`ValueError_` -- the expected-error class the DuckDB bug in
    paper Listing 11 produces.
    """
    pair = _numeric_operands(a, b, mode, op)
    if pair is None:
        return None
    na, nb = pair
    if op == "+":
        return _check_int_range(na + nb)
    if op == "-":
        return _check_int_range(na - nb)
    if op == "*":
        return _check_int_range(na * nb)
    if op == "/":
        if nb == 0:
            if mode is TypingMode.STRICT:
                raise ValueError_("division by zero")
            return None
        if isinstance(na, int) and isinstance(nb, int):
            return _truncdiv(na, nb)
        return na / nb
    if op == "%":
        ia, ib = int(na), int(nb)
        if ib == 0:  # includes fractional divisors truncating to zero
            if mode is TypingMode.STRICT:
                raise ValueError_("modulo by zero")
            return None
        return ia - _truncdiv(ia, ib) * ib
    raise TypeError_(f"unknown arithmetic operator {op!r}")


def _truncdiv(a: int, b: int) -> int:
    """C-style integer division truncating toward zero."""
    q = abs(a) // abs(b)
    return -q if (a < 0) != (b < 0) else q


def negate(value: SqlValue, mode: TypingMode) -> SqlValue:
    """Unary minus with NULL propagation."""
    if value is None:
        return None
    if mode is TypingMode.STRICT and (isinstance(value, (str, bool))):
        raise TypeError_(f"cannot negate {type_of(value)}")
    n = _as_number(value)
    return _check_int_range(-n)


def concat(a: SqlValue, b: SqlValue) -> SqlValue:
    """SQL ``||`` string concatenation with NULL propagation."""
    if a is None or b is None:
        return None
    return to_text(a) + to_text(b)


# ---------------------------------------------------------------------------
# Casts
# ---------------------------------------------------------------------------


def to_text(value: SqlValue) -> str:
    """CAST to TEXT (NULL handled by caller)."""
    assert value is not None
    if isinstance(value, bool):
        return "1" if value else "0"
    if isinstance(value, float) and value.is_integer():
        return f"{value:.1f}"
    return str(value)


def cast(value: SqlValue, target: SqlType, mode: TypingMode) -> SqlValue:
    """SQL ``CAST(value AS target)``.

    The paper (Section 4.1, "False alarms") notes that SQLite's relaxed
    type system required the authors to insert explicit casts; this
    function implements those casts for all profiles.
    """
    if value is None:
        return None
    if target is SqlType.NULL:
        return None
    if target is SqlType.TEXT:
        return to_text(value)
    if target is SqlType.BOOLEAN:
        t = truth(value, TypingMode.RELAXED)
        return t
    if target is SqlType.INTEGER:
        if isinstance(value, str):
            if mode is TypingMode.STRICT:
                stripped = value.strip()
                try:
                    return _check_int_range(int(stripped))
                except ValueError:
                    raise ValueError_(f"cannot cast {value!r} to INTEGER") from None
            coerced = _text_to_number(value)
            return int(coerced)
        return _check_int_range(int(_as_number(value)))
    if target is SqlType.REAL:
        if isinstance(value, str):
            if mode is TypingMode.STRICT:
                try:
                    return float(value.strip())
                except ValueError:
                    raise ValueError_(f"cannot cast {value!r} to REAL") from None
            return float(_text_to_number(value))
        return float(_as_number(value))
    raise TypeError_(f"unknown cast target {target}")


# ---------------------------------------------------------------------------
# LIKE
# ---------------------------------------------------------------------------


def like(value: SqlValue, pattern: SqlValue, mode: TypingMode) -> Ternary:
    """SQL ``LIKE`` with ``%`` and ``_`` wildcards (case-insensitive,
    SQLite default).  Non-text operands are coerced in relaxed mode.
    """
    if value is None or pattern is None:
        return None
    if mode is TypingMode.STRICT and not (
        isinstance(value, str) and isinstance(pattern, str)
    ):
        raise TypeError_("LIKE requires TEXT operands")
    text = to_text(value).lower()
    pat = to_text(pattern).lower()
    return _like_match(text, pat)


def _like_match(text: str, pat: str) -> bool:
    """Iterative wildcard matcher (avoids regex-escaping pitfalls)."""
    ti = pi = 0
    star_ti = star_pi = -1
    while ti < len(text):
        if pi < len(pat) and (pat[pi] == "_" or pat[pi] == text[ti]):
            ti += 1
            pi += 1
        elif pi < len(pat) and pat[pi] == "%":
            star_pi = pi
            star_ti = ti
            pi += 1
        elif star_pi != -1:
            star_ti += 1
            ti = star_ti
            pi = star_pi + 1
        else:
            return False
    while pi < len(pat) and pat[pi] == "%":
        pi += 1
    return pi == len(pat)
