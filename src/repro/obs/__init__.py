"""Unified telemetry: metrics, traces, phase profiling, live status.

The observability layer of the reproduction (ROADMAP
"fuzzing-as-a-service"), with one hard contract inherited from the perf
layer: **telemetry-on and telemetry-off runs are bit-identical on every
deterministic output** -- stats signatures, corpus bytes, rendered
tables.  Wall-clock measurements exist only inside this package
(timers, trace timestamps, status snapshots) and never feed back into
generation, scheduling, or results.

Four building blocks:

* :mod:`repro.obs.metrics` -- :class:`MetricsRegistry`, a CRDT of
  per-source counters/gauges (deterministic) and timers (wall-clock),
  merged across shards like the guidance CoverageMap;
* :mod:`repro.obs.phases`  -- :class:`PhaseProfiler`, scoped timers
  around the generate / parse / execute / compare hot-path phases;
* :mod:`repro.obs.trace`   -- schema-versioned JSONL trace events with
  per-worker non-blocking sinks and an orchestrator-side merge;
* :mod:`repro.obs.status`  -- the live JSON status endpoint
  (``coddtest fleet --status-port N``) plus
  :mod:`repro.obs.report`'s offline ``trace report`` / ``top`` views.
"""

from repro.obs.metrics import MetricsRegistry, TimerSlot, merge_all
from repro.obs.phases import (
    PHASES,
    PhaseProfiler,
    format_phase_breakdown,
    merge_phase_totals,
)
from repro.obs.report import (
    render_phase_table,
    render_top_frame,
    render_trace_report,
    snapshot_from_trace,
    summarize_trace,
)
from repro.obs.status import (
    STATUS_SCHEMA_VERSION,
    StatusBoard,
    StatusServer,
    fetch_status,
)
from repro.obs.trace import (
    EVENT_SCHEMA,
    TRACE_SCHEMA_VERSION,
    TraceWriter,
    format_record,
    merge_trace_files,
    read_trace,
    shard_part_path,
    validate_record,
)

__all__ = [
    "EVENT_SCHEMA",
    "MetricsRegistry",
    "PHASES",
    "PhaseProfiler",
    "STATUS_SCHEMA_VERSION",
    "StatusBoard",
    "StatusServer",
    "TRACE_SCHEMA_VERSION",
    "TimerSlot",
    "TraceWriter",
    "fetch_status",
    "format_phase_breakdown",
    "format_record",
    "merge_all",
    "merge_phase_totals",
    "merge_trace_files",
    "read_trace",
    "render_phase_table",
    "render_top_frame",
    "render_trace_report",
    "shard_part_path",
    "snapshot_from_trace",
    "summarize_trace",
    "validate_record",
]
