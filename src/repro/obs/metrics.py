"""The metrics registry: deterministic counters/gauges plus wall-clock
timers, mergeable across shards and fleet invocations.

Telemetry in this repo is split along the determinism contract:

* **counters** and **gauges** hold only values that are a pure function
  of ``(seed, workers, budget)`` -- test counts, report counts, round
  indices.  Two runs of the same campaign produce equal counter/gauge
  state, so they may appear in any surface without breaking the
  bit-identity promise.
* **timers** hold wall-clock measurements (phase durations, shard
  wall time).  They live *only* in the obs layer: no signature, corpus,
  or rendered table ever includes them.

The registry is a state-based CRDT mirroring
:class:`repro.guidance.CoverageMap`: every slot is owned by exactly one
*source* (one shard of one fleet run, or the orchestrator itself) whose
stream is monotone -- counters only increment, gauges carry a
grow-only sequence number, timers only accumulate observations.  Merge
is therefore the elementwise join per ``(source, name)``:

* **commutative**  -- ``merge(a, b) == merge(b, a)``,
* **associative**  -- ``merge(merge(a, b), c) == merge(a, merge(b, c))``,
* **idempotent**   -- ``merge(a, a) == a``,

so the orchestrator can absorb the same shard snapshot any number of
times, in any order (property-tested in ``tests/obs/test_metrics.py``).
The contract is that a writer never decrements and never writes a
source it does not own.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable


@dataclass
class TimerSlot:
    """Accumulated wall-clock observations of one (source, name) timer.

    The stream per owner is monotone: ``count`` and ``seconds`` only
    grow, ``min_s`` only shrinks, ``max_s`` only grows -- so the join of
    two snapshots of the *same* stream is the later snapshot, and the
    join of distinct streams combines them conservatively.
    """

    count: int = 0
    seconds: float = 0.0
    min_s: float = float("inf")
    max_s: float = 0.0

    def observe(self, seconds: float) -> None:
        self.count += 1
        self.seconds += seconds
        self.min_s = min(self.min_s, seconds)
        self.max_s = max(self.max_s, seconds)

    def join(self, other: "TimerSlot") -> None:
        """CRDT join with a snapshot of the same owner's stream."""
        self.count = max(self.count, other.count)
        self.seconds = max(self.seconds, other.seconds)
        self.min_s = min(self.min_s, other.min_s)
        self.max_s = max(self.max_s, other.max_s)

    def to_list(self) -> list:
        return [self.count, self.seconds, self.min_s, self.max_s]

    @classmethod
    def from_list(cls, data: Iterable) -> "TimerSlot":
        count, seconds, min_s, max_s = data
        return cls(
            count=int(count),
            seconds=float(seconds),
            min_s=float(min_s),
            max_s=float(max_s),
        )


@dataclass
class MetricsRegistry:
    """Per-source counters, gauges, and timers with CRDT merge.

    ``source`` names the stream this instance records into; views
    aggregate across every source the registry has absorbed.
    """

    source: str = "local"
    counters: dict[str, dict[str, int]] = field(default_factory=dict)
    #: ``gauges[source][name] == [seq, value]`` -- seq is a per-slot
    #: write counter, so the join can keep the *latest* write of the
    #: owning stream without consulting wall-clock.
    gauges: dict[str, dict[str, list]] = field(default_factory=dict)
    timers: dict[str, dict[str, TimerSlot]] = field(default_factory=dict)

    # -- recording (single-writer per source) -------------------------------

    def incr(self, name: str, n: int = 1) -> None:
        """Increment a deterministic counter (never negative)."""
        if n < 0:
            raise ValueError(f"counters are grow-only, got {n}")
        bucket = self.counters.setdefault(self.source, {})
        bucket[name] = bucket.get(name, 0) + n

    def gauge(self, name: str, value: float) -> None:
        """Set a deterministic gauge to its latest value."""
        bucket = self.gauges.setdefault(self.source, {})
        slot = bucket.setdefault(name, [0, 0.0])
        slot[0] += 1
        slot[1] = value

    def observe(self, name: str, seconds: float) -> None:
        """Record one wall-clock observation (obs-layer-only surface)."""
        bucket = self.timers.setdefault(self.source, {})
        slot = bucket.get(name)
        if slot is None:
            slot = bucket[name] = TimerSlot()
        slot.observe(seconds)

    def absorb_phase_totals(self, phases: "dict[str, dict]") -> None:
        """Fold a :meth:`repro.obs.phases.PhaseProfiler.to_dict` payload
        into per-phase timers of this registry's source."""
        bucket = self.timers.setdefault(self.source, {})
        for phase, rec in phases.items():
            slot = bucket.get(f"phase/{phase}")
            if slot is None:
                slot = bucket[f"phase/{phase}"] = TimerSlot()
            slot.count += int(rec.get("calls", 0))
            slot.seconds += float(rec.get("seconds", 0.0))
            slot.max_s = max(slot.max_s, float(rec.get("seconds", 0.0)))
            slot.min_s = min(slot.min_s, float(rec.get("seconds", 0.0)))

    # -- merge --------------------------------------------------------------

    @staticmethod
    def merge(a: "MetricsRegistry", b: "MetricsRegistry") -> "MetricsRegistry":
        """Pure CRDT join of two registries (``a`` wins the source name)."""
        out = MetricsRegistry(source=a.source)
        out.update(a)
        out.update(b)
        return out

    def update(self, other: "MetricsRegistry") -> None:
        """In-place CRDT join: absorb *other* into this registry."""
        for source, bucket in other.counters.items():
            mine = self.counters.setdefault(source, {})
            for name, value in bucket.items():
                mine[name] = max(mine.get(name, 0), value)
        for source, bucket in other.gauges.items():
            mine_g = self.gauges.setdefault(source, {})
            for name, (seq, value) in bucket.items():
                slot = mine_g.setdefault(name, [0, 0.0])
                # Higher sequence wins; equal sequences carry the same
                # value under the single-writer contract, but take the
                # max so a violated contract still merges commutatively.
                if seq > slot[0] or (seq == slot[0] and value > slot[1]):
                    slot[0], slot[1] = seq, value
        for source, bucket in other.timers.items():
            mine_t = self.timers.setdefault(source, {})
            for name, other_slot in bucket.items():
                slot = mine_t.get(name)
                if slot is None:
                    mine_t[name] = TimerSlot(
                        count=other_slot.count,
                        seconds=other_slot.seconds,
                        min_s=other_slot.min_s,
                        max_s=other_slot.max_s,
                    )
                else:
                    slot.join(other_slot)

    # -- views --------------------------------------------------------------

    def counter_total(self, name: str) -> int:
        """Sum of *name* across every source."""
        return sum(b.get(name, 0) for b in self.counters.values())

    def counter_totals(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for bucket in self.counters.values():
            for name, value in bucket.items():
                out[name] = out.get(name, 0) + value
        return dict(sorted(out.items()))

    def gauge_values(self) -> dict[str, float]:
        """Latest gauge value per name (the write with the globally
        highest sequence; source name breaks exact ties)."""
        best: dict[str, tuple[int, str, float]] = {}
        for source in sorted(self.gauges):
            for name, (seq, value) in self.gauges[source].items():
                cur = best.get(name)
                if cur is None or seq > cur[0]:
                    best[name] = (seq, source, value)
        return {name: v for name, (_, _, v) in sorted(best.items())}

    def timer_totals(self) -> dict[str, dict]:
        """Cross-source accumulation per timer name (wall-clock view)."""
        out: dict[str, TimerSlot] = {}
        for bucket in self.timers.values():
            for name, slot in bucket.items():
                acc = out.setdefault(name, TimerSlot())
                acc.count += slot.count
                acc.seconds += slot.seconds
                acc.min_s = min(acc.min_s, slot.min_s)
                acc.max_s = max(acc.max_s, slot.max_s)
        return {
            name: {
                "count": slot.count,
                "seconds": slot.seconds,
                "min_s": slot.min_s if slot.count else 0.0,
                "max_s": slot.max_s,
            }
            for name, slot in sorted(out.items())
        }

    # -- (de)serialization ---------------------------------------------------

    def to_dict(self) -> dict:
        """JSON form with sorted keys (crosses process boundaries)."""
        return {
            "source": self.source,
            "counters": {
                s: dict(sorted(b.items()))
                for s, b in sorted(self.counters.items())
            },
            "gauges": {
                s: {n: list(v) for n, v in sorted(b.items())}
                for s, b in sorted(self.gauges.items())
            },
            "timers": {
                s: {n: slot.to_list() for n, slot in sorted(b.items())}
                for s, b in sorted(self.timers.items())
            },
        }

    @classmethod
    def from_dict(cls, data: "dict | None") -> "MetricsRegistry":
        if not data:
            return cls()
        return cls(
            source=data.get("source", "local"),
            counters={
                s: dict(b) for s, b in data.get("counters", {}).items()
            },
            gauges={
                s: {n: list(v) for n, v in b.items()}
                for s, b in data.get("gauges", {}).items()
            },
            timers={
                s: {n: TimerSlot.from_list(v) for n, v in b.items()}
                for s, b in data.get("timers", {}).items()
            },
        )


def merge_all(registries: Iterable[MetricsRegistry]) -> MetricsRegistry:
    """CRDT join of any number of registries (order irrelevant)."""
    out = MetricsRegistry(source="merged")
    for registry in registries:
        out.update(registry)
    return out
