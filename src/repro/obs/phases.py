"""Phase profiling: where does a test's wall-clock go?

The campaign hot path decomposes into four phases (the ones the paper's
Figure 2-style throughput claims and the planned vectorization work
need to see separately):

* ``generate`` -- random state construction plus query/expression
  generation (hooked in :class:`repro.runner.campaign.Campaign` and the
  CODDTest oracle),
* ``parse``    -- SQL text to AST (hooked in the MiniDB adapter; with
  an attached :class:`repro.perf.EvalCache` this phase shrinks to memo
  lookups),
* ``execute``  -- engine execution of the parsed statement (every
  adapter),
* ``compare``  -- oracle result comparison (:meth:`repro.oracles_base.
  Oracle.compare_rows`).

Timers use ``time.perf_counter`` and cost two clock reads plus one
dict update per scope, which is noise next to a parse or an engine
execution; the profiler is therefore always on.  Phase totals are
wall-clock and live only in the obs layer: they are excluded from
:meth:`repro.runner.campaign.CampaignStats.signature` exactly like
``cache_stats``, so profiled and unprofiled campaigns stay
bit-identical on every deterministic output.
"""

from __future__ import annotations

import time
from contextlib import contextmanager

#: Canonical phase order for rendering (unknown phases sort after).
PHASES = ("generate", "parse", "execute", "compare")


class PhaseProfiler:
    """Scoped wall-clock accumulation per phase.

    The inline ``begin()``/``end()`` pair is the hot-path API (no
    context-manager frame); :meth:`phase` wraps it for cool paths.
    """

    __slots__ = ("totals",)

    def __init__(self) -> None:
        #: ``totals[phase] == [calls, seconds]``
        self.totals: dict[str, list] = {}

    def begin(self) -> float:
        return time.perf_counter()

    def end(self, phase: str, t0: float) -> None:
        slot = self.totals.get(phase)
        if slot is None:
            slot = self.totals[phase] = [0, 0.0]
        slot[0] += 1
        slot[1] += time.perf_counter() - t0

    @contextmanager
    def phase(self, name: str):
        t0 = time.perf_counter()
        try:
            yield
        finally:
            self.end(name, t0)

    def to_dict(self) -> dict[str, dict]:
        """``{phase: {"calls": n, "seconds": s}}`` in canonical order."""
        return {
            phase: {"calls": slot[0], "seconds": slot[1]}
            for phase, slot in sorted(
                self.totals.items(), key=lambda kv: _phase_key(kv[0])
            )
        }


def _phase_key(phase: str) -> tuple:
    try:
        return (PHASES.index(phase), phase)
    except ValueError:
        return (len(PHASES), phase)


def merge_phase_totals(
    a: "dict[str, dict]", b: "dict[str, dict]"
) -> dict[str, dict]:
    """Sum two ``to_dict`` payloads (shards ran disjoint work)."""
    out: dict[str, dict] = {}
    for part in (a, b):
        for phase, rec in part.items():
            slot = out.setdefault(phase, {"calls": 0, "seconds": 0.0})
            slot["calls"] += int(rec.get("calls", 0))
            slot["seconds"] += float(rec.get("seconds", 0.0))
    return {
        phase: out[phase]
        for phase in sorted(out, key=_phase_key)
    }


def format_phase_breakdown(
    phases: "dict[str, dict]", wall_seconds: float = 0.0
) -> str:
    """One-line per-phase breakdown for CLI stats reporting.

    Percentages are of *wall_seconds* when given (the residual becomes
    ``other``: scheduling, bookkeeping, unprofiled oracles), else of
    the profiled total.
    """
    if not phases:
        return ""
    profiled = sum(rec["seconds"] for rec in phases.values())
    denom = wall_seconds if wall_seconds > profiled else profiled
    if denom <= 0:
        return ""
    parts = [
        f"{phase} {rec['seconds']:.2f}s ({100 * rec['seconds'] / denom:.0f}%)"
        for phase, rec in phases.items()
    ]
    if wall_seconds > profiled:
        parts.append(
            f"other {wall_seconds - profiled:.2f}s "
            f"({100 * (wall_seconds - profiled) / denom:.0f}%)"
        )
    return "phases: " + " | ".join(parts)
