"""Offline trace analysis and the ``coddtest top`` frame renderer.

Two consumers of the same trace stream:

* :func:`render_trace_report` (``coddtest trace report run.jsonl``)
  reconstructs the run timeline -- shard lifecycle, guided round
  barriers, bug arrivals -- and renders a per-phase time breakdown as a
  flamegraph-style table.
* :func:`snapshot_from_trace` folds a trace into the same snapshot
  schema the live status endpoint serves, so ``coddtest top`` renders
  one frame from either a URL (live run) or a trace file (finished
  run) with the same code path.

Determinism guarantee: both renderers are pure functions of the input
records -- re-rendering the same trace file is byte-identical (pinned
in ``tests/obs/test_trace_report.py``).  All times shown are offsets
from the first record's timestamp, so the absolute wall-clock epoch
never reaches the output.
"""

from __future__ import annotations

from typing import Iterable

from repro.obs.phases import merge_phase_totals
from repro.obs.status import STATUS_SCHEMA_VERSION
from repro.obs.trace import validate_record

#: Width of the flamegraph-style bar column.
_BAR_WIDTH = 32


def summarize_trace(records: Iterable[dict]) -> dict:
    """Fold trace records into one summary dict (the shared backend of
    the report and ``top`` renderers)."""
    summary: dict = {
        "run": {},
        "finish": None,
        "first_ts": None,
        "last_ts": None,
        "shards": {},
        "rounds": [],
        "bugs": [],
        "clusters_new": 0,
        "clusters_saturated": 0,
        "tests": 0,
        "skipped": 0,
        "queries_ok": 0,
        "queries_err": 0,
        "phases": {},
        "cache": {},
        "unique_plans": 0,
        "invalid": 0,
        "records": 0,
    }
    for record in records:
        summary["records"] += 1
        if validate_record(record) is not None:
            summary["invalid"] += 1
            continue
        ts = float(record["ts"])
        if summary["first_ts"] is None or ts < summary["first_ts"]:
            summary["first_ts"] = ts
        if summary["last_ts"] is None or ts > summary["last_ts"]:
            summary["last_ts"] = ts
        ev = record["ev"]
        shard = record["shard"]
        if ev == "run_start":
            summary["run"] = {
                k: v
                for k, v in record.items()
                if k not in ("v", "ts", "ev", "shard")
            }
            summary["run"]["ts"] = ts
        elif ev == "run_finish":
            summary["finish"] = {
                "tests": record["tests"],
                "reports": record["reports"],
                "wall_s": record["wall_s"],
                "ts": ts,
            }
        elif ev == "shard_start":
            slot = summary["shards"].setdefault(shard, _shard_slot())
            slot["starts"].append(ts)
            slot["rounds"] = max(slot["rounds"], record["round"] + 1)
        elif ev == "shard_finish":
            slot = summary["shards"].setdefault(shard, _shard_slot())
            slot["finishes"].append(ts)
            slot["tests"] += record["tests"]
            slot["skipped"] += record["skipped"]
            slot["reports"] += record["reports"]
            slot["unique_plans"] += record.get("unique_plans", 0)
            summary["tests"] += record["tests"]
            summary["skipped"] += record["skipped"]
            summary["phases"] = merge_phase_totals(
                summary["phases"], record["phases"]
            )
            for key, value in record["cache"].items():
                summary["cache"][key] = (
                    summary["cache"].get(key, 0) + int(value)
                )
        elif ev == "round_barrier":
            summary["rounds"].append(
                {
                    "round": record["round"],
                    "rounds": record["rounds"],
                    "saturated": record["saturated"],
                    "plans": record["plans"],
                    "ts": ts,
                }
            )
        elif ev == "test_finish":
            slot = summary["shards"].setdefault(shard, _shard_slot())
            slot["qok"] += record["qok"]
            slot["qerr"] += record["qerr"]
            summary["queries_ok"] += record["qok"]
            summary["queries_err"] += record["qerr"]
        elif ev == "bug_found":
            summary["bugs"].append(
                {
                    "ts": ts,
                    "shard": shard,
                    "kind": record["kind"],
                    "oracle": record["oracle"],
                }
            )
        elif ev == "cluster_new":
            summary["clusters_new"] += 1
        elif ev == "cluster_saturated":
            summary["clusters_saturated"] += 1
    summary["unique_plans"] = sum(
        slot["unique_plans"] for slot in summary["shards"].values()
    )
    return summary


def _shard_slot() -> dict:
    return {
        "starts": [],
        "finishes": [],
        "rounds": 1,
        "tests": 0,
        "skipped": 0,
        "reports": 0,
        "qok": 0,
        "qerr": 0,
        "unique_plans": 0,
    }


def render_trace_report(records: Iterable[dict]) -> str:
    """Deterministic text report: run summary, timeline, per-phase
    flamegraph-style table."""
    s = summarize_trace(records)
    if s["records"] == 0:
        return "empty trace (0 records)\n"
    epoch = s["first_ts"] or 0.0
    wall = (s["last_ts"] - epoch) if s["last_ts"] is not None else 0.0
    lines: list[str] = []
    run = s["run"]
    head = "trace report"
    if run:
        head += (
            f" -- oracle {run.get('oracle', '?')}, "
            f"{run.get('workers', '?')} worker(s), "
            f"seed {run.get('seed', '?')}"
        )
    lines.append(head)
    lines.append(
        f"{s['records']} records ({s['invalid']} invalid), "
        f"trace span {wall:.2f}s"
    )
    tests = s["tests"] or sum(
        sh["tests"] for sh in s["shards"].values()
    )
    reports = (
        s["finish"]["reports"]
        if s["finish"]
        else sum(sh["reports"] for sh in s["shards"].values())
    )
    lines.append(
        f"tests {tests}, skipped {s['skipped']}, "
        f"queries {s['queries_ok']} ok / {s['queries_err']} err, "
        f"reports {reports}, clusters +{s['clusters_new']} new"
        + (
            f" / {s['clusters_saturated']} saturated"
            if s["clusters_saturated"]
            else ""
        )
    )
    cache = s["cache"]
    if cache:
        hits = sum(v for k, v in cache.items() if k.endswith("_hits"))
        misses = sum(v for k, v in cache.items() if k.endswith("_misses"))
        total = hits + misses
        rate = (100 * hits / total) if total else 0.0
        lines.append(
            f"cache {hits} hits / {misses} misses ({rate:.1f}% hit rate)"
        )

    lines.append("")
    lines.append("timeline (offsets from first record):")
    for shard in sorted(s["shards"]):
        slot = s["shards"][shard]
        start = min(slot["starts"]) - epoch if slot["starts"] else 0.0
        end = max(slot["finishes"]) - epoch if slot["finishes"] else wall
        lines.append(
            f"  shard {shard}: {start:8.2f}s -> {end:8.2f}s  "
            f"{slot['tests']:6d} tests  {slot['reports']:3d} reports"
            + (
                f"  ({slot['rounds']} rounds)"
                if slot["rounds"] > 1
                else ""
            )
        )
    for barrier in s["rounds"]:
        lines.append(
            f"  round barrier {barrier['round'] + 1}/{barrier['rounds']}"
            f" at {barrier['ts'] - epoch:8.2f}s  "
            f"{barrier['plans']} plans covered, "
            f"{barrier['saturated']} faults saturated"
        )
    for bug in s["bugs"][:10]:
        lines.append(
            f"  bug at {bug['ts'] - epoch:8.2f}s  shard {bug['shard']}"
            f"  [{bug['kind']}] via {bug['oracle']}"
        )
    if len(s["bugs"]) > 10:
        lines.append(f"  ... and {len(s['bugs']) - 10} more bugs")

    lines.append("")
    lines.append(render_phase_table(s["phases"]))
    return "\n".join(lines) + "\n"


def render_phase_table(phases: "dict[str, dict]") -> str:
    """Flamegraph-style per-phase table (widest phase fills the bar)."""
    if not phases:
        return "per-phase breakdown: no phase data in trace"
    total = sum(rec["seconds"] for rec in phases.values())
    widest = max(rec["seconds"] for rec in phases.values())
    lines = ["per-phase breakdown (profiled time):"]
    lines.append(
        f"  {'phase':10s} {'calls':>10s} {'seconds':>10s} {'share':>7s}"
    )
    for phase, rec in phases.items():
        share = (rec["seconds"] / total) if total > 0 else 0.0
        bar_len = (
            int(round(_BAR_WIDTH * rec["seconds"] / widest))
            if widest > 0
            else 0
        )
        lines.append(
            f"  {phase:10s} {rec['calls']:>10d} {rec['seconds']:>10.3f} "
            f"{100 * share:>6.1f}% {'#' * bar_len}"
        )
    return "\n".join(lines)


# ---------------------------------------------------------------------------
# ``coddtest top``
# ---------------------------------------------------------------------------


def snapshot_from_trace(records: Iterable[dict]) -> dict:
    """A status-schema snapshot reconstructed from a (finished) trace."""
    s = summarize_trace(records)
    epoch = s["first_ts"] or 0.0
    wall = (s["last_ts"] - epoch) if s["last_ts"] is not None else 0.0
    tests = s["tests"]
    cache = s["cache"]
    hits = sum(v for k, v in cache.items() if k.endswith("_hits"))
    misses = sum(v for k, v in cache.items() if k.endswith("_misses"))
    rounds = s["rounds"][-1]["rounds"] if s["rounds"] else None
    run = s["run"]
    shards = {}
    for shard in sorted(s["shards"]):
        slot = s["shards"][shard]
        shards[str(shard)] = {
            "tests": slot["tests"],
            "reports": slot["reports"],
            "done": bool(slot["finishes"]),
            "age_s": (
                round(s["last_ts"] - max(slot["finishes"]), 3)
                if slot["finishes"]
                else 0.0
            ),
        }
    return {
        "schema_version": STATUS_SCHEMA_VERSION,
        "state": "done" if s["finish"] is not None else "running",
        "oracle": run.get("oracle"),
        "workers": run.get("workers", len(shards) or 1),
        "seed": run.get("seed"),
        "elapsed_s": round(wall, 3),
        "tests": tests,
        "tests_per_second": round(tests / wall, 2) if wall > 0 else 0.0,
        "qpt": round(s["queries_ok"] / tests, 3) if tests else 0.0,
        "skipped": s["skipped"],
        "queries_ok": s["queries_ok"],
        "queries_err": s["queries_err"],
        "reports": (
            s["finish"]["reports"]
            if s["finish"]
            else sum(sh["reports"] for sh in s["shards"].values())
        ),
        "unique_reports": None,
        "clusters": s["clusters_new"] or None,
        "unique_plans": s["unique_plans"],
        "round": (s["rounds"][-1]["round"] + 1) if s["rounds"] else None,
        "rounds": rounds,
        "cache": {
            "hits": hits,
            "misses": misses,
            "hit_rate": round(hits / (hits + misses), 4)
            if hits + misses
            else 0.0,
        },
        "shards": shards,
    }


def render_top_frame(snapshot: dict) -> str:
    """One ``top``-style frame of a status snapshot (live or replayed)."""
    lines: list[str] = []
    oracle = snapshot.get("oracle") or "?"
    lines.append(
        f"coddtest top -- {snapshot.get('state', '?'):7s} "
        f"oracle {oracle}, {snapshot.get('workers', '?')} worker(s), "
        f"seed {snapshot.get('seed', '?')}"
    )
    cache = snapshot.get("cache") or {}
    summary = [
        f"elapsed {snapshot.get('elapsed_s', 0.0):7.1f}s",
        f"tests {snapshot.get('tests', 0)}"
        f" ({snapshot.get('tests_per_second', 0.0):.1f}/s)",
        f"QPT {snapshot.get('qpt', 0.0):.2f}",
        f"cache {100 * cache.get('hit_rate', 0.0):.1f}%",
        f"plans {snapshot.get('unique_plans', 0)}",
    ]
    reports = f"reports {snapshot.get('reports', 0)}"
    if snapshot.get("unique_reports") is not None:
        reports += f" ({snapshot['unique_reports']} unique)"
    summary.append(reports)
    if snapshot.get("clusters") is not None:
        summary.append(f"clusters {snapshot['clusters']}")
    if snapshot.get("round") is not None:
        summary.append(
            f"round {snapshot['round']}/{snapshot.get('rounds', '?')}"
        )
    lines.append("  ".join(summary))
    shards = snapshot.get("shards") or {}
    if shards:
        lines.append(
            f"  {'shard':>5s} {'tests':>8s} {'reports':>8s} "
            f"{'age':>7s}  status"
        )
        for shard in sorted(shards, key=lambda s: int(s)):
            slot = shards[shard]
            status = "done" if slot.get("done") else "running"
            age = slot.get("age_s", 0.0)
            if not slot.get("done") and age > 10.0:
                status = f"stalled? ({age:.0f}s silent)"
            lines.append(
                f"  {shard:>5s} {slot.get('tests', 0):>8d} "
                f"{slot.get('reports', 0):>8d} {age:>6.1f}s  {status}"
            )
    return "\n".join(lines) + "\n"
