"""Live fleet status: a JSON snapshot behind a stdlib HTTP endpoint.

``coddtest fleet --status-port N`` starts a :class:`StatusServer` in a
daemon thread of the *orchestrator* process; the orchestrator's
progress loop pushes fleet-wide counters into the shared
:class:`StatusBoard`, and every ``GET`` serializes the latest snapshot.
Nothing on the worker hot path ever touches the server: status is a
read-only view over data the orchestrator already aggregates for
progress lines, so a fleet with the endpoint enabled stays
bit-identical to one without it.

Snapshot schema (``STATUS_SCHEMA_VERSION``)::

    {
      "schema_version": 1,
      "state": "running" | "done",
      "oracle": str, "workers": int, "seed": int,
      "elapsed_s": float, "tests": int, "tests_per_second": float,
      "qpt": float, "skipped": int, "queries_ok": int,
      "queries_err": int, "reports": int, "unique_reports": int|null,
      "clusters": int|null, "unique_plans": int,
      "round": int|null, "rounds": int|null,
      "cache": {"hits": int, "misses": int, "hit_rate": float},
      "shards": {"0": {"tests": int, "reports": int, "done": bool,
                        "age_s": float}, ...}
    }

``unique_plans`` is the *sum* of per-shard unique-plan counts -- an
upper bound on the merged set-union the final table reports (shards may
discover the same fingerprint); it is a live approximation, never a
deterministic output.  ``age_s`` is seconds since the shard's last
progress message: the per-shard liveness signal.
"""

from __future__ import annotations

import json
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

#: Bump when snapshot fields are removed or change meaning.
STATUS_SCHEMA_VERSION = 1


class StatusBoard:
    """Thread-safe holder of the latest fleet snapshot."""

    def __init__(self) -> None:
        self._lock = threading.Lock()
        self._snapshot: dict = {
            "schema_version": STATUS_SCHEMA_VERSION,
            "state": "starting",
        }

    def publish(self, snapshot: dict) -> None:
        """Replace the snapshot (the schema header is stamped here)."""
        with self._lock:
            self._snapshot = {
                "schema_version": STATUS_SCHEMA_VERSION,
                **snapshot,
            }

    def snapshot(self) -> dict:
        with self._lock:
            return dict(self._snapshot)


class _StatusHandler(BaseHTTPRequestHandler):
    """GET / (or /status) -> the board's snapshot as JSON."""

    board: StatusBoard  # set by StatusServer on the handler subclass

    def do_GET(self) -> None:  # noqa: N802 (stdlib naming)
        if self.path.split("?")[0] not in ("/", "/status"):
            self.send_error(404, "unknown path (serve / or /status)")
            return
        body = (
            json.dumps(self.board.snapshot(), sort_keys=True) + "\n"
        ).encode()
        self.send_response(200)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, *args) -> None:  # pragma: no cover
        """Silence per-request stderr logging."""


class StatusServer:
    """Stdlib HTTP server thread publishing a :class:`StatusBoard`.

    ``port=0`` binds an ephemeral port; :attr:`port` holds the bound
    one after :meth:`start`.
    """

    def __init__(
        self, board: StatusBoard, port: int = 0, host: str = "127.0.0.1"
    ) -> None:
        self.board = board
        self.host = host
        self.port = port
        self._httpd: "ThreadingHTTPServer | None" = None
        self._thread: "threading.Thread | None" = None

    def start(self) -> int:
        handler = type(
            "BoundStatusHandler", (_StatusHandler,), {"board": self.board}
        )
        self._httpd = ThreadingHTTPServer((self.host, self.port), handler)
        self._httpd.daemon_threads = True
        self.port = self._httpd.server_address[1]
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="coddtest-status",
            daemon=True,
        )
        self._thread.start()
        return self.port

    @property
    def url(self) -> str:
        return f"http://{self.host}:{self.port}/"

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._thread is not None:
            self._thread.join(timeout=5)
            self._thread = None

    def __enter__(self) -> "StatusServer":
        self.start()
        return self

    def __exit__(self, *exc) -> None:
        self.stop()


def fetch_status(url: str, timeout: float = 5.0) -> dict:
    """GET a status snapshot from a running server (stdlib urllib)."""
    from urllib.request import urlopen

    with urlopen(url, timeout=timeout) as resp:  # noqa: S310 (http ok)
        return json.loads(resp.read().decode())


def now_monotonic() -> float:
    """Indirection point so tests can freeze liveness ages."""
    return time.monotonic()
