"""Structured trace events: the run's JSONL flight recorder.

A trace is a stream of schema-versioned JSON records, one per line,
covering the whole lifecycle of a campaign or fleet run::

    {"v": 1, "ts": 1722470000.123456, "ev": "test_finish", "shard": 0,
     "n": 17, "qerr": 0, "qok": 4, "status": "ok"}

Field ordering is part of the schema: every record starts with the
header ``v, ts, ev, shard`` followed by its payload keys in sorted
order, so rendering is byte-stable (golden-tested) and two traces of
the same run diff cleanly.  ``ts`` is Unix wall-clock seconds -- the
one surface where wall-clock is allowed, per the obs determinism
contract.

Event taxonomy (``EVENT_SCHEMA`` below is the machine-readable form
``tools/trace_check.py`` validates against):

* ``run_start`` / ``run_finish``   -- one fleet invocation,
* ``shard_start`` / ``shard_finish`` -- worker lifecycle; the finish
  record carries the shard's cache stats and per-phase time breakdown,
* ``round_barrier``                -- guided snapshot-exchange barrier,
* ``state``                        -- one generated database state,
  carrying the *cumulative* cache hit/miss counters (per-lookup events
  would dwarf the trace; per-state granularity bounds the volume while
  keeping the hit-rate trajectory reconstructable),
* ``test_start`` / ``test_finish`` -- one oracle test,
* ``bug_found``                    -- a report was filed,
* ``cluster_new`` / ``cluster_saturated`` -- corpus triage transitions.

Writers are per-worker and non-blocking on the hot path: ``emit``
appends to an in-memory buffer that is flushed to disk in batches
(one ``writelines`` per ``buffer_size`` events), never fsyncing and
never taking locks shared with another process.  Each fleet worker
writes its own part file; the orchestrator merges the parts into the
final trace sorted by timestamp (:func:`merge_trace_files`).

Schema versioning policy: ``TRACE_SCHEMA_VERSION`` bumps whenever a
field is removed or changes meaning/type, or header ordering changes;
*adding* a new event type or a new payload field is backward-compatible
and does not bump (readers must ignore unknown fields and events).
Golden tests in ``tests/obs/test_trace.py`` enforce the byte layout.
"""

from __future__ import annotations

import json
import os
import time
from typing import Iterable

#: Bump on breaking layout changes only; see the module docstring.
TRACE_SCHEMA_VERSION = 1

#: Header fields, in order, present on every record.  ``shard`` is
#: None for orchestrator-side events.
HEADER_FIELDS = ("v", "ts", "ev", "shard")

#: Required payload fields (name -> allowed types) per event type.
#: Extra payload fields are allowed (forward compatibility); missing
#: required fields are schema violations.
EVENT_SCHEMA: dict[str, dict[str, tuple]] = {
    "run_start": {
        "oracle": (str,),
        "workers": (int,),
        "seed": (int,),
    },
    "run_finish": {
        "tests": (int,),
        "reports": (int,),
        "wall_s": (float, int),
    },
    "shard_start": {
        "seed": (int,),
        "round": (int,),
    },
    "shard_finish": {
        "tests": (int,),
        "skipped": (int,),
        "reports": (int,),
        "round": (int,),
        "phases": (dict,),
        "cache": (dict,),
    },
    "round_barrier": {
        "round": (int,),
        "rounds": (int,),
        "saturated": (int,),
        "plans": (int,),
    },
    "state": {
        "states": (int,),
        "tests": (int,),
        "cache": (dict,),
    },
    "test_start": {
        "n": (int,),
    },
    "test_finish": {
        "n": (int,),
        "status": (str,),
        "qok": (int,),
        "qerr": (int,),
    },
    "bug_found": {
        "kind": (str,),
        "oracle": (str,),
        "faults": (list,),
    },
    "cluster_new": {
        "fingerprint": (str,),
        "kind": (str,),
    },
    "cluster_saturated": {
        "fault": (str,),
    },
}


def format_record(
    ev: str, ts: float, shard: "int | None", payload: dict
) -> str:
    """One canonical JSONL line: header fields first, payload keys
    sorted.  This function is the byte-stability contract."""
    record = {
        "v": TRACE_SCHEMA_VERSION,
        "ts": round(ts, 6),
        "ev": ev,
        "shard": shard,
    }
    for key in sorted(payload):
        record[key] = payload[key]
    return json.dumps(record, separators=(", ", ": "))


def validate_record(record: dict) -> "str | None":
    """None when *record* is schema-valid, else a human-readable
    violation.  Unknown events and extra fields pass (see the schema
    versioning policy)."""
    for name in HEADER_FIELDS:
        if name not in record:
            return f"missing header field {name!r}"
    if record["v"] != TRACE_SCHEMA_VERSION:
        return (
            f"schema version {record['v']!r} != {TRACE_SCHEMA_VERSION}"
        )
    if not isinstance(record["ts"], (int, float)):
        return f"ts must be a number, got {type(record['ts']).__name__}"
    if record["shard"] is not None and not isinstance(record["shard"], int):
        return f"shard must be int or null, got {record['shard']!r}"
    ev = record["ev"]
    if not isinstance(ev, str):
        return f"ev must be a string, got {ev!r}"
    spec = EVENT_SCHEMA.get(ev)
    if spec is None:
        return None  # unknown event types are forward-compatible
    for name, types in spec.items():
        if name not in record:
            return f"{ev}: missing required field {name!r}"
        if not isinstance(record[name], types) or isinstance(
            record[name], bool
        ) and bool not in types:
            return (
                f"{ev}: field {name!r} has type "
                f"{type(record[name]).__name__}, expected "
                f"{'/'.join(t.__name__ for t in types)}"
            )
    return None


class TraceWriter:
    """Buffered per-worker JSONL sink.

    Never shared across processes: each worker opens its own part file
    in append mode.  ``emit`` is non-blocking on the hot path -- it
    appends a formatted line to a list; disk I/O happens once per
    *buffer_size* events and on :meth:`close`.
    """

    def __init__(
        self,
        path: str,
        shard: "int | None" = None,
        buffer_size: int = 256,
    ) -> None:
        self.path = path
        self.shard = shard
        self.buffer_size = max(1, buffer_size)
        self._lines: list[str] = []
        self._closed = False

    def emit(self, ev: str, **payload) -> None:
        if self._closed:
            raise ValueError(f"trace writer for {self.path} is closed")
        self._lines.append(
            format_record(ev, time.time(), self.shard, payload) + "\n"
        )
        if len(self._lines) >= self.buffer_size:
            self.flush()

    def flush(self) -> None:
        if not self._lines:
            return
        with open(self.path, "a", encoding="utf-8") as fh:
            fh.writelines(self._lines)
        self._lines.clear()

    def close(self) -> None:
        self.flush()
        self._closed = True

    def __enter__(self) -> "TraceWriter":
        return self

    def __exit__(self, *exc) -> None:
        self.close()


def read_trace(path: str) -> list[dict]:
    """Records of a trace file, as a list so callers can fold it more
    than once (malformed JSON raises ValueError with the offending
    line number)."""
    records: list[dict] = []
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: malformed trace record: {exc}"
                ) from None
    return records


def shard_part_path(trace_path: str, shard_index: int) -> str:
    """Where shard *shard_index* of a fleet writes its part file."""
    return f"{trace_path}.shard{shard_index}.part"


def merge_trace_files(
    out_path: str,
    part_paths: Iterable[str],
    extra_lines: "Iterable[str] | None" = None,
    remove_parts: bool = True,
) -> int:
    """Merge per-worker part files (plus the orchestrator's own
    already-formatted *extra_lines*) into one trace sorted by
    timestamp, stably -- records with equal timestamps keep their
    per-writer order.  Returns the number of records written."""
    records: list[tuple[float, int, str]] = []
    seq = 0
    for line in extra_lines or ():
        records.append((json.loads(line)["ts"], seq, line))
        seq += 1
    for path in part_paths:
        if not os.path.exists(path):
            continue
        with open(path, "r", encoding="utf-8") as fh:
            for line in fh:
                if not line.strip():
                    continue
                records.append((json.loads(line)["ts"], seq, line))
                seq += 1
    records.sort(key=lambda rec: (rec[0], rec[1]))
    with open(out_path, "w", encoding="utf-8") as fh:
        for _, _, line in records:
            fh.write(line if line.endswith("\n") else line + "\n")
    if remove_parts:
        for path in part_paths:
            if os.path.exists(path):
                os.remove(path)
    return len(records)
