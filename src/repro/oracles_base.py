"""Shared oracle infrastructure.

A test oracle consumes a prepared database state and runs *tests*: small
groups of queries whose results must satisfy a metamorphic relation.
Outcomes:

* ``ok``    -- relation held,
* ``bug``   -- relation violated (logic bug) or the engine raised an
  internal error / crash / hang (paper Table 1's other bug kinds),
* ``error`` -- a query raised an *expected* error; the test is discarded
  and counted as unsuccessful (paper Table 3's "unsuccessful queries"),
* ``skip``  -- the oracle could not build a test (e.g. empty join result,
  paper Section 3.2).
"""

from __future__ import annotations

import abc
import random
from dataclasses import dataclass, field

from repro.adapters.base import EngineAdapter, ExecResult, SchemaInfo
from repro.errors import EngineCrash, EngineHang, InternalError, SqlError
from repro.minidb.values import SqlValue, row_sort_key


@dataclass
class TestReport:
    """One bug-inducing test case.

    Reports cross process boundaries (fleet workers pickle them onto a
    result queue) and are persisted to JSONL corpora, so they must stay
    plain data: strings, lists, and frozensets only.
    """

    oracle: str
    kind: str  # "logic" | "internal error" | "crash" | "hang"
    statements: list[str]
    description: str
    fired_faults: frozenset[str] = frozenset()
    #: ``(primary, secondary)`` backend names for differential reports;
    #: None for single-engine oracles.
    backend_pair: tuple[str, str] | None = None
    #: Plan-fingerprint signature of the test's main query (the triage
    #: clustering signal); differential reports carry both plans joined
    #: as ``"primary|secondary"``.  None when no main query ran.
    plan_fingerprint: str | None = None

    def to_dict(self) -> dict:
        """JSON-compatible form (used by the fleet bug corpus)."""
        out = {
            "oracle": self.oracle,
            "kind": self.kind,
            "statements": list(self.statements),
            "description": self.description,
            "fired_faults": sorted(self.fired_faults),
        }
        if self.backend_pair is not None:
            out["backend_pair"] = list(self.backend_pair)
        if self.plan_fingerprint is not None:
            out["plan_fingerprint"] = self.plan_fingerprint
        return out

    @classmethod
    def from_dict(cls, data: dict) -> "TestReport":
        pair = data.get("backend_pair")
        return cls(
            oracle=data["oracle"],
            kind=data["kind"],
            statements=list(data["statements"]),
            description=data["description"],
            fired_faults=frozenset(data.get("fired_faults", ())),
            backend_pair=tuple(pair) if pair else None,
            plan_fingerprint=data.get("plan_fingerprint"),
        )


@dataclass
class TestOutcome:
    """Result of one oracle iteration."""

    status: str  # "ok" | "bug" | "error" | "skip"
    report: TestReport | None = None
    queries_ok: int = 0
    queries_err: int = 0
    fingerprint: str | None = None
    #: Injected faults that fired during the test, whatever its status
    #: (a guided policy's saturation signal needs to see a test re-hit
    #: an already-saturated fault even when no relation was violated).
    fired_faults: frozenset[str] = frozenset()


class OracleSkip(Exception):
    """Internal control flow: abandon the current test."""

    def __init__(self, counted_as_error: bool = False) -> None:
        super().__init__()
        self.counted_as_error = counted_as_error


class Oracle(abc.ABC):
    """Base class for all test oracles."""

    name = "oracle"
    #: Attached :class:`repro.obs.PhaseProfiler` (set by the campaign;
    #: None = unprofiled).  Wall-clock only -- profiled and unprofiled
    #: oracles produce identical outcomes.
    profiler = None

    def __init__(self) -> None:
        self.adapter: EngineAdapter | None = None
        self.schema: SchemaInfo | None = None
        self.rng: random.Random = random.Random(0)
        self._q_ok = 0
        self._q_err = 0
        self._fired: set[str] = set()
        self._statements: list[str] = []
        self._fingerprint: str | None = None

    # -- lifecycle -------------------------------------------------------------

    def prepare(
        self, adapter: EngineAdapter, schema: SchemaInfo, rng: random.Random
    ) -> None:
        """Bind the oracle to a fresh database state."""
        self.adapter = adapter
        self.schema = schema
        self.rng = rng
        self.on_prepare()

    def on_prepare(self) -> None:
        """Hook for subclasses to rebuild their generators."""

    def run_one(self) -> TestOutcome:
        """Run a single test against the current state."""
        assert self.adapter is not None, "prepare() must be called first"
        self._q_ok = 0
        self._q_err = 0
        self._fired = set()
        self._statements = []
        self._fingerprint = None
        try:
            report = self.check_once()
        except OracleSkip as skip:
            return self._outcome("error" if skip.counted_as_error else "skip")
        except InternalError as exc:
            return self._bug("internal error", str(exc))
        except EngineCrash as exc:
            return self._bug("crash", str(exc))
        except EngineHang as exc:
            return self._bug("hang", str(exc))
        if report is not None:
            report.fired_faults = frozenset(self._fired)
            report.statements = list(self._statements)
            if report.plan_fingerprint is None:
                # Oracles that know a richer signature (the differential
                # oracle joins both engines' plans) set it themselves.
                report.plan_fingerprint = self._fingerprint
            out = self._outcome("bug")
            out.report = report
            return out
        return self._outcome("ok")

    @abc.abstractmethod
    def check_once(self) -> TestReport | None:
        """Build and check one metamorphic test.  Return a report on
        violation, None when the relation held."""

    # -- helpers ----------------------------------------------------------------

    def _outcome(self, status: str) -> TestOutcome:
        return TestOutcome(
            status=status,
            queries_ok=self._q_ok,
            queries_err=self._q_err,
            fingerprint=self._fingerprint,
            fired_faults=frozenset(self._fired),
        )

    def _bug(self, kind: str, message: str) -> TestOutcome:
        out = self._outcome("bug")
        out.report = TestReport(
            oracle=self.name,
            kind=kind,
            statements=list(self._statements),
            description=message,
            fired_faults=frozenset(self._fired),
            plan_fingerprint=self._fingerprint,
        )
        return out

    def execute(
        self, sql: str, is_main_query: bool = False, ast=None
    ) -> ExecResult:
        """Run one query, with bookkeeping.

        Expected errors abandon the test (raising :class:`OracleSkip`);
        injected internal errors / crashes / hangs propagate to
        :meth:`run_one`, which converts them to bug reports.

        *ast*, when the caller just rendered *sql* from an AST, is
        offered to the adapter's parse memo (no-op without an attached
        :class:`repro.perf.EvalCache`); bookkeeping is identical either
        way.
        """
        assert self.adapter is not None
        self._statements.append(sql)
        if ast is not None:
            self.adapter.prime_parse(sql, ast)
        try:
            result = self.adapter.execute(sql)
        except SqlError:
            self._q_err += 1
            raise OracleSkip(counted_as_error=True) from None
        except (InternalError, EngineCrash, EngineHang):
            self._fired |= self.adapter.fired_fault_ids()
            raise
        self._q_ok += 1
        self._fired |= self.adapter.fired_fault_ids()
        if is_main_query and result.plan_fingerprint:
            self._fingerprint = result.plan_fingerprint
        return result

    def compare_rows(
        self,
        a: "list[tuple[SqlValue, ...]]",
        b: "list[tuple[SqlValue, ...]]",
    ) -> bool:
        """:func:`rows_equal`, scoped under the ``compare`` phase of an
        attached profiler.  The comparison itself is identical."""
        prof = self.profiler
        if prof is None:
            return rows_equal(a, b)
        t0 = prof.begin()
        try:
            return rows_equal(a, b)
        finally:
            prof.end("compare", t0)

    def profiled(self, phase: str):
        """Context manager scoping a block under *phase* of an attached
        profiler (a no-op scope when unprofiled).  Used by oracles to
        tag their generation work."""
        prof = self.profiler
        if prof is None:
            return _NULL_SCOPE
        return prof.phase(phase)

    def report(self, description: str) -> TestReport:
        return TestReport(
            oracle=self.name,
            kind="logic",
            statements=[],
            description=description,
        )


class _NullScope:
    """Reusable no-op context manager for unprofiled oracles."""

    def __enter__(self) -> None:
        return None

    def __exit__(self, *exc) -> None:
        return None


_NULL_SCOPE = _NullScope()


# ---------------------------------------------------------------------------
# Result comparison
# ---------------------------------------------------------------------------


def canonical_value(v: SqlValue) -> SqlValue:
    """Canonical form of one value: floats lose both tiny absolute noise
    (9 decimal places) and accumulation-order noise in large magnitudes
    (12 significant digits), mirroring the paper's handling of
    floating-point false alarms (Section 4.1).  Engines that accumulate
    an AVG over BIGINTs in a different order agree to 12 significant
    digits but not to the last ulp.  All other types pass through.
    """
    if isinstance(v, float):
        rounded = round(v, 9)
        if rounded == 0.0:  # collapse -0.0 and underflow to +0.0
            return 0.0
        return float(f"{rounded:.12g}")
    return v


def canonical(rows: list[tuple[SqlValue, ...]]) -> list[tuple[SqlValue, ...]]:
    """Order-insensitive, float-tolerant canonical form of a result set.

    The metamorphic relations compare result *multisets*: generated
    queries carry no ORDER BY, so row order is not part of the contract.
    Idempotent: ``canonical(canonical(x)) == canonical(x)``.
    """
    normalized = [tuple(canonical_value(v) for v in row) for row in rows]
    return sorted(normalized, key=row_sort_key)


def rows_equal(a: list[tuple[SqlValue, ...]], b: list[tuple[SqlValue, ...]]) -> bool:
    """Multiset equality of two result sets."""
    if len(a) != len(b):
        return False
    return canonical(a) == canonical(b)
