"""Worker-local evaluation caching for the oracle hot path.

The paper's testbed sustains throughput by running on 64 cores; this
reproduction additionally avoids *recomputing* work that is provably
identical across the statements of one campaign (ROADMAP,
"Worker-local caching").  Three memo domains live behind one
:class:`EvalCache`:

* **parse** -- SQL text -> parsed statement AST.  Pure, so entries are
  state-independent.  The oracles *prime* this memo with the
  parser-normal form of the ASTs they just rendered (see
  :func:`parser_normal`), which removes the dominant
  ``to_sql() -> parse()`` round-trip from the O/F/auxiliary hot path.
* **statement** -- ``(namespace, state token, SQL)`` -> the full
  observable outcome of a read-only statement: result rows, plan
  fingerprint, fired fault ids, newly hit coverage tags, or the raised
  error.  The state token is a hash chain over every state-changing
  statement since ``reset()``, so DML/DDL invalidates implicitly and
  two adapters replaying the same program prefix share entries (the
  ddmin reducer and triage replay exploit this).  This is where the
  auxiliary-query results of ``fold_expression`` are memoized: the
  auxiliary SQL is the canonical phi fingerprint, and caching *below*
  the oracle's bookkeeping keeps queries_ok / statement lists /
  reports bit-identical.
* **expression** -- per-statement memoization of row-independent
  subtree values inside :mod:`repro.minidb.evaluator` (no column
  references, no subqueries, no aggregates), so a deep constant
  subtree is evaluated once per statement instead of once per row.

Determinism contract: a campaign with a cache attached is
**bit-identical** to the same campaign without one --
``CampaignStats.signature()``, every ``TestReport``, fired-fault
attribution, and branch coverage all match.  Caches are worker-local:
each :class:`~repro.runner.campaign.Campaign` (and each fleet shard)
owns one instance and nothing is shared across processes, so 1-worker
bit-match guarantees are preserved.
"""

from repro.perf.cache import CachedStatement, CacheStats, EvalCache, advance_state_token
from repro.perf.normalize import parser_normal

__all__ = [
    "CacheStats",
    "CachedStatement",
    "EvalCache",
    "advance_state_token",
    "parser_normal",
]
