"""Machine-readable throughput benchmarking (``BENCH_perf.json``).

One JSON schema, two producers: ``tools/perf_smoke.py`` (the blocking
CI job, which uploads the file as an artifact) and
``benchmarks/test_cache_speedup.py`` (the pytest-benchmark variant).
Sharing the measurement code here keeps every recorded number -- tests
per second, speedup, hit rate -- defined the same way in both places,
so the bench trajectory is comparable across PRs.

Measurements run the **fig2 workload** (CODDTest & Expression at a
fixed MaxDepth, paper Figure 2): it is the configuration whose
throughput the paper sweeps, and the one ROADMAP names as the
expression-evaluation-bound hot path.
"""

from __future__ import annotations

import time

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.core import CoddTestOracle
from repro.dialects import make_engine
from repro.perf.cache import EvalCache
from repro.runner.campaign import Campaign, CampaignStats

#: Bump when the BENCH_perf.json layout changes.  v2 added the
#: per-phase wall-clock breakdown (``phases`` per sweep record and the
#: aggregated ``phase_totals``) from :mod:`repro.obs.phases`; still v2,
#: sweep records additionally carry the vectorized-evaluation split
#: (``tests_per_second_vector_off`` / ``vector_speedup``) and the
#: payload a ``history`` trajectory of prior per-commit runs.
BENCH_SCHEMA_VERSION = 2


def run_fig2_campaign(
    depth: int,
    tests: int,
    seed: int,
    use_cache: bool,
    use_vector: bool = False,
) -> tuple[CampaignStats, float]:
    """One fig2-workload campaign; returns (stats, wall seconds)."""
    oracle = CoddTestOracle(max_depth=depth, expression_only=True)
    adapter = MiniDBAdapter(make_engine("sqlite"))
    cache = EvalCache() if use_cache else None
    campaign = Campaign(
        oracle, adapter, seed=seed, cache=cache, vector=use_vector
    )
    start = time.perf_counter()
    stats = campaign.run(n_tests=tests)
    return stats, time.perf_counter() - start


def measure_depth(
    depth: int, tests: int = 400, seed: int = 17, repeats: int = 2
) -> dict:
    """Three-way measurement of one MaxDepth point.

    Runs the fig2 workload cache-off (the uncached reference), cache-on
    with scalar evaluation, and cache-on with vectorized evaluation
    (the production configuration).  The returned record carries all
    three throughputs, the cache speedup, the incremental vector
    speedup on top of the cache, and -- load-bearing for the CI gate --
    whether all three campaigns produced identical deterministic
    signatures.

    Each mode runs *repeats* times interleaved and keeps its best wall
    time: the campaigns are deterministic, so repeats differ only by
    scheduler/allocator noise, and best-of-N is the standard way to
    strip that noise from the gated speedup ratios.
    """
    off_seconds = scalar_seconds = on_seconds = float("inf")
    for _ in range(max(1, repeats)):
        off_stats, seconds = run_fig2_campaign(depth, tests, seed, False)
        off_seconds = min(off_seconds, seconds)
        scalar_stats, seconds = run_fig2_campaign(
            depth, tests, seed, True, use_vector=False
        )
        scalar_seconds = min(scalar_seconds, seconds)
        on_stats, seconds = run_fig2_campaign(
            depth, tests, seed, True, use_vector=True
        )
        on_seconds = min(on_seconds, seconds)
    off_sig = off_stats.signature()
    return {
        "max_depth": depth,
        "tests": tests,
        "seed": seed,
        "tests_per_second_cache_off": round(tests / max(off_seconds, 1e-9), 2),
        "tests_per_second_vector_off": round(
            tests / max(scalar_seconds, 1e-9), 2
        ),
        "tests_per_second_cache_on": round(tests / max(on_seconds, 1e-9), 2),
        "speedup": round(off_seconds / max(on_seconds, 1e-9), 3),
        "vector_speedup": round(
            scalar_seconds / max(on_seconds, 1e-9), 3
        ),
        "cache_hit_rate": round(on_stats.cache_hit_rate, 4),
        "cache_stats": dict(on_stats.cache_stats),
        "signatures_identical": (
            off_sig == scalar_stats.signature()
            and off_sig == on_stats.signature()
        ),
        # Where the wall-clock goes, per mode: the cache should shrink
        # the parse/execute share, vectorization the execute share, and
        # the per-phase trajectory across PRs shows which phase a
        # regression landed in.
        "phases": {
            "cache_off": _round_phases(off_stats.phase_stats),
            "cache_on": _round_phases(on_stats.phase_stats),
        },
    }


def _round_phases(phases: "dict[str, dict]") -> dict:
    return {
        name: {"calls": rec["calls"], "seconds": round(rec["seconds"], 6)}
        for name, rec in phases.items()
    }


def bench_payload(
    sweep: list[dict], workloads: "list[dict] | None" = None
) -> dict:
    """Assemble the BENCH_perf.json payload from measurement records."""
    from repro.obs.phases import merge_phase_totals

    deep = [r["speedup"] for r in sweep if r["max_depth"] >= 5]
    deep_vector = [
        r["vector_speedup"]
        for r in sweep
        if r["max_depth"] >= 5 and "vector_speedup" in r
    ]
    phase_totals: dict = {"cache_off": {}, "cache_on": {}}
    for record in sweep:
        for mode in phase_totals:
            phase_totals[mode] = merge_phase_totals(
                phase_totals[mode], record.get("phases", {}).get(mode, {})
            )
    return {
        "schema_version": BENCH_SCHEMA_VERSION,
        "workload": "fig2 (CODDTest & Expression, fixed-seed)",
        "maxdepth_sweep": list(sweep),
        "phase_totals": {
            mode: _round_phases(totals)
            for mode, totals in phase_totals.items()
        },
        "min_speedup_at_depth_ge_5": round(min(deep), 3) if deep else None,
        "min_vector_speedup_at_depth_ge_5": (
            round(min(deep_vector), 3) if deep_vector else None
        ),
        "all_signatures_identical": all(
            r["signatures_identical"] for r in sweep
        )
        and all(w.get("identical", True) for w in (workloads or [])),
        "workloads": list(workloads or []),
    }
