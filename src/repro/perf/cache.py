"""The worker-local evaluation cache.

See :mod:`repro.perf` for the memo domains and the determinism
contract.  The cache is deliberately dumb storage: adapters decide what
is safe to memoize and how to replay recorded side effects; the cache
only bounds memory (LRU per domain) and counts hits/misses.
"""

from __future__ import annotations

import dataclasses
import hashlib
from collections import OrderedDict
from dataclasses import dataclass, field, fields

from repro.minidb import ast_nodes as A
from repro.minidb.parser import parse_statement

#: Token of a freshly reset database state.  Every adapter starts its
#: hash chain here, so two adapters replaying the same statement prefix
#: arrive at the same token (cross-replay sharing in ddmin/triage).
INITIAL_STATE_TOKEN = "init"


def advance_state_token(token: str, sql: str) -> str:
    """Next state token after executing the state-changing *sql*.

    A hash chain over the write-statement history: tokens are equal iff
    the (successful or attempted) write sequences are equal, so keying
    statement results by token can never alias two divergent database
    states -- unlike a plain counter, under which two histories of the
    same *length* would collide.
    """
    digest = hashlib.blake2b(
        f"{token}\x00{sql}".encode(), digest_size=16
    )
    return digest.hexdigest()


@dataclass
class CacheStats:
    """Hit/miss counters per memo domain.

    Excluded from :meth:`repro.runner.campaign.CampaignStats.signature`
    by design: signatures assert cache-on/off equivalence, and the
    counters are precisely what differs.
    """

    parse_hits: int = 0
    parse_misses: int = 0
    stmt_hits: int = 0
    stmt_misses: int = 0
    eval_hits: int = 0
    eval_misses: int = 0
    plan_hits: int = 0
    plan_misses: int = 0

    @property
    def hits(self) -> int:
        return self.parse_hits + self.stmt_hits + self.eval_hits + self.plan_hits

    @property
    def misses(self) -> int:
        return (
            self.parse_misses
            + self.stmt_misses
            + self.eval_misses
            + self.plan_misses
        )

    @property
    def hit_rate(self) -> float:
        """Overall hit fraction in [0, 1] (0.0 when nothing was looked up)."""
        total = self.hits + self.misses
        if total == 0:
            return 0.0
        return self.hits / total

    def to_dict(self) -> dict[str, int]:
        return {f.name: getattr(self, f.name) for f in fields(self)}

    def merge(self, other: "CacheStats | dict[str, int]") -> None:
        """Accumulate *other*'s counters (dict form crosses processes)."""
        if isinstance(other, CacheStats):
            other = other.to_dict()
        for name, value in other.items():
            setattr(self, name, getattr(self, name, 0) + int(value))


def statement_skeleton(node: object) -> object:
    """Hashable normalized shape of an AST subtree, literals erased.

    Two subtrees share a skeleton iff they are structurally identical up
    to literal *values* -- the key property of CODDTest's O/F oracle
    pair, where folding only swaps expression subtrees for
    :class:`~repro.minidb.ast_nodes.Literal` constants and leaves the
    FROM clause untouched.  Used by the planner's plan-skeleton memo
    (:mod:`repro.minidb.planner`); see :func:`contains_literal` for why
    literal-bearing shapes are not memoized at all.
    """
    if isinstance(node, A.Literal):
        return ("Literal", "?")
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return (type(node).__name__,) + tuple(
            statement_skeleton(getattr(node, f.name))
            for f in dataclasses.fields(node)
        )
    if isinstance(node, (tuple, list)):
        return tuple(statement_skeleton(item) for item in node)
    return node


def contains_literal(node: object) -> bool:
    """Whether any :class:`~repro.minidb.ast_nodes.Literal` appears in the
    subtree.  Literal *values* influence planning (constant folding,
    expression-index matching, VALUES rows, large-int features), so the
    plan-skeleton memo refuses to cache shapes that erase them."""
    if isinstance(node, A.Literal):
        return True
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        return any(
            contains_literal(getattr(node, f.name))
            for f in dataclasses.fields(node)
        )
    if isinstance(node, (tuple, list)):
        return any(contains_literal(item) for item in node)
    return False


@dataclass(frozen=True)
class CachedStatement:
    """The full observable outcome of one read-only statement.

    Replaying an entry must be indistinguishable from re-executing the
    statement, so it records not just the result but every engine side
    effect the campaign can observe: fired fault ids (ground-truth bug
    attribution), newly hit coverage tags (branch coverage), and -- for
    statements that raised -- the exception class and message.
    """

    columns: tuple[str, ...] = ()
    rows: tuple = ()
    plan_fingerprint: str | None = None
    rows_affected: int = 0
    fired: frozenset = frozenset()
    cov_tags: frozenset = frozenset()
    error_type: type | None = None
    error_message: str = ""

    def raise_error(self) -> None:
        if self.error_type is not None:
            raise self.error_type(self.error_message)


class EvalCache:
    """One worker's evaluation cache (never shared across processes).

    ``max_statements`` / ``max_parses`` bound the two keyed domains via
    LRU eviction; eviction order is a pure function of the lookup
    sequence, so bounded caches stay deterministic.
    """

    def __init__(
        self, max_statements: int = 4096, max_parses: int = 8192
    ) -> None:
        self.stats = CacheStats()
        self.max_statements = max_statements
        self.max_parses = max_parses
        self._parse: OrderedDict[str, A.Statement] = OrderedDict()
        self._stmt: OrderedDict[tuple, CachedStatement] = OrderedDict()
        self._token_seq = 0

    def unique_token(self) -> str:
        """A state token no other chain can reach.

        Used when a cache is attached to an adapter whose database is
        not pristine: its true history is unknown, so it must not claim
        :data:`INITIAL_STATE_TOKEN` and alias a genuinely fresh state.
        Deterministic (a per-cache counter), so campaigns that attach
        mid-life stay replayable.
        """
        self._token_seq += 1
        return f"attach:{self._token_seq}"

    # -- parse memo ---------------------------------------------------------

    def parse(self, sql: str) -> A.Statement:
        """Parsed AST of *sql*, memoized.  Parse errors propagate and are
        not cached (they are rare and cheap to re-raise)."""
        cached = self._parse.get(sql)
        if cached is not None:
            self.stats.parse_hits += 1
            self._parse.move_to_end(sql)
            return cached
        stmt = parse_statement(sql)
        self.stats.parse_misses += 1
        self._put_parse(sql, stmt)
        return stmt

    def has_parse(self, sql: str) -> bool:
        """Whether *sql* is already in the parse memo (lets callers skip
        building the parser-normal AST for statements seen before)."""
        return sql in self._parse

    def prime_parse(self, sql: str, stmt: A.Statement) -> None:
        """Pre-seed the parse memo with an AST known to be parser-normal
        (:func:`repro.perf.normalize.parser_normal`).  First writer wins:
        an already parsed entry is never overwritten."""
        if sql not in self._parse:
            self._put_parse(sql, stmt)

    def _put_parse(self, sql: str, stmt: A.Statement) -> None:
        self._parse[sql] = stmt
        while len(self._parse) > self.max_parses:
            self._parse.popitem(last=False)

    # -- statement memo -----------------------------------------------------

    def lookup_statement(self, key: tuple) -> CachedStatement | None:
        entry = self._stmt.get(key)
        if entry is None:
            self.stats.stmt_misses += 1
            return None
        self.stats.stmt_hits += 1
        self._stmt.move_to_end(key)
        return entry

    def store_statement(self, key: tuple, entry: CachedStatement) -> None:
        self._stmt[key] = entry
        while len(self._stmt) > self.max_statements:
            self._stmt.popitem(last=False)

    # -- introspection ------------------------------------------------------

    def __len__(self) -> int:
        return len(self._parse) + len(self._stmt)
