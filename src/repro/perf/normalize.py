"""Parser-normal form of generator-built ASTs.

The oracles build queries as ASTs, render them with ``to_sql()``, and
execute the text -- which the MiniDB adapter parses right back.  Priming
the parse memo with the AST the oracle already holds would skip that
round-trip, but only if the primed AST is **exactly** what
``parse_statement(to_sql(ast))`` would return: fault triggers consume
structural features (node counts, depths), so a structurally different
tree could fire different faults and break the cache-on/off
bit-identity contract.

The parser's output is a fixpoint (``parse(to_sql(x)) == x`` for parsed
``x``), but generator output diverges in one family: **literal values
the renderer spells as compound expressions**.  ``Literal(-1)`` renders
as ``-1``, which parses as ``Unary('-', Literal(1))``; NaN/Infinity
render as division expressions (see
:func:`repro.minidb.values.sql_literal`).  :func:`parser_normal`
rewrites exactly those literals, mirroring ``sql_literal`` case by
case, and leaves everything else untouched.

The load-bearing property -- ``parser_normal(ast) ==
parse_statement(ast.to_sql())`` for every AST the oracles render -- is
asserted over full campaign streams in ``tests/perf/`` and re-gated on
every CI run by the perf-smoke signature check.
"""

from __future__ import annotations

import dataclasses
import math

from repro.minidb import ast_nodes as A

#: Per-class field-name memo: normalization runs once per rendered
#: statement on the oracle hot path, so the dataclass reflection is
#: hoisted out of the per-node walk.
_FIELDS: dict[type, tuple[str, ...]] = {}


def _field_names(cls: type) -> tuple[str, ...]:
    names = _FIELDS.get(cls)
    if names is None:
        names = tuple(f.name for f in dataclasses.fields(cls))
        _FIELDS[cls] = names
    return names


def parser_normal(node):
    """Return *node* rewritten so it equals its parse round-trip.

    Shares unchanged subtrees with the input (the common case: most
    generated trees contain no negative or non-finite literals).
    """
    if isinstance(node, A.Literal):
        return _normal_literal(node)
    if dataclasses.is_dataclass(node) and not isinstance(node, type):
        updates = None
        for name in _field_names(type(node)):
            value = getattr(node, name)
            normal = _normal_value(value)
            if normal is not value:
                if updates is None:
                    updates = {}
                updates[name] = normal
        if updates:
            return dataclasses.replace(node, **updates)
    return node


def _normal_value(value):
    if isinstance(value, A.Literal):
        return _normal_literal(value)
    if isinstance(value, tuple):
        items = tuple(_normal_value(v) for v in value)
        if any(a is not b for a, b in zip(items, value)):
            return items
        return value
    if isinstance(value, _AST_PARTS):
        return parser_normal(value)
    return value


#: Everything a statement field can hold besides scalars and tuples:
#: Node subclasses plus the auxiliary dataclasses (CASE arms, select
#: items, ORDER BY items, CTEs) that are not Nodes themselves.
_AST_PARTS = (A.Node, A.CaseWhen, A.SelectItem, A.OrderItem, A.Cte)


def _normal_literal(lit: A.Literal):
    value = lit.value
    # bool before int: True/False render as keywords the parser returns
    # as Literal(True/False) unchanged.
    if value is None or isinstance(value, (bool, str)):
        return lit
    if isinstance(value, int):
        if value < 0:
            return A.Unary("-", A.Literal(-value))
        return lit
    if isinstance(value, float):
        if math.isnan(value):
            # sql_literal: "(0.0 / 0.0)"
            return A.Binary("/", A.Literal(0.0), A.Literal(0.0))
        if math.isinf(value):
            # sql_literal: "(1.0 / 0.0)" / "(-1.0 / 0.0)"
            if value > 0:
                return A.Binary("/", A.Literal(1.0), A.Literal(0.0))
            return A.Binary(
                "/", A.Unary("-", A.Literal(1.0)), A.Literal(0.0)
            )
        if math.copysign(1.0, value) < 0:
            # Covers -0.0, whose repr also carries the sign.
            return A.Unary("-", A.Literal(-value))
    return lit
