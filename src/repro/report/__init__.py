"""Paper-style rendering of campaign results.

Two families live here: the paper's own tables and figures
(:mod:`repro.report.tables`, fed by the benchmark harness), and the
corpus triage summaries (:mod:`repro.triage.render`, re-exported for
one-stop imports).  Every renderer is a pure function of its measured
inputs -- no timestamps, no environment probes -- so rendering the
same data twice is byte-identical.
"""

from repro.report.tables import (
    render_detection_table,
    render_efficiency_table,
    render_fleet_table,
    render_maxdepth_series,
    render_table1,
)
from repro.triage.render import (
    render_triage,
    render_triage_json,
    render_triage_markdown,
    render_triage_text,
)

__all__ = [
    "render_table1",
    "render_detection_table",
    "render_efficiency_table",
    "render_fleet_table",
    "render_maxdepth_series",
    "render_triage",
    "render_triage_json",
    "render_triage_markdown",
    "render_triage_text",
]
