"""Paper-style rendering of campaign results."""

from repro.report.tables import (
    render_detection_table,
    render_efficiency_table,
    render_fleet_table,
    render_maxdepth_series,
    render_table1,
)

__all__ = [
    "render_table1",
    "render_detection_table",
    "render_efficiency_table",
    "render_fleet_table",
    "render_maxdepth_series",
]
