"""Text rendering of the paper's tables and figures.

Each function takes measured data (produced by the benchmark harness or
the examples) and renders a table in the same row/column layout as the
paper, so paper-vs-measured comparison is a visual diff.  Every
renderer is deterministic in its inputs: no timestamps, no environment
probes -- the same data renders byte-identically.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.dialects.catalog import FAULTS_BY_ID
from repro.minidb.faults import BugType

PROFILE_LABELS = {
    "sqlite": "SQLite",
    "mysql": "MySQL",
    "cockroachdb": "CockroachDB",
    "duckdb": "DuckDB",
    "tidb": "TiDB",
}


def render_table1(found_by_profile: Mapping[str, set[str]]) -> str:
    """Paper Table 1: bugs found per DBMS, by type and status.

    *found_by_profile* maps profile name to the set of detected fault
    ids; types and statuses come from the catalog.
    """
    header = (
        f"{'DBMS':13s} {'Logic':>6s} {'Internal':>9s} {'Crash':>6s} "
        f"{'Hang':>5s} {'Fixed':>6s} {'Verified':>9s} {'Total':>6s}"
    )
    lines = [header, "-" * len(header)]
    totals = [0] * 7
    for profile in ("sqlite", "mysql", "cockroachdb", "duckdb", "tidb"):
        found = found_by_profile.get(profile, set())
        faults = [FAULTS_BY_ID[fid] for fid in found if fid in FAULTS_BY_ID]
        row = [
            sum(f.bug_type is BugType.LOGIC for f in faults),
            sum(f.bug_type is BugType.INTERNAL_ERROR for f in faults),
            sum(f.bug_type is BugType.CRASH for f in faults),
            sum(f.bug_type is BugType.HANG for f in faults),
            sum(f.status.value == "fixed" for f in faults),
            sum(f.status.value == "verified" for f in faults),
            len(faults),
        ]
        totals = [a + b for a, b in zip(totals, row)]
        lines.append(
            f"{PROFILE_LABELS[profile]:13s} {row[0]:>6d} {row[1]:>9d} "
            f"{row[2]:>6d} {row[3]:>5d} {row[4]:>6d} {row[5]:>9d} {row[6]:>6d}"
        )
    lines.append("-" * len(header))
    lines.append(
        f"{'Total':13s} {totals[0]:>6d} {totals[1]:>9d} {totals[2]:>6d} "
        f"{totals[3]:>5d} {totals[4]:>6d} {totals[5]:>9d} {totals[6]:>6d}"
    )
    return "\n".join(lines)


def render_detection_table(matrix: Mapping[str, set[str]]) -> str:
    """Paper Table 2: number of detectable bugs by test oracle."""
    codd = matrix.get("coddtest", set())
    others = set()
    for name, found in matrix.items():
        if name != "coddtest":
            others |= found
    lines = [
        f"{'Oracle':12s} {'Detectable logic bugs':>22s}",
        "-" * 35,
    ]
    for name in ("norec", "tlp", "dqe"):
        lines.append(f"{name.upper():12s} {len(matrix.get(name, set())):>22d}")
    lines.append(f"{'Only CODD':12s} {len(codd - others):>22d}")
    lines.append(f"{'CODD total':12s} {len(codd):>22d}")
    return "\n".join(lines)


def render_efficiency_table(rows: Iterable[Mapping]) -> str:
    """Paper Table 3: per-oracle efficiency metrics.

    Each row needs: oracle, tests, queries_ok, queries_err, qpt,
    unique_plans, coverage.
    """
    header = (
        f"{'Oracle':18s} {'#tests':>9s} {'#ok q':>9s} {'#err q':>8s} "
        f"{'QPT':>6s} {'plans':>7s} {'branch%':>8s}"
    )
    lines = [header, "-" * len(header)]
    for row in rows:
        lines.append(
            f"{row['oracle']:18s} {row['tests']:>9d} {row['queries_ok']:>9d} "
            f"{row['queries_err']:>8d} {row['qpt']:>6.2f} "
            f"{row['unique_plans']:>7d} {100 * row['coverage']:>7.2f}%"
        )
    return "\n".join(lines)


def render_fleet_table(shards: Iterable, merged) -> str:
    """Per-shard and merged stats of a fleet run.

    *shards* is a list of :class:`~repro.runner.campaign.CampaignStats`
    in shard order; *merged* is their fleet-wide merge (plans as
    set-union, coverage as max, QPT recomputed from merged counters).
    """
    header = (
        f"{'Shard':8s} {'#tests':>8s} {'#skip':>7s} {'#ok q':>9s} "
        f"{'#err q':>8s} {'QPT':>6s} {'plans':>7s} {'reports':>8s} "
        f"{'tests/s':>9s}"
    )
    lines = [header, "-" * len(header)]

    def row(label: str, stats) -> str:
        return (
            f"{label:8s} {stats.tests:>8d} {stats.skipped:>7d} "
            f"{stats.queries_ok:>9d} {stats.queries_err:>8d} "
            f"{stats.qpt:>6.2f} {len(stats.unique_plans):>7d} "
            f"{len(stats.reports):>8d} {stats.tests_per_second:>9.1f}"
        )

    for i, stats in enumerate(shards):
        lines.append(row(str(i), stats))
    lines.append("-" * len(header))
    lines.append(row("merged", merged))
    return "\n".join(lines)


def render_maxdepth_series(series: Mapping[int, Mapping[str, float]]) -> str:
    """Figures 2-3: MaxDepth sweep (time/query, #tests, unique plans)."""
    header = (
        f"{'MaxDepth':>8s} {'us/query':>10s} {'#tests':>8s} {'plans':>7s}"
    )
    lines = [header, "-" * len(header)]
    for depth in sorted(series):
        row = series[depth]
        lines.append(
            f"{depth:>8d} {row['us_per_query']:>10.1f} "
            f"{int(row['tests']):>8d} {int(row['unique_plans']):>7d}"
        )
    return "\n".join(lines)
