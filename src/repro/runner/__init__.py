"""Campaign runner: drives oracles against adapters and collects the
paper's evaluation metrics (tests, successful/unsuccessful queries, QPT,
unique query plans, branch coverage, unique bugs).

Determinism guarantee: a campaign is a pure function of ``(seed,
budget)`` -- :meth:`CampaignStats.signature` captures exactly the
fields two equal-seed runs must agree on (everything but wall-clock
measurements)."""

from repro.runner.campaign import Campaign, CampaignStats, run_campaign
from repro.runner.detection import detects_fault, detection_matrix
from repro.runner.reducer import reduce_statements, reduce_expression

__all__ = [
    "Campaign",
    "CampaignStats",
    "run_campaign",
    "detects_fault",
    "detection_matrix",
    "reduce_statements",
    "reduce_expression",
]
