"""Test campaigns (paper Section 4 methodology).

A campaign repeatedly (1) generates a random database state and (2) runs
a batch of oracle tests against it -- the loop of Figure 1.  It collects
the Table 3 metrics:

* **tests** -- successfully executed test cases,
* **successful / unsuccessful queries** -- queries that ran vs. raised
  expected errors,
* **QPT** -- successful queries per successful test,
* **unique query plans** -- distinct fingerprints of each test's most
  complex query,
* **branch coverage** -- engine decision points exercised (MiniDB only),
* **bug reports** with ground-truth fault attribution (MiniDB only).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Callable, Iterable

from repro.adapters.base import EngineAdapter
from repro.errors import ReproError, SqlError
from repro.generator.state_gen import StateGenerator
from repro.obs.phases import PhaseProfiler, merge_phase_totals
from repro.oracles_base import Oracle, TestReport


@dataclass
class CampaignStats:
    """Aggregated campaign results."""

    oracle: str
    tests: int = 0
    skipped: int = 0
    queries_ok: int = 0
    queries_err: int = 0
    states: int = 0
    wall_seconds: float = 0.0
    branch_coverage: float = 0.0
    unique_plans: set[str] = field(default_factory=set)
    reports: list[TestReport] = field(default_factory=list)
    #: Hit/miss counters of the worker-local evaluation cache (see
    #: :mod:`repro.perf`); empty when the campaign ran uncached.
    #: Deliberately absent from :meth:`signature`: the signature asserts
    #: cache-on/off equivalence, these counters are what differs.
    cache_stats: dict[str, int] = field(default_factory=dict)
    #: Per-phase wall-clock breakdown (``{phase: {"calls", "seconds"}}``,
    #: see :mod:`repro.obs.phases`).  Wall-clock only, so -- like
    #: ``wall_seconds`` and ``cache_stats`` -- it is excluded from
    #: :meth:`signature`.
    phase_stats: dict = field(default_factory=dict)

    @classmethod
    def merge(
        cls,
        parts: Iterable["CampaignStats"],
        max_reports: int | None = None,
    ) -> "CampaignStats":
        """Combine per-shard stats into fleet-wide stats.

        Counters sum, unique plans union, branch coverage takes the max
        (each shard observes the same engine code), QPT is recomputed
        from the merged counters by the :attr:`qpt` property, and
        ``wall_seconds`` is the max (shards run concurrently).  When
        *max_reports* is given the merged report list is truncated to
        it, so a merged campaign honours the same bound as a serial one.
        """
        parts = list(parts)
        names = {p.oracle for p in parts}
        merged = cls(oracle=names.pop() if len(names) == 1 else "mixed")
        for part in parts:
            merged.tests += part.tests
            merged.skipped += part.skipped
            merged.queries_ok += part.queries_ok
            merged.queries_err += part.queries_err
            merged.states += part.states
            merged.wall_seconds = max(merged.wall_seconds, part.wall_seconds)
            merged.branch_coverage = max(
                merged.branch_coverage, part.branch_coverage
            )
            merged.unique_plans |= part.unique_plans
            merged.reports.extend(part.reports)
            for key, value in part.cache_stats.items():
                merged.cache_stats[key] = merged.cache_stats.get(key, 0) + value
            merged.phase_stats = merge_phase_totals(
                merged.phase_stats, part.phase_stats
            )
        if max_reports is not None:
            del merged.reports[max_reports:]
        return merged

    def signature(self) -> dict:
        """Deterministic fields only -- everything except wall-clock
        measurements.  Two campaigns with the same seed and budget must
        produce equal signatures."""
        return {
            "oracle": self.oracle,
            "tests": self.tests,
            "skipped": self.skipped,
            "queries_ok": self.queries_ok,
            "queries_err": self.queries_err,
            "states": self.states,
            "branch_coverage": self.branch_coverage,
            "unique_plans": sorted(self.unique_plans),
            "reports": [
                (r.oracle, r.kind, tuple(r.statements), sorted(r.fired_faults))
                for r in self.reports
            ],
        }

    @property
    def qpt(self) -> float:
        """Queries per (successful) test -- paper Table 3."""
        if self.tests == 0:
            return 0.0
        return self.queries_ok / self.tests

    @property
    def detected_fault_ids(self) -> frozenset[str]:
        """Ground-truth: faults implicated in at least one report."""
        found: set[str] = set()
        for report in self.reports:
            found |= report.fired_faults
        return frozenset(found)

    @property
    def bug_reports_by_kind(self) -> dict[str, int]:
        out: dict[str, int] = {}
        for report in self.reports:
            out[report.kind] = out.get(report.kind, 0) + 1
        return out

    @property
    def tests_per_second(self) -> float:
        if self.wall_seconds <= 0:
            return 0.0
        return self.tests / self.wall_seconds

    def _cache_totals(self):
        """The canonical aggregate view of ``cache_stats`` (which is
        exactly a ``CacheStats.to_dict()``), so hit/miss accounting has
        one definition."""
        from repro.perf.cache import CacheStats

        return CacheStats(**self.cache_stats)

    @property
    def cache_hits(self) -> int:
        return self._cache_totals().hits

    @property
    def cache_misses(self) -> int:
        return self._cache_totals().misses

    @property
    def cache_hit_rate(self) -> float:
        """Overall cache hit fraction in [0, 1] (0.0 when uncached)."""
        return self._cache_totals().hit_rate


class Campaign:
    """Reusable campaign driver."""

    def __init__(
        self,
        oracle: Oracle,
        adapter: EngineAdapter,
        seed: int = 0,
        tests_per_state: int = 25,
        state_gen: StateGenerator | None = None,
        max_reports: int = 1000,
        max_state_failures: int = 200,
        should_stop: Callable[[], bool] | None = None,
        on_progress: Callable[[CampaignStats], None] | None = None,
        policy=None,
        cache=None,
        vector: bool = False,
        profiler: PhaseProfiler | None = None,
        tracer=None,
    ) -> None:
        self.oracle = oracle
        self.adapter = adapter
        #: Worker-local evaluation cache (:class:`repro.perf.EvalCache`)
        #: attached to the adapter for the campaign's lifetime; None runs
        #: the historical uncached path.  Campaign results are
        #: bit-identical either way (asserted by tests/perf and the
        #: perf-smoke CI gate); only wall-clock and the cache_stats
        #: counters differ.
        self.cache = cache
        if cache is not None:
            adapter.attach_eval_cache(cache)
        #: Column-at-a-time evaluation toggle, forwarded to the adapter
        #: (no-op for adapters without a vector path).  Same contract as
        #: the cache: bit-identical results, only wall-clock differs.
        self.vector = vector
        if vector:
            adapter.set_vector_eval(True)
        self.rng = random.Random(seed)
        self.tests_per_state = tests_per_state
        self.state_gen = state_gen or StateGenerator(
            self.rng,
            strict_typing=adapter.strict_typing,
            portable=adapter.portable_generation,
        )
        self.max_reports = max_reports
        self.max_state_failures = max_state_failures
        #: External kill switch, polled with the budget (fleet early-stop).
        self.should_stop = should_stop
        #: Called after every batch of tests with the live stats; must not
        #: mutate them.  Used by the fleet workers to stream progress.
        self.on_progress = on_progress
        #: Optional generation policy (duck-typed, e.g.
        #: :class:`repro.guidance.GuidedPolicy`): ``begin_test()``
        #: returns an arm whose knobs are applied to the oracle before
        #: each test, ``observe(outcome)`` accounts the result.  None
        #: keeps the historical uniform-random behaviour bit-for-bit.
        self.policy = policy
        #: Always-on phase profiler (two ``perf_counter`` reads per scope
        #: are noise next to a parse or an execution).  Timings land in
        #: ``stats.phase_stats``, never in the signature, so profiled and
        #: unprofiled campaigns are bit-identical on deterministic
        #: outputs.
        self.profiler = profiler or PhaseProfiler()
        adapter.attach_profiler(self.profiler)
        oracle.profiler = self.profiler
        #: Optional :class:`repro.obs.TraceWriter` receiving structured
        #: test/state/bug events; None traces nothing.  Tracing never
        #: influences control flow.
        self.tracer = tracer
        self.stats = CampaignStats(oracle=oracle.name)

    @classmethod
    def from_adapter_factories(
        cls,
        oracle: Oracle,
        factory_pair: "tuple[Callable[[], EngineAdapter], Callable[[], EngineAdapter]]",
        **kwargs,
    ) -> "Campaign":
        """Build a differential campaign from an adapter *factory pair*.

        The first factory builds the primary (engine under test), the
        second the reference; they are combined into a
        :class:`~repro.differential.pair.DifferentialAdapter` and the
        campaign otherwise behaves exactly like a single-engine one.
        """
        from repro.differential.pair import DifferentialAdapter

        primary_factory, secondary_factory = factory_pair
        adapter = DifferentialAdapter(primary_factory(), secondary_factory())
        return cls(oracle, adapter, **kwargs)

    def run(
        self, n_tests: int | None = None, seconds: float | None = None
    ) -> CampaignStats:
        """Run until *n_tests* successful tests or *seconds* elapse."""
        if n_tests is None and seconds is None:
            raise ValueError("specify n_tests and/or seconds")
        engine = getattr(self.adapter, "engine", None)
        if engine is not None:
            engine.coverage.reset()
        start = time.perf_counter()
        state_failures = 0
        while True:
            # Checked here too so that a seconds= budget terminates
            # promptly even when every state fails or every test skips
            # (skipped tests never advance stats.tests).
            if self._budget_done(n_tests, seconds, start):
                return self._finish(start)
            if not self._new_state():
                state_failures += 1
                if state_failures >= self.max_state_failures:
                    raise ReproError(
                        f"state generation failed {state_failures} times in "
                        f"a row; the generator cannot produce a usable state "
                        f"for adapter {self.adapter.name!r}"
                    )
                continue
            state_failures = 0
            for _ in range(self.tests_per_state):
                if self._budget_done(n_tests, seconds, start):
                    return self._finish(start)
                self._one_test()
            if self.on_progress is not None:
                if self.cache is not None:
                    # Keep the wall-clock-only counters live for progress
                    # consumers (the fleet streams them to the printer and
                    # status board between batches).
                    self.stats.cache_stats = self.cache.stats.to_dict()
                self.on_progress(self.stats)
            if self._budget_done(n_tests, seconds, start):
                return self._finish(start)

    # -- internals ---------------------------------------------------------------

    def _budget_done(
        self, n_tests: int | None, seconds: float | None, start: float
    ) -> bool:
        if n_tests is not None and self.stats.tests >= n_tests:
            return True
        if seconds is not None and time.perf_counter() - start >= seconds:
            return True
        if self.should_stop is not None and self.should_stop():
            return True
        return len(self.stats.reports) >= self.max_reports

    def _new_state(self) -> bool:
        t0 = self.profiler.begin()
        try:
            schema = self.state_gen.generate(self.adapter)
        except SqlError:
            return False
        except ReproError:
            # Injected fault fired during state generation; retry.
            return False
        finally:
            self.profiler.end("generate", t0)
        if not schema.base_tables:
            return False
        self.stats.states += 1
        self.oracle.prepare(self.adapter, schema, self.rng)
        if self.tracer is not None:
            self.tracer.emit(
                "state",
                states=self.stats.states,
                tests=self.stats.tests,
                cache=(
                    self.cache.stats.to_dict()
                    if self.cache is not None
                    else {}
                ),
            )
        return True

    def _one_test(self) -> None:
        tracer = self.tracer
        n = self.stats.tests + self.stats.skipped
        if tracer is not None:
            tracer.emit("test_start", n=n)
        if self.policy is not None:
            self.policy.begin_test().apply(self.oracle)
        outcome = self.oracle.run_one()
        if self.policy is not None:
            self.policy.observe(outcome)
        if tracer is not None:
            tracer.emit(
                "test_finish",
                n=n,
                status=outcome.status,
                qok=outcome.queries_ok,
                qerr=outcome.queries_err,
            )
        self.stats.queries_ok += outcome.queries_ok
        self.stats.queries_err += outcome.queries_err
        if outcome.fingerprint:
            self.stats.unique_plans.add(outcome.fingerprint)
        if outcome.status == "ok":
            self.stats.tests += 1
        elif outcome.status == "bug":
            self.stats.tests += 1
            if outcome.report is not None:
                if tracer is not None:
                    tracer.emit(
                        "bug_found",
                        kind=outcome.report.kind,
                        oracle=outcome.report.oracle,
                        faults=sorted(outcome.report.fired_faults),
                    )
                # Prepend the state-building DDL/DML so the persisted
                # report is a self-contained, replayable program.
                outcome.report.statements = [
                    *self.state_gen.last_statements,
                    *outcome.report.statements,
                ]
                self.stats.reports.append(outcome.report)
        else:  # error / skip
            self.stats.skipped += 1

    def _finish(self, start: float) -> CampaignStats:
        self.stats.wall_seconds = time.perf_counter() - start
        engine = getattr(self.adapter, "engine", None)
        if engine is not None:
            self.stats.branch_coverage = engine.coverage.branch_coverage()
        if self.cache is not None:
            self.stats.cache_stats = self.cache.stats.to_dict()
        self.stats.phase_stats = self.profiler.to_dict()
        return self.stats


def run_campaign(
    oracle: Oracle,
    adapter: EngineAdapter,
    *,
    n_tests: int | None = None,
    seconds: float | None = None,
    seed: int = 0,
    tests_per_state: int = 25,
    max_reports: int = 1000,
    use_cache: bool = False,
    use_vector: bool = False,
) -> CampaignStats:
    """Convenience wrapper around :class:`Campaign`.

    *use_cache* attaches a fresh worker-local
    :class:`repro.perf.EvalCache`; *use_vector* enables column-at-a-time
    evaluation.  Results are bit-identical either way, only throughput
    and ``stats.cache_stats`` differ.
    """
    cache = None
    if use_cache:
        from repro.perf import EvalCache

        cache = EvalCache()
    campaign = Campaign(
        oracle,
        adapter,
        seed=seed,
        tests_per_state=tests_per_state,
        max_reports=max_reports,
        cache=cache,
        vector=use_vector,
    )
    return campaign.run(n_tests=n_tests, seconds=seconds)
