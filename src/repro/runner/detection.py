"""Per-fault detection measurement (paper Table 2 methodology).

To decide whether an oracle can detect a given bug, we enable *only that
fault* in an otherwise correct engine and run a bounded campaign: any
bug report implies the fault was both triggered and observable to the
oracle's metamorphic relation.  This operationalizes the paper's manual
comparison ("we implemented a best-effort comparison by manually
inspecting ... whether the state-of-the-art test oracles could have
found them", Section 4.2) as a measurement.
"""

from __future__ import annotations

from typing import Callable

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.dialects.base import get_dialect
from repro.minidb.engine import Engine
from repro.minidb.faults import Fault
from repro.oracles_base import Oracle
from repro.runner.campaign import run_campaign

OracleFactory = Callable[[], Oracle]


def detects_fault(
    oracle_factory: OracleFactory,
    fault: Fault,
    *,
    n_tests: int = 400,
    seed: int = 0,
    attempts: int = 2,
) -> bool:
    """True if the oracle reports at least one bug with only *fault*
    enabled, within the test budget."""
    for attempt in range(attempts):
        oracle = oracle_factory()
        engine = Engine(
            profile=get_dialect(fault.profile).engine_profile, faults=[fault]
        )
        adapter = MiniDBAdapter(engine)
        stats = run_campaign(
            oracle,
            adapter,
            n_tests=n_tests,
            seed=seed + attempt * 7919,
            tests_per_state=20,
            max_reports=5,
        )
        if stats.reports:
            return True
    return False


def detection_matrix(
    oracle_factories: dict[str, OracleFactory],
    faults: list[Fault],
    *,
    n_tests: int = 400,
    seed: int = 0,
) -> dict[str, set[str]]:
    """For each oracle name, the set of fault ids it detects."""
    out: dict[str, set[str]] = {name: set() for name in oracle_factories}
    for fault in faults:
        for name, factory in oracle_factories.items():
            if detects_fault(factory, fault, n_tests=n_tests, seed=seed):
                out[name].add(fault.fault_id)
    return out
