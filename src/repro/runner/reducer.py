"""Bug-inducing test case reduction.

The paper manually reduced test cases before reporting ("we manually
reduced the bug-inducing test cases [39]", Section 4.1, citing Zeller &
Hildebrandt's delta debugging).  This module automates both levels:

* :func:`reduce_statements` -- ddmin over the statement list, keeping
  the failure reproducible;
* :func:`reduce_expression`  -- hierarchical simplification of an
  expression AST, replacing subtrees with literals while the failure
  persists.
"""

from __future__ import annotations

from typing import Callable

from repro.minidb import ast_nodes as A

StatementsCheck = Callable[[list[str]], bool]
ExprCheck = Callable[[A.Expr], bool]


def reduce_statements(
    statements: list[str], still_fails: StatementsCheck
) -> list[str]:
    """ddmin: a minimal sublist of *statements* for which *still_fails*
    holds.  *still_fails* must be deterministic and must hold for the
    full list."""
    assert still_fails(statements), "the unreduced case must fail"
    current = list(statements)
    granularity = 2
    while len(current) >= 2:
        chunks = _split(current, granularity)
        reduced = False
        # Try removing each chunk.
        for i in range(len(chunks)):
            candidate = [s for j, c in enumerate(chunks) if j != i for s in c]
            if candidate and still_fails(candidate):
                current = candidate
                granularity = max(granularity - 1, 2)
                reduced = True
                break
        if reduced:
            continue
        if granularity >= len(current):
            break
        granularity = min(granularity * 2, len(current))
    return current


def _split(items: list[str], n: int) -> list[list[str]]:
    size = max(1, len(items) // n)
    chunks = [items[i : i + size] for i in range(0, len(items), size)]
    return chunks


_LITERAL_CANDIDATES = (
    A.Literal(None),
    A.Literal(False),
    A.Literal(True),
    A.Literal(0),
    A.Literal(1),
)


def reduce_expression(expr: A.Expr, still_fails: ExprCheck) -> A.Expr:
    """Greedy hierarchical reduction: repeatedly try replacing subtrees
    with simple literals (or hoisting a child over its parent) while the
    failure persists."""
    assert still_fails(expr), "the unreduced expression must fail"
    changed = True
    current = expr
    while changed:
        changed = False
        for node in list(A.walk(current)):
            if isinstance(node, A.Literal):
                continue
            # Try hoisting each child in place of the node.
            for child in node.children():
                candidate = A.replace_node(current, node, child)
                if candidate is not current and still_fails(candidate):
                    current = candidate
                    changed = True
                    break
            if changed:
                break
            # Try literal replacement.
            for lit in _LITERAL_CANDIDATES:
                candidate = A.replace_node(current, node, lit)
                if candidate is not current and still_fails(candidate):
                    current = candidate
                    changed = True
                    break
            if changed:
                break
    return current
