"""Corpus triage: from raw JSONL bug corpora to Table-1-style reports.

A 4-worker overnight fleet leaves thousands of raw corpus entries; what
a human needs is the set of *root causes*.  The paper's evaluation
(Table 1) groups findings per DBMS and per oracle, Query Plan Guidance
(Ba & Rigger 2023) uses plan fingerprints to distinguish behaviors, and
"Scaling Automated Database System Testing" (Zhong & Rigger 2025) shows
campaign scale is only useful when triage keeps pace.  This package is
that layer:

* :mod:`repro.triage.loader` -- load one or many corpus JSONL files
  (fleet and differential, tolerating PR-1-era entries that predate the
  ``backend_pair`` and provenance fields),
* :mod:`repro.triage.cluster` -- cluster entries by ground-truth fault
  ids, plan-fingerprint signature, and backend pair,
* :mod:`repro.triage.replay` -- replay-verify one representative per
  cluster against a live engine (reproduces vs. stale vs. unverifiable),
* :mod:`repro.triage.render` -- deterministic Table-1-style summaries
  as text, Markdown, and JSON (stable cluster ordering, no timestamps).

Determinism guarantee: every function here is a pure function of the
corpus entries (and, for replay, of the deterministic engines they are
replayed on) -- rendering the same corpus twice yields byte-identical
output.
"""

from repro.triage.cluster import (
    Cluster,
    cluster_corpus,
    cluster_key,
    saturated_fault_ids,
)
from repro.triage.loader import iter_corpus_file, load_corpus, merge_corpora
from repro.triage.render import (
    render_triage,
    render_triage_json,
    render_triage_markdown,
    render_triage_text,
    triage_summary_lines,
)
from repro.triage.replay import ReplayVerdict, replay_clusters, replay_representative

__all__ = [
    "Cluster",
    "cluster_corpus",
    "cluster_key",
    "saturated_fault_ids",
    "iter_corpus_file",
    "load_corpus",
    "merge_corpora",
    "ReplayVerdict",
    "replay_clusters",
    "replay_representative",
    "render_triage",
    "render_triage_json",
    "render_triage_markdown",
    "render_triage_text",
    "triage_summary_lines",
]
