"""Clustering corpus entries into root-cause candidates.

A cluster is the triage unit of "one bug": entries sharing the same
ground-truth fault ids, the same plan-fingerprint signature, the same
backend pair, and the same failure kind.  Fault ids are the strongest
signal (they *are* the root cause on MiniDB), plan fingerprints split
no-ground-truth findings by the behavior that produced them (the Query
Plan Guidance observation: distinct plans, distinct behaviors), and the
backend pair keeps a MiniDB-vs-SQLite divergence apart from the same
statements diverging between other engines.

Determinism guarantee: :func:`cluster_corpus` is a pure function of the
entry list -- same entries (in any order) produce the same cluster set,
and the returned list is sorted by a stable key (fault ids, plan
signature, backend pair, kind), never by discovery time.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass, field, replace

from repro.fleet.corpus import CorpusEntry

#: Rendered stand-ins for absent key components.
NO_FAULT_LABEL = "(no ground truth)"
NO_PLAN_LABEL = "-"

ClusterKey = tuple


def cluster_key(entry: CorpusEntry) -> ClusterKey:
    """The identity an entry is clustered under.

    ``(fault ids, plan signature, backend pair, kind)`` -- the
    description and exact statement text are deliberately *not* part of
    the key: hundreds of superficially different witnesses of one fault
    share the key and collapse into one cluster.
    """
    return (
        tuple(sorted(entry.fired_faults)),
        entry.plan_fingerprint or "",
        tuple(entry.backend_pair) if entry.backend_pair else None,
        entry.kind,
    )


@dataclass
class Cluster:
    """One root-cause candidate: all corpus entries sharing a key."""

    faults: tuple[str, ...]
    plan_signature: str
    backend_pair: tuple[str, str] | None
    kind: str
    #: Entries in input (discovery) order; the first is the first seen.
    entries: list[CorpusEntry] = field(default_factory=list)

    @property
    def cluster_id(self) -> str:
        """Short stable id, a digest of the key (not of discovery order)."""
        payload = json.dumps(
            [list(self.faults), self.plan_signature,
             list(self.backend_pair) if self.backend_pair else None,
             self.kind],
            sort_keys=True,
        )
        return hashlib.sha256(payload.encode()).hexdigest()[:10]

    @property
    def fault_label(self) -> str:
        return ",".join(self.faults) if self.faults else NO_FAULT_LABEL

    @property
    def plan_label(self) -> str:
        return self.plan_signature or NO_PLAN_LABEL

    @property
    def backend_label(self) -> str:
        if self.backend_pair is None:
            return "single"
        return "|".join(self.backend_pair)

    @property
    def oracles(self) -> tuple[str, ...]:
        return tuple(sorted({e.oracle for e in self.entries}))

    @property
    def sightings(self) -> int:
        """Total times any entry of this cluster was seen (dup counter)."""
        return sum(e.times_seen for e in self.entries)

    @property
    def first_seen(self) -> CorpusEntry:
        return self.entries[0]

    @property
    def representative(self) -> CorpusEntry:
        """The entry to show a human (and to replay): reduced witnesses
        beat unreduced ones, shorter beats longer, and two witnesses
        sharing a reduced length tie-break on fingerprint -- never on
        insertion order, so merged corpora loaded in any file order
        select (and replay) the same representative."""
        return min(
            self.entries,
            key=lambda e: (
                0 if e.reduced_statements else 1,
                len(e.reduced_statements or e.statements),
                e.fingerprint,
            ),
        )

    @property
    def witness_statements(self) -> list[str]:
        rep = self.representative
        return list(rep.reduced_statements or rep.statements)

    @property
    def reduced_size(self) -> int:
        """Statement count of the best witness (paper Section 4.1
        reports reduced test-case sizes)."""
        return len(self.witness_statements)

    def sort_key(self) -> tuple:
        """Stable rendering order: ground-truth clusters first (by fault
        id), then plan signature, backend pair, kind."""
        return (
            0 if self.faults else 1,
            self.faults,
            self.plan_signature,
            self.backend_label,
            self.kind,
        )


def cluster_corpus(entries) -> list[Cluster]:
    """Group *entries* into clusters, sorted by :meth:`Cluster.sort_key`.

    Entries keep their input order inside each cluster, so ``first_seen``
    reflects corpus-file order (the fleet appends in discovery order).
    Entries sharing a fingerprint (the same bug loaded from overlapping
    corpus files) collapse into one: the first occurrence wins and later
    sightings accumulate, so "distinct bugs" stays an honest count.
    Input entries are never mutated.
    """
    by_fingerprint: dict[str, CorpusEntry] = {}
    for entry in entries:
        known = by_fingerprint.get(entry.fingerprint)
        if known is None:
            by_fingerprint[entry.fingerprint] = replace(entry)
        else:
            known.times_seen += entry.times_seen

    by_key: dict[ClusterKey, Cluster] = {}
    for entry in by_fingerprint.values():
        key = cluster_key(entry)
        cluster = by_key.get(key)
        if cluster is None:
            faults, plan, pair, kind = key
            cluster = by_key[key] = Cluster(
                faults=faults,
                plan_signature=plan,
                backend_pair=pair,
                kind=kind,
            )
        cluster.entries.append(entry)
    return sorted(by_key.values(), key=Cluster.sort_key)


def saturated_fault_ids(clusters, threshold: int) -> frozenset[str]:
    """Fault ids whose clusters have accumulated at least *threshold*
    sightings -- the triage signal a guided fleet steers away from
    (another witness of a 500-sighting cluster teaches nothing).

    A fault implicated by several clusters saturates on their combined
    sightings; a pure function of the cluster list, so the guided
    orchestrator can recompute it at every round barrier.
    """
    totals: dict[str, int] = {}
    for cluster in clusters:
        for fault_id in cluster.faults:
            totals[fault_id] = totals.get(fault_id, 0) + cluster.sightings
    return frozenset(f for f, n in totals.items() if n >= threshold)
