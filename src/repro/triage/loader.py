"""Tolerant corpus loading and merging.

Corpora are append-only JSONL files written by different eras of the
fleet: PR-1 entries predate the differential ``backend_pair`` field,
and both PR-1 and PR-2 entries predate the provenance fields
(``plan_fingerprint``, ``dialect``, ``first_seen_shard``,
``first_seen_seed``).  The loader accepts them all -- a missing
``backend_pair`` means a single-engine finding, missing provenance
renders as unknown -- so one report can span a whole corpus lineage.

Determinism guarantee: loading preserves file order and argument order;
merging dedupes by fingerprint and writes entries sorted by
fingerprint, so merging the same inputs always produces a byte-identical
output file.
"""

from __future__ import annotations

import json
from typing import Iterable, Iterator

from repro.fleet.corpus import BugCorpus, CorpusEntry


def iter_corpus_file(path: str) -> Iterator[CorpusEntry]:
    """Yield the entries of one JSONL corpus file in file order.

    Raises :class:`ValueError` naming the file and line on malformed
    JSON or an entry missing its required fields, so a truncated write
    surfaces as a diagnosable error rather than a stack trace.
    """
    with open(path, "r", encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                data = json.loads(line)
            except json.JSONDecodeError as exc:
                raise ValueError(
                    f"{path}:{lineno}: not valid JSON ({exc.msg})"
                ) from None
            try:
                yield CorpusEntry.from_dict(data)
            except (KeyError, TypeError, ValueError) as exc:
                raise ValueError(
                    f"{path}:{lineno}: corpus entry missing or invalid "
                    f"field ({exc})"
                ) from None


def load_corpus(paths: "str | Iterable[str]") -> list[CorpusEntry]:
    """Concatenate the entries of one or many corpus files.

    Order is file-argument order, then file order -- the fleet appends
    in discovery order, so the first occurrence of a fingerprint is its
    first sighting.  Duplicate fingerprints across files are *kept*
    (use :func:`merge_corpora` or clustering to collapse them).
    """
    if isinstance(paths, str):
        paths = [paths]
    entries: list[CorpusEntry] = []
    for path in paths:
        entries.extend(iter_corpus_file(path))
    return entries


def merge_corpora(
    paths: Iterable[str], out_path: "str | None" = None
) -> BugCorpus:
    """Fold many corpus files into one deduplicated corpus.

    Entries are deduplicated by fingerprint; the first-seen entry (in
    path order) wins and later sightings accumulate into its
    ``times_seen``.  When *out_path* is given the merged corpus is
    written there with entries sorted by fingerprint (deterministic
    regardless of input order).
    """
    merged = BugCorpus(path=out_path)
    for path in paths:
        merged.merge(iter_corpus_file(path))
    if out_path is not None:
        merged.save(out_path, sort=True)
    return merged
