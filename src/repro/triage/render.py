"""Deterministic Table-1-style rendering of a triaged corpus.

Three formats over the same underlying structure (built once by
:func:`build_triage`):

* **text** -- aligned columns for terminals, the shape of paper Table 1,
* **markdown** -- pipe tables for READMEs and issue reports,
* **json** -- the full structure (untruncated plan signatures) for
  machines.

Determinism guarantee: output is a pure function of the cluster list
(and the optional replay verdicts).  Ordering is the clusters' stable
sort key, there are no timestamps, hostnames, or wall-clock figures,
and JSON keys are sorted -- rendering the same corpus twice is
byte-identical.
"""

from __future__ import annotations

from typing import Iterable, Mapping

import json

from repro.dialects import FAULTS_BY_ID
from repro.triage.cluster import NO_FAULT_LABEL, Cluster
from repro.triage.replay import ReplayVerdict

#: Plan signatures are digests; this many characters disambiguate in
#: human-facing tables (JSON always carries the full signature).
_PLAN_CHARS = 16

KINDS = ("logic", "internal error", "crash", "hang")


def build_triage(
    clusters: "list[Cluster]",
    verdicts: "Mapping[str, ReplayVerdict] | None" = None,
) -> dict:
    """The JSON-ready triage structure all renderers share."""
    by_kind = _count(c.kind for c in clusters)

    fault_rows: dict[str, dict] = {}
    for cluster in clusters:
        for fid in cluster.faults or (NO_FAULT_LABEL,):
            row = fault_rows.setdefault(
                fid,
                {
                    "fault": fid,
                    "dbms": _fault_dbms(fid),
                    "by_kind": {},
                    "by_oracle": {},
                    "clusters": 0,
                    "sightings": 0,
                },
            )
            row["clusters"] += 1
            row["sightings"] += cluster.sightings
            row["by_kind"][cluster.kind] = (
                row["by_kind"].get(cluster.kind, 0) + 1
            )
            for oracle in cluster.oracles:
                row["by_oracle"][oracle] = row["by_oracle"].get(oracle, 0) + 1

    # Ground-truth faults sorted by id; the no-ground-truth row last.
    fault_order = sorted(f for f in fault_rows if f != NO_FAULT_LABEL)
    if NO_FAULT_LABEL in fault_rows:
        fault_order.append(NO_FAULT_LABEL)

    # Per-backend(-pair) provenance: which backends produced which
    # clusters.  The label matches the cluster table's Backends column
    # ("primary|secondary" for differential findings, "single" for
    # one-engine oracles), so multi-backend campaign reports split
    # their Table 1 by provenance.
    backend_rows: dict[str, dict] = {}
    for cluster in clusters:
        label = (
            "|".join(cluster.backend_pair)
            if cluster.backend_pair
            else "single"
        )
        row = backend_rows.setdefault(
            label,
            {
                "backends": label,
                "by_kind": {},
                "clusters": 0,
                "entries": 0,
                "sightings": 0,
            },
        )
        row["clusters"] += 1
        row["entries"] += len(cluster.entries)
        row["sightings"] += cluster.sightings
        row["by_kind"][cluster.kind] = (
            row["by_kind"].get(cluster.kind, 0) + 1
        )
    backend_order = sorted(b for b in backend_rows if b != "single")
    if "single" in backend_rows:
        backend_order.append("single")

    cluster_dicts = []
    for cluster in clusters:
        verdict = (verdicts or {}).get(cluster.cluster_id)
        first = cluster.first_seen
        cluster_dicts.append(
            {
                "id": cluster.cluster_id,
                "kind": cluster.kind,
                "faults": list(cluster.faults),
                "plan_signature": cluster.plan_signature or None,
                "backend_pair": (
                    list(cluster.backend_pair)
                    if cluster.backend_pair
                    else None
                ),
                "oracles": list(cluster.oracles),
                "entries": len(cluster.entries),
                "sightings": cluster.sightings,
                "first_seen": {
                    "shard": first.first_seen_shard,
                    "seed": first.first_seen_seed,
                },
                "reduced_size": cluster.reduced_size,
                "witness_fingerprint": cluster.representative.fingerprint,
                "replay": (
                    None
                    if verdict is None
                    else {
                        "status": verdict.status,
                        "detail": verdict.detail,
                        "witness": verdict.witness,
                    }
                ),
            }
        )

    summary = {
        "entries": sum(len(c.entries) for c in clusters),
        "sightings": sum(c.sightings for c in clusters),
        "clusters": len(clusters),
        "by_kind": by_kind,
    }
    if verdicts is not None:
        summary["replay"] = _count(v.status for v in verdicts.values())

    return {
        "summary": summary,
        "faults": [fault_rows[f] for f in fault_order],
        "backends": [backend_rows[b] for b in backend_order],
        "clusters": cluster_dicts,
    }


def render_triage_json(
    clusters: "list[Cluster]",
    verdicts: "Mapping[str, ReplayVerdict] | None" = None,
) -> str:
    return json.dumps(
        build_triage(clusters, verdicts), indent=2, sort_keys=True
    )


def render_triage_text(
    clusters: "list[Cluster]",
    verdicts: "Mapping[str, ReplayVerdict] | None" = None,
) -> str:
    data = build_triage(clusters, verdicts)
    lines = _summary_header(data)

    lines.append("")
    lines.extend(
        _table(
            _fault_table_header(),
            [_fault_table_row(row) for row in data["faults"]],
            total=_fault_table_total(data["summary"]),
        )
    )

    oracle_names = _oracle_names(data)
    if oracle_names:
        lines.append("")
        lines.extend(
            _table(
                ["Fault"] + list(oracle_names),
                [
                    [_short_fault(row["fault"])]
                    + [str(row["by_oracle"].get(o, 0)) for o in oracle_names]
                    for row in data["faults"]
                ],
            )
        )

    lines.append("")
    lines.extend(
        _table(
            _backend_table_header(),
            [_backend_table_row(row) for row in data["backends"]],
        )
    )

    lines.append("")
    lines.extend(
        _table(
            _cluster_table_header(verdicts is not None),
            [
                _cluster_table_row(c, verdicts is not None)
                for c in data["clusters"]
            ],
        )
    )
    return "\n".join(lines)


def render_triage_markdown(
    clusters: "list[Cluster]",
    verdicts: "Mapping[str, ReplayVerdict] | None" = None,
) -> str:
    data = build_triage(clusters, verdicts)
    lines = ["# Corpus triage", ""]
    for line in _summary_header(data):
        lines.append(f"- {line}")

    lines += ["", "## Distinct clusters by ground-truth fault", ""]
    lines.extend(
        _md_table(
            _fault_table_header(),
            [_fault_table_row(row) for row in data["faults"]]
            + [_fault_table_total(data["summary"])],
        )
    )

    oracle_names = _oracle_names(data)
    if oracle_names:
        lines += ["", "## Clusters per fault and oracle", ""]
        lines.extend(
            _md_table(
                ["Fault"] + list(oracle_names),
                [
                    [_short_fault(row["fault"])]
                    + [str(row["by_oracle"].get(o, 0)) for o in oracle_names]
                    for row in data["faults"]
                ],
            )
        )

    lines += ["", "## Clusters by backend provenance", ""]
    lines.extend(
        _md_table(
            _backend_table_header(),
            [_backend_table_row(row) for row in data["backends"]],
        )
    )

    lines += ["", "## Clusters", ""]
    lines.extend(
        _md_table(
            _cluster_table_header(verdicts is not None),
            [
                _cluster_table_row(c, verdicts is not None)
                for c in data["clusters"]
            ],
        )
    )
    return "\n".join(lines)


def render_triage(
    clusters: "list[Cluster]",
    verdicts: "Mapping[str, ReplayVerdict] | None" = None,
    fmt: str = "text",
) -> str:
    if fmt == "text":
        return render_triage_text(clusters, verdicts)
    if fmt == "markdown":
        return render_triage_markdown(clusters, verdicts)
    if fmt == "json":
        return render_triage_json(clusters, verdicts)
    raise ValueError(f"unknown triage format {fmt!r}")


def triage_summary_lines(
    clusters: "list[Cluster]",
    new_unique: "int | None" = None,
    duplicates: "int | None" = None,
    cap: int = 6,
) -> list[str]:
    """Compact end-of-run summary for the fleet CLI.

    One headline plus the top clusters by sightings -- the triage view
    of "what did this run find", replacing a raw entry count.
    """
    entries = sum(len(c.entries) for c in clusters)
    headline = (
        f"corpus triage: {entries} distinct bugs in "
        f"{len(clusters)} cluster(s)"
    )
    if new_unique is not None:
        headline += (
            f" ({new_unique} new unique, {duplicates or 0} duplicates "
            "this run)"
        )
    lines = [headline]
    ranked = sorted(
        clusters, key=lambda c: (-c.sightings, c.sort_key())
    )
    for cluster in ranked[:cap]:
        lines.append(
            f"  [{cluster.kind}] {cluster.fault_label} "
            f"via {'/'.join(cluster.oracles)}: "
            f"{len(cluster.entries)} witness(es), "
            f"{cluster.sightings} sighting(s), "
            f"best witness {cluster.reduced_size} stmt(s)"
        )
    if len(ranked) > cap:
        lines.append(f"  ... and {len(ranked) - cap} more cluster(s)")
    return lines


# -- shared row/column builders ---------------------------------------------


def _count(items: Iterable[str]) -> dict[str, int]:
    out: dict[str, int] = {}
    for item in items:
        out[item] = out.get(item, 0) + 1
    return out


def _fault_dbms(fault_id: str) -> str:
    fault = FAULTS_BY_ID.get(fault_id)
    return fault.profile if fault is not None else "-"


def _short_fault(label: str) -> str:
    return label


def _summary_header(data: dict) -> list[str]:
    s = data["summary"]
    lines = [
        f"corpus triage: {s['entries']} distinct bugs "
        f"({s['sightings']} sightings) in {s['clusters']} cluster(s)",
        "by kind: "
        + (
            ", ".join(
                f"{k} {s['by_kind'][k]}" for k in KINDS if k in s["by_kind"]
            )
            or "none"
        ),
    ]
    if "replay" in s:
        replay = s["replay"]
        lines.append(
            "replay: "
            + (
                ", ".join(
                    f"{status} {replay[status]}"
                    for status in ("reproduces", "stale", "unverifiable")
                    if status in replay
                )
                or "none"
            )
        )
    return lines


def _fault_table_header() -> list[str]:
    return [
        "Fault", "DBMS", "Logic", "Internal", "Crash", "Hang",
        "Clusters", "Sightings",
    ]


def _fault_table_row(row: dict) -> list[str]:
    by_kind = row["by_kind"]
    return [
        _short_fault(row["fault"]),
        row["dbms"],
        str(by_kind.get("logic", 0)),
        str(by_kind.get("internal error", 0)),
        str(by_kind.get("crash", 0)),
        str(by_kind.get("hang", 0)),
        str(row["clusters"]),
        str(row["sightings"]),
    ]


def _fault_table_total(summary: dict) -> list[str]:
    """Totals come from the cluster set, not the fault rows: a cluster
    implicating several faults appears in each of their rows but must
    count once here, so the Total row always agrees with the header."""
    by_kind = summary["by_kind"]
    return [
        "Total",
        "",
        str(by_kind.get("logic", 0)),
        str(by_kind.get("internal error", 0)),
        str(by_kind.get("crash", 0)),
        str(by_kind.get("hang", 0)),
        str(summary["clusters"]),
        str(summary["sightings"]),
    ]


def _backend_table_header() -> list[str]:
    return [
        "Backends", "Logic", "Internal", "Crash", "Hang",
        "Clusters", "Entries", "Sightings",
    ]


def _backend_table_row(row: dict) -> list[str]:
    by_kind = row["by_kind"]
    return [
        row["backends"],
        str(by_kind.get("logic", 0)),
        str(by_kind.get("internal error", 0)),
        str(by_kind.get("crash", 0)),
        str(by_kind.get("hang", 0)),
        str(row["clusters"]),
        str(row["entries"]),
        str(row["sightings"]),
    ]


def _cluster_table_header(with_replay: bool) -> list[str]:
    header = [
        "Cluster", "Kind", "Fault", "Backends", "Plan", "Oracles",
        "Entries", "Seen", "First(shard/seed)", "Stmts",
    ]
    if with_replay:
        header.append("Replay")
    return header


def _cluster_table_row(c: dict, with_replay: bool) -> list[str]:
    first = c["first_seen"]
    shard = "?" if first["shard"] is None else str(first["shard"])
    seed = "?" if first["seed"] is None else str(first["seed"])
    plan = c["plan_signature"] or "-"
    row = [
        c["id"],
        c["kind"],
        ",".join(c["faults"]) or NO_FAULT_LABEL,
        "|".join(c["backend_pair"]) if c["backend_pair"] else "single",
        plan[:_PLAN_CHARS],
        "/".join(c["oracles"]),
        str(c["entries"]),
        str(c["sightings"]),
        f"{shard}/{seed}",
        str(c["reduced_size"]),
    ]
    if with_replay:
        row.append(c["replay"]["status"] if c["replay"] else "-")
    return row


def _oracle_names(data: dict) -> tuple[str, ...]:
    names: set[str] = set()
    for row in data["faults"]:
        names |= set(row["by_oracle"])
    return tuple(sorted(names))


# -- low-level table layout -------------------------------------------------


def _table(
    header: list[str],
    rows: list[list[str]],
    total: "list[str] | None" = None,
) -> list[str]:
    """Aligned fixed-width text table (first column left, rest right)."""
    all_rows = [header] + rows + ([total] if total else [])
    widths = [
        max(len(row[i]) for row in all_rows) for i in range(len(header))
    ]

    def fmt(row: list[str]) -> str:
        cells = [row[0].ljust(widths[0])]
        cells += [row[i].rjust(widths[i]) for i in range(1, len(row))]
        return "  ".join(cells).rstrip()

    rule = "-" * (sum(widths) + 2 * (len(widths) - 1))
    lines = [fmt(header), rule]
    lines += [fmt(row) for row in rows]
    if total:
        lines += [rule, fmt(total)]
    return lines


def _md_table(header: list[str], rows: list[list[str]]) -> list[str]:
    def cell(text: str) -> str:
        # Literal pipes (differential backend labels, plan signatures)
        # would otherwise split the Markdown cell.
        return text.replace("|", "\\|")

    lines = [
        "| " + " | ".join(cell(h) for h in header) + " |",
        "| " + " | ".join("---" for _ in header) + " |",
    ]
    for row in rows:
        lines.append("| " + " | ".join(cell(c) for c in row) + " |")
    return lines
