"""Replay verification of cluster representatives.

A corpus outlives the engines that produced it: the fault catalog
evolves, the generator's dialect intersection tightens, a real backend
gets upgraded.  Replay separates clusters whose witness still fails on
a freshly built engine (*reproduces*) from those that no longer do
(*stale*), the same check the fleet's ddmin reducer uses for its
"still fails" predicate -- and the reason the paper could attribute
every Table 1 bug to a live root cause.

Three verdicts:

* ``reproduces`` -- the witness fails the same way on a fresh engine:
  the recorded faults all fire again (logic bugs), the same failure
  class is raised (internal error / crash / hang), or the backends
  diverge again (differential findings);
* ``stale``     -- the witness runs clean (or is no longer a valid
  program for the current engines);
* ``unverifiable`` -- there is nothing to check against: a
  single-engine logic finding with no ground-truth faults needs its
  original oracle, and an unknown or locally unavailable backend
  (an optional adapter whose package is not installed) cannot be
  built.

Determinism guarantee: replay drives only deterministic engines with
the recorded statements, so replaying the same corpus twice yields the
same verdicts.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.backends import backend_names, get_backend
from repro.dialects import FAULTS_BY_ID, make_engine
from repro.differential import build_pair_adapter
from repro.errors import (
    DifferentialMismatch,
    EngineCrash,
    EngineHang,
    InternalError,
    SqlError,
)
from repro.triage.cluster import Cluster

REPRODUCES = "reproduces"
STALE = "stale"
UNVERIFIABLE = "unverifiable"

#: Failure-class kinds and the exception each maps to.
_EXCEPTIONAL_KINDS = {
    "internal error": InternalError,
    "crash": EngineCrash,
    "hang": EngineHang,
}


@dataclass(frozen=True)
class ReplayVerdict:
    """Outcome of replaying one cluster representative."""

    status: str  # one of REPRODUCES / STALE / UNVERIFIABLE
    detail: str
    #: Which witness reproduced: "reduced", "full", or "-" when none.
    witness: str = "-"

    @property
    def label(self) -> str:
        return self.status


def parse_backend_name(name: str) -> tuple[str, "str | None"]:
    """Split a recorded backend name into ``(short name, dialect)``.

    Corpus entries record adapter display names -- dialect-sensitive
    backends append their profile (``minidb[sqlite]``,
    ``minidb@alt[tidb]``) while real DBMSs record the bare registry
    name (``sqlite3``) -- and the pair builder wants the short registry
    name plus a dialect.
    """
    if name.endswith("]") and "[" in name:
        short, _, dialect = name[:-1].partition("[")
        return short, dialect or None
    return name, None


def infer_dialect(cluster: Cluster) -> str:
    """The MiniDB profile to replay on: the representative witness's
    recorded dialect if present, else the dialect of another entry
    (scanned in fingerprint order, so merged corpora infer the same
    profile regardless of file order), else the primary backend's
    recorded profile, else the profile of the first ground-truth
    fault, else sqlite."""
    representative = cluster.representative
    if representative.dialect:
        return representative.dialect
    for entry in sorted(cluster.entries, key=lambda e: e.fingerprint):
        if entry.dialect:
            return entry.dialect
    if cluster.backend_pair:
        _, dialect = parse_backend_name(cluster.backend_pair[0])
        if dialect:
            return dialect
    for fid in cluster.faults:
        fault = FAULTS_BY_ID.get(fid)
        if fault is not None:
            return fault.profile
    return "sqlite"


def replay_representative(
    cluster: Cluster,
    dialect: "str | None" = None,
    cache=None,
    use_cache: bool = True,
    metrics=None,
) -> ReplayVerdict:
    """Replay *cluster*'s best witness on a freshly built engine (pair).

    Tries the reduced statement list first, then falls back to the full
    recorded program (a too-aggressive past reduction must not condemn
    a live bug as stale).

    *cache* (a :class:`repro.perf.EvalCache`, created here when not
    supplied and *use_cache* holds) is attached to every freshly built
    engine, so the state-building DDL prefix the reduced and full
    witnesses share is parsed once instead of once per verification --
    and once per *corpus* when :func:`replay_clusters` shares one cache
    across clusters.  Verdicts are identical with or without the
    cache; ``use_cache=False`` forces the uncached reference path (the
    CLI's ``--no-cache``).

    *metrics* (a :class:`repro.obs.metrics.MetricsRegistry`) receives
    deterministic replay counters -- ``replay/clusters`` plus one
    ``replay/verdict/<status>`` per verdict -- and the wall-clock
    ``replay_wall`` timer; verdicts never depend on it.
    """
    if cache is None and use_cache:
        from repro.perf import EvalCache

        cache = EvalCache()
    t0 = time.perf_counter() if metrics is not None else 0.0
    verdict = _replay_representative(cluster, dialect, cache)
    if metrics is not None:
        metrics.incr("replay/clusters")
        metrics.incr(f"replay/verdict/{verdict.status}")
        if verdict.witness != "-":
            metrics.incr(f"replay/witness/{verdict.witness}")
        metrics.observe("replay_wall", time.perf_counter() - t0)
    return verdict


def _replay_representative(
    cluster: Cluster, dialect: "str | None", cache
) -> ReplayVerdict:
    rep = cluster.representative
    target = set(cluster.faults)
    pair: "tuple[str, str] | None" = None
    if cluster.backend_pair is not None:
        short = tuple(
            parse_backend_name(b)[0] for b in cluster.backend_pair
        )
        known = backend_names()
        if any(b not in known for b in short):
            return ReplayVerdict(
                UNVERIFIABLE,
                f"unknown backend in pair {cluster.backend_pair}",
            )
        unavailable = [
            f"{b} ({get_backend(b).why_unavailable()})"
            for b in short
            if not get_backend(b).available()
        ]
        if unavailable:
            return ReplayVerdict(
                UNVERIFIABLE,
                f"backend unavailable for replay: {', '.join(unavailable)}",
            )
        pair = short
    if pair is None and not target and cluster.kind == "logic":
        return ReplayVerdict(
            UNVERIFIABLE,
            "single-engine logic finding without ground-truth faults "
            "needs its original oracle",
        )

    dialect = dialect or infer_dialect(cluster)
    candidates: list[tuple[str, list[str]]] = []
    if rep.reduced_statements:
        candidates.append(("reduced", list(rep.reduced_statements)))
    candidates.append(("full", list(rep.statements)))

    last_detail = "witness ran clean"
    for witness, statements in candidates:
        reproduced, detail = _replay_once(
            statements, cluster.kind, target, pair, dialect, cache
        )
        if reproduced:
            return ReplayVerdict(REPRODUCES, detail, witness=witness)
        last_detail = detail
    return ReplayVerdict(STALE, last_detail)


def replay_clusters(
    clusters: Iterable[Cluster],
    dialect: "str | None" = None,
    use_cache: bool = True,
    metrics=None,
) -> dict[str, ReplayVerdict]:
    """Verdict per :attr:`Cluster.cluster_id` for every cluster."""
    cache = None
    if use_cache:
        from repro.perf import EvalCache

        cache = EvalCache()
    return {
        c.cluster_id: replay_representative(
            c,
            dialect=dialect,
            cache=cache,
            use_cache=use_cache,
            metrics=metrics,
        )
        for c in clusters
    }


def _replay_once(
    statements: list[str],
    kind: str,
    target: set,
    pair: "tuple[str, str] | None",
    dialect: str,
    cache=None,
) -> tuple[bool, str]:
    """Run *statements* on a fresh engine; does the bug fire again?"""
    buggy = bool(target)
    if pair is not None:
        adapter = build_pair_adapter(pair, dialect=dialect, buggy=buggy)
    else:
        adapter = MiniDBAdapter(
            make_engine(dialect, with_catalog_faults=buggy)
        )
    if cache is not None:
        # The namespace pins the full engine configuration: one shared
        # cache must never replay a result recorded under a different
        # fault catalog, dialect, or backend pair.
        namespace = (
            f"replay/{'|'.join(pair) if pair else 'minidb'}"
            f"/{dialect}/buggy={buggy}"
        )
        adapter.attach_eval_cache(cache, namespace)

    expected_exc = _EXCEPTIONAL_KINDS.get(kind)
    fired: set = set()
    for sql in statements:
        try:
            adapter.execute(sql)
        except DifferentialMismatch:
            if kind == "logic":
                return True, "backends diverge again on replay"
            return False, f"unexpected divergence replaying a {kind} bug"
        except (InternalError, EngineCrash, EngineHang) as exc:
            fired |= adapter.fired_fault_ids()
            if expected_exc is not None and isinstance(exc, expected_exc):
                if not target or target <= fired:
                    return True, f"{kind} raised again on replay"
                return False, (
                    f"{kind} raised but by faults {sorted(fired)}, "
                    f"not {sorted(target)}"
                )
            return False, f"engine failure of a different class: {exc}"
        except SqlError as exc:
            # Includes StateDesyncError and differential skips: the
            # witness is no longer a valid program for these engines.
            return False, f"witness no longer executes: {exc}"
        fired |= adapter.fired_fault_ids()

    if expected_exc is not None:
        return False, f"no {kind} raised on replay"
    if pair is not None:
        return False, "backends agree on replay"
    if target and target <= fired:
        return True, "all recorded faults fired again on replay"
    return False, (
        f"faults {sorted(target - fired)} no longer fire on replay"
        if target
        else "witness ran clean"
    )
