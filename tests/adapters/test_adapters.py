"""Adapter tests: MiniDB adapter and the real stdlib SQLite adapter."""

import pytest

from repro.adapters import MiniDBAdapter, Sqlite3Adapter
from repro.errors import SqlError
from repro.minidb import Engine
from repro.minidb.values import SqlType


class TestMiniDBAdapter:
    def test_execute_and_schema(self):
        adapter = MiniDBAdapter(Engine())
        adapter.execute("CREATE TABLE t (a INT, b TEXT)")
        adapter.execute("INSERT INTO t VALUES (1, 'x')")
        info = adapter.schema()
        table = info.table("t")
        assert [c.name for c in table.columns] == ["a", "b"]
        assert table.columns[0].sql_type is SqlType.INTEGER

    def test_views_in_schema(self):
        adapter = MiniDBAdapter(Engine())
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute("CREATE VIEW v (x) AS SELECT a FROM t")
        info = adapter.schema()
        assert info.table("v").kind == "view"
        assert info.base_tables[0].name == "t"

    def test_reset(self):
        adapter = MiniDBAdapter(Engine())
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.reset()
        assert adapter.schema().tables == []

    def test_clone_isolates_state(self):
        adapter = MiniDBAdapter(Engine())
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute("INSERT INTO t VALUES (1)")
        copy = adapter.clone()
        copy.execute("DELETE FROM t")
        assert adapter.execute("SELECT COUNT(*) FROM t").rows == [(1,)]
        assert copy.execute("SELECT COUNT(*) FROM t").rows == [(0,)]

    def test_fired_faults_surface(self):
        from repro.dialects.catalog import FAULTS_BY_ID
        from repro.dialects.base import get_dialect

        fault = FAULTS_BY_ID["tidb_in_list_where_select"]
        engine = Engine(get_dialect("tidb").engine_profile, faults=[fault])
        adapter = MiniDBAdapter(engine)
        adapter.execute("CREATE TABLE t (c INT)")
        adapter.execute("INSERT INTO t VALUES (1)")
        adapter.execute("SELECT c FROM t WHERE c IN (1)")
        assert fault.fault_id in adapter.fired_fault_ids()


class TestSqlite3Adapter:
    def test_basic_execution(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT, b TEXT)")
        adapter.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        result = adapter.execute("SELECT * FROM t ORDER BY a")
        assert result.rows == [(1, "x"), (2, "y")]
        assert result.columns == ["a", "b"]

    def test_expected_errors_are_sql_errors(self):
        adapter = Sqlite3Adapter()
        with pytest.raises(SqlError):
            adapter.execute("SELECT * FROM missing")
        with pytest.raises(SqlError):
            adapter.execute("NOT EVEN SQL")

    def test_schema_introspection(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT, b TEXT)")
        adapter.execute("CREATE INDEX ix ON t (a)")
        adapter.execute("CREATE VIEW v AS SELECT a FROM t")
        info = adapter.schema()
        assert info.table("t").columns[0].sql_type is SqlType.INTEGER
        assert info.table("v").kind == "view"
        assert "ix" in info.indexes

    def test_plan_fingerprints_for_selects(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT)")
        result = adapter.execute("SELECT * FROM t WHERE a > 5")
        assert result.plan_fingerprint  # EXPLAIN QUERY PLAN digest

    def test_fingerprint_strips_literals(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT)")
        fp1 = adapter.execute("SELECT * FROM t WHERE a > 5").plan_fingerprint
        fp2 = adapter.execute("SELECT * FROM t WHERE a > 7").plan_fingerprint
        assert fp1 == fp2

    def test_reset(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.reset()
        assert adapter.schema().tables == []

    def test_paper_listing1_on_real_sqlite(self):
        """Modern SQLite computes Listing 1 consistently (the bug is
        fixed); the metamorphic relation holds."""
        adapter = Sqlite3Adapter()
        for sql in [
            "CREATE TABLE t0 (c0)",
            "INSERT INTO t0 (c0) VALUES (1)",
            "CREATE INDEX i0 ON t0 (c0 > 0)",
            "CREATE VIEW v0 (c0) AS SELECT AVG(t0.c0) FROM t0 GROUP BY 1 > t0.c0",
        ]:
            adapter.execute(sql)
        original = adapter.execute(
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE "
            "(SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0)"
        ).rows
        aux = adapter.execute(
            "SELECT COUNT(*) FROM v0 WHERE v0.c0 BETWEEN 0 AND 0"
        ).rows
        folded = adapter.execute(
            f"SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE {aux[0][0]}"
        ).rows
        assert original == folded


class TestCoddTestOnRealSqlite:
    def test_campaign_runs_clean(self):
        """The oracle drives the real SQLite without false alarms."""
        from repro import CoddTestOracle, run_campaign

        adapter = Sqlite3Adapter()
        stats = run_campaign(
            CoddTestOracle(relation_mode_prob=0.0), adapter, n_tests=60, seed=4
        )
        assert stats.tests == 60
        logic = [r for r in stats.reports if r.kind == "logic"]
        assert logic == [], [r.description for r in logic[:3]]

    def test_norec_on_real_sqlite(self):
        from repro import NoRECOracle, run_campaign

        adapter = Sqlite3Adapter()
        stats = run_campaign(NoRECOracle(), adapter, n_tests=60, seed=4)
        assert stats.reports == []
