"""The ``coddtest backends list|probe`` CLI surface."""

from __future__ import annotations

import importlib.util
import json

import pytest

from repro.cli import main as cli_main

_DUCKDB_INSTALLED = importlib.util.find_spec("duckdb") is not None


def test_backends_list(capsys):
    assert cli_main(["backends", "list"]) == 0
    out = capsys.readouterr().out
    for name in ("minidb", "minidb@alt", "sqlite3", "duckdb"):
        assert name in out
    assert "available" in out


def test_backends_probe_writes_combined_json(tmp_path, capsys):
    out_path = tmp_path / "capvec.json"
    assert (
        cli_main(
            ["backends", "probe", "minidb", "sqlite3", "--out", str(out_path)]
        )
        == 0
    )
    payload = json.loads(out_path.read_text())
    assert set(payload) == {"minidb[sqlite]", "sqlite3"}
    for vector in payload.values():
        assert vector["probe_set"]
        assert vector["probes"]
    stdout = capsys.readouterr().out
    assert "probes ok" in stdout


def test_backends_probe_unknown_name_exits_2(capsys):
    assert cli_main(["backends", "probe", "nosuch"]) == 2
    assert "unknown backend 'nosuch'" in capsys.readouterr().err


@pytest.mark.skipif(_DUCKDB_INSTALLED, reason="duckdb installed here")
def test_backends_probe_unavailable_exits_2(capsys):
    assert cli_main(["backends", "probe", "duckdb"]) == 2
    assert "unavailable" in capsys.readouterr().err


def test_diff_rejects_unregistered_backend(capsys):
    assert cli_main(["diff", "--backends", "minidb,postgres", "--tests", "1"]) == 2
    err = capsys.readouterr().err
    assert "registered backends" in err
