"""Probe-derived compat policies vs. the hand-written intersection.

The acceptance gate of the registry refactor: deriving the
``(minidb, sqlite3)`` policy from capability vectors must reproduce
the hand-written :meth:`CompatPolicy.for_pair` intersection exactly,
on every dialect profile -- and derived policies for new pairs
(``minidb@alt``) must behave, end to end, like the hand-written ones
always did: a faults-off campaign reports zero divergences.
"""

from __future__ import annotations

import pytest

from repro.backends import build_backend, caps_from_vector, pair_policy, probe_backend
from repro.dialects import PROFILES
from repro.differential import CompatPolicy, build_pair_adapter
from repro.fleet import BugCorpus, FleetConfig, run_fleet
from repro.minidb.functions import ENGINE_VERSION

DIALECTS = sorted(PROFILES)


@pytest.mark.parametrize("dialect", DIALECTS)
def test_derived_seed_pair_matches_hand_written(dialect):
    derived = pair_policy("minidb", "sqlite3", dialect=dialect)
    hand = CompatPolicy.for_pair(
        build_backend("minidb", dialect=dialect),
        build_backend("sqlite3", dialect=dialect),
    )
    assert derived == hand


def test_derived_version_literal_is_minidbs_probed_version():
    policy = pair_policy("minidb", "sqlite3")
    assert policy.version_literal == ENGINE_VERSION


def test_caps_from_vector_shape():
    caps = caps_from_vector(probe_backend("sqlite3"))
    assert caps.name == "sqlite3"
    assert not caps.simulated
    assert not caps.supports_any_all  # sqlite3 lacks quantified comparisons
    caps = caps_from_vector(probe_backend("minidb"))
    assert caps.simulated
    assert caps.supports_version_fn and caps.supports_typeof


def test_alt_pair_derivation_intersects_any_all():
    # The alt build compiles quantified comparisons out; on a dialect
    # whose stock profile supports them, the *pair* must not emit them.
    policy = pair_policy("minidb", "minidb@alt", dialect="mysql")
    assert policy.primary.supports_any_all
    assert not policy.secondary.supports_any_all
    assert not policy.supports_any_all


def test_build_pair_adapter_carries_derived_policy():
    adapter = build_pair_adapter(("minidb", "sqlite3"))
    hand = CompatPolicy.for_pair(
        build_backend("minidb"), build_backend("sqlite3")
    )
    assert adapter.policy == hand


def test_self_pair_derives_identity_policy():
    # mysql's stock profile supports quantified comparisons, so a
    # self-pair must keep every capability: no demotions without a
    # cross-backend mismatch.
    policy = pair_policy("minidb", "minidb", dialect="mysql")
    assert policy.supports_any_all
    assert policy.primary.supports_typeof and policy.secondary.supports_typeof


def test_alt_pair_faults_off_campaign_is_clean():
    config = FleetConfig(
        oracle="differential",
        backend_pair=("minidb", "minidb@alt"),
        n_tests=60,
        workers=1,
        seed=7,
    )
    stats = run_fleet(config, corpus=BugCorpus()).merged
    assert stats.tests == 60
    assert not stats.reports
