"""Capability-probe determinism and the on-disk vector cache."""

from __future__ import annotations

import json
import os

import pytest

from repro.adapters.sqlite3_adapter import Sqlite3Adapter
from repro.backends import (
    PROBE_SET_DIGEST,
    CapabilityVector,
    clear_probe_memo,
    get_backend,
    probe_backend,
    register_backend,
    unregister_backend,
    vector_cache_path,
)


class _CountedBuild:
    """Mutable version + build counter behind a registered backend."""

    def __init__(self):
        self.builds = 0
        self.version = "1.0"

    def factory(self, dialect, buggy):
        self.builds += 1
        return Sqlite3Adapter()


@pytest.fixture
def counted():
    state = _CountedBuild()
    register_backend(
        "probe-test",
        state.factory,
        version=lambda dialect: state.version,
        description="probe cache test double",
    )
    clear_probe_memo()
    try:
        yield state
    finally:
        unregister_backend("probe-test")
        clear_probe_memo()


def test_probe_vector_is_byte_deterministic():
    first = probe_backend("minidb", force=True).to_json()
    clear_probe_memo()
    second = probe_backend("minidb", force=True).to_json()
    assert first == second


def test_probe_memoizes_in_process(counted):
    vector = probe_backend("probe-test")
    assert counted.builds == 1
    assert probe_backend("probe-test") is vector
    assert counted.builds == 1


def test_disk_cache_round_trip(counted, tmp_path):
    cache_dir = str(tmp_path)
    vector = probe_backend("probe-test", cache_dir=cache_dir)
    assert counted.builds == 1

    path = vector_cache_path(
        cache_dir, get_backend("probe-test"), "sqlite", "1.0"
    )
    assert os.path.exists(path)
    with open(path, encoding="utf-8") as fh:
        on_disk = fh.read()
    # The cached file IS the canonical rendering, byte for byte.
    assert on_disk == vector.to_json()
    assert PROBE_SET_DIGEST in os.path.basename(path)

    # A fresh process (memo cleared) reuses the disk entry: no rebuild.
    clear_probe_memo()
    again = probe_backend("probe-test", cache_dir=cache_dir)
    assert counted.builds == 1
    assert again.to_json() == vector.to_json()
    assert isinstance(again, CapabilityVector)


def test_disk_cache_invalidates_on_version_change(counted, tmp_path):
    cache_dir = str(tmp_path)
    probe_backend("probe-test", cache_dir=cache_dir)
    assert counted.builds == 1

    counted.version = "2.0"
    clear_probe_memo()
    upgraded = probe_backend("probe-test", cache_dir=cache_dir)
    assert counted.builds == 2
    assert upgraded.version == "2.0"
    # Both versions now live side by side, keyed by version string.
    names = sorted(os.listdir(cache_dir))
    assert len(names) == 2


def test_force_bypasses_disk_cache(counted, tmp_path):
    cache_dir = str(tmp_path)
    probe_backend("probe-test", cache_dir=cache_dir)
    clear_probe_memo()
    probe_backend("probe-test", cache_dir=cache_dir, force=True)
    assert counted.builds == 2


def test_cache_dir_env_var(counted, tmp_path, monkeypatch):
    monkeypatch.setenv("CODDTEST_CAPVEC_DIR", str(tmp_path))
    probe_backend("probe-test")
    assert os.listdir(tmp_path)


def test_payload_round_trips(counted):
    vector = probe_backend("probe-test")
    restored = CapabilityVector.from_payload(
        json.loads(vector.to_json())
    )
    assert restored == vector
