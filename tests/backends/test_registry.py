"""Registry contract: registration rules, discovery, entry points.

Every test restores the registry it mutates: the registry is process
state shared with every other test in the run.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.adapters.sqlite3_adapter import Sqlite3Adapter
from repro.backends import (
    BackendUnavailable,
    available_backend_names,
    backend_names,
    build_backend,
    discovery_errors,
    ensure_discovered,
    get_backend,
    register_backend,
    unregister_backend,
)
from repro.backends import registry as registry_module


@pytest.fixture
def scratch_backend():
    """Register a throwaway backend; always unregister it."""
    name = "scratch-backend"
    register_backend(
        name,
        lambda dialect, buggy: Sqlite3Adapter(),
        version=lambda dialect: "0.0-test",
        description="test-only",
    )
    try:
        yield name
    finally:
        unregister_backend(name)


def test_builtins_discovered():
    assert set(backend_names()) >= {"minidb", "minidb@alt", "sqlite3", "duckdb"}


def test_names_sorted_and_available_subset():
    names = backend_names()
    assert list(names) == sorted(names)
    assert set(available_backend_names()) <= set(names)


def test_duplicate_name_rejected(scratch_backend):
    with pytest.raises(ValueError, match="already registered"):
        register_backend(
            scratch_backend, lambda dialect, buggy: Sqlite3Adapter()
        )
    # replace=True is the explicit override.
    register_backend(
        scratch_backend,
        lambda dialect, buggy: Sqlite3Adapter(),
        replace=True,
    )


@pytest.mark.parametrize("bad", ["", "   ", "a,b"])
def test_invalid_names_rejected(bad):
    with pytest.raises(ValueError):
        register_backend(bad, lambda dialect, buggy: Sqlite3Adapter())


def test_unknown_backend_error_lists_registered():
    with pytest.raises(ValueError) as excinfo:
        build_backend("postgres")
    message = str(excinfo.value)
    assert "unknown backend 'postgres'" in message
    for name in backend_names():
        assert name in message


def test_unavailable_backend_raises_with_reason(monkeypatch):
    info = get_backend("minidb")
    monkeypatch.setitem(
        registry_module._REGISTRY,
        "minidb",
        dataclasses.replace(info, unavailable=lambda: "simulated outage"),
    )
    assert "minidb" not in available_backend_names()
    with pytest.raises(BackendUnavailable, match="simulated outage"):
        build_backend("minidb")


def test_build_routes_through_factory(scratch_backend):
    adapter = build_backend(scratch_backend)
    assert adapter.name == "sqlite3"


class _FakeEntryPoint:
    def __init__(self, name, loader):
        self.name = name
        self._loader = loader

    def load(self):
        return self._loader


def test_entry_point_backends_load(monkeypatch):
    def _register():
        register_backend(
            "ep-backend",
            lambda dialect, buggy: Sqlite3Adapter(),
            description="from entry point",
        )

    def _boom():
        raise RuntimeError("broken plugin")

    monkeypatch.setattr(
        registry_module,
        "_iter_entry_points",
        lambda: [
            _FakeEntryPoint("good", _register),
            _FakeEntryPoint("bad", _boom),
        ],
    )
    monkeypatch.setattr(registry_module, "_ENTRY_POINTS_LOADED", False)
    try:
        ensure_discovered()
        assert "ep-backend" in backend_names()
        # The broken plugin is isolated, not fatal, and diagnosable.
        assert any("bad" in err for err in discovery_errors())
    finally:
        unregister_backend("ep-backend")
        registry_module._DISCOVERY_ERRORS.clear()


def test_entry_point_loading_is_idempotent(monkeypatch):
    calls = []
    monkeypatch.setattr(
        registry_module, "_iter_entry_points", lambda: calls.append(1) or []
    )
    ensure_discovered()
    ensure_discovered()
    # Already loaded at import time in this process: never re-queried.
    assert calls == []
