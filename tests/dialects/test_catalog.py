"""Fault catalog and dialect profile tests (paper Table 1 invariants)."""

import pytest

from repro.dialects import (
    ALL_FAULTS,
    FAULTS_BY_ID,
    FAULTS_BY_PROFILE,
    LOGIC_FAULTS,
    PROFILES,
    get_dialect,
    make_engine,
)
from repro.dialects.catalog import table1_expected
from repro.minidb.faults import BugType
from repro.minidb.values import TypingMode


class TestCatalogTotals:
    """The catalog must equal paper Table 1 by construction."""

    def test_total_counts(self):
        assert len(ALL_FAULTS) == 45
        assert len(LOGIC_FAULTS) == 24

    def test_bug_type_totals(self):
        by_type = {}
        for f in ALL_FAULTS:
            by_type[f.bug_type] = by_type.get(f.bug_type, 0) + 1
        assert by_type[BugType.LOGIC] == 24
        assert by_type[BugType.INTERNAL_ERROR] == 14
        assert by_type[BugType.CRASH] == 2
        assert by_type[BugType.HANG] == 5

    @pytest.mark.parametrize(
        "profile,logic,internal,crash,hang,fixed,verified",
        [
            ("sqlite", 6, 1, 0, 0, 7, 0),
            ("mysql", 1, 1, 0, 0, 0, 2),
            ("cockroachdb", 7, 4, 0, 2, 11, 2),
            ("duckdb", 5, 2, 2, 3, 12, 0),
            ("tidb", 5, 6, 0, 0, 3, 8),
        ],
    )
    def test_per_profile_matches_table1(
        self, profile, logic, internal, crash, hang, fixed, verified
    ):
        row = table1_expected()[profile]
        assert row["logic"] == logic
        assert row["internal error"] == internal
        assert row["crash"] == crash
        assert row["hang"] == hang
        assert row["fixed"] == fixed
        assert row["verified"] == verified

    def test_fault_ids_unique(self):
        assert len(FAULTS_BY_ID) == len(ALL_FAULTS)

    def test_paper_listing_bugs_present(self):
        # The concrete bugs the paper showcases each have a catalog entry.
        for fid, listing in [
            ("sqlite_agg_subquery_indexed", "Listing 1"),
            ("tidb_insert_select_version", "Listing 6"),
            ("cockroach_cte_case_not_between", "Listing 7"),
            ("sqlite_join_on_exists", "Listing 8"),
            ("cockroach_in_large_int", "Listing 9"),
            ("tidb_in_list_where_select", "Listing 10"),
        ]:
            assert listing in FAULTS_BY_ID[fid].paper_ref


class TestBugLatencyMetadata:
    """Paper Section 4.2, bugs-introduction-times analysis."""

    def test_six_logic_bugs_predate_2020(self):
        early = [f for f in LOGIC_FAULTS if f.introduced_year < 2020]
        assert len(early) >= 5

    def test_most_logic_bugs_predate_2023(self):
        before_2023 = [f for f in LOGIC_FAULTS if f.introduced_year < 2023]
        assert len(before_2023) >= 18  # paper: 20 of 24

    def test_longest_latency_is_the_mysql_bug(self):
        oldest = min(LOGIC_FAULTS, key=lambda f: f.introduced_year)
        assert oldest.profile == "mysql"
        # Paper: 14 years latent at discovery (2023).
        assert 2023 - oldest.introduced_year >= 14


class TestDialectProfiles:
    def test_five_profiles(self):
        assert set(PROFILES) == {"sqlite", "mysql", "cockroachdb", "duckdb", "tidb"}

    def test_typing_modes_match_paper(self):
        # Paper Section 3.3: DuckDB and CockroachDB are strict.
        assert get_dialect("duckdb").engine_profile.typing_mode is TypingMode.STRICT
        assert (
            get_dialect("cockroachdb").engine_profile.typing_mode
            is TypingMode.STRICT
        )
        assert get_dialect("sqlite").engine_profile.typing_mode is TypingMode.RELAXED
        assert get_dialect("mysql").engine_profile.typing_mode is TypingMode.RELAXED

    def test_any_all_support_matches_paper(self):
        # Paper Section 3.3: ANY/ALL not supported in SQLite and DuckDB.
        assert not get_dialect("sqlite").engine_profile.supports_any_all
        assert not get_dialect("duckdb").engine_profile.supports_any_all
        assert get_dialect("mysql").engine_profile.supports_any_all
        assert get_dialect("tidb").engine_profile.supports_any_all

    def test_unknown_dialect_raises(self):
        with pytest.raises(KeyError):
            get_dialect("oracle23ai")

    def test_make_engine_with_catalog_faults(self):
        engine = make_engine("duckdb", with_catalog_faults=True)
        assert len(engine.faults.faults) == len(FAULTS_BY_PROFILE["duckdb"])

    def test_make_engine_clean_by_default(self):
        assert make_engine("duckdb").faults.empty


class TestTriggerHygiene:
    def test_every_fault_has_known_effect(self):
        from repro.minidb.faults import _VALUE_EFFECTS

        for fault in ALL_FAULTS:
            if fault.bug_type is BugType.LOGIC:
                assert fault.effect in _VALUE_EFFECTS, fault.fault_id

    def test_every_fault_has_description_and_sites(self):
        for fault in ALL_FAULTS:
            assert fault.description
            assert fault.sites

    def test_logic_faults_do_not_trigger_on_empty_features(self):
        """No logic fault may fire unconditionally on every site visit
        with empty features -- that would corrupt even trivial queries."""
        for fault in LOGIC_FAULTS:
            assert not fault.trigger({}), fault.fault_id
