"""Unit tests: capability intersection, statement translation/skip
rules, statement-kind classification, and pair-adapter state-sync
handling."""

from __future__ import annotations

import pytest

from repro.adapters import MiniDBAdapter, Sqlite3Adapter
from repro.adapters.sql_text import (
    KIND_DDL,
    KIND_INDEX,
    KIND_OTHER,
    KIND_SELECT,
    KIND_WRITE,
    is_row_returning,
    statement_kind,
    strip_leading_trivia,
)
from repro.differential import (
    CompatPolicy,
    CompatSkip,
    DifferentialAdapter,
    build_pair_adapter,
    capabilities,
)
from repro.dialects import make_engine
from repro.errors import SqlError, StateDesyncError


class TestStatementKind:
    @pytest.mark.parametrize(
        ("sql", "kind"),
        [
            ("SELECT 1", KIND_SELECT),
            ("  select * from t", KIND_SELECT),
            ("WITH q AS (SELECT 1) SELECT * FROM q", KIND_SELECT),
            ("VALUES (1, 2)", KIND_SELECT),
            ("(SELECT 1)", KIND_SELECT),
            ("-- header comment\nSELECT 1", KIND_SELECT),
            ("/* block */ SELECT 1", KIND_SELECT),
            ("/* a */ -- b\n  (select 2)", KIND_SELECT),
            ("INSERT INTO t VALUES (1)", KIND_WRITE),
            ("update t set a = 1", KIND_WRITE),
            ("DELETE FROM t", KIND_WRITE),
            ("CREATE TABLE t (a INT)", KIND_DDL),
            ("CREATE VIEW v AS SELECT 1", KIND_DDL),
            ("DROP TABLE t", KIND_DDL),
            ("CREATE INDEX ix ON t (a)", KIND_INDEX),
            ("create unique index ix on t (a)", KIND_INDEX),
            ("PRAGMA table_info(t)", KIND_OTHER),
            ("", KIND_OTHER),
        ],
    )
    def test_kinds(self, sql, kind):
        assert statement_kind(sql) == kind

    def test_strip_leading_trivia(self):
        assert strip_leading_trivia("  -- c\n /* x */ ( SELECT 1") == "SELECT 1"

    def test_row_returning(self):
        assert is_row_returning("-- note\n(SELECT 1)")
        assert not is_row_returning("INSERT INTO t VALUES (1)")


class TestSqlite3FingerprintKinds:
    """Satellite fix: plan fingerprints survive leading comments and
    parenthesized selects."""

    def _adapter(self):
        adapter = Sqlite3Adapter()
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute("INSERT INTO t VALUES (1), (2)")
        return adapter

    def test_plain_select_has_fingerprint(self):
        result = self._adapter().execute("SELECT * FROM t")
        assert result.plan_fingerprint

    def test_leading_comment_still_fingerprints(self):
        result = self._adapter().execute("-- repro case 42\nSELECT * FROM t")
        assert result.plan_fingerprint

    def test_values_clause_still_fingerprints(self):
        # VALUES is row-returning but starts with neither SELECT nor
        # WITH -- the old prefix check missed it.
        result = self._adapter().execute("VALUES (1), (2)")
        assert result.plan_fingerprint

    def test_lowercase_with_clause(self):
        result = self._adapter().execute(
            "with q as (select a from t) select * from q"
        )
        assert result.plan_fingerprint

    def test_insert_has_no_fingerprint(self):
        result = self._adapter().execute("INSERT INTO t VALUES (3)")
        assert result.plan_fingerprint is None


class TestCapabilities:
    def test_minidb_caps(self):
        caps = capabilities(MiniDBAdapter(make_engine("sqlite")))
        assert caps.simulated
        assert caps.supports_version_fn
        assert not caps.supports_any_all  # the SQLite-like profile

    def test_sqlite3_caps(self):
        caps = capabilities(Sqlite3Adapter())
        assert not caps.simulated
        assert not caps.supports_any_all
        assert not caps.supports_version_fn

    def test_pair_intersects_any_all(self):
        mysql = MiniDBAdapter(make_engine("mysql"))
        assert mysql.supports_any_all
        policy = CompatPolicy.for_pair(mysql, Sqlite3Adapter())
        assert not policy.supports_any_all

    def test_minidb_pair_keeps_any_all(self):
        policy = CompatPolicy.for_pair(
            MiniDBAdapter(make_engine("mysql")),
            MiniDBAdapter(make_engine("tidb")),
        )
        assert policy.supports_any_all
        assert "FULL" in policy.join_kinds


class TestTranslation:
    def _policy(self):
        return CompatPolicy.for_pair(
            MiniDBAdapter(make_engine("sqlite")), Sqlite3Adapter()
        )

    def test_version_rewritten_for_sqlite3(self):
        policy = self._policy()
        out = policy.translate(
            "SELECT * FROM t WHERE VERSION() > c0", policy.secondary
        )
        assert "VERSION" not in out.upper()
        assert "8.0.11-minidb" in out

    def test_version_passthrough_for_minidb(self):
        policy = self._policy()
        sql = "SELECT * FROM t WHERE version() > c0"
        assert policy.translate(sql, policy.primary) == sql

    def test_quantified_skipped_for_sqlite3(self):
        policy = self._policy()
        with pytest.raises(CompatSkip):
            policy.translate(
                "SELECT * FROM t WHERE c0 = ANY (SELECT c0 FROM t)",
                policy.secondary,
            )

    def test_typeof_skipped_for_sqlite3(self):
        policy = self._policy()
        with pytest.raises(CompatSkip):
            policy.translate("SELECT TYPEOF(c0) FROM t", policy.secondary)


class TestPairStateSync:
    def _pair(self):
        return build_pair_adapter(("minidb", "sqlite3"))

    def test_rejected_statement_touches_neither_backend(self):
        pair = self._pair()
        pair.execute("CREATE TABLE t (a INT NOT NULL)")
        with pytest.raises(SqlError):
            pair.execute("INSERT INTO t VALUES (1), (NULL)")
        # Atomic on the primary, never attempted on the secondary.
        result = pair.execute("SELECT COUNT(*) FROM t")
        assert result.rows == [(0,)]

    def test_secondary_data_failure_poisons_until_reset(self):
        pair = self._pair()
        pair.execute("CREATE TABLE t (a INT)")
        # Force a one-sided failure: create an object only the
        # secondary already has, so its CREATE fails there first.
        pair.secondary.execute("CREATE TABLE u (a INT)")
        with pytest.raises(StateDesyncError):
            pair.execute("CREATE TABLE u (a INT)")
        with pytest.raises(StateDesyncError):
            pair.execute("SELECT 1")
        pair.reset()
        assert pair.execute("SELECT 1").rows == [(1,)]

    def test_secondary_query_failure_is_plain_skip(self):
        pair = self._pair()
        pair.execute("CREATE TABLE t (a INT)")
        pair.secondary.execute("DROP TABLE t")
        with pytest.raises(SqlError) as err:
            pair.execute("SELECT * FROM t")
        assert not isinstance(err.value, StateDesyncError)
        # Queries have no side effects: the pair keeps working for
        # statements both sides accept.
        assert pair.execute("SELECT 2").rows == [(2,)]

    def test_divergence_carries_both_fingerprints(self):
        from repro.errors import DifferentialMismatch

        pair = self._pair()
        pair.execute("CREATE TABLE t (a INT)")
        pair.execute("INSERT INTO t VALUES (1)")
        pair.secondary.execute("INSERT INTO t VALUES (2)")
        with pytest.raises(DifferentialMismatch) as err:
            pair.execute("SELECT a FROM t")
        assert len(err.value.fingerprints) == 2
        assert "diverge" in str(err.value)

    def test_reset_clears_both_backends(self):
        pair = self._pair()
        pair.execute("CREATE TABLE t (a INT)")
        pair.reset()
        assert pair.schema().tables == []
        assert pair.secondary.schema().tables == []

    def test_engine_property_exposes_primary(self):
        pair = self._pair()
        assert pair.engine is pair.primary.engine
        assert DifferentialAdapter(
            Sqlite3Adapter(), Sqlite3Adapter()
        ).engine is None
