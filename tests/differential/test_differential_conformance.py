"""Cross-backend conformance suite: golden SQL programs that MiniDB
(faults disabled) and the real SQLite must answer identically.

Each program is a pinned list of statements executed through a
:class:`~repro.differential.pair.DifferentialAdapter`, which compares
the canonical result multiset of every row-returning statement across
the two backends and raises on any difference -- so this suite is both
a check of the differential plumbing and a regression net for the
MiniDB engine itself: a semantic drift from SQLite in joins, subqueries,
NULL handling, aggregates, or DML shows up as a failing program here
before it poisons a fuzzing campaign with false positives.
"""

from __future__ import annotations

import pytest

from repro.differential import build_pair_adapter

# Shared fixtures: a pair of small tables exercised by most programs.
_BASE = [
    "CREATE TABLE t0 (a INT, b INT, s TEXT)",
    "INSERT INTO t0 VALUES (1, 10, 'x'), (2, NULL, 'y'), "
    "(NULL, 30, 'x'), (4, 40, NULL), (2, 20, 'z')",
    "CREATE TABLE t1 (a INT, r REAL)",
    "INSERT INTO t1 VALUES (1, 1.0), (2, 2.5), (NULL, NULL), (5, -3.0)",
]

#: name -> list of statements (DDL/DML interleaved with queries); every
#: row-returning statement is diffed across the backends.
PROGRAMS: dict[str, list[str]] = {
    # -- plain predicates and three-valued logic ------------------------------
    "where_comparison": [*_BASE, "SELECT a, b FROM t0 WHERE a < 3"],
    "where_null_never_matches": [*_BASE, "SELECT * FROM t0 WHERE a = NULL"],
    "where_is_null": [*_BASE, "SELECT a, s FROM t0 WHERE b IS NULL OR s IS NULL"],
    "where_is_not_null": [*_BASE, "SELECT a FROM t0 WHERE a IS NOT NULL"],
    "three_valued_not": [*_BASE, "SELECT a FROM t0 WHERE NOT (a > 2)"],
    "or_with_unknown": [*_BASE, "SELECT a FROM t0 WHERE a > 3 OR b > 25"],
    "between": [*_BASE, "SELECT a FROM t0 WHERE a BETWEEN 1 AND 2"],
    "not_between": [*_BASE, "SELECT a FROM t0 WHERE a NOT BETWEEN 2 AND 10"],
    "in_list": [*_BASE, "SELECT a FROM t0 WHERE a IN (1, 2, 7)"],
    "not_in_list_with_null": [
        *_BASE,
        # 4 NOT IN (1, NULL) is UNKNOWN, not TRUE: only non-members of
        # the non-NULL part with no NULL present would pass.
        "SELECT a FROM t0 WHERE a NOT IN (1, NULL)",
    ],
    "like": [*_BASE, "SELECT s FROM t0 WHERE s LIKE '%x%'"],
    "not_like": [*_BASE, "SELECT s FROM t0 WHERE s NOT LIKE 'y'"],
    "case_searched": [
        *_BASE,
        "SELECT a, CASE WHEN a > 2 THEN 'big' WHEN a IS NULL THEN 'null' "
        "ELSE 'small' END FROM t0",
    ],
    "case_simple": [
        *_BASE,
        "SELECT CASE a WHEN 1 THEN 'one' WHEN 2 THEN 'two' END FROM t0",
    ],
    # -- arithmetic and functions ---------------------------------------------
    "integer_division_truncates": [
        *_BASE,
        "SELECT a, b / a, b % a FROM t0 WHERE a IS NOT NULL AND a != 0",
    ],
    "division_by_zero_is_null": [*_BASE, "SELECT a / 0, a % 0 FROM t0"],
    "mixed_int_real_arith": [*_BASE, "SELECT a + r, a * r FROM t1"],
    "scalar_functions": [
        *_BASE,
        "SELECT LENGTH(s), UPPER(s), LOWER(s) FROM t0 WHERE s IS NOT NULL",
        "SELECT ABS(-4), ABS(r) FROM t1",
        "SELECT COALESCE(b, a, 0), IFNULL(b, -1), NULLIF(a, 2) FROM t0",
    ],
    "cast_roundtrips": [
        *_BASE,
        "SELECT CAST(a AS TEXT), CAST(r AS INTEGER), CAST('12' AS INTEGER) "
        "FROM t1",
    ],
    "concat": [*_BASE, "SELECT s || '_' || s FROM t0 WHERE s IS NOT NULL"],
    # -- joins ------------------------------------------------------------------
    "inner_join": [
        *_BASE,
        "SELECT j0.a, j1.r FROM t0 AS j0 INNER JOIN t1 AS j1 ON j0.a = j1.a",
    ],
    "left_join_null_extension": [
        *_BASE,
        "SELECT j0.a, j1.a FROM t0 AS j0 LEFT JOIN t1 AS j1 ON j0.a = j1.a",
    ],
    "left_join_anti": [
        *_BASE,
        "SELECT j0.a FROM t0 AS j0 LEFT JOIN t1 AS j1 ON j0.a = j1.a "
        "WHERE j1.a IS NULL",
    ],
    "cross_join_count": [
        *_BASE,
        "SELECT COUNT(*) FROM t0 CROSS JOIN t1",
    ],
    "full_join": [
        *_BASE,
        "SELECT j0.a, j1.a FROM t0 AS j0 FULL OUTER JOIN t1 AS j1 "
        "ON j0.a = j1.a",
    ],
    "join_on_inequality": [
        *_BASE,
        "SELECT COUNT(*) FROM t0 AS j0 INNER JOIN t1 AS j1 ON j0.a < j1.a",
    ],
    "self_join": [
        *_BASE,
        "SELECT x.a, y.a FROM t0 AS x INNER JOIN t0 AS y ON x.a = y.a",
    ],
    # -- aggregates --------------------------------------------------------------
    "count_star_vs_column": [*_BASE, "SELECT COUNT(*), COUNT(a), COUNT(b) FROM t0"],
    "sum_avg_min_max": [*_BASE, "SELECT SUM(a), AVG(a), MIN(a), MAX(a) FROM t0"],
    "aggregates_over_empty": [
        *_BASE,
        "SELECT COUNT(*), SUM(a), AVG(a), MIN(a) FROM t0 WHERE a > 100",
    ],
    "distinct_aggregates": [
        *_BASE,
        "SELECT COUNT(DISTINCT a), SUM(DISTINCT a), AVG(DISTINCT a) FROM t0",
    ],
    "group_by": [*_BASE, "SELECT s, COUNT(*), SUM(a) FROM t0 GROUP BY s"],
    "group_by_expression": [
        *_BASE,
        "SELECT COUNT(*) FROM t0 GROUP BY a > 2",
    ],
    "having": [
        *_BASE,
        "SELECT s, COUNT(*) AS n FROM t0 GROUP BY s HAVING COUNT(*) > 1",
    ],
    "select_distinct": [*_BASE, "SELECT DISTINCT a FROM t0"],
    "real_aggregates": [*_BASE, "SELECT SUM(r), AVG(r), MIN(r) FROM t1"],
    # -- subqueries --------------------------------------------------------------
    "scalar_subquery_comparison": [
        *_BASE,
        "SELECT a FROM t0 WHERE a > (SELECT MIN(x.a) FROM t1 AS x)",
    ],
    "exists": [
        *_BASE,
        "SELECT a FROM t0 WHERE EXISTS "
        "(SELECT 1 FROM t1 AS x WHERE x.a = t0.a)",
    ],
    "not_exists": [
        *_BASE,
        "SELECT a FROM t0 WHERE NOT EXISTS "
        "(SELECT 1 FROM t1 AS x WHERE x.a = t0.a)",
    ],
    "in_subquery": [
        *_BASE,
        "SELECT a FROM t0 WHERE a IN (SELECT x.a FROM t1 AS x)",
    ],
    "not_in_subquery_with_null": [
        *_BASE,
        # t1.a contains NULL: NOT IN over it never retrieves rows.
        "SELECT a FROM t0 WHERE a NOT IN (SELECT x.a FROM t1 AS x)",
    ],
    "correlated_scalar_subquery": [
        *_BASE,
        "SELECT a, (SELECT COUNT(*) FROM t1 AS x WHERE x.a = t0.a) FROM t0",
    ],
    "subquery_in_select_list": [
        *_BASE,
        "SELECT a, (SELECT MAX(x.a) FROM t1 AS x) FROM t0 WHERE a = 1",
    ],
    "nested_subqueries": [
        *_BASE,
        "SELECT a FROM t0 WHERE a IN (SELECT x.a FROM t1 AS x WHERE "
        "EXISTS (SELECT 1 FROM t0 AS y WHERE y.a = x.a))",
    ],
    # -- views -------------------------------------------------------------------
    "projection_view": [
        *_BASE,
        "CREATE VIEW v0 (c0) AS SELECT a FROM t0",
        "SELECT c0 FROM v0 WHERE c0 IS NOT NULL",
    ],
    "aggregate_view": [
        *_BASE,
        "CREATE VIEW v1 (c0, c1) AS SELECT s, COUNT(*) FROM t0 GROUP BY s",
        "SELECT * FROM v1",
        "SELECT COUNT(*) FROM v1 WHERE c1 > 1",
    ],
    "view_join": [
        *_BASE,
        "CREATE VIEW v0 (c0) AS SELECT a FROM t0",
        "SELECT COUNT(*) FROM v0 INNER JOIN t1 ON v0.c0 = t1.a",
    ],
    # -- DDL/DML interleavings ----------------------------------------------------
    "insert_then_query": [
        *_BASE,
        "INSERT INTO t1 VALUES (7, 7.5)",
        "SELECT COUNT(*), SUM(x.a) FROM t1 AS x",
    ],
    "update_then_query": [
        *_BASE,
        "UPDATE t0 SET b = 99 WHERE a = 2",
        "SELECT a, b FROM t0",
        "UPDATE t0 SET b = b + 1 WHERE b IS NOT NULL",
        "SELECT SUM(b) FROM t0",
    ],
    "delete_then_query": [
        *_BASE,
        "DELETE FROM t0 WHERE a IS NULL",
        "SELECT COUNT(*) FROM t0",
        "DELETE FROM t0 WHERE s LIKE 'x'",
        "SELECT a, s FROM t0",
    ],
    "index_does_not_change_results": [
        *_BASE,
        "CREATE INDEX ix_t0_1 ON t0 (a)",
        "SELECT a FROM t0 WHERE a BETWEEN 1 AND 4",
        "CREATE INDEX ix_t0_2 ON t0 (s) WHERE s IS NOT NULL",
        "SELECT COUNT(*) FROM t0 WHERE s = 'x'",
    ],
    "multi_row_insert_not_null_atomicity": [
        "CREATE TABLE t2 (a INT NOT NULL)",
        "INSERT INTO t2 VALUES (1), (2)",
        "SELECT COUNT(*) FROM t2",
    ],
    "bool_storage": [
        "CREATE TABLE t3 (f BOOL, n INT)",
        "INSERT INTO t3 VALUES (TRUE, 1), (FALSE, 2), (NULL, 3)",
        "SELECT n FROM t3 WHERE f",
        "SELECT n FROM t3 WHERE NOT f",
        "SELECT f, COUNT(*) FROM t3 GROUP BY f",
    ],
    "bigint_values": [
        "CREATE TABLE t4 (h BIGINT)",
        "INSERT INTO t4 VALUES (8628276060272066657), (-34359738368), (NULL)",
        "SELECT h FROM t4 WHERE h > 0",
        "SELECT COUNT(*), MIN(h), MAX(h) FROM t4",
    ],
}


@pytest.mark.parametrize("name", sorted(PROGRAMS))
def test_conformance(name):
    from repro.adapters.sql_text import is_row_returning

    program = PROGRAMS[name]
    assert any(is_row_returning(sql) for sql in program)
    adapter = build_pair_adapter(("minidb", "sqlite3"))
    adapter.reset()
    for sql in program:
        # The pair adapter raises DifferentialMismatch on any
        # cross-backend result difference (an all-NULL / empty result
        # is still compared -- several programs pin exactly that).
        adapter.execute(sql)
    assert adapter.secondary_skips == 0, "no statement should run one-sided"


def test_programs_cover_target_count():
    # The suite is the regression net for MiniDB-vs-SQLite agreement;
    # keep it from silently shrinking.
    assert len(PROGRAMS) >= 40
