"""Determinism of sharded differential fleets: a fixed seed must
reproduce merged stats signatures and corpus fingerprints exactly, and
a 1-worker fleet must bit-match the serial differential campaign."""

from __future__ import annotations

import pytest

from repro import BugCorpus, FleetConfig, run_fleet
from repro.differential import DifferentialOracle, build_pair_adapter
from repro.runner.campaign import Campaign


def diff_config(**kwargs) -> FleetConfig:
    defaults = dict(
        oracle="differential",
        backend_pair=("minidb", "sqlite3"),
        buggy=True,
        n_tests=200,
        seed=7,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


class TestConfigValidation:
    def test_differential_requires_pair(self):
        with pytest.raises(ValueError):
            FleetConfig(oracle="differential", n_tests=10)

    def test_pair_requires_differential_oracle(self):
        with pytest.raises(ValueError):
            FleetConfig(
                oracle="coddtest",
                backend_pair=("minidb", "sqlite3"),
                n_tests=10,
            )

    def test_unknown_backend_rejected(self):
        with pytest.raises(ValueError):
            FleetConfig(
                oracle="differential",
                backend_pair=("minidb", "duckdb3"),
                n_tests=10,
            )


class TestSerialEquivalence:
    def test_one_worker_fleet_matches_serial_campaign(self):
        serial = Campaign(
            DifferentialOracle(),
            build_pair_adapter(("minidb", "sqlite3"), buggy=True),
            seed=7,
        ).run(n_tests=200)
        fleet = run_fleet(diff_config(workers=1))
        assert fleet.merged.signature() == serial.signature()


class TestFourWorkerDeterminism:
    def test_same_signature_and_corpus_across_invocations(self):
        config = diff_config(workers=4)
        corpus_a = BugCorpus()
        corpus_b = BugCorpus()
        first = run_fleet(config, corpus=corpus_a)
        second = run_fleet(config, corpus=corpus_b)
        assert first.merged.signature() == second.merged.signature()
        assert set(corpus_a.entries) == set(corpus_b.entries)
        # The planted-fault run must actually find divergences for the
        # determinism claim to be non-vacuous.
        assert first.merged.reports

    def test_clean_pair_finds_nothing_any_width(self):
        for workers in (1, 4):
            result = run_fleet(diff_config(buggy=False, workers=workers))
            assert result.merged.reports == []
            assert result.merged.tests == 200

    def test_corpus_entries_record_backend_pair(self):
        corpus = BugCorpus()
        run_fleet(diff_config(workers=2), corpus=corpus)
        assert len(corpus) > 0
        for entry in corpus.entries.values():
            assert entry.backend_pair == ["minidb[sqlite]", "sqlite3"]

    def test_corpus_roundtrip_preserves_backend_pair(self, tmp_path):
        path = str(tmp_path / "diff.jsonl")
        corpus = BugCorpus.open(path)
        run_fleet(diff_config(workers=2), corpus=corpus)
        corpus.save()
        reloaded = BugCorpus.open(path)
        assert set(reloaded.entries) == set(corpus.entries)
        entry = next(iter(reloaded.entries.values()))
        assert entry.backend_pair == ["minidb[sqlite]", "sqlite3"]
