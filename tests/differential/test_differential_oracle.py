"""DifferentialOracle behaviour: clean pairs stay silent, planted
faults are detected, reports carry the backend pair and ground truth."""

from __future__ import annotations

import pytest

from repro.adapters import MiniDBAdapter
from repro.differential import (
    DifferentialAdapter,
    DifferentialOracle,
    build_pair_adapter,
    run_differential_campaign,
)
from repro.dialects import make_engine
from repro.dialects.catalog import FAULTS_BY_ID
from repro.runner.campaign import Campaign


def clean_pair():
    return build_pair_adapter(("minidb", "sqlite3"))


def buggy_pair(fault_id: str | None = None):
    if fault_id is None:
        return build_pair_adapter(("minidb", "sqlite3"), buggy=True)
    primary = MiniDBAdapter(
        make_engine("sqlite", faults=[FAULTS_BY_ID[fault_id]])
    )
    from repro.adapters import Sqlite3Adapter

    return DifferentialAdapter(primary, Sqlite3Adapter())


class TestCleanPair:
    def test_no_false_positives(self):
        stats = Campaign(DifferentialOracle(), clean_pair(), seed=11).run(
            n_tests=300
        )
        assert stats.tests == 300
        assert stats.reports == []

    def test_minidb_vs_minidb_pair(self):
        # Two independent fault-free MiniDB instances agree with each
        # other on the full portable surface (including ANY/ALL, which
        # the sqlite3 pair cannot exercise).
        pair = build_pair_adapter(("minidb", "minidb"))
        stats = Campaign(DifferentialOracle(), pair, seed=3).run(n_tests=200)
        assert stats.reports == []


class TestFaultDetection:
    def test_detects_planted_view_join_fault(self):
        # sqlite_view_join_where force-falses WHERE above view joins:
        # the reference SQLite returns rows MiniDB drops.
        stats = Campaign(
            DifferentialOracle(), buggy_pair("sqlite_view_join_where"), seed=0
        ).run(n_tests=400)
        assert "sqlite_view_join_where" in stats.detected_fault_ids

    def test_reports_carry_backend_pair_and_fingerprints(self):
        stats = Campaign(
            DifferentialOracle(), buggy_pair(), seed=7
        ).run(n_tests=300)
        assert stats.reports
        for report in stats.reports:
            assert report.backend_pair == ("minidb[sqlite]", "sqlite3")
            assert report.oracle == "differential"
            assert "plan" in report.description
            # Replayable program: state DDL precedes the query.
            assert report.statements[0].upper().startswith("CREATE TABLE")

    def test_report_roundtrips_backend_pair(self):
        stats = Campaign(
            DifferentialOracle(), buggy_pair(), seed=7
        ).run(n_tests=300)
        from repro.oracles_base import TestReport

        report = stats.reports[0]
        clone = TestReport.from_dict(report.to_dict())
        assert clone.backend_pair == report.backend_pair
        assert clone.statements == report.statements


class TestFactoryPairEntryPoints:
    def test_campaign_from_adapter_factories(self):
        from repro.adapters import Sqlite3Adapter

        campaign = Campaign.from_adapter_factories(
            DifferentialOracle(),
            (
                lambda: MiniDBAdapter(make_engine("sqlite")),
                Sqlite3Adapter,
            ),
            seed=5,
        )
        assert isinstance(campaign.adapter, DifferentialAdapter)
        stats = campaign.run(n_tests=50)
        assert stats.tests == 50
        assert stats.reports == []

    def test_run_differential_campaign(self):
        from repro.adapters import Sqlite3Adapter

        stats = run_differential_campaign(
            (
                lambda: MiniDBAdapter(make_engine("sqlite")),
                Sqlite3Adapter,
            ),
            n_tests=50,
            seed=5,
        )
        assert stats.oracle == "differential"
        assert stats.tests == 50

    def test_build_pair_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            build_pair_adapter(("minidb", "postgres"))
