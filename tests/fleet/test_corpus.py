"""Bug corpus: fingerprinting, dedup, persistence, resume."""

from repro.fleet import BugCorpus, fingerprint_report, normalize_statement
from repro.fleet.corpus import CorpusEntry
from repro.oracles_base import TestReport as Report  # alias: not a test class


def make_report(statements=None, kind="logic", faults=("f1",), oracle="coddtest"):
    return Report(
        oracle=oracle,
        kind=kind,
        statements=list(statements or ["CREATE TABLE t0 (c0 INT)", "SELECT c0 FROM t0"]),
        description="mismatch: 1 row vs 2 rows",
        fired_faults=frozenset(faults),
    )


class TestNormalization:
    def test_whitespace_and_case_insensitive(self):
        assert normalize_statement("SELECT  *\n FROM t0;") == normalize_statement(
            "select * from t0"
        )

    def test_random_index_names_collapse(self):
        a = normalize_statement("CREATE INDEX ix_t0_123 ON t0 (c0)")
        b = normalize_statement("CREATE INDEX ix_t0_987 ON t0 (c0)")
        assert a == b
        # ...but the indexed table stays part of the identity.
        c = normalize_statement("CREATE INDEX ix_t1_123 ON t1 (c0)")
        assert a != c


class TestFingerprint:
    def test_stable_across_cosmetic_differences(self):
        a = make_report(["SELECT  *  FROM t0"])
        b = make_report(["select * from t0;"])
        assert fingerprint_report(a) == fingerprint_report(b)

    def test_oracle_name_is_not_identity(self):
        # The same witness found by two oracles is one bug.
        a = make_report(oracle="coddtest")
        b = make_report(oracle="norec")
        assert fingerprint_report(a) == fingerprint_report(b)

    def test_kind_statements_and_faults_are_identity(self):
        base = make_report()
        assert fingerprint_report(base) != fingerprint_report(
            make_report(kind="crash")
        )
        assert fingerprint_report(base) != fingerprint_report(
            make_report(statements=["SELECT 1"])
        )
        assert fingerprint_report(base) != fingerprint_report(
            make_report(faults=("f2",))
        )


class TestBugCorpus:
    def test_add_dedupes(self):
        corpus = BugCorpus()
        assert corpus.add(make_report()) is True
        assert corpus.add(make_report()) is False
        assert len(corpus) == 1
        assert corpus.total_seen == 2

    def test_reduce_fn_runs_only_on_first_seen(self):
        calls = []

        def reduce_fn(report):
            calls.append(report)
            return ["SELECT 1"]

        corpus = BugCorpus(reduce_fn=reduce_fn)
        corpus.add(make_report())
        corpus.add(make_report())
        assert len(calls) == 1
        entry = next(iter(corpus.entries.values()))
        assert entry.reduced_statements == ["SELECT 1"]

    def test_by_kind(self):
        corpus = BugCorpus()
        corpus.add(make_report())
        corpus.add(make_report(statements=["SELECT 2"], kind="crash"))
        assert corpus.by_kind == {"logic": 1, "crash": 1}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus(path=path)
        corpus.add(make_report())
        corpus.add(make_report(statements=["SELECT 2"]))

        loaded = BugCorpus.open(path)
        assert len(loaded) == 2
        assert loaded.entries.keys() == corpus.entries.keys()
        entry = next(iter(loaded.entries.values()))
        assert isinstance(entry, CorpusEntry)
        assert entry.description == "mismatch: 1 row vs 2 rows"

    def test_resume_reports_only_new(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        first = BugCorpus.open(path)
        first.add(make_report())
        first.save()

        second = BugCorpus.open(path)
        assert second.add(make_report()) is False  # known from session 1
        assert second.add(make_report(statements=["SELECT 9"])) is True
        assert len(second) == 2

    def test_save_persists_times_seen(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus.open(path)
        corpus.add(make_report())
        corpus.add(make_report())
        corpus.save()
        assert BugCorpus.open(path).total_seen == 2

    def test_fingerprints_are_monotonic_across_sessions(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        seen: set[str] = set()
        for session in range(3):
            corpus = BugCorpus.open(path)
            assert seen <= set(corpus.entries)  # nothing ever disappears
            corpus.add(make_report(statements=[f"SELECT {session}"]))
            corpus.save()
            seen = set(corpus.entries)
        assert len(seen) == 3

    def test_merge_counts_new_entries(self):
        a = BugCorpus()
        a.add(make_report())
        b = BugCorpus()
        b.add(make_report())
        b.add(make_report(statements=["SELECT 2"]))
        assert a.merge(b) == 1
        assert len(a) == 2
        # The shared entry's sighting counters accumulate.
        fp = fingerprint_report(make_report())
        assert a.entries[fp].times_seen == 2
