"""Bug corpus: fingerprinting, dedup, persistence, resume."""

from repro.fleet import BugCorpus, fingerprint_report, normalize_statement
from repro.fleet.corpus import CorpusEntry
from repro.oracles_base import TestReport as Report  # alias: not a test class


def make_report(statements=None, kind="logic", faults=("f1",), oracle="coddtest"):
    return Report(
        oracle=oracle,
        kind=kind,
        statements=list(statements or ["CREATE TABLE t0 (c0 INT)", "SELECT c0 FROM t0"]),
        description="mismatch: 1 row vs 2 rows",
        fired_faults=frozenset(faults),
    )


class TestNormalization:
    def test_whitespace_and_case_insensitive(self):
        assert normalize_statement("SELECT  *\n FROM t0;") == normalize_statement(
            "select * from t0"
        )

    def test_random_index_names_collapse(self):
        a = normalize_statement("CREATE INDEX ix_t0_123 ON t0 (c0)")
        b = normalize_statement("CREATE INDEX ix_t0_987 ON t0 (c0)")
        assert a == b
        # ...but the indexed table stays part of the identity.
        c = normalize_statement("CREATE INDEX ix_t1_123 ON t1 (c0)")
        assert a != c


class TestFingerprint:
    def test_stable_across_cosmetic_differences(self):
        a = make_report(["SELECT  *  FROM t0"])
        b = make_report(["select * from t0;"])
        assert fingerprint_report(a) == fingerprint_report(b)

    def test_oracle_name_is_not_identity(self):
        # The same witness found by two oracles is one bug.
        a = make_report(oracle="coddtest")
        b = make_report(oracle="norec")
        assert fingerprint_report(a) == fingerprint_report(b)

    def test_kind_statements_and_faults_are_identity(self):
        base = make_report()
        assert fingerprint_report(base) != fingerprint_report(
            make_report(kind="crash")
        )
        assert fingerprint_report(base) != fingerprint_report(
            make_report(statements=["SELECT 1"])
        )
        assert fingerprint_report(base) != fingerprint_report(
            make_report(faults=("f2",))
        )


class TestBugCorpus:
    def test_add_dedupes(self):
        corpus = BugCorpus()
        assert corpus.add(make_report()) is True
        assert corpus.add(make_report()) is False
        assert len(corpus) == 1
        assert corpus.total_seen == 2

    def test_reduce_fn_runs_only_on_first_seen(self):
        calls = []

        def reduce_fn(report):
            calls.append(report)
            return ["SELECT 1"]

        corpus = BugCorpus(reduce_fn=reduce_fn)
        corpus.add(make_report())
        corpus.add(make_report())
        assert len(calls) == 1
        entry = next(iter(corpus.entries.values()))
        assert entry.reduced_statements == ["SELECT 1"]

    def test_by_kind(self):
        corpus = BugCorpus()
        corpus.add(make_report())
        corpus.add(make_report(statements=["SELECT 2"], kind="crash"))
        assert corpus.by_kind == {"logic": 1, "crash": 1}

    def test_jsonl_round_trip(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus(path=path)
        corpus.add(make_report())
        corpus.add(make_report(statements=["SELECT 2"]))

        loaded = BugCorpus.open(path)
        assert len(loaded) == 2
        assert loaded.entries.keys() == corpus.entries.keys()
        entry = next(iter(loaded.entries.values()))
        assert isinstance(entry, CorpusEntry)
        assert entry.description == "mismatch: 1 row vs 2 rows"

    def test_resume_reports_only_new(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        first = BugCorpus.open(path)
        first.add(make_report())
        first.save()

        second = BugCorpus.open(path)
        assert second.add(make_report()) is False  # known from session 1
        assert second.add(make_report(statements=["SELECT 9"])) is True
        assert len(second) == 2

    def test_save_persists_times_seen(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus.open(path)
        corpus.add(make_report())
        corpus.add(make_report())
        corpus.save()
        assert BugCorpus.open(path).total_seen == 2

    def test_fingerprints_are_monotonic_across_sessions(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        seen: set[str] = set()
        for session in range(3):
            corpus = BugCorpus.open(path)
            assert seen <= set(corpus.entries)  # nothing ever disappears
            corpus.add(make_report(statements=[f"SELECT {session}"]))
            corpus.save()
            seen = set(corpus.entries)
        assert len(seen) == 3

    def test_provenance_stamped_on_first_seen_only(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus.open(path)
        corpus.add(make_report(), shard_index=2, seed=9, dialect="sqlite")
        # A later sighting from another shard must not overwrite the
        # first-seen provenance.
        corpus.add(make_report(), shard_index=0, seed=9, dialect="sqlite")
        corpus.save()

        (entry,) = BugCorpus.open(path).entries.values()
        assert entry.first_seen_shard == 2
        assert entry.first_seen_seed == 9
        assert entry.dialect == "sqlite"
        assert entry.times_seen == 2

    def test_plan_fingerprint_round_trips(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        corpus = BugCorpus.open(path)
        report = make_report()
        report.plan_fingerprint = "SEL(SCAN(t0))"
        corpus.add(report)
        corpus.save()
        (entry,) = BugCorpus.open(path).entries.values()
        assert entry.plan_fingerprint == "SEL(SCAN(t0))"

    def test_pr1_era_line_without_new_fields_loads(self, tmp_path):
        # The exact PR-1 on-disk shape: none of the post-PR-1 keys.
        import json

        path = tmp_path / "old.jsonl"
        path.write_text(
            json.dumps(
                {
                    "fingerprint": "0123456789abcdef",
                    "oracle": "coddtest",
                    "kind": "logic",
                    "statements": ["SELECT 1"],
                    "description": "old",
                    "fired_faults": ["f1"],
                    "reduced_statements": None,
                    "times_seen": 2,
                }
            )
            + "\n"
        )
        loaded = BugCorpus.open(str(path))
        (entry,) = loaded.entries.values()
        assert entry.backend_pair is None
        assert entry.plan_fingerprint is None
        assert entry.first_seen_shard is None
        assert entry.dialect is None

    def test_sorted_save_is_deterministic(self, tmp_path):
        a = BugCorpus(path=str(tmp_path / "a.jsonl"))
        b = BugCorpus(path=str(tmp_path / "b.jsonl"))
        r1, r2 = make_report(), make_report(statements=["SELECT 2"])
        for report in (r1, r2):
            a.add(report)
        for report in (r2, r1):  # reversed discovery order
            b.add(report)
        a.save(sort=True)
        b.save(sort=True)
        path_a = tmp_path / "a.jsonl"
        path_b = tmp_path / "b.jsonl"
        assert path_a.read_bytes() == path_b.read_bytes()

    def test_merge_counts_new_entries(self):
        a = BugCorpus()
        a.add(make_report())
        b = BugCorpus()
        b.add(make_report())
        b.add(make_report(statements=["SELECT 2"]))
        assert a.merge(b) == 1
        assert len(a) == 2
        # The shared entry's sighting counters accumulate.
        fp = fingerprint_report(make_report())
        assert a.entries[fp].times_seen == 2
