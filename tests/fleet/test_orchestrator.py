"""Fleet orchestration: serial equivalence, determinism, merging,
early stop, corpus integration, and end-to-end resume."""

import pytest

from repro import (
    BugCorpus,
    CoddTestOracle,
    FleetConfig,
    MiniDBAdapter,
    make_engine,
    make_replay_reducer,
    run_campaign,
    run_fleet,
)
from repro.errors import (
    EngineCrash,
    EngineHang,
    InternalError,
    SqlError,
)
from repro.fleet import build_shards


def fleet_config(**kwargs) -> FleetConfig:
    defaults = dict(
        oracle="coddtest", dialect="sqlite", buggy=True, n_tests=150, seed=5
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


class TestConfigValidation:
    def test_requires_budget(self):
        with pytest.raises(ValueError):
            FleetConfig(n_tests=None, seconds=None)

    def test_rejects_unknown_oracle(self):
        with pytest.raises(ValueError):
            FleetConfig(oracle="nope", n_tests=10)

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            FleetConfig(workers=0, n_tests=10)


class TestBuildShards:
    def test_single_worker_keeps_seed_and_budget(self):
        shards = build_shards(fleet_config(workers=1, n_tests=100, seed=9))
        assert len(shards) == 1
        assert shards[0].seed == 9
        assert shards[0].n_tests == 100

    def test_budget_split_sums(self):
        shards = build_shards(fleet_config(workers=3, n_tests=100))
        assert sum(s.n_tests for s in shards) == 100


class TestSerialEquivalence:
    def test_one_worker_fleet_matches_serial_campaign(self):
        adapter = MiniDBAdapter(make_engine("sqlite", with_catalog_faults=True))
        serial = run_campaign(
            CoddTestOracle(), adapter, n_tests=150, seed=5
        )
        fleet = run_fleet(fleet_config(workers=1))
        assert fleet.merged.signature() == serial.signature()


class TestMultiWorker:
    def test_same_seed_same_workers_is_deterministic(self):
        a = run_fleet(fleet_config(workers=2, n_tests=200))
        b = run_fleet(fleet_config(workers=2, n_tests=200))
        assert a.merged.signature() == b.merged.signature()

    def test_merged_counters_are_shard_sums(self):
        result = run_fleet(fleet_config(workers=2, n_tests=200))
        assert result.merged.tests == 200
        assert result.merged.tests == sum(s.tests for s in result.shards)
        assert result.merged.queries_ok == sum(
            s.queries_ok for s in result.shards
        )
        union = set()
        for shard in result.shards:
            union |= shard.unique_plans
        assert result.merged.unique_plans == union

    def test_fleet_wide_max_reports_bounds_merge(self):
        result = run_fleet(
            fleet_config(workers=2, n_tests=4000, max_reports=6)
        )
        assert len(result.merged.reports) <= 6

    def test_worker_failure_streams_error_not_hang(self):
        # A spec whose oracle cannot even be constructed must come back
        # over the queue as an error message, not kill the pool.
        import multiprocessing

        from repro.fleet import ShardSpec
        from repro.fleet import orchestrator as orch

        ctx = multiprocessing.get_context()
        q = ctx.Queue()
        ev = ctx.Event()
        spec = ShardSpec(
            shard_index=0,
            workers=2,
            seed=1,
            n_tests=10,
            seconds=None,
            oracle="coddtest",
            oracle_kwargs={"no_such_kwarg": True},
            dialect="sqlite",
        )
        orch._worker_main(spec, q, ev)
        kind, idx, payload = q.get(timeout=5)
        assert kind == "error"
        assert idx == 0
        assert "no_such_kwarg" in payload


class TestCorpusIntegration:
    def test_dedup_across_shards_and_runs(self):
        config = fleet_config(workers=2, n_tests=300)
        corpus = BugCorpus()
        first = run_fleet(config, corpus=corpus)
        assert len(first.merged.reports) > 0
        unique_after_first = len(corpus)
        assert unique_after_first <= len(first.merged.reports)
        assert len(first.new_fingerprints) == unique_after_first

        # Same fleet again: every report is already fingerprinted.
        second = run_fleet(config, corpus=corpus)
        assert second.new_fingerprints == []
        assert second.duplicate_reports == len(second.merged.reports)
        assert len(corpus) == unique_after_first  # monotonic, no growth

    def test_checkpoint_resume_round_trip(self, tmp_path):
        path = str(tmp_path / "bugs.jsonl")
        config = fleet_config(workers=2, n_tests=300)

        corpus = BugCorpus.open(path)
        first = run_fleet(config, corpus=corpus)
        corpus.save()
        assert len(first.new_fingerprints) > 0

        resumed = BugCorpus.open(path)
        assert set(resumed.entries) == set(corpus.entries)
        second = run_fleet(config, corpus=resumed)
        assert second.new_fingerprints == []
        resumed.save()
        assert set(BugCorpus.open(path).entries) == set(corpus.entries)

    def test_replay_reducer_minimizes_first_seen(self):
        config = fleet_config(workers=1, n_tests=300)
        corpus = BugCorpus(reduce_fn=make_replay_reducer(config))
        run_fleet(config, corpus=corpus)
        assert len(corpus) > 0
        reduced = [
            e for e in corpus.entries.values() if e.reduced_statements
        ]
        assert reduced, "expected at least one reducible bug"
        for entry in reduced:
            assert len(entry.reduced_statements) <= len(entry.statements)

    def test_reducer_unavailable_for_real_dbms(self):
        config = FleetConfig(adapter="sqlite3", n_tests=10)
        assert make_replay_reducer(config) is None


class TestCorpusSink:
    def test_streams_reports_without_double_counting(self):
        # The sink absorbs reports as progress messages arrive and only
        # the remainder when the shard's final stats land -- this is
        # what makes an interrupted fleet keep its bugs.
        from repro.fleet.orchestrator import _CorpusSink
        from repro.oracles_base import TestReport
        from repro.runner.campaign import CampaignStats

        def report(i):
            return TestReport(
                oracle="coddtest",
                kind="logic",
                statements=[f"SELECT {i}"],
                description="d",
            )

        corpus = BugCorpus()
        sink = _CorpusSink(corpus)
        reports = [report(i) for i in range(5)]
        sink.absorb(0, reports[:2])  # first progress message
        sink.absorb(0, reports[2:4])  # second progress message
        final = CampaignStats(oracle="coddtest", reports=reports)
        sink.absorb_remainder(0, final)  # only reports[4] is new
        assert len(corpus) == 5
        assert sink.duplicates == 0
        assert len(sink.new_fingerprints) == 5

    def test_no_corpus_is_a_noop(self):
        from repro.fleet.orchestrator import _CorpusSink
        from repro.runner.campaign import CampaignStats

        sink = _CorpusSink(None)
        sink.absorb_remainder(0, CampaignStats(oracle="coddtest"))
        assert sink.unique is None
        assert sink.new_fingerprints == []


class TestReportsAreReplayable:
    def test_report_statements_rebuild_their_state(self):
        # The corpus persists reports as standalone programs: replaying
        # the statement list on a fresh engine must not hit missing
        # tables (ground-truth faults may legitimately fire).
        result = run_fleet(fleet_config(workers=1, n_tests=300))
        assert result.merged.reports
        for report in result.merged.reports[:5]:
            adapter = MiniDBAdapter(
                make_engine("sqlite", with_catalog_faults=True)
            )
            for sql in report.statements:
                try:
                    adapter.execute(sql)
                except (InternalError, EngineCrash, EngineHang):
                    break  # the injected bug fired: expected
                except SqlError as exc:  # pragma: no cover - failure path
                    pytest.fail(f"report not self-contained: {sql!r}: {exc}")
