"""Shard seed derivation and budget splitting."""

import pytest

from repro.fleet import ShardSpec, derive_shard_seeds, split_tests


class TestDeriveShardSeeds:
    def test_single_worker_passes_seed_through(self):
        # Load-bearing: this is what makes a 1-worker fleet bit-match
        # the serial campaign.
        assert derive_shard_seeds(42, 1) == [42]

    def test_deterministic(self):
        assert derive_shard_seeds(7, 4) == derive_shard_seeds(7, 4)

    def test_shards_get_distinct_seeds(self):
        seeds = derive_shard_seeds(0, 8)
        assert len(set(seeds)) == 8

    def test_different_base_seeds_decorrelate(self):
        assert derive_shard_seeds(1, 4) != derive_shard_seeds(2, 4)

    def test_different_widths_decorrelate(self):
        assert derive_shard_seeds(1, 2)[0] != derive_shard_seeds(1, 3)[0]

    def test_seeds_fit_in_63_bits(self):
        for seed in derive_shard_seeds(123, 16):
            assert 0 <= seed < 2**63

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            derive_shard_seeds(0, 0)


class TestSplitTests:
    def test_exact_split(self):
        assert split_tests(100, 4) == [25, 25, 25, 25]

    def test_remainder_spread_over_leading_shards(self):
        assert split_tests(10, 3) == [4, 3, 3]

    def test_sum_is_preserved(self):
        for n in (1, 7, 100, 2001):
            for w in (1, 2, 3, 8):
                assert sum(split_tests(n, w)) == n

    def test_time_only_budget_passes_through(self):
        assert split_tests(None, 3) == [None, None, None]

    def test_more_workers_than_tests(self):
        assert split_tests(2, 4) == [1, 1, 0, 0]

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            split_tests(10, 0)


class TestShardSpec:
    def test_picklable(self):
        import pickle

        spec = ShardSpec(
            shard_index=1,
            workers=4,
            seed=99,
            n_tests=500,
            seconds=None,
            oracle="coddtest",
            oracle_kwargs={"max_depth": 4},
            dialect="mysql",
            buggy=True,
        )
        assert pickle.loads(pickle.dumps(spec)) == spec
