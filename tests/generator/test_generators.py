"""Tests for the random state / expression / query generators."""

import random

import pytest

from repro.adapters import MiniDBAdapter
from repro.generator import (
    ExprGenerator,
    QueryGenerator,
    StateGenerator,
)
from repro.generator.expr_gen import ScopeColumn
from repro.minidb import ast_nodes as A
from repro.minidb import Engine
from repro.minidb.parser import parse_expression, parse_statement
from repro.minidb.values import SqlType


@pytest.fixture
def prepared():
    rng = random.Random(1234)
    adapter = MiniDBAdapter(Engine())
    schema = StateGenerator(rng).generate(adapter)
    return rng, adapter, schema


class TestStateGenerator:
    def test_generates_non_empty_tables(self, prepared):
        _, adapter, schema = prepared
        assert schema.base_tables
        for table in schema.base_tables:
            rows = adapter.execute(f"SELECT COUNT(*) FROM {table.name}").rows
            assert rows[0][0] >= 1, "paper Figure 1: tables must be non-empty"

    def test_deterministic_for_seed(self):
        def snapshot(seed):
            adapter = MiniDBAdapter(Engine())
            StateGenerator(random.Random(seed)).generate(adapter)
            return {
                name: list(t.rows)
                for name, t in adapter.engine.database.tables.items()
            }

        assert snapshot(7) == snapshot(7)
        assert snapshot(7) != snapshot(8)

    def test_reset_clears_previous_state(self, prepared):
        rng, adapter, _ = prepared
        StateGenerator(rng, max_tables=1).generate(adapter)
        names = set(adapter.engine.database.tables)
        assert names == {"t0"}

    def test_large_ints_reachable(self):
        # BIGINT columns must sometimes hold > 2^31 values (Listing 9).
        found = False
        for seed in range(30):
            adapter = MiniDBAdapter(Engine())
            StateGenerator(random.Random(seed)).generate(adapter)
            for t in adapter.engine.database.tables.values():
                for row in t.rows:
                    if any(isinstance(v, int) and abs(v) > 2**31 for v in row):
                        found = True
        assert found

    def test_strict_mode_avoids_untyped_columns(self):
        adapter = MiniDBAdapter(Engine())
        StateGenerator(random.Random(5), strict_typing=True).generate(adapter)
        for t in adapter.engine.database.tables.values():
            assert all(c.declared_type is not None for c in t.columns)


class TestExprGenerator:
    def _gen(self, schema, **kw):
        return ExprGenerator(random.Random(99), schema, **kw)

    def test_predicates_parse_and_render(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(50):
            out = gen.predicate(scope)
            sql = out.expr.to_sql()
            # One reparse may normalize (e.g. -5 becomes Unary minus);
            # the normalized form must be a fixed point.
            normalized = parse_expression(sql).to_sql()
            assert parse_expression(normalized).to_sql() == normalized

    def test_outer_refs_are_subset_of_scope(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        names = {(c.binding, c.name) for c in scope}
        for _ in range(50):
            out = gen.predicate(scope)
            for ref in out.outer_refs:
                assert (ref.binding, ref.name) in names

    def test_independent_predicates_have_no_refs(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema)
        for _ in range(30):
            out = gen.independent_predicate()
            assert out.independent

    def test_no_subqueries_when_disabled(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema, allow_subqueries=False)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(60):
            out = gen.predicate(scope)
            for node in A.walk(out.expr):
                assert not isinstance(
                    node, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified)
                )

    def test_subquery_predicate_has_subquery_root(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(30):
            out = gen.subquery_predicate(scope)
            has_subquery = any(
                isinstance(n, (A.Exists, A.ScalarSubquery, A.InSubquery, A.Quantified))
                for n in A.walk(out.expr)
            )
            assert has_subquery

    def test_no_any_all_when_unsupported(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema, supports_any_all=False)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(80):
            out = gen.predicate(scope)
            for node in A.walk(out.expr):
                assert not isinstance(node, A.Quantified)

    def test_depth_limit_respected(self, prepared):
        _, _, schema = prepared
        gen = self._gen(schema, max_depth=1, allow_subqueries=False)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(30):
            out = gen.predicate(scope)
            depth = _expr_depth(out.expr)
            assert depth <= 6  # leaf expansion adds a small constant

    def test_no_fractional_float_literals(self, prepared):
        # Paper Section 4.1: fractional floats cause folding false alarms.
        _, _, schema = prepared
        gen = self._gen(schema)
        scope = [ScopeColumn("t0", c.name, c.sql_type) for c in schema.table("t0").columns]
        for _ in range(100):
            out = gen.predicate(scope)
            for node in A.walk(out.expr):
                if isinstance(node, A.Literal) and isinstance(node.value, float):
                    assert node.value.is_integer()


def _expr_depth(expr: A.Expr) -> int:
    children = expr.children()
    if not children:
        return 1
    return 1 + max(_expr_depth(c) for c in children)


class TestQueryGenerator:
    def _qgen(self, rng, schema, **kw):
        expr_gen = ExprGenerator(rng, schema, allow_subqueries=False)
        return QueryGenerator(rng, schema, expr_gen, **kw)

    def test_skeleton_scope_matches_ref(self, prepared):
        rng, _, schema = prepared
        qgen = self._qgen(rng, schema)
        for _ in range(30):
            skeleton = qgen.from_skeleton()
            assert skeleton.scope
            assert len(skeleton.join_kinds) == len(skeleton.relations) - 1

    def test_generated_queries_execute(self, prepared):
        rng, adapter, schema = prepared
        qgen = self._qgen(rng, schema)
        from repro.errors import SqlError

        executed = 0
        for _ in range(40):
            skeleton = qgen.from_skeleton()
            query = qgen.count_query(skeleton, None)
            try:
                rows = adapter.execute(query.to_sql()).rows
            except SqlError:
                continue
            assert len(rows) == 1
            executed += 1
        assert executed > 20

    def test_join_free_ref_strips_on(self, prepared):
        rng, _, schema = prepared
        qgen = self._qgen(rng, schema, max_relations=2)
        for _ in range(40):
            skeleton = qgen.from_skeleton()
            if skeleton.on_join is None:
                continue
            stripped = skeleton.join_free_ref()
            sql = stripped.to_sql()
            assert " ON " not in sql
            assert "CROSS JOIN" in sql

    def test_statements_roundtrip(self, prepared):
        rng, _, schema = prepared
        qgen = self._qgen(rng, schema)
        for _ in range(30):
            skeleton = qgen.from_skeleton()
            query = qgen.star_query(skeleton, None)
            assert parse_statement(query.to_sql()).to_sql() == query.to_sql()
