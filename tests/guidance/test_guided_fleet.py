"""Guided-fleet regression pack: determinism, snapshot exchange, and
checkpoint/resume (the guidance analog of tests/fleet/test_orchestrator).

The load-bearing guarantee: a guided fleet is a pure function of
``(seed, workers, budget)`` -- same seed and worker count produce the
identical arm schedule, coverage map, and bug corpus, because shards
only exchange coverage at deterministic round barriers.
"""

import pytest

from repro import BugCorpus, CoddTestOracle, FleetConfig, run_fleet
from repro.guidance import DEFAULT_ARMS, CoverageMap


def guided_config(**kwargs) -> FleetConfig:
    defaults = dict(
        oracle="coddtest",
        dialect="sqlite",
        buggy=True,
        n_tests=200,
        seed=5,
        guidance="plan-coverage",
        guidance_rounds=3,
    )
    defaults.update(kwargs)
    return FleetConfig(**defaults)


def corpus_essence(corpus: BugCorpus):
    """The scheduling-independent corpus content (provenance stamps and
    first-seen ordering legitimately vary with multi-worker arrival)."""
    return sorted(
        (
            e.fingerprint,
            tuple(e.statements),
            e.kind,
            tuple(sorted(e.fired_faults)),
            e.times_seen,
        )
        for e in corpus.entries.values()
    )


class TestConfigValidation:
    def test_rejects_unknown_guidance_mode(self):
        with pytest.raises(ValueError):
            FleetConfig(n_tests=10, guidance="gradient-descent")

    def test_rejects_zero_rounds(self):
        with pytest.raises(ValueError):
            FleetConfig(n_tests=10, guidance="plan-coverage", guidance_rounds=0)


class TestDeterminism:
    def test_one_worker_guided_run_is_bit_reproducible(self):
        results = [
            run_fleet(guided_config(workers=1), corpus=BugCorpus())
            for _ in range(2)
        ]
        a, b = results
        assert a.merged.signature() == b.merged.signature()
        assert a.arm_schedules == b.arm_schedules
        assert a.coverage.to_dict() == b.coverage.to_dict()

    def test_same_seed_same_workers_same_schedule_coverage_corpus(self):
        def run():
            corpus = BugCorpus()
            result = run_fleet(
                guided_config(workers=2, n_tests=300), corpus=corpus
            )
            return result, corpus

        ra, ca = run()
        rb, cb = run()
        assert ra.arm_schedules == rb.arm_schedules
        assert ra.coverage.to_dict() == rb.coverage.to_dict()
        assert ra.merged.signature() == rb.merged.signature()
        assert corpus_essence(ca) == corpus_essence(cb)

    def test_different_seed_changes_the_schedule(self):
        a = run_fleet(guided_config(workers=1, seed=5))
        b = run_fleet(guided_config(workers=1, seed=6))
        assert a.arm_schedules != b.arm_schedules

    def test_schedule_covers_budget_and_known_arms(self):
        result = run_fleet(guided_config(workers=2, n_tests=300))
        names = {arm.name for arm in DEFAULT_ARMS}
        total = 0
        for schedule in result.arm_schedules:
            total += len(schedule)
            assert set(schedule) <= names
        # One policy decision per attempted test; skipped tests also
        # consume a decision, so the schedule is at least the budget.
        assert total >= 300


class TestCorpusCompleteness:
    def test_every_report_of_every_round_reaches_the_corpus(self):
        # Regression: the corpus sink's per-shard absorption offsets
        # must reset at round barriers -- a stale offset silently
        # dropped every later-round report (18 merged reports could
        # leave only 7 corpus entries).
        from repro import fingerprint_report

        corpus = BugCorpus()
        result = run_fleet(
            guided_config(workers=1, n_tests=300), corpus=corpus
        )
        assert result.merged.reports
        for report in result.merged.reports:
            assert fingerprint_report(report) in corpus.entries
        # And the multi-worker path, where progress messages stream
        # reports ahead of the final remainder absorption.
        corpus2 = BugCorpus()
        result2 = run_fleet(
            guided_config(workers=2, n_tests=300), corpus=corpus2
        )
        for report in result2.merged.reports:
            assert fingerprint_report(report) in corpus2.entries


class TestMaxReports:
    def test_fleet_wide_cap_is_cumulative_across_rounds(self):
        # Later rounds only get the cap *remaining* after earlier
        # rounds, so a guided fleet overshoots by at most the same
        # race window as an unguided one -- never workers x cap anew
        # per round.
        result = run_fleet(
            guided_config(workers=2, n_tests=4000, max_reports=6)
        )
        assert len(result.merged.reports) <= 6
        total = sum(len(s.reports) for s in result.shards)
        assert total <= 6 + 2 * 6  # pre-break remainder + one round's window


class TestSnapshotExchange:
    def test_coverage_map_holds_every_shard_source(self):
        config = guided_config(workers=2, n_tests=300)
        result = run_fleet(config)
        sources = set(result.coverage.plans)
        assert sources == {"5:0/2", "5:1/2"}

    def test_merged_unique_plans_match_campaign_stats(self):
        # Coverage is fed from the same fingerprint stream as
        # CampaignStats.unique_plans; the merged map must agree.
        result = run_fleet(guided_config(workers=2, n_tests=300))
        assert result.coverage.seen_plans() == result.merged.unique_plans

    def test_later_rounds_know_earlier_rounds_plans(self):
        # With one worker the arm summary's new-plan counts sum exactly
        # to the distinct fingerprint count: a plan re-found in a later
        # round is never double-counted as new.
        result = run_fleet(guided_config(workers=1, n_tests=400))
        new_total = sum(new for _, _, new in result.arm_summary)
        assert new_total == len(result.coverage.seen_plans())

    def test_cross_shard_duplication_only_within_a_round(self):
        # Two shards may both mint the same fingerprint inside one
        # round (exchange happens at barriers, not per test), so the
        # summed new-plan count can exceed the distinct count -- but
        # never the other way around.
        result = run_fleet(guided_config(workers=2, n_tests=400))
        new_total = sum(new for _, _, new in result.arm_summary)
        assert new_total >= len(result.coverage.seen_plans())


class TestCheckpointResume:
    def test_coverage_checkpoint_round_trips_through_disk(self, tmp_path):
        path = str(tmp_path / "coverage.json")
        first = run_fleet(guided_config(workers=1))
        first.coverage.save(path)
        loaded = CoverageMap.load(path)
        assert loaded.to_dict() == first.coverage.to_dict()

    def test_resumed_fleet_grows_coverage_monotonically(self, tmp_path):
        path = str(tmp_path / "coverage.json")
        corpus_path = str(tmp_path / "bugs.jsonl")

        corpus = BugCorpus.open(corpus_path)
        first = run_fleet(guided_config(workers=1), corpus=corpus)
        corpus.save()
        first.coverage.save(path)
        plans_before = first.coverage.seen_plans()
        entries_before = set(corpus.entries)

        resumed_corpus = BugCorpus.open(corpus_path)
        resumed = run_fleet(
            guided_config(workers=1, seed=99),
            corpus=resumed_corpus,
            coverage=CoverageMap.load(path),
        )
        # The resumed run merges on top of the checkpoint: nothing lost.
        assert plans_before <= resumed.coverage.seen_plans()
        assert entries_before <= set(resumed_corpus.entries)

    def test_same_seed_resume_gets_its_own_counter_sources(self, tmp_path):
        # A run resumed from a non-empty checkpoint makes different
        # decisions (its novelty set starts from the checkpoint), so
        # its counters must not max-merge into the first run's sources
        # -- otherwise fault sightings would undercount and saturation
        # would never trigger.  Same seed, resumed: epoch-suffixed
        # sources, and global fault counts sum across the two runs.
        first = run_fleet(guided_config(workers=1))
        resumed = run_fleet(
            guided_config(workers=1),
            coverage=CoverageMap.from_dict(first.coverage.to_dict()),
        )
        plain = {s for s in resumed.coverage.plans if "@" not in s}
        epoch = {s for s in resumed.coverage.plans if "@" in s}
        assert plain == {"5:0/1"} and len(epoch) == 1
        first_faults = first.coverage.global_fault_counts()
        resumed_faults = resumed.coverage.global_fault_counts()
        assert sum(resumed_faults.values()) > sum(first_faults.values())

    def test_rerunning_the_same_fleet_merges_idempotently(self, tmp_path):
        # Re-running the identical guided fleet on its own checkpoint
        # re-derives the same per-source counters; the CRDT join leaves
        # the checkpoint unchanged (same sources, elementwise max).
        config = guided_config(workers=1)
        first = run_fleet(config)
        again = run_fleet(config, coverage=CoverageMap.load("/nonexistent"))
        merged = CoverageMap.merge(first.coverage, again.coverage)
        assert merged.to_dict() == first.coverage.to_dict()


class TestGuidanceEffect:
    def test_guided_finds_at_least_as_many_plans_as_uniform(self):
        # The headline claim at small scale: equal budget, same seed,
        # guided >= uniform on distinct plan fingerprints.  At 300
        # tests the margin is seed-dependent (the full-scale claim is
        # pinned by benchmarks/test_guidance_efficiency.py); seed 1 has
        # a wide, stable margin.
        uniform = run_fleet(
            FleetConfig(
                oracle="coddtest", dialect="sqlite", buggy=True,
                workers=1, seed=1, n_tests=300,
            )
        )
        guided = run_fleet(guided_config(workers=1, seed=1, n_tests=300))
        assert len(guided.merged.unique_plans) >= len(
            uniform.merged.unique_plans
        )

    def test_unguided_fleet_reports_no_guidance_artifacts(self):
        result = run_fleet(
            FleetConfig(oracle="coddtest", n_tests=50, seed=1)
        )
        assert result.coverage is None
        assert result.arm_schedules is None
        assert result.arm_summary == []
