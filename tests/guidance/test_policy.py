"""GuidedPolicy unit behaviour: selection, rewards, knob application,
state round-trips."""

import random

from repro import CoddTestOracle, MiniDBAdapter, make_engine
from repro.guidance import (
    DEFAULT_ARMS,
    Arm,
    CoverageMap,
    GuidedPolicy,
    policy_seed,
)
from repro.oracles_base import TestOutcome as Outcome


def outcome(fp=None, faults=(), status="ok"):
    return Outcome(
        status=status, fingerprint=fp, fired_faults=frozenset(faults)
    )


class TestSelection:
    def test_first_pulls_cycle_arms_in_order(self):
        policy = GuidedPolicy(seed=1, source="s0")
        first = []
        for _ in DEFAULT_ARMS:
            first.append(policy.begin_test().name)
            policy.observe(outcome())
        assert first == [arm.name for arm in DEFAULT_ARMS]

    def test_schedule_is_deterministic_in_seed(self):
        def schedule(seed):
            policy = GuidedPolicy(seed=seed, source="s0")
            out = []
            rng = random.Random(99)  # same synthetic outcomes either run
            for i in range(120):
                out.append(policy.begin_test().name)
                fp = f"plan{rng.randrange(30)}"
                policy.observe(outcome(fp))
            return out

        assert schedule(5) == schedule(5)
        assert schedule(5) != schedule(6)  # seeded exploration differs

    def test_rewarding_an_arm_attracts_budget(self):
        policy = GuidedPolicy(seed=0, source="s0")
        lucky = DEFAULT_ARMS[2].name
        counter = 0
        for _ in range(300):
            arm = policy.begin_test()
            if arm.name == lucky:
                counter += 1
                policy.observe(outcome(f"new{counter}"))  # always novel
            else:
                policy.observe(outcome("old"))  # never novel
        pulls = {name: s.pulls for name, s in policy.stats.items()}
        assert pulls[lucky] == max(pulls.values())
        assert pulls[lucky] > 300 // len(DEFAULT_ARMS)

    def test_saturated_faults_penalize_arm(self):
        policy = GuidedPolicy(
            seed=0, source="s0", saturated=frozenset({"f1"})
        )
        arm = policy.begin_test()
        policy.observe(outcome("p1", faults={"f1"}))  # novel: no penalty
        assert policy.stats[arm.name].reward == 1.0
        arm = policy.begin_test()
        policy.observe(outcome("p1", faults={"f1"}))  # stale + saturated
        assert policy.stats[arm.name].reward < 0.0


class TestObservation:
    def test_known_plans_are_not_novel(self):
        policy = GuidedPolicy(seed=0, source="s0", known_plans={"k"})
        arm = policy.begin_test()
        policy.observe(outcome("k"))
        assert policy.stats[arm.name].reward == 0.0
        arm2 = policy.begin_test()
        policy.observe(outcome("fresh"))
        assert policy.stats[arm2.name].reward == 1.0

    def test_coverage_records_plans_faults_arms(self):
        policy = GuidedPolicy(seed=0, source="src")
        policy.begin_test()
        policy.observe(outcome("p", faults={"f"}))
        assert policy.coverage.plans == {"src": {"p": 1}}
        assert policy.coverage.faults == {"src": {"f": 1}}
        (arm, pulls, new),  = policy.coverage.arm_summary()
        assert (pulls, new) == (1, 1)


class TestStateRoundTrip:
    def test_resumed_policy_continues_the_same_schedule(self):
        reference = GuidedPolicy(seed=11, source="s0")
        resumed = GuidedPolicy(seed=11, source="s0")
        fps = [f"p{i % 17}" for i in range(50)]  # same stream both sides

        for i, fp in enumerate(fps):
            ref_arm = reference.begin_test().name
            res_arm = resumed.begin_test().name
            assert ref_arm == res_arm
            reference.observe(outcome(fp))
            resumed.observe(outcome(fp))
            if i % 7 == 0:  # round-trip mid-run (round barrier)
                resumed = GuidedPolicy.from_state(resumed.to_state())
        assert reference.schedule == resumed.schedule
        assert reference.to_state() == resumed.to_state()

    def test_state_is_json_compatible(self):
        import json

        policy = GuidedPolicy(seed=3, source="s0")
        for _ in range(10):
            policy.begin_test()
            policy.observe(outcome("p", faults={"f"}))
        rehydrated = GuidedPolicy.from_state(
            json.loads(json.dumps(policy.to_state()))
        )
        assert rehydrated.to_state() == policy.to_state()
        # And it still selects (the rng state survived the round-trip).
        assert rehydrated.begin_test().name == policy.begin_test().name


class TestKnobApplication:
    def test_arm_pushes_knobs_onto_live_generators(self):
        oracle = CoddTestOracle()
        adapter = MiniDBAdapter(make_engine("sqlite"))
        adapter.execute("CREATE TABLE t0 (a INT)")
        adapter.execute("INSERT INTO t0 VALUES (1)")
        oracle.prepare(adapter, adapter.schema(), random.Random(0))
        arm = Arm(
            "test", max_depth=7, max_relations=3,
            subquery_weight=2.0, aggregate_weight=3.0, join_weight=1.5,
        )
        arm.apply(oracle)
        assert oracle.max_depth == 7
        assert oracle.expr_gen.max_depth == 7
        assert oracle.expr_gen.subquery_weight == 2.0
        assert oracle.expr_gen.aggregate_weight == 3.0
        assert oracle.query_gen.max_relations == 3
        assert oracle.query_gen.join_weight == 1.5

    def test_portable_baseline_is_never_widened(self):
        oracle = CoddTestOracle()
        adapter = MiniDBAdapter(make_engine("sqlite"))
        adapter.execute("CREATE TABLE t0 (a INT)")
        adapter.execute("INSERT INTO t0 VALUES (1)")
        oracle.prepare(adapter, adapter.schema(), random.Random(0))
        oracle.expr_gen.portable = True  # as a differential pair would
        oracle.query_gen.portable = True
        Arm("plain").apply(oracle)  # portable=False must not widen
        assert oracle.expr_gen.portable is True
        Arm("p", portable=True).apply(oracle)
        assert oracle.expr_gen.portable is True
        assert oracle.query_gen.portable is True
        Arm("plain2").apply(oracle)
        assert oracle.expr_gen.portable is True  # baseline, not widened

    def test_portable_does_not_leak_into_the_next_arm(self):
        # A portable-dialect pull must not leave later pulls of other
        # arms generating in portable mode (reward mis-crediting).
        oracle = CoddTestOracle()
        adapter = MiniDBAdapter(make_engine("sqlite"))
        adapter.execute("CREATE TABLE t0 (a INT)")
        adapter.execute("INSERT INTO t0 VALUES (1)")
        oracle.prepare(adapter, adapter.schema(), random.Random(0))
        Arm("p", portable=True).apply(oracle)
        assert oracle.expr_gen.portable is True
        Arm("plain").apply(oracle)
        assert oracle.expr_gen.portable is False
        assert oracle.query_gen.portable is False

    def test_uniform_arm_restores_the_configured_baseline(self):
        # Arms are deltas from the campaign's configuration: a user's
        # oracle_kwargs max_depth survives uniform pulls, and an arm
        # override is undone by the next uniform pull.
        oracle = CoddTestOracle(max_depth=6)
        adapter = MiniDBAdapter(make_engine("sqlite"))
        adapter.execute("CREATE TABLE t0 (a INT)")
        adapter.execute("INSERT INTO t0 VALUES (1)")
        oracle.prepare(adapter, adapter.schema(), random.Random(0))
        uniform = DEFAULT_ARMS[0]
        uniform.apply(oracle)
        assert oracle.max_depth == 6
        assert oracle.expr_gen.max_depth == 6
        Arm("deep", max_depth=9, max_relations=3).apply(oracle)
        assert oracle.expr_gen.max_depth == 9
        assert oracle.query_gen.max_relations == 3
        uniform.apply(oracle)
        assert oracle.expr_gen.max_depth == 6
        assert oracle.query_gen.max_relations == 2  # constructor default

    def test_uniform_arm_is_the_unguided_configuration(self):
        uniform = DEFAULT_ARMS[0]
        assert uniform.name == "uniform"
        assert uniform.max_depth is None  # = campaign baseline
        assert uniform.max_relations is None
        assert uniform.subquery_weight == 1.0
        assert uniform.aggregate_weight == 1.0
        assert uniform.join_weight == 1.0
        assert uniform.portable is False


class TestPolicySeed:
    def test_decorrelated_from_generation_stream(self):
        assert policy_seed(5) != 5
        assert policy_seed(5) == policy_seed(5)
        assert policy_seed(5) != policy_seed(6)


class TestCoverageViews:
    def test_saturated_faults_threshold(self):
        cov = CoverageMap()
        for _ in range(5):
            cov.record_fault("a", "f_hot")
        cov.record_fault("b", "f_hot", n=5)
        cov.record_fault("a", "f_cold")
        assert cov.saturated_faults(10) == {"f_hot"}
        assert cov.saturated_faults(11) == frozenset()
        assert cov.saturated_faults(1) == {"f_hot", "f_cold"}

    def test_checkpoint_round_trip(self, tmp_path):
        cov = CoverageMap()
        cov.record_plan("s0", "p1")
        cov.record_arm("s0", "uniform", new_plan=True)
        path = str(tmp_path / "coverage.json")
        cov.save(path)
        assert CoverageMap.load(path).to_dict() == cov.to_dict()
        assert CoverageMap.load(str(tmp_path / "nope.json")).to_dict() == \
            CoverageMap().to_dict()
