"""INSERT/UPDATE/DELETE and DDL semantics."""

import pytest

from repro.errors import CatalogError, SqlError, ValueError_
from repro.minidb import Engine, EngineProfile, TypingMode


@pytest.fixture
def engine():
    e = Engine()
    e.execute("CREATE TABLE t (a INT, b TEXT)")
    return e


class TestInsert:
    def test_insert_values(self, engine):
        r = engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        assert r.rows_affected == 2
        assert engine.execute("SELECT * FROM t").rows == [(1, "x"), (2, "y")]

    def test_insert_column_subset_fills_null(self, engine):
        engine.execute("INSERT INTO t (a) VALUES (5)")
        assert engine.execute("SELECT * FROM t").rows == [(5, None)]

    def test_insert_select(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        engine.execute("CREATE TABLE t2 (a INT, b TEXT)")
        r = engine.execute("INSERT INTO t2 SELECT * FROM t")
        assert r.rows_affected == 1
        assert engine.execute("SELECT * FROM t2").rows == [(1, "x")]

    def test_insert_width_mismatch(self, engine):
        with pytest.raises(ValueError_):
            engine.execute("INSERT INTO t (a) VALUES (1, 2)")

    def test_not_null_violation(self, engine):
        engine.execute("CREATE TABLE nn (x INT NOT NULL)")
        with pytest.raises(ValueError_):
            engine.execute("INSERT INTO nn VALUES (NULL)")

    def test_integer_affinity(self, engine):
        engine.execute("INSERT INTO t (a) VALUES (2.0)")
        value = engine.execute("SELECT a FROM t").rows[0][0]
        assert value == 2 and isinstance(value, int)

    def test_text_affinity(self, engine):
        engine.execute("INSERT INTO t (b) VALUES (12)")
        assert engine.execute("SELECT b FROM t").rows == [("12",)]

    def test_insert_expression_values(self, engine):
        engine.execute("INSERT INTO t (a) VALUES (1 + 2 * 3)")
        assert engine.execute("SELECT a FROM t").rows == [(7,)]


class TestUpdate:
    def test_update_all(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        r = engine.execute("UPDATE t SET a = a + 10")
        assert r.rows_affected == 2
        assert engine.execute("SELECT a FROM t").rows == [(11,), (12,)]

    def test_update_where(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        r = engine.execute("UPDATE t SET b = 'z' WHERE a = 2")
        assert r.rows_affected == 1
        assert engine.execute("SELECT b FROM t ORDER BY a").rows == [("x",), ("z",)]

    def test_update_sees_old_values(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        engine.execute("UPDATE t SET a = a + 1, b = a")
        # Both assignments evaluate against the pre-update row.
        assert engine.execute("SELECT a, b FROM t").rows == [(2, "1")]

    def test_update_null_predicate_matches_nothing(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x')")
        r = engine.execute("UPDATE t SET a = 0 WHERE NULL")
        assert r.rows_affected == 0

    def test_update_not_null_violation(self, engine):
        engine.execute("CREATE TABLE nn (x INT NOT NULL)")
        engine.execute("INSERT INTO nn VALUES (1)")
        with pytest.raises(ValueError_):
            engine.execute("UPDATE nn SET x = NULL")


class TestDelete:
    def test_delete_all(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        r = engine.execute("DELETE FROM t")
        assert r.rows_affected == 2
        assert engine.execute("SELECT * FROM t").rows == []

    def test_delete_where(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        r = engine.execute("DELETE FROM t WHERE a = 1")
        assert r.rows_affected == 1
        assert engine.execute("SELECT a FROM t").rows == [(2,)]

    def test_delete_with_subquery_predicate(self, engine):
        engine.execute("INSERT INTO t VALUES (1, 'x'), (2, 'y')")
        engine.execute("DELETE FROM t WHERE a = (SELECT MAX(a) FROM t)")
        assert engine.execute("SELECT a FROM t").rows == [(1,)]


class TestDdl:
    def test_duplicate_table_rejected(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE TABLE t (x INT)")

    def test_if_not_exists(self, engine):
        engine.execute("CREATE TABLE IF NOT EXISTS t (x INT)")  # no error

    def test_duplicate_column_rejected(self, engine):
        with pytest.raises(SqlError):
            engine.execute("CREATE TABLE bad (x INT, x TEXT)")

    def test_drop_table(self, engine):
        engine.execute("DROP TABLE t")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM t")

    def test_drop_missing_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("DROP TABLE missing")
        engine.execute("DROP TABLE IF EXISTS missing")  # tolerated

    def test_drop_table_drops_its_indexes(self, engine):
        engine.execute("CREATE INDEX ix ON t (a)")
        engine.execute("DROP TABLE t")
        engine.execute("CREATE TABLE t (a INT)")
        engine.execute("CREATE INDEX ix ON t (a)")  # name free again

    def test_create_index_unknown_column(self, engine):
        with pytest.raises(SqlError):
            engine.execute("CREATE INDEX ix ON t (nope)")

    def test_create_index_unknown_table(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE INDEX ix ON missing (a)")

    def test_indexed_by_requires_matching_table(self, engine):
        engine.execute("CREATE TABLE u (z INT)")
        engine.execute("CREATE INDEX ixu ON u (z)")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM t INDEXED BY ixu")

    def test_view_validates_at_creation(self, engine):
        with pytest.raises(CatalogError):
            engine.execute("CREATE VIEW v AS SELECT nothere FROM missing")

    def test_view_column_count_mismatch(self, engine):
        with pytest.raises(SqlError):
            engine.execute("CREATE VIEW v (a, b) AS SELECT 1")

    def test_drop_view(self, engine):
        engine.execute("CREATE VIEW v AS SELECT 1")
        engine.execute("DROP VIEW v")
        with pytest.raises(CatalogError):
            engine.execute("SELECT * FROM v")


class TestStrictAffinity:
    def test_strict_boolean_column(self):
        e = Engine(EngineProfile(typing_mode=TypingMode.STRICT))
        e.execute("CREATE TABLE t (f BOOL)")
        e.execute("INSERT INTO t VALUES (TRUE)")
        with pytest.raises(ValueError_):
            e.execute("INSERT INTO t VALUES (3)")

    def test_strict_integer_from_text_rejected(self):
        e = Engine(EngineProfile(typing_mode=TypingMode.STRICT))
        e.execute("CREATE TABLE t (a INT)")
        with pytest.raises(ValueError_):
            e.execute("INSERT INTO t VALUES ('abc')")
