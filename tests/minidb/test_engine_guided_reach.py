"""Engine semantics the guided generator now reaches routinely.

The plan-coverage arms raise MaxDepth, relation count, and subquery /
aggregate weights, so guided campaigns hit two regions the uniform
suite under-pinned: correlated subqueries *under* aggregate functions
and three-way join trees.  Every program here is seeded from real
generator output (ExprGenerator(max_depth=5, subquery_weight=2.5,
aggregate_weight=3.0) + QueryGenerator(max_relations=3,
join_weight=2.5), seed 42, on the fixture schema below) or a minimal
hand-reduction of one; expected rows were cross-checked against the
real SQLite.  Where the stdlib SQLite is new enough the agreement is
re-asserted live (FULL OUTER JOIN needs SQLite >= 3.39).
"""

import sqlite3

import pytest

from repro.minidb import Engine
from repro.oracles_base import canonical

SETUP = [
    "CREATE TABLE t0 (a INT, b INT, c TEXT)",
    "INSERT INTO t0 VALUES (1, 2, 'a'), (2, NULL, 'b'), "
    "(3, 2, 'abc'), (NULL, 5, 'x')",
    "CREATE TABLE t1 (a INT, d INT)",
    "INSERT INTO t1 VALUES (1, 10), (2, 20), (2, 30), (4, NULL)",
    "CREATE TABLE t2 (e INT)",
    "INSERT INTO t2 VALUES (2), (3), (NULL)",
]

SQLITE_HAS_FULL_JOIN = sqlite3.sqlite_version_info >= (3, 39, 0)


def run_minidb(sql):
    engine = Engine()
    for stmt in SETUP:
        engine.execute(stmt)
    rows = canonical(engine.execute(sql).rows)
    return [
        tuple(int(v) if isinstance(v, bool) else v for v in row)
        for row in rows
    ]


def run_sqlite(sql):
    conn = sqlite3.connect(":memory:")
    for stmt in SETUP:
        conn.execute(stmt)
    return canonical([tuple(r) for r in conn.execute(sql).fetchall()])


def check(sql, expected, *, needs_full_join=False):
    got = run_minidb(sql)
    assert got == expected, sql
    if not needs_full_join or SQLITE_HAS_FULL_JOIN:
        assert run_sqlite(sql) == expected, f"sqlite disagrees: {sql}"


class TestCorrelatedSubqueriesUnderAggregates:
    def test_count_star_subquery_under_sum(self):
        check(
            "SELECT SUM((SELECT COUNT(*) FROM t1 WHERE t1.a = t0.a)) FROM t0",
            [(3,)],
        )

    def test_sum_subquery_under_max(self):
        check(
            "SELECT MAX((SELECT SUM(d) FROM t1 WHERE t1.a = t0.b)) FROM t0",
            [(50,)],
        )

    def test_count_skips_null_subquery_results(self):
        # Only t0.a = 1 yields a non-NULL MIN; empty and all-NULL inner
        # sets fold to NULL and must not be counted.
        check(
            "SELECT COUNT((SELECT MIN(t1.d) FROM t1 WHERE t1.a > t0.a)) "
            "FROM t0",
            [(1,)],
        )

    def test_correlated_aggregate_argument_under_group_by(self):
        check(
            "SELECT t0.b, SUM((SELECT COUNT(*) FROM t1 WHERE t1.a = t0.a)) "
            "FROM t0 GROUP BY t0.b",
            [(None, 2), (2, 1), (5, 0)],
        )

    def test_correlated_aggregate_in_having(self):
        check(
            "SELECT t0.b FROM t0 GROUP BY t0.b "
            "HAVING SUM((SELECT COUNT(*) FROM t1 WHERE t1.a = t0.b)) > 0",
            [(2,)],
        )

    def test_avg_over_correlated_counts_with_null_correlation(self):
        # t0.a = NULL makes the correlated predicate unknown for every
        # inner row: COUNT(*) over the empty match is 0, and the NULL
        # outer row still contributes that 0 to the AVG.
        check(
            "SELECT AVG((SELECT COUNT(*) FROM t1 WHERE t1.d > t0.a * 5)) "
            "FROM t0",
            [(1.75,)],
        )

    def test_generated_concat_of_aggregate_subqueries(self):
        # Verbatim generator output (seed 42): two aggregate subqueries,
        # one with the Listing-1 GROUP-BY-not-in-result shape, fed into
        # a comparison against a correlated COUNT.
        check(
            "SELECT COUNT(*) FROM t1 WHERE (((SELECT SUM(sq14.a) FROM t1 "
            "AS sq14 WHERE (CASE sq14.a WHEN 8 THEN FALSE END)) || "
            "(SELECT COUNT((sq15.b + 1)) FROM t0 AS sq15 WHERE "
            "(sq15.b <= 2) GROUP BY (1 > sq15.b))) < (SELECT "
            "COUNT(sq16.a) FROM t1 AS sq16 WHERE (t1.a != sq16.d)))",
            [(0,)],
        )


class TestThreeWayJoins:
    def test_inner_then_left_chain(self):
        check(
            "SELECT * FROM t0 AS j0 INNER JOIN t1 AS j1 ON j0.a = j1.a "
            "LEFT JOIN t2 AS j2 ON j1.d = j2.e",
            [
                (1, 2, "a", 1, 10, None),
                (2, None, "b", 2, 20, None),
                (2, None, "b", 2, 30, None),
            ],
        )

    def test_left_left_chain_with_null_probe(self):
        # NULL-extended rows of the first LEFT JOIN must stay
        # NULL-extended through the second.
        check(
            "SELECT * FROM t2 AS j0 LEFT JOIN t1 AS j1 ON j0.e = j1.a "
            "LEFT JOIN t0 AS j2 ON j1.d = j2.b WHERE j2.c IS NULL",
            [
                (None, None, None, None, None, None),
                (2, 2, 20, None, None, None),
                (2, 2, 30, None, None, None),
                (3, None, None, None, None, None),
            ],
        )

    def test_generated_left_inner_with_not_exists(self):
        # Verbatim generator output (seed 42): LEFT then INNER with a
        # correlated NOT EXISTS over the middle relation's columns.
        check(
            "SELECT COUNT(*) FROM t0 AS j0 LEFT JOIN t1 AS j1 ON "
            "(j0.a < j1.a) INNER JOIN t2 AS j2 ON (j0.b = j2.e) WHERE "
            "(NOT EXISTS (SELECT sq1.e FROM t2 AS sq1 WHERE "
            "(j1.d = sq1.e)))",
            [(4,)],
        )

    def test_generated_cross_inner_with_correlated_exists(self):
        check(
            "SELECT COUNT(*) FROM t1 AS j0 CROSS JOIN t0 AS j1 INNER "
            "JOIN t2 AS j2 ON (j0.a != j2.e) WHERE (EXISTS (SELECT "
            "sq2.c FROM t0 AS sq2 WHERE (j0.a = sq2.b)))",
            [(8,)],
        )

    def test_left_join_null_rows_dropped_by_inner(self):
        # An INNER join after a LEFT join filters the NULL-extended
        # rows back out when its ON references the left side.
        check(
            "SELECT COUNT(*) FROM t0 AS j0 LEFT JOIN t1 AS j1 ON "
            "j0.a = j1.a INNER JOIN t2 AS j2 ON j0.b = j2.e",
            # Only b=2 rows survive the INNER probe: (1,2,'a') with its
            # single t1 match and the NULL-extended (3,2,'abc') row.
            [(2,)],
        )

    def test_generated_full_then_left_true_on(self):
        # Verbatim generator output (seed 42): FULL OUTER then LEFT
        # JOIN ON TRUE; the float comparison against an INT column.
        check(
            "SELECT COUNT(*) FROM t1 AS j0 FULL OUTER JOIN t0 AS j1 ON "
            "(j0.a = j1.a) LEFT JOIN t2 AS j2 ON TRUE WHERE "
            "(j1.b = -5.0)",
            [(0,)],
            needs_full_join=True,
        )

    def test_full_outer_preserves_both_unmatched_sides(self):
        check(
            "SELECT COUNT(*) FROM t0 AS j0 FULL OUTER JOIN t2 AS j1 ON "
            "j0.a = j1.e INNER JOIN t1 AS j2 ON TRUE",
            # 4 t0-rows (2 matched, 2 unmatched) + 1 unmatched t2 row
            # (NULL e never matches) -> 5 pairs x 4 t1 rows.
            [(20,)],
            needs_full_join=True,
        )


class TestHighDepthKnobsStayConsistent:
    @pytest.mark.parametrize("depth", [5, 8])
    def test_deep_guided_expressions_execute_or_skip_cleanly(self, depth):
        # Smoke over real guided-knob generator output in portable mode
        # (the portable-dialect arm: mixed-type comparisons, where the
        # relaxed profile intentionally diverges from SQLite, stay
        # excluded): every generated COUNT query either executes on
        # both engines with equal results or errors on one -- no silent
        # result divergence in the newly reachable region.
        import random

        from repro.adapters.minidb_adapter import MiniDBAdapter
        from repro.generator.expr_gen import ExprGenerator
        from repro.generator.query_gen import QueryGenerator

        engine = Engine()
        adapter = MiniDBAdapter(engine)
        for stmt in SETUP:
            adapter.execute(stmt)
        schema = adapter.schema()
        rng = random.Random(7)
        expr_gen = ExprGenerator(
            rng, schema, max_depth=depth, portable=True, strict_typing=True
        )
        expr_gen.subquery_weight = 2.5
        expr_gen.aggregate_weight = 3.0
        query_gen = QueryGenerator(
            rng, schema, expr_gen, max_relations=3, portable=True
        )
        query_gen.join_weight = 2.5

        checked = 0
        for _ in range(60):
            skeleton = query_gen.from_skeleton()
            phi = expr_gen.predicate(skeleton.scope)
            sql = query_gen.count_query(skeleton, phi.expr).to_sql()
            if "FULL OUTER" in sql and not SQLITE_HAS_FULL_JOIN:
                continue
            try:
                mini_rows = run_minidb(sql)
                mini_err = None
            except Exception as exc:
                mini_rows, mini_err = None, exc
            try:
                lite_rows = run_sqlite(sql)
                lite_err = None
            except Exception as exc:
                lite_rows, lite_err = None, exc
            if mini_err is not None or lite_err is not None:
                continue  # dialect-specific rejection; not this suite's job
            assert mini_rows == lite_rows, sql
            checked += 1
        assert checked >= 20
