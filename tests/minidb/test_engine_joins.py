"""JOIN semantics, including the outer-join/NULL interactions the paper's
Listing 4 and Listing 8 bugs depend on."""

import pytest

from repro.minidb import Engine


@pytest.fixture
def engine():
    e = Engine()
    e.execute("CREATE TABLE a (x INT)")
    e.execute("CREATE TABLE b (y INT)")
    e.execute("INSERT INTO a VALUES (1), (2), (3)")
    e.execute("INSERT INTO b VALUES (2), (3), (4)")
    return e


def rows(engine, sql):
    return engine.execute(sql).rows


class TestInnerAndCross:
    def test_inner_join(self, engine):
        got = rows(engine, "SELECT * FROM a INNER JOIN b ON a.x = b.y")
        assert sorted(got) == [(2, 2), (3, 3)]

    def test_cross_join_cardinality(self, engine):
        got = rows(engine, "SELECT * FROM a CROSS JOIN b")
        assert len(got) == 9

    def test_comma_join_equals_cross(self, engine):
        got = rows(engine, "SELECT * FROM a, b")
        assert len(got) == 9

    def test_inner_join_true_on(self, engine):
        got = rows(engine, "SELECT * FROM a JOIN b ON TRUE")
        assert len(got) == 9

    def test_inner_join_false_on(self, engine):
        assert rows(engine, "SELECT * FROM a JOIN b ON FALSE") == []

    def test_inner_join_null_on_excludes(self, engine):
        assert rows(engine, "SELECT * FROM a JOIN b ON NULL") == []


class TestOuterJoins:
    def test_left_join_null_extends(self, engine):
        got = rows(engine, "SELECT * FROM a LEFT JOIN b ON a.x = b.y")
        assert sorted(got, key=str) == sorted(
            [(1, None), (2, 2), (3, 3)], key=str
        )

    def test_left_join_where_is_null(self, engine):
        # Paper Listing 4: the anti-join pattern.
        got = rows(
            engine, "SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE b.y IS NULL"
        )
        assert got == [(1, None)]

    def test_right_join(self, engine):
        got = rows(engine, "SELECT * FROM a RIGHT JOIN b ON a.x = b.y")
        assert sorted(got, key=str) == sorted(
            [(2, 2), (3, 3), (None, 4)], key=str
        )

    def test_full_join(self, engine):
        got = rows(engine, "SELECT * FROM a FULL OUTER JOIN b ON a.x = b.y")
        assert len(got) == 4
        assert (1, None) in got and (None, 4) in got

    def test_full_join_false_on(self, engine):
        got = rows(engine, "SELECT * FROM a FULL OUTER JOIN b ON FALSE")
        assert len(got) == 6  # 3 left-extended + 3 right-extended

    def test_left_join_multiple_matches(self, engine):
        engine.execute("INSERT INTO b VALUES (2)")
        got = rows(engine, "SELECT * FROM a LEFT JOIN b ON a.x = b.y WHERE a.x = 2")
        assert got == [(2, 2), (2, 2)]


class TestJoinOnSemantics:
    def test_on_sees_both_sides(self, engine):
        got = rows(engine, "SELECT * FROM a JOIN b ON a.x + 1 = b.y")
        assert sorted(got) == [(1, 2), (2, 3), (3, 4)]

    def test_on_with_exists_subquery(self, engine):
        # Paper Listing 8 shape: EXISTS inside ON.
        got = rows(
            engine,
            "SELECT * FROM a JOIN b ON EXISTS "
            "(SELECT b.y FROM b WHERE FALSE)",
        )
        assert got == []

    def test_cross_join_with_on_behaves_as_inner(self, engine):
        # SQLite semantics (paper Listing 8 uses CROSS JOIN ... ON).
        got = rows(engine, "SELECT * FROM a CROSS JOIN b ON a.x = b.y")
        assert sorted(got) == [(2, 2), (3, 3)]

    def test_three_way_join(self, engine):
        engine.execute("CREATE TABLE c (z INT)")
        engine.execute("INSERT INTO c VALUES (3)")
        got = rows(
            engine,
            "SELECT * FROM a JOIN b ON a.x = b.y JOIN c ON b.y = c.z",
        )
        assert got == [(3, 3, 3)]

    def test_join_with_view(self, engine):
        engine.execute("CREATE VIEW v (y2) AS SELECT y * 2 FROM b")
        got = rows(engine, "SELECT * FROM a JOIN v ON a.x * 2 = v.y2")
        assert sorted(got) == [(2, 4), (3, 6)]

    def test_join_aliases(self, engine):
        got = rows(
            engine,
            "SELECT l.x, r.x FROM a AS l JOIN a AS r ON l.x < r.x WHERE l.x = 1",
        )
        assert sorted(got) == [(1, 2), (1, 3)]

    def test_null_join_keys_never_match(self, engine):
        engine.execute("INSERT INTO a VALUES (NULL)")
        engine.execute("INSERT INTO b VALUES (NULL)")
        got = rows(engine, "SELECT * FROM a JOIN b ON a.x = b.y")
        assert sorted(got) == [(2, 2), (3, 3)]
