"""End-to-end SELECT semantics of the MiniDB engine."""

import pytest

from repro.errors import CatalogError, SqlError, ValueError_
from repro.minidb import Engine, EngineProfile, TypingMode


@pytest.fixture
def engine():
    e = Engine()
    e.execute("CREATE TABLE t0 (c0 INT, c1 INT)")
    e.execute("INSERT INTO t0 VALUES (1, 10), (2, 20), (3, NULL)")
    return e


def rows(engine, sql):
    return engine.execute(sql).rows


class TestProjection:
    def test_star(self, engine):
        assert rows(engine, "SELECT * FROM t0") == [(1, 10), (2, 20), (3, None)]

    def test_column_subset(self, engine):
        assert rows(engine, "SELECT c1 FROM t0") == [(10,), (20,), (None,)]

    def test_expression(self, engine):
        assert rows(engine, "SELECT c0 * 2 FROM t0") == [(2,), (4,), (6,)]

    def test_alias_names(self, engine):
        result = engine.execute("SELECT c0 AS renamed FROM t0")
        assert result.columns == ["renamed"]

    def test_table_star(self, engine):
        engine.execute("CREATE TABLE t1 (x INT)")
        engine.execute("INSERT INTO t1 VALUES (7)")
        got = rows(engine, "SELECT t1.* FROM t0, t1")
        assert got == [(7,), (7,), (7,)]

    def test_select_without_from(self, engine):
        assert rows(engine, "SELECT 1 + 2") == [(3,)]

    def test_unknown_column_raises(self, engine):
        with pytest.raises(CatalogError):
            rows(engine, "SELECT nope FROM t0")

    def test_unknown_table_raises(self, engine):
        with pytest.raises(CatalogError):
            rows(engine, "SELECT * FROM missing")


class TestWhere:
    def test_simple_filter(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE c0 > 1") == [(2,), (3,)]

    def test_null_predicate_drops_row(self, engine):
        # c1 IS NULL for row 3: comparison yields NULL, row excluded.
        assert rows(engine, "SELECT c0 FROM t0 WHERE c1 > 0") == [(1,), (2,)]

    def test_is_null(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE c1 IS NULL") == [(3,)]

    def test_constant_true_where(self, engine):
        assert len(rows(engine, "SELECT c0 FROM t0 WHERE 1")) == 3

    def test_constant_false_where(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE 0") == []

    def test_constant_null_where(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE NULL") == []

    def test_between(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE c0 BETWEEN 2 AND 3") == [
            (2,),
            (3,),
        ]

    def test_not_between(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE c0 NOT BETWEEN 2 AND 3") == [(1,)]

    def test_in_list(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 WHERE c0 IN (1, 3, 99)") == [(1,), (3,)]

    def test_not_in_list_with_null_matches_nothing(self, engine):
        # NULL in the list makes NOT IN yield NULL for non-matching rows.
        assert rows(engine, "SELECT c0 FROM t0 WHERE c0 NOT IN (1, NULL)") == []

    def test_like(self, engine):
        engine.execute("CREATE TABLE s (v TEXT)")
        engine.execute("INSERT INTO s VALUES ('apple'), ('banana')")
        assert rows(engine, "SELECT v FROM s WHERE v LIKE 'a%'") == [("apple",)]


class TestAggregates:
    def test_count_star(self, engine):
        assert rows(engine, "SELECT COUNT(*) FROM t0") == [(3,)]

    def test_count_skips_nulls(self, engine):
        assert rows(engine, "SELECT COUNT(c1) FROM t0") == [(2,)]

    def test_sum_avg(self, engine):
        assert rows(engine, "SELECT SUM(c1), AVG(c1) FROM t0") == [(30, 15.0)]

    def test_min_max(self, engine):
        assert rows(engine, "SELECT MIN(c0), MAX(c0) FROM t0") == [(1, 3)]

    def test_aggregate_over_empty_is_null(self, engine):
        assert rows(engine, "SELECT SUM(c0), COUNT(*) FROM t0 WHERE 0") == [(None, 0)]

    def test_count_distinct(self, engine):
        engine.execute("INSERT INTO t0 VALUES (1, 10)")
        assert rows(engine, "SELECT COUNT(DISTINCT c0) FROM t0") == [(3,)]

    def test_group_by(self, engine):
        engine.execute("INSERT INTO t0 VALUES (1, 99)")
        got = rows(engine, "SELECT c0, COUNT(*) FROM t0 GROUP BY c0 ORDER BY c0")
        assert got == [(1, 2), (2, 1), (3, 1)]

    def test_group_by_expression(self, engine):
        got = rows(
            engine, "SELECT COUNT(*) FROM t0 GROUP BY c0 > 1 ORDER BY 1"
        )
        assert sorted(got) == [(1,), (2,)]

    def test_having(self, engine):
        engine.execute("INSERT INTO t0 VALUES (1, 99)")
        got = rows(engine, "SELECT c0 FROM t0 GROUP BY c0 HAVING COUNT(*) > 1")
        assert got == [(1,)]

    def test_having_without_group_by(self, engine):
        assert rows(engine, "SELECT COUNT(*) FROM t0 HAVING COUNT(*) > 10") == []

    def test_aggregate_in_where_rejected(self, engine):
        with pytest.raises(ValueError_):
            rows(engine, "SELECT c0 FROM t0 WHERE COUNT(*) > 1")

    def test_scalar_min_max_two_args(self, engine):
        assert rows(engine, "SELECT MAX(1, 2), MIN(3, 1)") == [(2, 1)]

    def test_group_by_groups_nulls_together(self, engine):
        engine.execute("INSERT INTO t0 VALUES (4, NULL)")
        got = rows(engine, "SELECT COUNT(*) FROM t0 GROUP BY c1 IS NULL ORDER BY 1")
        assert got == [(2,), (2,)]


class TestDistinctOrderLimit:
    def test_distinct(self, engine):
        engine.execute("INSERT INTO t0 VALUES (1, 10)")
        assert rows(engine, "SELECT DISTINCT c0 FROM t0") == [(1,), (2,), (3,)]

    def test_distinct_treats_nulls_equal(self, engine):
        engine.execute("INSERT INTO t0 VALUES (9, NULL)")
        got = rows(engine, "SELECT DISTINCT c1 IS NULL FROM t0")
        assert sorted(got) == [(False,), (True,)]

    def test_order_by_column(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 ORDER BY c0 DESC") == [(3,), (2,), (1,)]

    def test_order_by_position(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 ORDER BY 1 DESC") == [(3,), (2,), (1,)]

    def test_order_by_expression(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 ORDER BY -c0") == [(3,), (2,), (1,)]

    def test_order_by_nulls_first(self, engine):
        got = rows(engine, "SELECT c1 FROM t0 ORDER BY c1")
        assert got[0] == (None,)

    def test_order_by_position_out_of_range(self, engine):
        with pytest.raises(ValueError_):
            rows(engine, "SELECT c0 FROM t0 ORDER BY 7")

    def test_limit(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 ORDER BY c0 LIMIT 2") == [(1,), (2,)]

    def test_limit_offset(self, engine):
        assert rows(engine, "SELECT c0 FROM t0 ORDER BY c0 LIMIT 2 OFFSET 1") == [
            (2,),
            (3,),
        ]

    def test_negative_limit_means_all(self, engine):
        assert len(rows(engine, "SELECT c0 FROM t0 LIMIT -1")) == 3


class TestSetOps:
    def test_union_dedupes(self, engine):
        assert rows(engine, "SELECT 1 UNION SELECT 1 UNION SELECT 2") == [(1,), (2,)]

    def test_union_all_keeps(self, engine):
        assert rows(engine, "SELECT 1 UNION ALL SELECT 1") == [(1,), (1,)]

    def test_intersect(self, engine):
        got = rows(engine, "SELECT c0 FROM t0 INTERSECT SELECT 2")
        assert got == [(2,)]

    def test_except(self, engine):
        got = rows(engine, "SELECT c0 FROM t0 EXCEPT SELECT 2")
        assert sorted(got) == [(1,), (3,)]

    def test_mismatched_width_rejected(self, engine):
        with pytest.raises(SqlError):
            rows(engine, "SELECT 1, 2 UNION SELECT 3")

    def test_union_then_order(self, engine):
        got = rows(engine, "SELECT 2 UNION SELECT 1 ORDER BY 1")
        assert got == [(1,), (2,)]


class TestViewsAndCtes:
    def test_view_basic(self, engine):
        engine.execute("CREATE VIEW v0 (a) AS SELECT c0 FROM t0 WHERE c0 > 1")
        assert rows(engine, "SELECT a FROM v0") == [(2,), (3,)]

    def test_view_with_aggregate(self, engine):
        engine.execute("CREATE VIEW v1 (m) AS SELECT MAX(c0) FROM t0")
        assert rows(engine, "SELECT m FROM v1") == [(3,)]

    def test_view_alias(self, engine):
        engine.execute("CREATE VIEW v0 (a) AS SELECT c0 FROM t0")
        assert rows(engine, "SELECT z.a FROM v0 AS z WHERE z.a = 1") == [(1,)]

    def test_cte(self, engine):
        got = rows(
            engine,
            "WITH big(v) AS (SELECT c0 FROM t0 WHERE c0 >= 2) "
            "SELECT COUNT(*) FROM big",
        )
        assert got == [(2,)]

    def test_cte_from_values(self, engine):
        got = rows(
            engine, "WITH x(a, b) AS (VALUES (1, 2), (3, 4)) SELECT b FROM x"
        )
        assert got == [(2,), (4,)]

    def test_chained_ctes(self, engine):
        got = rows(
            engine,
            "WITH a(x) AS (SELECT 1), b(y) AS (SELECT x + 1 FROM a) "
            "SELECT y FROM b",
        )
        assert got == [(2,)]

    def test_derived_table(self, engine):
        got = rows(engine, "SELECT d.v FROM (SELECT c0 AS v FROM t0) AS d WHERE d.v = 2")
        assert got == [(2,)]

    def test_values_table(self, engine):
        got = rows(engine, "SELECT a + b FROM (VALUES (1, 2), (10, 20)) AS v(a, b)")
        assert got == [(3,), (30,)]


class TestStrictProfile:
    def test_strict_rejects_numeric_predicate(self):
        e = Engine(EngineProfile(name="strict", typing_mode=TypingMode.STRICT))
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (1)")
        from repro.errors import TypeError_

        with pytest.raises(TypeError_):
            e.execute("SELECT * FROM t WHERE c")

    def test_strict_accepts_boolean_predicate(self):
        e = Engine(EngineProfile(name="strict", typing_mode=TypingMode.STRICT))
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (1)")
        assert e.execute("SELECT * FROM t WHERE c = 1").rows == [(1,)]

    def test_any_all_can_be_disabled(self):
        from repro.errors import UnsupportedError

        e = Engine(EngineProfile(name="no-any", supports_any_all=False))
        with pytest.raises(UnsupportedError):
            e.execute("SELECT 1 = ANY (SELECT 1)")


class TestPlanFingerprints:
    def test_same_shape_same_fingerprint(self, engine):
        a = engine.execute("SELECT c0 FROM t0 WHERE c0 > 1").plan_fingerprint
        b = engine.execute("SELECT c1 FROM t0 WHERE c1 > 99").plan_fingerprint
        assert a == b  # literals and column picks do not change the plan

    def test_subquery_changes_fingerprint(self, engine):
        a = engine.execute("SELECT c0 FROM t0 WHERE c0 > 1").plan_fingerprint
        b = engine.execute(
            "SELECT c0 FROM t0 WHERE c0 > (SELECT MAX(c1) FROM t0)"
        ).plan_fingerprint
        assert a != b

    def test_index_path_changes_fingerprint(self, engine):
        a = engine.execute("SELECT c0 FROM t0 WHERE c0 > 1").plan_fingerprint
        engine.execute("CREATE INDEX ix ON t0 (c0)")
        b = engine.execute("SELECT c0 FROM t0 WHERE c0 > 1").plan_fingerprint
        assert a != b and "ix" in b

    def test_constant_false_where_has_distinct_plan(self, engine):
        fp = engine.execute("SELECT c0 FROM t0 WHERE 0").plan_fingerprint
        assert "W=FALSE" in fp
