"""Subquery semantics: scalar, EXISTS, IN, quantified, correlated."""

import pytest

from repro.errors import ValueError_
from repro.minidb import Engine, EngineProfile


@pytest.fixture
def engine():
    e = Engine()
    e.execute("CREATE TABLE t (c INT)")
    e.execute("INSERT INTO t VALUES (1), (2), (3)")
    e.execute("CREATE TABLE s (ID INT, score INT, classID INT)")
    e.execute("INSERT INTO s VALUES (0, 90, 1), (1, 80, 1), (2, 83, 2)")
    return e


def rows(engine, sql):
    return engine.execute(sql).rows


class TestScalarSubqueries:
    def test_aggregate_scalar(self, engine):
        assert rows(engine, "SELECT (SELECT MAX(c) FROM t)") == [(3,)]

    def test_empty_result_is_null(self, engine):
        assert rows(engine, "SELECT (SELECT c FROM t WHERE FALSE)") == [(None,)]

    def test_multi_row_takes_first_in_relaxed_default(self):
        e = Engine(EngineProfile(scalar_subquery_multi_row="first"))
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (7), (8)")
        assert e.execute("SELECT (SELECT c FROM t)").rows == [(7,)]

    def test_multi_row_errors_in_mysql_like(self):
        # Paper Listing 5: "Subquery returns more than 1 row".
        e = Engine(EngineProfile(scalar_subquery_multi_row="error"))
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (7), (8)")
        with pytest.raises(ValueError_):
            e.execute("SELECT (SELECT c FROM t)")

    def test_multi_column_scalar_rejected(self, engine):
        # Paper Listing 5: "Operand should contain 1 column(s)".
        with pytest.raises(ValueError_):
            rows(engine, "SELECT (SELECT c, c FROM t WHERE c = 2)")

    def test_in_where(self, engine):
        got = rows(engine, "SELECT c FROM t WHERE c = (SELECT MIN(c) FROM t)")
        assert got == [(1,)]


class TestExists:
    def test_exists_true(self, engine):
        assert rows(engine, "SELECT EXISTS (SELECT c FROM t)") == [(True,)]

    def test_exists_false(self, engine):
        assert rows(engine, "SELECT EXISTS (SELECT c FROM t WHERE FALSE)") == [
            (False,)
        ]

    def test_not_exists(self, engine):
        got = rows(engine, "SELECT c FROM t WHERE NOT EXISTS (SELECT 1 WHERE FALSE)")
        assert len(got) == 3

    def test_correlated_exists(self, engine):
        got = rows(
            engine,
            "SELECT x.c FROM t AS x WHERE EXISTS "
            "(SELECT y.c FROM t AS y WHERE y.c > x.c)",
        )
        assert got == [(1,), (2,)]


class TestInSubquery:
    def test_in(self, engine):
        got = rows(engine, "SELECT c FROM t WHERE c IN (SELECT c FROM t WHERE c > 1)")
        assert got == [(2,), (3,)]

    def test_not_in(self, engine):
        got = rows(
            engine, "SELECT c FROM t WHERE c NOT IN (SELECT c FROM t WHERE c > 1)"
        )
        assert got == [(1,)]

    def test_not_in_with_null_in_subquery(self, engine):
        engine.execute("INSERT INTO t VALUES (NULL)")
        got = rows(engine, "SELECT c FROM t WHERE c NOT IN (SELECT c FROM t)")
        assert got == []  # NULL in the set poisons NOT IN

    def test_in_empty_subquery(self, engine):
        got = rows(engine, "SELECT c FROM t WHERE c IN (SELECT c FROM t WHERE FALSE)")
        assert got == []


class TestQuantified:
    def test_any_true(self, engine):
        assert rows(engine, "SELECT 2 = ANY (SELECT c FROM t)") == [(True,)]

    def test_any_false(self, engine):
        assert rows(engine, "SELECT 9 = ANY (SELECT c FROM t)") == [(False,)]

    def test_all_true(self, engine):
        assert rows(engine, "SELECT 0 < ALL (SELECT c FROM t)") == [(True,)]

    def test_all_false(self, engine):
        assert rows(engine, "SELECT 2 < ALL (SELECT c FROM t)") == [(False,)]

    def test_any_over_empty_is_false(self, engine):
        got = rows(engine, "SELECT 1 = ANY (SELECT c FROM t WHERE FALSE)")
        assert got == [(False,)]

    def test_all_over_empty_is_true(self, engine):
        got = rows(engine, "SELECT 1 > ALL (SELECT c FROM t WHERE FALSE)")
        assert got == [(True,)]

    def test_any_with_null_operand(self, engine):
        got = rows(engine, "SELECT NULL = ANY (SELECT c FROM t)")
        assert got == [(None,)]

    def test_some_is_any(self, engine):
        assert rows(engine, "SELECT 2 = SOME (SELECT c FROM t)") == [(True,)]

    def test_any_over_union_chain(self, engine):
        # The folded form CODDTest substitutes (paper Section 3.3).
        got = rows(
            engine, "SELECT 2 = ANY (SELECT 1 UNION ALL SELECT 2 UNION ALL SELECT 3)"
        )
        assert got == [(True,)]


class TestCorrelated:
    def test_listing2_average_by_class(self, engine):
        got = rows(
            engine,
            "SELECT x.ID FROM s AS x WHERE x.score > "
            "(SELECT AVG(y.score) FROM s AS y WHERE x.classID = y.classID)",
        )
        assert got == [(0,)]

    def test_correlated_in_fetch_clause(self, engine):
        # The auxiliary-query shape for dependent expressions (Listing 2 A).
        got = rows(
            engine,
            "SELECT x.classID, (SELECT AVG(y.score) FROM s AS y "
            "WHERE x.classID = y.classID) FROM s AS x",
        )
        assert got == [(1, 85.0), (1, 85.0), (2, 83.0)]

    def test_correlated_runs_per_row(self, engine):
        got = rows(
            engine,
            "SELECT (SELECT COUNT(*) FROM t AS y WHERE y.c <= x.c) FROM t AS x",
        )
        assert got == [(1,), (2,), (3,)]

    def test_uncorrelated_subquery_cached_result_consistent(self, engine):
        # The uncorrelated-subquery cache must not change results.
        got = rows(
            engine,
            "SELECT c, (SELECT MAX(c) FROM t) FROM t",
        )
        assert got == [(1, 3), (2, 3), (3, 3)]

    def test_correlation_detection(self, engine):
        from repro.minidb.parser import parse_statement

        stmt = parse_statement(
            "SELECT x.c FROM t AS x WHERE EXISTS "
            "(SELECT y.c FROM t AS y WHERE y.c = x.c)"
        )
        sub = stmt.where.query
        assert engine.select_is_correlated(sub)
        stmt2 = parse_statement(
            "SELECT c FROM t WHERE EXISTS (SELECT y.c FROM t AS y)"
        )
        assert not engine.select_is_correlated(stmt2.where.query)

    def test_subquery_with_group_by_first_row(self):
        # Listing-1 shape: aggregate subquery with GROUP BY in a
        # first-row dialect.
        e = Engine(EngineProfile(scalar_subquery_multi_row="first"))
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (1), (2)")
        got = e.execute("SELECT (SELECT COUNT(c) FROM t GROUP BY 1 > c)").rows
        assert len(got) == 1
