"""Regression tests for evaluator correctness fixes.

Three pinned bugs:

1. The row-independent eval memo was keyed by node identity alone, but
   fault triggers consume the ``clause``/``in_subquery`` site features:
   the same AST node reused across clauses (the folding oracle does
   exactly this) could replay a clause-conditioned fault's value into a
   clause where the fault must not fire.  The key now includes both
   context fields, and cache-on must bit-match cache-off.
2. Scalar/IN subquery column-count validation used the first row, so a
   zero-row two-column subquery silently yielded NULL where SQLite
   raises "sub-select returns N columns - expected 1".  Validation now
   reads the result schema.
3. MIN/MAX over incomparable non-NULL values hit ``assert c is not
   None``: an AssertionError escapes the campaign's expected-error
   accounting and would be misfiled as an engine bug.  It is now a
   typed :class:`~repro.errors.TypeError_`.
"""

from __future__ import annotations

import dataclasses
import sqlite3

import pytest

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.errors import TypeError_, ValueError_
from repro.minidb import ast_nodes as A
from repro.minidb.engine import Engine
from repro.minidb.faults import BugStatus, BugType, Fault
from repro.minidb.parser import parse_statement
from repro.minidb import values as V
from repro.perf import EvalCache


# ---------------------------------------------------------------------------
# Bug 1: eval memo must not alias values across clauses
# ---------------------------------------------------------------------------


def _where_only_invert(site: str) -> Fault:
    """A fault firing only when the expression sits in a WHERE clause."""
    return Fault(
        fault_id=f"test.where_only.{site}",
        profile="sqlite",
        bug_type=BugType.LOGIC,
        status=BugStatus.FIXED,
        description="test fault: invert, but only inside WHERE",
        sites=frozenset({site}),
        trigger=lambda features: features.get("clause") == "where",
        effect="invert",
    )


def _cross_clause_statement() -> A.Select:
    """A SELECT whose first select item *is* (same object) a
    row-independent subtree of its WHERE predicate -- the aliasing the
    folding oracle produces when it reuses a folded subtree across
    clauses.  The WHERE stays non-constant overall so the planner does
    not fold it away before the per-row evaluator runs."""
    stmt = parse_statement(
        "SELECT (1 BETWEEN 0 AND 2) FROM t "
        "WHERE (1 BETWEEN 0 AND 2) OR a = 1"
    )
    assert isinstance(stmt, A.Select)
    shared = stmt.where.left  # the Between node
    assert isinstance(shared, A.Between)
    items = (dataclasses.replace(stmt.items[0], expr=shared),) + stmt.items[1:]
    return dataclasses.replace(stmt, items=items)


def test_eval_memo_does_not_replay_clause_conditioned_faults():
    """Cache-on must equal cache-off when a fault fires in one clause
    only.  WHERE evaluates first: a memo keyed by node id alone would
    memoize the inverted WHERE-side value and replay it into the select
    list, where the fault's trigger says it must not fire."""
    results = {}
    for cached in (False, True):
        engine = Engine(faults=[_where_only_invert("between_result")])
        adapter = MiniDBAdapter(engine)
        if cached:
            adapter.attach_eval_cache(EvalCache())
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute("INSERT INTO t VALUES (1)")
        stmt = _cross_clause_statement()
        results[cached] = (
            engine.execute_ast(stmt).rows,
            frozenset(engine.faults.fired),
        )
    assert results[False] == results[True]
    rows, fired = results[True]
    # In WHERE the fault inverts the Between to FALSE, but the OR arm
    # keeps the row; in the select list the fault must NOT fire, so the
    # fetched value is the clean TRUE (a node-id-only memo replayed the
    # inverted FALSE here).
    assert rows == [(True,)]
    assert fired == frozenset({"test.where_only.between_result"})


def _subquery_only_invert(site: str) -> Fault:
    """A fault firing only for expressions inside a subquery."""
    return Fault(
        fault_id=f"test.subquery_only.{site}",
        profile="sqlite",
        bug_type=BugType.LOGIC,
        status=BugStatus.FIXED,
        description="test fault: invert, but only inside subqueries",
        sites=frozenset({site}),
        trigger=lambda features: bool(features.get("in_subquery")),
        effect="invert",
    )


def test_eval_memo_does_not_suppress_subquery_conditioned_faults():
    """The mirror case, on the ``in_subquery`` key component: the node
    evaluates first in the outer WHERE (fault must not fire) and then
    inside a scalar subquery in the select list (fault must fire).  A
    node-id-only memo would replay the clean outer value and the fault
    would never fire at all."""
    stmt = parse_statement(
        "SELECT (SELECT (1 IN (1, 2)) FROM t) FROM t "
        "WHERE (1 IN (1, 2)) OR a = 1"
    )
    assert isinstance(stmt, A.Select)
    shared = stmt.where.left
    assert isinstance(shared, A.InList)
    scalar_sub = stmt.items[0].expr
    assert isinstance(scalar_sub, A.ScalarSubquery)
    inner = scalar_sub.query
    inner = dataclasses.replace(
        inner,
        items=(dataclasses.replace(inner.items[0], expr=shared),),
    )
    stmt = dataclasses.replace(
        stmt,
        items=(
            dataclasses.replace(
                stmt.items[0], expr=dataclasses.replace(scalar_sub, query=inner)
            ),
        ),
    )

    results = {}
    for cached in (False, True):
        engine = Engine(faults=[_subquery_only_invert("in_list_result")])
        adapter = MiniDBAdapter(engine)
        if cached:
            adapter.attach_eval_cache(EvalCache())
        adapter.execute("CREATE TABLE t (a INT)")
        adapter.execute("INSERT INTO t VALUES (1)")
        results[cached] = (
            engine.execute_ast(stmt).rows,
            frozenset(engine.faults.fired),
        )
    assert results[False] == results[True]
    rows, fired = results[True]
    # Outer WHERE: clean TRUE keeps the row.  Inner subquery: the fault
    # fires and inverts to FALSE (a node-id-only memo replayed TRUE).
    assert rows == [(False,)]
    assert fired == frozenset({"test.subquery_only.in_list_result"})


# ---------------------------------------------------------------------------
# Bug 2: zero-row subqueries still validate their column count
# ---------------------------------------------------------------------------

_TWO_COL_SETUP = [
    "CREATE TABLE t (a INT, b INT)",
    "INSERT INTO t VALUES (1, 10), (2, 20)",
]


def _sqlite3_error(queries: list[str]) -> str:
    conn = sqlite3.connect(":memory:")
    for sql in _TWO_COL_SETUP:
        conn.execute(sql)
    with pytest.raises(sqlite3.OperationalError) as exc:
        for sql in queries:
            conn.execute(sql).fetchall()
    conn.close()
    return str(exc.value)


@pytest.mark.parametrize(
    "query",
    [
        # Scalar-subquery operand, zero rows, two columns.
        "SELECT (SELECT a, b FROM t WHERE a > 100) FROM t",
        # IN-subquery operand, zero rows, two columns.
        "SELECT a FROM t WHERE a IN (SELECT a, b FROM t WHERE a > 100)",
    ],
)
def test_zero_row_multi_column_subquery_is_an_error(query):
    """MiniDB raises a typed error exactly where SQLite does: the
    column count of a sub-select is validated from its schema, even
    when it produces no rows (the old first-row check let these yield
    NULL / empty silently)."""
    engine = Engine()
    for sql in _TWO_COL_SETUP:
        engine.execute(sql)
    with pytest.raises(ValueError_, match="1 column"):
        engine.execute(query)
    # Conformance: real SQLite rejects the same statement.
    assert "columns" in _sqlite3_error([query])


def test_single_column_zero_row_subqueries_still_yield_null_and_empty():
    """The fix must not over-reject: a *one*-column empty sub-select
    keeps its SQLite semantics (scalar -> NULL, IN -> no match)."""
    engine = Engine()
    for sql in _TWO_COL_SETUP:
        engine.execute(sql)
    rows = engine.execute(
        "SELECT (SELECT a FROM t WHERE a > 100) FROM t"
    ).rows
    assert rows == [(None,), (None,)]
    rows = engine.execute(
        "SELECT a FROM t WHERE a IN (SELECT a FROM t WHERE a > 100)"
    ).rows
    assert rows == []


# ---------------------------------------------------------------------------
# Bug 3: MIN/MAX over incomparable values raises a typed error
# ---------------------------------------------------------------------------


def test_min_max_incomparable_values_raise_typed_error(monkeypatch):
    """Incomparable non-NULL aggregate inputs surface as TypeError_
    (an expected SQL error campaigns count), never AssertionError.
    ``V.compare`` returning a bare None for non-NULL operands is forced
    here to pin the defensive branch the old assert crashed on."""
    engine = Engine()
    engine.execute("CREATE TABLE t (a INT)")
    engine.execute("INSERT INTO t VALUES (1), (2)")
    monkeypatch.setattr(
        "repro.minidb.evaluator.V.compare", lambda a, b, mode: None
    )
    with pytest.raises(TypeError_, match="cannot order"):
        engine.execute("SELECT MIN(a) FROM t")
    with pytest.raises(TypeError_, match="cannot order"):
        engine.execute("SELECT MAX(a) FROM t")


def test_min_max_mixed_types_strict_profile_raises_typed_error():
    """End to end on a strict-typing dialect: text vs integer inputs to
    MIN are a typed comparison error, not an assertion."""
    from repro.dialects import make_engine

    engine = make_engine("duckdb")
    engine.execute("CREATE TABLE t (a INT)")
    engine.execute("INSERT INTO t VALUES (1), (2)")
    with pytest.raises(TypeError_):
        engine.execute(
            "SELECT MIN(CASE WHEN a = 1 THEN 'x' ELSE a END) FROM t"
        )


def test_min_max_agree_with_sqlite_on_comparable_inputs():
    """Cross-check with the real SQLite on inputs both engines order
    the same way (homogeneous text, numeric with NULLs): the typed-
    error fix must not drift the non-error results."""
    queries = [
        "SELECT MIN(a), MAX(a) FROM t",
        "SELECT MIN(s), MAX(s) FROM u",
        "SELECT MIN(a + 0.5), MAX(a * 2) FROM t",
    ]
    setup = [
        "CREATE TABLE t (a INT)",
        "INSERT INTO t VALUES (3), (NULL), (1), (7)",
        "CREATE TABLE u (s TEXT)",
        "INSERT INTO u VALUES ('pear'), (NULL), ('apple')",
    ]
    engine = Engine()
    conn = sqlite3.connect(":memory:")
    for sql in setup:
        engine.execute(sql)
        conn.execute(sql)
    for sql in queries:
        assert engine.execute(sql).rows == conn.execute(sql).fetchall(), sql
    conn.close()


def test_values_compare_strict_raises_typed_error_directly():
    with pytest.raises(TypeError_):
        V.compare("x", 1, V.TypingMode.STRICT)
