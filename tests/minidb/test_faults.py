"""Fault-injection framework tests."""

import pytest

from repro.errors import EngineCrash, EngineHang, InternalError
from repro.minidb import Engine
from repro.minidb.faults import (
    BugStatus,
    BugType,
    Fault,
    FaultInjector,
    all_of,
    always,
    any_of,
    expr_features,
    feature_is,
    feature_true,
)
from repro.minidb.parser import parse_expression


def make_fault(**overrides):
    defaults = dict(
        fault_id="f1",
        profile="sqlite",
        bug_type=BugType.LOGIC,
        status=BugStatus.FIXED,
        description="test fault",
        sites=frozenset({"where_result"}),
        trigger=always,
        effect="force_true",
    )
    defaults.update(overrides)
    return Fault(**defaults)


class TestFaultMechanics:
    def test_effect_applies_at_matching_site(self):
        injector = FaultInjector([make_fault()])
        assert injector.fire("where_result", {}, False) is True
        assert "f1" in injector.fired

    def test_no_effect_at_other_sites(self):
        injector = FaultInjector([make_fault()])
        assert injector.fire("having_result", {}, False) is False
        assert not injector.fired

    def test_trigger_features_gate_effect(self):
        fault = make_fault(trigger=feature_is(statement="SELECT"))
        injector = FaultInjector([fault])
        assert injector.fire("where_result", {"statement": "UPDATE"}, False) is False
        assert injector.fire("where_result", {"statement": "SELECT"}, False) is True

    def test_reset_fired(self):
        injector = FaultInjector([make_fault()])
        injector.fire("where_result", {}, None)
        injector.reset_fired()
        assert not injector.fired

    def test_internal_error_effect(self):
        fault = make_fault(bug_type=BugType.INTERNAL_ERROR)
        injector = FaultInjector([fault])
        with pytest.raises(InternalError):
            injector.fire("where_result", {}, True)
        assert "f1" in injector.fired  # attribution recorded before raising

    def test_crash_effect(self):
        injector = FaultInjector([make_fault(bug_type=BugType.CRASH)])
        with pytest.raises(EngineCrash):
            injector.fire("where_result", {}, True)

    def test_hang_effect(self):
        injector = FaultInjector([make_fault(bug_type=BugType.HANG)])
        with pytest.raises(EngineHang):
            injector.fire("where_result", {}, True)

    def test_multiple_faults_stack(self):
        f1 = make_fault(fault_id="a", effect="force_true")
        f2 = make_fault(fault_id="b", effect="invert")
        injector = FaultInjector([f1, f2])
        assert injector.fire("where_result", {}, None) is False
        assert injector.fired == {"a", "b"}

    def test_broken_trigger_is_ignored(self):
        def bad_trigger(features):
            raise RuntimeError("boom")

        injector = FaultInjector([make_fault(trigger=bad_trigger)])
        assert injector.fire("where_result", {}, False) is False


class TestEffects:
    @pytest.mark.parametrize(
        "effect,value,expected",
        [
            ("force_true", False, True),
            ("force_false", True, False),
            ("force_null", True, None),
            ("invert", True, False),
            ("invert", None, None),
            ("null_as_true", None, True),
            ("null_as_true", False, False),
            ("null_as_false", None, False),
            ("zero", 17, 0),
            ("off_by_one", 5, 6),
            ("negate_number", 5, -5),
            ("negate_number", "x", "x"),
            ("stringify", 5, "5"),
            ("empty_rows", [1, 2], []),
            ("drop_first_row", [1, 2], [2]),
            ("identity", "same", "same"),
        ],
    )
    def test_value_effects(self, effect, value, expected):
        fault = make_fault(effect=effect)
        assert fault.apply_effect(value) == expected


class TestTriggerCombinators:
    def test_feature_true(self):
        trig = feature_true("a", "b")
        assert trig({"a": 1, "b": True})
        assert not trig({"a": 1, "b": 0})

    def test_all_of(self):
        trig = all_of(feature_true("a"), feature_is(x=1))
        assert trig({"a": True, "x": 1})
        assert not trig({"a": True, "x": 2})

    def test_any_of(self):
        trig = any_of(feature_true("a"), feature_true("b"))
        assert trig({"a": True})
        assert trig({"b": True})
        assert not trig({})


class TestExprFeatures:
    def test_constant_flag(self):
        assert expr_features(parse_expression("1 + 2"))["is_constant"]
        assert not expr_features(parse_expression("c0 + 1"))["is_constant"]

    def test_subquery_flags(self):
        f = expr_features(parse_expression("EXISTS (SELECT 1)"))
        assert f["has_subquery"] and f["has_exists"]

    def test_agg_subquery_flag(self):
        f = expr_features(
            parse_expression("(SELECT COUNT(x) FROM t GROUP BY y) > 0")
        )
        assert f["has_agg_subquery"]
        assert f["has_group_by_subquery"]

    def test_correlation_heuristic(self):
        f = expr_features(
            parse_expression("EXISTS (SELECT y.c FROM t AS y WHERE x.c = y.c)")
        )
        assert f["has_correlated_subquery"]

    def test_in_list_flags(self):
        f = expr_features(parse_expression("c IN (1, 2, 8628276060272066657)"))
        assert f["has_in_list"]
        assert f["in_list_size"] == 3
        assert f["has_large_int"]

    def test_not_and_concat_flags(self):
        f = expr_features(parse_expression("NOT (a || b = 'x')"))
        assert f["has_not"] and f["has_concat"]

    def test_subquery_no_from(self):
        f = expr_features(parse_expression("c = ANY (SELECT 1 UNION ALL SELECT 2)"))
        assert f["subquery_no_from"]
        f2 = expr_features(parse_expression("c = ANY (SELECT c FROM t)"))
        assert not f2["subquery_no_from"]

    def test_depth_grows_with_nesting(self):
        shallow = expr_features(parse_expression("a > 1"))
        deep = expr_features(parse_expression("((a + 1) * 2 - 3) > (1 + 2 + 3)"))
        assert deep["depth"] > shallow["depth"]


class TestEndToEndInjection:
    def test_where_fault_changes_select_only(self):
        fault = make_fault(
            sites=frozenset({"where_result"}),
            trigger=feature_is(statement="SELECT"),
            effect="force_false",
        )
        e = Engine(faults=[fault])
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (1)")
        assert e.execute("SELECT c FROM t WHERE c = 1").rows == []
        # UPDATE path uses a different site and stays correct.
        assert e.execute("UPDATE t SET c = 2 WHERE c = 1").rows_affected == 1

    def test_fault_fires_only_in_matching_context(self):
        fault = make_fault(
            sites=frozenset({"in_list_result"}),
            trigger=feature_is(clause="where"),
            effect="force_false",
        )
        e = Engine(faults=[fault])
        e.execute("CREATE TABLE t (c INT)")
        e.execute("INSERT INTO t VALUES (1)")
        # Fires in WHERE ...
        assert e.execute("SELECT c FROM t WHERE c IN (1)").rows == []
        # ... but not in the fetch clause (NoREC's reference position).
        assert e.execute("SELECT c IN (1) FROM t").rows == [(True,)]
