"""Parser and lexer unit tests."""

import pytest

from repro.errors import ParseError
from repro.minidb import ast_nodes as A
from repro.minidb.lexer import tokenize
from repro.minidb.parser import parse_expression, parse_statement


class TestLexer:
    def test_keywords_case_insensitive(self):
        toks = tokenize("select SELECT Select")
        assert [t.kind for t in toks[:-1]] == ["KEYWORD"] * 3
        assert all(t.text == "SELECT" for t in toks[:-1])

    def test_string_escaping(self):
        toks = tokenize("'it''s'")
        assert toks[0].value == "it's"

    def test_numbers(self):
        toks = tokenize("1 2.5 1e3 .5")
        assert toks[0].value == 1
        assert toks[1].value == 2.5
        assert toks[2].value == 1000.0
        assert toks[3].value == 0.5

    def test_comments_skipped(self):
        toks = tokenize("SELECT 1 -- the answer\n+ 2")
        texts = [t.text for t in toks if t.kind != "EOF"]
        assert texts == ["SELECT", "1", "+", "2"]

    def test_two_char_operators(self):
        toks = tokenize("<= >= <> != ||")
        assert [t.text for t in toks[:-1]] == ["<=", ">=", "<>", "!=", "||"]

    def test_unterminated_string(self):
        with pytest.raises(ParseError):
            tokenize("'oops")

    def test_unexpected_character(self):
        with pytest.raises(ParseError):
            tokenize("SELECT #")

    def test_quoted_identifier(self):
        toks = tokenize('"weird name"')
        assert toks[0].kind == "IDENT"
        assert toks[0].value == "weird name"


class TestExpressionParsing:
    def test_precedence_or_lower_than_and(self):
        expr = parse_expression("a OR b AND c")
        assert isinstance(expr, A.Binary) and expr.op == "OR"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "AND"

    def test_precedence_cmp_lower_than_arith(self):
        expr = parse_expression("1 + 2 > 2")
        assert isinstance(expr, A.Binary) and expr.op == ">"
        assert isinstance(expr.left, A.Binary) and expr.left.op == "+"

    def test_precedence_mul_higher_than_add(self):
        expr = parse_expression("1 + 2 * 3")
        assert isinstance(expr, A.Binary) and expr.op == "+"
        assert isinstance(expr.right, A.Binary) and expr.right.op == "*"

    def test_not_between(self):
        expr = parse_expression("x NOT BETWEEN 1 AND 2")
        assert isinstance(expr, A.Between) and expr.negated

    def test_in_list(self):
        expr = parse_expression("x IN (1, 2, 3)")
        assert isinstance(expr, A.InList)
        assert len(expr.items) == 3

    def test_not_in_subquery(self):
        expr = parse_expression("x NOT IN (SELECT 1)")
        assert isinstance(expr, A.InSubquery) and expr.negated

    def test_case_searched(self):
        expr = parse_expression("CASE WHEN a THEN 1 ELSE 2 END")
        assert isinstance(expr, A.Case)
        assert expr.operand is None
        assert expr.else_ is not None

    def test_case_simple(self):
        expr = parse_expression("CASE x WHEN 1 THEN 'a' WHEN 2 THEN 'b' END")
        assert isinstance(expr, A.Case)
        assert expr.operand is not None
        assert len(expr.whens) == 2
        assert expr.else_ is None

    def test_exists(self):
        expr = parse_expression("EXISTS (SELECT 1)")
        assert isinstance(expr, A.Exists) and not expr.negated

    def test_not_exists(self):
        # NOT EXISTS is a first-class construct (anti-join), not a NOT
        # wrapped around EXISTS.
        expr = parse_expression("NOT EXISTS (SELECT 1)")
        assert isinstance(expr, A.Exists) and expr.negated

    def test_quantified_any(self):
        expr = parse_expression("x = ANY (SELECT 1)")
        assert isinstance(expr, A.Quantified)
        assert expr.quantifier == "ANY"

    def test_quantified_all(self):
        expr = parse_expression("x > ALL (SELECT 1)")
        assert isinstance(expr, A.Quantified)
        assert expr.quantifier == "ALL"

    def test_cast(self):
        expr = parse_expression("CAST(x AS INTEGER)")
        assert isinstance(expr, A.Cast)
        assert expr.type_name == "INTEGER"

    def test_is_null_and_is_not_null(self):
        assert isinstance(parse_expression("x IS NULL"), A.IsNull)
        expr = parse_expression("x IS NOT NULL")
        assert isinstance(expr, A.IsNull) and expr.negated

    def test_scalar_subquery(self):
        expr = parse_expression("(SELECT 1)")
        assert isinstance(expr, A.ScalarSubquery)

    def test_function_call(self):
        expr = parse_expression("LENGTH('abc')")
        assert isinstance(expr, A.FuncCall)
        assert expr.name == "LENGTH"

    def test_count_star(self):
        expr = parse_expression("COUNT(*)")
        assert isinstance(expr, A.FuncCall) and expr.star

    def test_count_distinct(self):
        expr = parse_expression("COUNT(DISTINCT x)")
        assert isinstance(expr, A.FuncCall) and expr.distinct

    def test_like(self):
        expr = parse_expression("x LIKE '%a%'")
        assert isinstance(expr, A.Binary) and expr.op == "LIKE"

    def test_not_like(self):
        expr = parse_expression("x NOT LIKE 'a'")
        assert isinstance(expr, A.Binary) and expr.op == "NOT LIKE"

    def test_qualified_column(self):
        expr = parse_expression("t0.c0")
        assert isinstance(expr, A.ColumnRef)
        assert expr.table == "t0" and expr.column == "c0"

    def test_unary_minus(self):
        expr = parse_expression("-x")
        assert isinstance(expr, A.Unary) and expr.op == "-"

    def test_double_not(self):
        expr = parse_expression("NOT NOT x")
        assert isinstance(expr, A.Unary)
        assert isinstance(expr.operand, A.Unary)

    def test_concat_operator(self):
        expr = parse_expression("'a' || 'b'")
        assert isinstance(expr, A.Binary) and expr.op == "||"

    def test_neq_spelled_two_ways(self):
        assert parse_expression("a <> b") == parse_expression("a != b")

    def test_trailing_garbage_rejected(self):
        with pytest.raises(ParseError):
            parse_expression("1 + 2 extra junk (")


class TestStatementParsing:
    def test_simple_select(self):
        stmt = parse_statement("SELECT * FROM t0")
        assert isinstance(stmt, A.Select)
        assert isinstance(stmt.from_clause, A.NamedTable)

    def test_select_roundtrip(self):
        sql = (
            "SELECT DISTINCT t0.c0 AS x FROM t0 LEFT JOIN t1 ON (t0.c0 = t1.c0) "
            "WHERE (t0.c0 > 0) GROUP BY t0.c0 HAVING (COUNT(*) > 1) "
            "ORDER BY x ASC LIMIT 5 OFFSET 1"
        )
        stmt = parse_statement(sql)
        again = parse_statement(stmt.to_sql())
        assert again.to_sql() == stmt.to_sql()

    def test_indexed_by(self):
        stmt = parse_statement("SELECT * FROM t0 INDEXED BY i0")
        assert stmt.from_clause.indexed_by == "i0"

    def test_join_kinds(self):
        for sql, kind in [
            ("SELECT * FROM a JOIN b ON 1", "INNER"),
            ("SELECT * FROM a INNER JOIN b ON 1", "INNER"),
            ("SELECT * FROM a LEFT JOIN b ON 1", "LEFT"),
            ("SELECT * FROM a LEFT OUTER JOIN b ON 1", "LEFT"),
            ("SELECT * FROM a RIGHT JOIN b ON 1", "RIGHT"),
            ("SELECT * FROM a FULL OUTER JOIN b ON 1", "FULL"),
            ("SELECT * FROM a CROSS JOIN b", "CROSS"),
        ]:
            stmt = parse_statement(sql)
            assert isinstance(stmt.from_clause, A.Join)
            assert stmt.from_clause.kind == kind

    def test_comma_join_is_cross(self):
        stmt = parse_statement("SELECT * FROM a, b")
        assert isinstance(stmt.from_clause, A.Join)
        assert stmt.from_clause.kind == "CROSS"

    def test_derived_table(self):
        stmt = parse_statement("SELECT * FROM (SELECT 1) AS d")
        assert isinstance(stmt.from_clause, A.DerivedTable)
        assert stmt.from_clause.alias == "d"

    def test_derived_table_requires_alias(self):
        with pytest.raises(ParseError):
            parse_statement("SELECT * FROM (SELECT 1)")

    def test_values_table(self):
        stmt = parse_statement("SELECT * FROM (VALUES (1, 2)) AS v(a, b)")
        assert isinstance(stmt.from_clause, A.ValuesTable)
        assert stmt.from_clause.column_aliases == ("a", "b")

    def test_cte(self):
        stmt = parse_statement("WITH x(a) AS (SELECT 1) SELECT * FROM x")
        assert len(stmt.ctes) == 1
        assert stmt.ctes[0].name == "x"

    def test_cte_with_values(self):
        stmt = parse_statement("WITH x(a) AS (VALUES (1), (2)) SELECT * FROM x")
        assert isinstance(stmt.ctes[0].query, A.ValuesSource)

    def test_union_chain(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2 UNION ALL SELECT 3")
        op1, all1, rhs = stmt.set_op
        assert op1 == "UNION" and not all1
        assert rhs.set_op is not None
        op2, all2, _ = rhs.set_op
        assert op2 == "UNION" and all2

    def test_order_by_attaches_to_compound(self):
        stmt = parse_statement("SELECT 1 UNION SELECT 2 ORDER BY 1")
        assert stmt.set_op is not None
        assert len(stmt.order_by) == 1

    def test_table_star(self):
        stmt = parse_statement("SELECT t0.* FROM t0")
        assert stmt.items[0].table_star == "t0"

    def test_insert_values(self):
        stmt = parse_statement("INSERT INTO t0 (c0) VALUES (1), (2)")
        assert isinstance(stmt, A.Insert)
        assert isinstance(stmt.source, A.ValuesSource)
        assert len(stmt.source.rows) == 2

    def test_insert_select(self):
        stmt = parse_statement("INSERT INTO t0 SELECT * FROM t1")
        assert isinstance(stmt.source, A.Select)

    def test_update(self):
        stmt = parse_statement("UPDATE t0 SET c0 = 1, c1 = c1 + 1 WHERE c0 > 0")
        assert isinstance(stmt, A.Update)
        assert len(stmt.assignments) == 2
        assert stmt.where is not None

    def test_delete(self):
        stmt = parse_statement("DELETE FROM t0 WHERE c0 IS NULL")
        assert isinstance(stmt, A.Delete)

    def test_create_table(self):
        stmt = parse_statement(
            "CREATE TABLE t0 (c0 INT NOT NULL, c1 TEXT, c2 BIGINT PRIMARY KEY)"
        )
        assert isinstance(stmt, A.CreateTable)
        assert stmt.columns[0].not_null
        assert stmt.columns[2].primary_key

    def test_create_table_untyped_column(self):
        stmt = parse_statement("CREATE TABLE t0 (c0)")
        assert stmt.columns[0].type_name is None

    def test_create_index_on_expression(self):
        stmt = parse_statement("CREATE INDEX i0 ON t0 (c0 > 0)")
        assert isinstance(stmt, A.CreateIndex)
        assert isinstance(stmt.exprs[0], A.Binary)

    def test_create_unique_partial_index(self):
        stmt = parse_statement("CREATE UNIQUE INDEX i0 ON t0 (c0) WHERE c0 > 0")
        assert stmt.unique and stmt.where is not None

    def test_create_view(self):
        stmt = parse_statement("CREATE VIEW v0 (c0) AS SELECT 1")
        assert isinstance(stmt, A.CreateView)
        assert stmt.columns == ("c0",)

    def test_drop(self):
        stmt = parse_statement("DROP TABLE IF EXISTS t0")
        assert isinstance(stmt, A.Drop)
        assert stmt.if_exists

    def test_statement_roundtrip_suite(self):
        statements = [
            "SELECT COUNT(*) FROM t0 INDEXED BY i0 WHERE (SELECT COUNT(*) FROM v0)",
            "SELECT x.ID FROM t0 AS x WHERE (x.score > (SELECT AVG(y.score) FROM t0 AS y WHERE (x.classID = y.classID)))",
            "INSERT INTO ot0 SELECT t0.c0 AS c0 FROM t0 WHERE (VERSION() >= t0.c0)",
            "WITH t2 AS (SELECT NULL AS b) SELECT t1.v FROM t1, t2 WHERE (t1.v NOT BETWEEN t1.v AND (CASE WHEN NULL THEN t2.b ELSE t1.v END))",
            "SELECT c FROM t WHERE (c IN (0, 8628276060272066657))",
        ]
        for sql in statements:
            stmt = parse_statement(sql)
            assert parse_statement(stmt.to_sql()).to_sql() == stmt.to_sql()

    def test_bad_statements_raise(self):
        for sql in [
            "",
            "SELEC 1",
            "SELECT",
            "SELECT 1 FROM",
            "CREATE SOMETHING x",
            "DROP DATABASE x",
            "INSERT INTO",
            "SELECT 1 1 1",
        ]:
            with pytest.raises(ParseError):
                parse_statement(sql)


class TestAstTransform:
    def test_replace_node_by_identity(self):
        target = A.Literal(1)
        root = A.Binary("+", target, A.Literal(2))
        replaced = A.replace_node(root, target, A.Literal(9))
        assert replaced.to_sql() == "(9 + 2)"
        # Original untouched.
        assert root.to_sql() == "(1 + 2)"

    def test_replace_inside_case(self):
        target = A.ColumnRef(None, "x")
        root = A.Case(None, (A.CaseWhen(target, A.Literal(1)),), A.Literal(0))
        replaced = A.replace_node(root, target, A.Literal(True))
        assert "TRUE" in replaced.to_sql()

    def test_column_refs_enters_subqueries(self):
        expr = parse_expression("EXISTS (SELECT t0.c0 FROM t0 WHERE t1.c9 = 1)")
        refs = {r.key for r in A.column_refs(expr)}
        assert "t0.c0" in refs
        assert "t1.c9" in refs

    def test_walk_preorder(self):
        expr = parse_expression("1 + 2 * 3")
        kinds = [type(n).__name__ for n in A.walk(expr)]
        assert kinds[0] == "Binary"
        assert kinds.count("Literal") == 3
