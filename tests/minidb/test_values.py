"""Unit tests for the SQL value model and three-valued logic."""

import math

import pytest

from repro.errors import TypeError_, ValueError_
from repro.minidb import values as V
from repro.minidb.values import SqlType, TypingMode

RELAXED = TypingMode.RELAXED
STRICT = TypingMode.STRICT


class TestTypeOf:
    def test_null(self):
        assert V.type_of(None) is SqlType.NULL

    def test_boolean(self):
        assert V.type_of(True) is SqlType.BOOLEAN
        assert V.type_of(False) is SqlType.BOOLEAN

    def test_integer(self):
        assert V.type_of(42) is SqlType.INTEGER

    def test_real(self):
        assert V.type_of(1.5) is SqlType.REAL

    def test_text(self):
        assert V.type_of("abc") is SqlType.TEXT


class TestSqlLiteral:
    """Literal rendering must round-trip through the parser -- the folded
    queries of CODDTest depend on it."""

    @pytest.mark.parametrize(
        "value,expected",
        [
            (None, "NULL"),
            (True, "TRUE"),
            (False, "FALSE"),
            (0, "0"),
            (-7, "-7"),
            (1.5, "1.5"),
            ("abc", "'abc'"),
            ("it's", "'it''s'"),
            ("", "''"),
        ],
    )
    def test_render(self, value, expected):
        assert V.sql_literal(value) == expected

    def test_roundtrip_through_parser(self):
        from repro.minidb.parser import parse_expression

        for value in [None, True, False, 0, 1, -3, 2.5, "x'y", ""]:
            sql = V.sql_literal(value)
            expr = parse_expression(sql)
            # Unary minus wraps negative numbers.
            from repro.minidb.evaluator import EvalCtx, evaluate
            from repro.minidb.engine import Engine

            got = evaluate(expr, EvalCtx(engine=Engine()))
            assert got == value or (got is value)


class TestTernaryLogic:
    def test_and_truth_table(self):
        assert V.and3(True, True) is True
        assert V.and3(True, False) is False
        assert V.and3(False, None) is False
        assert V.and3(None, False) is False
        assert V.and3(True, None) is None
        assert V.and3(None, None) is None

    def test_or_truth_table(self):
        assert V.or3(False, False) is False
        assert V.or3(True, None) is True
        assert V.or3(None, True) is True
        assert V.or3(False, None) is None
        assert V.or3(None, None) is None

    def test_not(self):
        assert V.not3(True) is False
        assert V.not3(False) is True
        assert V.not3(None) is None


class TestTruth:
    def test_null_is_unknown(self):
        assert V.truth(None, RELAXED) is None
        assert V.truth(None, STRICT) is None

    def test_bool_passthrough(self):
        assert V.truth(True, STRICT) is True
        assert V.truth(False, STRICT) is False

    def test_relaxed_numbers(self):
        assert V.truth(1, RELAXED) is True
        assert V.truth(0, RELAXED) is False
        assert V.truth(-2.5, RELAXED) is True

    def test_relaxed_text_numeric_prefix(self):
        assert V.truth("1abc", RELAXED) is True
        assert V.truth("abc", RELAXED) is False
        assert V.truth("0", RELAXED) is False

    def test_strict_rejects_non_boolean(self):
        with pytest.raises(TypeError_):
            V.truth(1, STRICT)
        with pytest.raises(TypeError_):
            V.truth("x", STRICT)


class TestCompare:
    def test_null_propagates(self):
        assert V.compare(None, 1, RELAXED) is None
        assert V.compare("a", None, RELAXED) is None

    def test_numeric(self):
        assert V.compare(1, 2, RELAXED) < 0
        assert V.compare(2, 2, RELAXED) == 0
        assert V.compare(2.5, 2, RELAXED) > 0

    def test_bool_compares_as_number(self):
        assert V.compare(True, 1, RELAXED) == 0
        assert V.compare(False, 1, STRICT) < 0

    def test_text(self):
        assert V.compare("a", "b", STRICT) < 0
        assert V.compare("b", "b", STRICT) == 0

    def test_strict_rejects_mixed(self):
        with pytest.raises(TypeError_):
            V.compare(1, "1", STRICT)

    def test_relaxed_coerces_mixed(self):
        assert V.compare(1, "1", RELAXED) == 0
        assert V.compare(2, "1abc", RELAXED) > 0

    def test_eq3(self):
        assert V.eq3(1, 1, RELAXED) is True
        assert V.eq3(1, 2, RELAXED) is False
        assert V.eq3(None, 1, RELAXED) is None


class TestDistinctEq:
    def test_null_equals_null(self):
        assert V.distinct_eq(None, None) is True

    def test_null_vs_value(self):
        assert V.distinct_eq(None, 1) is False
        assert V.distinct_eq("x", None) is False

    def test_values(self):
        assert V.distinct_eq(1, 1) is True
        assert V.distinct_eq(1, 2) is False


class TestSortKey:
    def test_total_order_across_types(self):
        values = ["b", None, 2, True, 1.5, "a", 0]
        ordered = sorted(values, key=V.sort_key)
        assert ordered[0] is None
        assert ordered[-2:] == ["a", "b"]

    def test_row_sort_key_is_stable(self):
        assert V.row_sort_key((1, "a")) == V.row_sort_key((1, "a"))
        assert V.row_sort_key((1, "a")) != V.row_sort_key((1, "b"))


class TestArith:
    def test_null_propagates(self):
        assert V.arith("+", None, 1, RELAXED) is None
        assert V.arith("*", 2, None, RELAXED) is None

    def test_integer_ops(self):
        assert V.arith("+", 2, 3, RELAXED) == 5
        assert V.arith("-", 2, 3, RELAXED) == -1
        assert V.arith("*", 4, 3, RELAXED) == 12

    def test_integer_division_truncates_toward_zero(self):
        assert V.arith("/", 7, 2, RELAXED) == 3
        assert V.arith("/", -7, 2, RELAXED) == -3

    def test_float_division(self):
        assert V.arith("/", 7.0, 2, RELAXED) == 3.5

    def test_division_by_zero_relaxed_is_null(self):
        assert V.arith("/", 1, 0, RELAXED) is None
        assert V.arith("%", 1, 0, RELAXED) is None

    def test_division_by_zero_strict_raises(self):
        with pytest.raises(ValueError_):
            V.arith("/", 1, 0, STRICT)

    def test_modulo(self):
        assert V.arith("%", 7, 3, RELAXED) == 1
        assert V.arith("%", -7, 3, RELAXED) == -1

    def test_overflow_raises(self):
        with pytest.raises(ValueError_):
            V.arith("+", 2**62, 2**62, RELAXED)

    def test_strict_rejects_text_operand(self):
        with pytest.raises(TypeError_):
            V.arith("+", "1", 2, STRICT)

    def test_relaxed_coerces_text_operand(self):
        assert V.arith("+", "1", 2, RELAXED) == 3

    def test_negate(self):
        assert V.negate(5, RELAXED) == -5
        assert V.negate(None, RELAXED) is None
        with pytest.raises(TypeError_):
            V.negate("a", STRICT)


class TestConcat:
    def test_basic(self):
        assert V.concat("a", "b") == "ab"

    def test_null(self):
        assert V.concat(None, "b") is None
        assert V.concat("a", None) is None

    def test_number_coerces_to_text(self):
        assert V.concat(1, "x") == "1x"


class TestCast:
    def test_cast_null(self):
        assert V.cast(None, SqlType.INTEGER, RELAXED) is None

    def test_to_text(self):
        assert V.cast(12, SqlType.TEXT, RELAXED) == "12"
        assert V.cast(True, SqlType.TEXT, RELAXED) == "1"
        assert V.cast(1.0, SqlType.TEXT, RELAXED) == "1.0"

    def test_to_integer_relaxed(self):
        assert V.cast("12", SqlType.INTEGER, RELAXED) == 12
        assert V.cast("12abc", SqlType.INTEGER, RELAXED) == 12
        assert V.cast("abc", SqlType.INTEGER, RELAXED) == 0
        assert V.cast(2.9, SqlType.INTEGER, RELAXED) == 2

    def test_to_integer_strict_rejects_junk(self):
        with pytest.raises(ValueError_):
            V.cast("12abc", SqlType.INTEGER, STRICT)

    def test_to_real(self):
        assert V.cast("1.5", SqlType.REAL, STRICT) == 1.5
        assert V.cast(3, SqlType.REAL, RELAXED) == 3.0

    def test_to_boolean(self):
        assert V.cast(1, SqlType.BOOLEAN, RELAXED) is True
        assert V.cast(0, SqlType.BOOLEAN, RELAXED) is False


class TestLike:
    def test_literal_match(self):
        assert V.like("abc", "abc", RELAXED) is True
        assert V.like("abc", "abd", RELAXED) is False

    def test_case_insensitive(self):
        assert V.like("ABC", "abc", RELAXED) is True

    def test_percent(self):
        assert V.like("hello world", "hello%", RELAXED) is True
        assert V.like("hello", "%llo", RELAXED) is True
        assert V.like("hello", "h%o", RELAXED) is True
        assert V.like("hello", "x%", RELAXED) is False

    def test_underscore(self):
        assert V.like("cat", "c_t", RELAXED) is True
        assert V.like("cart", "c_t", RELAXED) is False

    def test_null(self):
        assert V.like(None, "a", RELAXED) is None
        assert V.like("a", None, RELAXED) is None

    def test_strict_requires_text(self):
        with pytest.raises(TypeError_):
            V.like(1, "1", STRICT)

    def test_relaxed_coerces(self):
        assert V.like(1, "1", RELAXED) is True

    def test_only_percents(self):
        assert V.like("anything", "%%", RELAXED) is True
        assert V.like("", "%", RELAXED) is True


class TestTextToNumber:
    def test_prefix(self):
        assert V._text_to_number("12abc") == 12
        assert V._text_to_number("1.5x") == 1.5
        assert V._text_to_number("abc") == 0
        assert V._text_to_number("  7 ") == 7
