"""The telemetry bit-identity contract, end to end.

A fleet with every observability surface enabled -- structured trace,
live status endpoint, metrics registry -- must produce exactly the
deterministic outputs of a silent fleet: same merged signature, same
report fingerprints, same rendered table.  Wall-clock exists only in
the obs layer (phase timers, trace timestamps, status ages).
"""

from __future__ import annotations

import threading
import time

from repro.adapters.minidb_adapter import MiniDBAdapter
from repro.core import CoddTestOracle
from repro.dialects import make_engine
from repro.fleet import BugCorpus, FleetConfig, run_fleet
from repro.fleet.telemetry import FleetTelemetry
from repro.obs import (
    fetch_status,
    read_trace,
    summarize_trace,
    validate_record,
)
from repro.report import render_fleet_table
from repro.runner.campaign import Campaign

WORKERS = 4
TESTS = 160
SEED = 5


def _config(**kwargs) -> FleetConfig:
    return FleetConfig(
        oracle="coddtest",
        buggy=True,
        workers=WORKERS,
        seed=SEED,
        n_tests=TESTS,
        use_cache=True,
        **kwargs,
    )


def _witness(result, corpus) -> dict:
    return {
        "signature": result.merged.signature(),
        "corpus": sorted(corpus.entries),
        "table": _strip_throughput(
            render_fleet_table(result.shards, result.merged)
        ),
    }


def _strip_throughput(table: str) -> str:
    """Drop the tests/s column: it is the one wall-clock cell the table
    has always carried (exempt from the determinism guarantee)."""
    return "\n".join(
        line.rsplit(None, 1)[0] if line.strip() else line
        for line in table.splitlines()
    )


class TestFleetBitIdentity:
    def test_traced_fleet_with_status_is_bit_identical(self, tmp_path):
        silent_corpus = BugCorpus()
        silent = run_fleet(_config(), corpus=silent_corpus)

        trace_path = str(tmp_path / "run.trace.jsonl")
        telemetry = FleetTelemetry(trace_path=trace_path, status_port=0)
        snapshots: list[dict] = []

        def poll() -> None:
            deadline = time.monotonic() + 30.0
            while time.monotonic() < deadline:
                url = telemetry.url
                if url is None:
                    if telemetry.server is None and snapshots:
                        return
                    time.sleep(0.005)
                    continue
                try:
                    snapshots.append(fetch_status(url, timeout=2.0))
                except OSError:
                    time.sleep(0.005)

        poller = threading.Thread(target=poll, daemon=True)
        poller.start()
        traced_corpus = BugCorpus()
        traced = run_fleet(
            _config(trace_path=trace_path, status_port=0),
            corpus=traced_corpus,
            telemetry=telemetry,
        )
        poller.join(timeout=5.0)

        assert _witness(traced, traced_corpus) == _witness(
            silent, silent_corpus
        )

        # The trace is schema-valid and agrees with the merged stats.
        records = read_trace(trace_path)
        assert records, "trace must not be empty"
        assert all(validate_record(r) is None for r in records)
        summary = summarize_trace(records)
        assert summary["tests"] == silent.merged.tests
        assert {"generate", "parse", "execute"} <= set(summary["phases"])
        events = {r["ev"] for r in records}
        assert {"run_start", "run_finish", "shard_start",
                "shard_finish", "test_finish"} <= events

        # The endpoint served live snapshots of the right shape.
        assert snapshots, "status endpoint was never reachable"
        last = snapshots[-1]
        assert last["schema_version"] == 1
        assert last["workers"] == WORKERS
        assert last["state"] in ("starting", "running", "done")

    def test_metrics_registry_agrees_with_merged_stats(self, tmp_path):
        corpus = BugCorpus()
        result = run_fleet(_config(), corpus=corpus)
        metrics = result.metrics
        assert metrics is not None
        totals = metrics.counter_totals()
        assert totals["tests"] == result.merged.tests
        assert totals["reports"] == len(result.merged.reports)
        assert totals["queries_ok"] == result.merged.queries_ok
        # One source per shard (plus the orchestrator's own stream):
        # single-writer streams, summed in views.
        shard_sources = [
            s for s in metrics.counters if s.startswith("shard")
        ]
        assert len(shard_sources) == WORKERS
        # Wall-clock lives in timers only, never in counters/gauges.
        timer_names = set(metrics.timer_totals())
        assert "shard_wall" in timer_names
        assert any(name.startswith("phase/") for name in timer_names)

    def test_guided_fleet_traced_matches_untraced(self, tmp_path):
        config = dict(guidance="plan-coverage", guidance_rounds=2)
        silent = run_fleet(_config(**config))
        trace_path = str(tmp_path / "guided.trace.jsonl")
        traced = run_fleet(
            _config(trace_path=trace_path, **config)
        )
        assert traced.merged.signature() == silent.merged.signature()
        assert traced.arm_schedules == silent.arm_schedules
        summary = summarize_trace(read_trace(trace_path))
        assert len(summary["rounds"]) >= 1
        assert summary["tests"] == silent.merged.tests


class TestCampaignPhaseStats:
    def test_phase_stats_populated_but_excluded_from_signature(self):
        def run():
            oracle = CoddTestOracle(max_depth=3)
            adapter = MiniDBAdapter(
                make_engine("sqlite", with_catalog_faults=True)
            )
            return Campaign(oracle, adapter, seed=3).run(n_tests=40)

        a, b = run(), run()
        assert {"generate", "parse", "execute", "compare"} <= set(
            a.phase_stats
        )
        assert a.phase_stats["execute"]["calls"] == b.phase_stats[
            "execute"
        ]["calls"]
        # Wall-clock differs between the runs; signatures must not.
        assert "phase_stats" not in a.signature()
        assert a.signature() == b.signature()

    def test_merge_sums_phase_stats(self):
        from repro.runner.campaign import CampaignStats

        a = CampaignStats(oracle="coddtest")
        a.phase_stats = {"execute": {"calls": 2, "seconds": 0.5}}
        b = CampaignStats(oracle="coddtest")
        b.phase_stats = {"execute": {"calls": 3, "seconds": 0.25}}
        merged = CampaignStats.merge([a, b])
        assert merged.phase_stats["execute"] == {
            "calls": 5,
            "seconds": 0.75,
        }
