"""Property tests of the metrics-registry CRDT.

The registry mirrors the CoverageMap join: per-source monotone streams
with an elementwise join, so ``merge`` must be commutative,
associative, and idempotent for arbitrary registries -- hypothesis
builds them from random (source, name, value) writes.  The fleet
relies on this to absorb shard snapshots any number of times in any
order (re-delivered progress payloads, guided rounds).
"""

from __future__ import annotations

from hypothesis import given, settings, strategies as st

from repro.obs.metrics import MetricsRegistry, TimerSlot, merge_all

_names = st.sampled_from(["tests", "reports", "cache/hits", "rounds"])
_sources = st.sampled_from(["shard0/r0", "shard1/r0", "shard0/r1", "orch"])


@st.composite
def registries(draw) -> MetricsRegistry:
    reg = MetricsRegistry(source="builder")
    for _ in range(draw(st.integers(0, 6))):
        reg.source = draw(_sources)
        kind = draw(st.integers(0, 2))
        name = draw(_names)
        if kind == 0:
            reg.incr(name, draw(st.integers(0, 50)))
        elif kind == 1:
            reg.gauge(name, draw(st.floats(0, 100, allow_nan=False)))
        else:
            reg.observe(name, draw(st.floats(0, 1, allow_nan=False)))
    return reg


def canon(reg: MetricsRegistry) -> dict:
    """Merge-comparable form: source label aside, equal state."""
    data = reg.to_dict()
    data.pop("source")
    return data


@settings(max_examples=200, deadline=None)
@given(registries(), registries())
def test_merge_commutative(a, b):
    assert canon(MetricsRegistry.merge(a, b)) == canon(
        MetricsRegistry.merge(b, a)
    )


@settings(max_examples=200, deadline=None)
@given(registries(), registries(), registries())
def test_merge_associative(a, b, c):
    left = MetricsRegistry.merge(MetricsRegistry.merge(a, b), c)
    right = MetricsRegistry.merge(a, MetricsRegistry.merge(b, c))
    assert canon(left) == canon(right)


@settings(max_examples=200, deadline=None)
@given(registries())
def test_merge_idempotent(a):
    assert canon(MetricsRegistry.merge(a, a)) == canon(a)


@settings(max_examples=100, deadline=None)
@given(registries(), registries())
def test_merge_matches_merge_all_and_roundtrips(a, b):
    merged = merge_all([a, b])
    assert canon(merged) == canon(MetricsRegistry.merge(a, b))
    assert canon(MetricsRegistry.from_dict(merged.to_dict())) == canon(merged)


@settings(max_examples=100, deadline=None)
@given(registries(), registries())
def test_counter_totals_bounded_by_sum(a, b):
    """The join never invents counts: per (source, name) the merged
    counter is the max of the inputs, so totals are bounded by their
    sum and by each input from below."""
    merged = MetricsRegistry.merge(a, b)
    for name, total in merged.counter_totals().items():
        assert total <= a.counter_total(name) + b.counter_total(name)
        assert total >= max(a.counter_total(name), b.counter_total(name))


class TestSingleWriterSemantics:
    def test_snapshots_of_one_stream_join_to_latest(self):
        early = MetricsRegistry(source="shard0/r0")
        early.incr("tests", 10)
        late = MetricsRegistry(source="shard0/r0")
        late.incr("tests", 25)
        merged = MetricsRegistry.merge(early, late)
        assert merged.counter_total("tests") == 25

    def test_distinct_sources_sum_in_views(self):
        a = MetricsRegistry(source="shard0/r0")
        a.incr("tests", 10)
        b = MetricsRegistry(source="shard1/r0")
        b.incr("tests", 5)
        assert MetricsRegistry.merge(a, b).counter_total("tests") == 15

    def test_per_round_sources_accumulate_across_rounds(self):
        rounds = []
        for round_index in range(3):
            reg = MetricsRegistry(source=f"shard0/r{round_index}")
            reg.incr("tests", 100)
            rounds.append(reg)
        # Absorbing every round twice must not double-count.
        assert merge_all(rounds + rounds).counter_total("tests") == 300

    def test_gauge_latest_write_wins(self):
        reg = MetricsRegistry(source="shard0/r0")
        reg.gauge("branch_coverage", 0.4)
        reg.gauge("branch_coverage", 0.6)
        stale = MetricsRegistry(source="shard0/r0")
        stale.gauge("branch_coverage", 0.1)
        merged = MetricsRegistry.merge(stale, reg)
        assert merged.gauge_values()["branch_coverage"] == 0.6

    def test_counters_reject_negative_increments(self):
        import pytest

        with pytest.raises(ValueError):
            MetricsRegistry().incr("tests", -1)

    def test_absorb_phase_totals_becomes_timers(self):
        reg = MetricsRegistry(source="shard0/r0")
        reg.absorb_phase_totals(
            {"execute": {"calls": 7, "seconds": 0.5}}
        )
        totals = reg.timer_totals()
        assert totals["phase/execute"]["count"] == 7
        assert totals["phase/execute"]["seconds"] == 0.5

    def test_timer_slot_join_is_elementwise(self):
        a = TimerSlot(count=3, seconds=1.5, min_s=0.1, max_s=1.0)
        b = TimerSlot(count=5, seconds=1.0, min_s=0.05, max_s=0.5)
        a.join(b)
        assert a.count == 5 and a.seconds == 1.5
        assert a.min_s == 0.05 and a.max_s == 1.0
