"""Phase profiler unit tests: accumulation, merge, rendering, and the
canonical generate/parse/execute/compare ordering."""

from __future__ import annotations

from repro.obs.phases import (
    PHASES,
    PhaseProfiler,
    format_phase_breakdown,
    merge_phase_totals,
)


class TestPhaseProfiler:
    def test_begin_end_accumulates(self):
        prof = PhaseProfiler()
        t0 = prof.begin()
        prof.end("execute", t0)
        prof.end("execute", prof.begin())
        totals = prof.to_dict()
        assert totals["execute"]["calls"] == 2
        assert totals["execute"]["seconds"] >= 0.0

    def test_context_manager_records_on_error(self):
        prof = PhaseProfiler()
        try:
            with prof.phase("parse"):
                raise RuntimeError("boom")
        except RuntimeError:
            pass
        assert prof.to_dict()["parse"]["calls"] == 1

    def test_to_dict_canonical_order(self):
        prof = PhaseProfiler()
        for name in ("compare", "generate", "custom", "execute", "parse"):
            prof.end(name, prof.begin())
        assert list(prof.to_dict()) == [
            "generate", "parse", "execute", "compare", "custom",
        ]
        assert list(PHASES) == ["generate", "parse", "execute", "compare"]


class TestMergePhaseTotals:
    def test_merge_sums_disjoint_and_shared(self):
        a = {"parse": {"calls": 2, "seconds": 1.0}}
        b = {
            "parse": {"calls": 3, "seconds": 0.5},
            "execute": {"calls": 1, "seconds": 2.0},
        }
        merged = merge_phase_totals(a, b)
        assert merged == {
            "parse": {"calls": 5, "seconds": 1.5},
            "execute": {"calls": 1, "seconds": 2.0},
        }
        assert list(merged) == ["parse", "execute"]

    def test_merge_empty_is_identity(self):
        a = {"generate": {"calls": 1, "seconds": 0.25}}
        assert merge_phase_totals(a, {}) == a
        assert merge_phase_totals({}, a) == a


class TestFormatPhaseBreakdown:
    def test_empty_renders_nothing(self):
        assert format_phase_breakdown({}) == ""
        assert format_phase_breakdown({}, 5.0) == ""

    def test_shares_of_profiled_total(self):
        line = format_phase_breakdown(
            {
                "parse": {"calls": 1, "seconds": 1.0},
                "execute": {"calls": 1, "seconds": 3.0},
            }
        )
        assert line.startswith("phases: ")
        assert "parse 1.00s (25%)" in line
        assert "execute 3.00s (75%)" in line
        assert "other" not in line

    def test_wall_clock_residual_becomes_other(self):
        line = format_phase_breakdown(
            {"execute": {"calls": 1, "seconds": 1.0}}, wall_seconds=4.0
        )
        assert "execute 1.00s (25%)" in line
        assert "other 3.00s (75%)" in line
