"""Status board + stdlib HTTP endpoint tests (no external deps)."""

from __future__ import annotations

import urllib.error

import pytest

from repro.obs.status import (
    STATUS_SCHEMA_VERSION,
    StatusBoard,
    StatusServer,
    fetch_status,
)


class TestStatusBoard:
    def test_initial_snapshot_is_starting(self):
        snap = StatusBoard().snapshot()
        assert snap["schema_version"] == STATUS_SCHEMA_VERSION
        assert snap["state"] == "starting"

    def test_publish_stamps_schema_version(self):
        board = StatusBoard()
        board.publish({"state": "running", "tests": 5})
        snap = board.snapshot()
        assert snap["schema_version"] == STATUS_SCHEMA_VERSION
        assert snap["tests"] == 5

    def test_snapshot_returns_copy(self):
        board = StatusBoard()
        board.publish({"state": "running"})
        board.snapshot()["state"] = "mutated"
        assert board.snapshot()["state"] == "running"


class TestStatusServer:
    def test_serves_latest_snapshot_on_ephemeral_port(self):
        board = StatusBoard()
        with StatusServer(board, port=0) as server:
            assert server.port != 0
            assert fetch_status(server.url)["state"] == "starting"
            board.publish({"state": "running", "tests": 42})
            for path in ("", "status"):
                snap = fetch_status(server.url + path)
                assert snap["tests"] == 42
                assert snap["state"] == "running"

    def test_unknown_path_is_404(self):
        with StatusServer(StatusBoard(), port=0) as server:
            with pytest.raises(urllib.error.HTTPError) as exc:
                fetch_status(server.url + "nope")
            assert exc.value.code == 404

    def test_stop_shuts_the_endpoint_down(self):
        server = StatusServer(StatusBoard(), port=0)
        server.start()
        url = server.url
        server.stop()
        with pytest.raises(OSError):
            fetch_status(url, timeout=0.5)
